#include "rdb/sql.h"

#include <cctype>

namespace mix::rdb {

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  /// Token kinds: identifier/keyword, punctuation, string, number, end.
  struct Token {
    enum class Kind { kIdent, kPunct, kString, kNumber, kEnd };
    Kind kind;
    std::string text;
    bool is_double = false;  // for kNumber
  };

  Token Next() {
    SkipWs();
    if (pos_ >= sql_.size()) return {Token::Kind::kEnd, "", false};
    char c = sql_[pos_];
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        s.push_back(sql_[pos_++]);
      }
      if (pos_ < sql_.size()) ++pos_;  // closing quote
      return {Token::Kind::kString, std::move(s), false};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      std::string s;
      bool is_double = false;
      if (c == '-') s.push_back(sql_[pos_++]);
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        if (sql_[pos_] == '.') is_double = true;
        s.push_back(sql_[pos_++]);
      }
      return {Token::Kind::kNumber, std::move(s), is_double};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string s;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_' || sql_[pos_] == '.')) {
        s.push_back(sql_[pos_++]);
      }
      return {Token::Kind::kIdent, std::move(s), false};
    }
    // Punctuation: multi-char operators first.
    for (std::string_view op : {"<=", ">=", "<>", "!="}) {
      if (sql_.substr(pos_, 2) == op) {
        pos_ += 2;
        return {Token::Kind::kPunct, std::string(op), false};
      }
    }
    ++pos_;
    return {Token::Kind::kPunct, std::string(1, c), false};
  }

 private:
  void SkipWs() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

Result<Predicate::Op> ParseOp(const std::string& text) {
  if (text == "=") return Predicate::Op::kEq;
  if (text == "<>" || text == "!=") return Predicate::Op::kNe;
  if (text == "<") return Predicate::Op::kLt;
  if (text == "<=") return Predicate::Op::kLe;
  if (text == ">") return Predicate::Op::kGt;
  if (text == ">=") return Predicate::Op::kGe;
  return Status::ParseError("unknown operator '" + text + "'");
}

}  // namespace

std::string SelectStatement::ToString() const {
  std::string s = "SELECT ";
  if (columns.empty()) {
    s += "*";
  } else {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) s += ", ";
      s += columns[i];
    }
  }
  s += " FROM " + table;
  for (size_t i = 0; i < filters.size(); ++i) {
    s += i == 0 ? " WHERE " : " AND ";
    s += filters[i].column;
    s += " ";
    s += Predicate::OpName(filters[i].op);
    s += " ";
    if (filters[i].literal.type() == Type::kString) {
      s += "'" + filters[i].literal.ToString() + "'";
    } else {
      s += filters[i].literal.ToString();
    }
  }
  if (limit.has_value()) s += " LIMIT " + std::to_string(*limit);
  return s;
}

Result<SelectStatement> ParseSelect(std::string_view sql) {
  Lexer lexer(sql);
  using Token = Lexer::Token;
  SelectStatement stmt;

  Token t = lexer.Next();
  if (t.kind != Token::Kind::kIdent || Upper(t.text) != "SELECT") {
    return Status::ParseError("expected SELECT");
  }
  // Column list.
  t = lexer.Next();
  if (t.kind == Token::Kind::kPunct && t.text == "*") {
    t = lexer.Next();
  } else {
    for (;;) {
      if (t.kind != Token::Kind::kIdent) {
        return Status::ParseError("expected column name");
      }
      stmt.columns.push_back(t.text);
      t = lexer.Next();
      if (t.kind == Token::Kind::kPunct && t.text == ",") {
        t = lexer.Next();
        continue;
      }
      break;
    }
  }
  if (t.kind != Token::Kind::kIdent || Upper(t.text) != "FROM") {
    return Status::ParseError("expected FROM");
  }
  t = lexer.Next();
  if (t.kind != Token::Kind::kIdent) {
    return Status::ParseError("expected table name");
  }
  stmt.table = t.text;

  t = lexer.Next();
  if (t.kind == Token::Kind::kIdent && Upper(t.text) == "WHERE") {
    for (;;) {
      Token col = lexer.Next();
      if (col.kind != Token::Kind::kIdent) {
        return Status::ParseError("expected column in WHERE");
      }
      Token op = lexer.Next();
      if (op.kind != Token::Kind::kPunct) {
        return Status::ParseError("expected comparison operator");
      }
      auto parsed_op = ParseOp(op.text);
      if (!parsed_op.ok()) return parsed_op.status();
      Token lit = lexer.Next();
      Value value;
      if (lit.kind == Token::Kind::kString) {
        value = Value(lit.text);
      } else if (lit.kind == Token::Kind::kNumber) {
        value = lit.is_double ? Value(std::stod(lit.text))
                              : Value(static_cast<int64_t>(std::stoll(lit.text)));
      } else {
        return Status::ParseError("expected literal in WHERE");
      }
      stmt.filters.push_back({col.text, parsed_op.value(), std::move(value)});
      t = lexer.Next();
      if (t.kind == Token::Kind::kIdent && Upper(t.text) == "AND") continue;
      break;
    }
  }
  if (t.kind == Token::Kind::kIdent && Upper(t.text) == "LIMIT") {
    Token n = lexer.Next();
    if (n.kind != Token::Kind::kNumber || n.is_double) {
      return Status::ParseError("expected integer after LIMIT");
    }
    stmt.limit = std::stoll(n.text);
    t = lexer.Next();
  }
  if (t.kind != Token::Kind::kEnd) {
    return Status::ParseError("trailing tokens after statement");
  }
  return stmt;
}

bool SelectResult::RowCursor::Next(Row* out) {
  if (result_->limit_.has_value() && produced_ >= *result_->limit_) return false;
  const Row* row = cursor_.Next();
  if (row == nullptr) return false;
  out->clear();
  for (int idx : result_->projection_) {
    out->push_back((*row)[static_cast<size_t>(idx)]);
  }
  ++produced_;
  return true;
}

Result<SelectResult> BindSelect(const Database& db, const SelectStatement& stmt) {
  const Table* table = db.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt.table);
  }
  const Schema& schema = table->schema();

  std::vector<int> projection;
  std::vector<Column> out_columns;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.column_count(); ++i) {
      projection.push_back(static_cast<int>(i));
      out_columns.push_back(schema.columns()[i]);
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int idx = schema.IndexOf(name);
      if (idx < 0) {
        return Status::NotFound("no such column: " + name + " in " + stmt.table);
      }
      projection.push_back(idx);
      out_columns.push_back(schema.columns()[static_cast<size_t>(idx)]);
    }
  }

  std::vector<Predicate> predicates;
  for (const auto& f : stmt.filters) {
    int idx = schema.IndexOf(f.column);
    if (idx < 0) {
      return Status::NotFound("no such column: " + f.column + " in " + stmt.table);
    }
    Type col_type = schema.columns()[static_cast<size_t>(idx)].type;
    Value literal = f.literal;
    // INT literal against DOUBLE column: widen.
    if (col_type == Type::kDouble && literal.type() == Type::kInt) {
      literal = Value(static_cast<double>(literal.as_int()));
    }
    if (literal.type() != col_type) {
      return Status::InvalidArgument("literal type does not match column " +
                                     f.column);
    }
    predicates.push_back(Predicate{idx, f.op, std::move(literal)});
  }

  return SelectResult(Schema(std::move(out_columns)), table,
                      std::move(predicates), std::move(projection), stmt.limit);
}

Result<SelectResult> ExecuteSelect(const Database& db, std::string_view sql) {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return BindSelect(db, stmt.value());
}

}  // namespace mix::rdb
