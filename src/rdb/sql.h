// Mini-SQL for the relational substrate.
//
// Section 4's relational wrapper "has translated a XMAS query into an SQL
// query"; this module supplies the receiving end. Supported grammar:
//
//   SELECT (col (',' col)* | '*') FROM table
//     [WHERE col op literal (AND col op literal)*]
//     [LIMIT n]
//
// with op ∈ {=, <>, !=, <, <=, >, >=}, string literals in single quotes,
// and integer/double literals. Keywords are case-insensitive.
#ifndef MIX_RDB_SQL_H_
#define MIX_RDB_SQL_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "rdb/database.h"

namespace mix::rdb {

/// A parsed SELECT statement.
struct SelectStatement {
  std::vector<std::string> columns;  ///< empty means '*'.
  std::string table;
  /// WHERE atoms by column *name* (resolved against the schema at bind time).
  struct Filter {
    std::string column;
    Predicate::Op op;
    Value literal;
  };
  std::vector<Filter> filters;
  std::optional<int64_t> limit;

  std::string ToString() const;
};

Result<SelectStatement> ParseSelect(std::string_view sql);

/// Result of executing a SELECT: an output schema plus a cursor factory.
class SelectResult {
 public:
  SelectResult(Schema schema, const Table* table,
               std::vector<Predicate> predicates, std::vector<int> projection,
               std::optional<int64_t> limit)
      : schema_(std::move(schema)),
        table_(table),
        predicates_(std::move(predicates)),
        projection_(std::move(projection)),
        limit_(limit) {}

  const Schema& schema() const { return schema_; }

  /// Streams result rows; each call to Next fills `out` (projected).
  class RowCursor {
   public:
    explicit RowCursor(const SelectResult* result)
        : result_(result), cursor_(result->table_, result->predicates_) {}

    /// Returns false at end-of-results.
    bool Next(Row* out);
    /// Absolute source-row position for LXP hole encoding.
    void Seek(int64_t row_number) { cursor_.Seek(row_number); }
    int64_t rows_scanned() const { return cursor_.rows_scanned(); }

   private:
    const SelectResult* result_;
    Cursor cursor_;
    int64_t produced_ = 0;
  };

  RowCursor Open() const { return RowCursor(this); }

 private:
  friend class RowCursor;
  Schema schema_;
  const Table* table_;
  std::vector<Predicate> predicates_;
  std::vector<int> projection_;
  std::optional<int64_t> limit_;
};

/// Parses, binds and prepares `sql` against `db`.
Result<SelectResult> ExecuteSelect(const Database& db, std::string_view sql);

/// Binds an already-parsed statement.
Result<SelectResult> BindSelect(const Database& db, const SelectStatement& stmt);

}  // namespace mix::rdb

#endif  // MIX_RDB_SQL_H_
