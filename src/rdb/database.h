// Database catalog for the relational substrate.
#ifndef MIX_RDB_DATABASE_H_
#define MIX_RDB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "rdb/table.h"

namespace mix::rdb {

class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates an empty table; InvalidArgument if the name exists.
  Result<Table*> CreateTable(const std::string& table_name, Schema schema);

  /// Lookup; nullptr if absent.
  Table* GetTable(const std::string& table_name) const;

  /// Table names in creation order (the relational wrapper exports the
  /// schema in this order at the database level, Section 4).
  const std::vector<std::string>& table_names() const { return order_; }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
};

}  // namespace mix::rdb

#endif  // MIX_RDB_DATABASE_H_
