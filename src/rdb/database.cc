#include "rdb/database.h"

namespace mix::rdb {

Result<Table*> Database::CreateTable(const std::string& table_name,
                                     Schema schema) {
  if (tables_.count(table_name) > 0) {
    return Status::InvalidArgument("table already exists: " + table_name);
  }
  auto table = std::make_unique<Table>(table_name, std::move(schema));
  Table* ptr = table.get();
  tables_[table_name] = std::move(table);
  order_.push_back(table_name);
  return ptr;
}

Table* Database::GetTable(const std::string& table_name) const {
  auto it = tables_.find(table_name);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace mix::rdb
