#include "rdb/value.h"

#include "core/check.h"

namespace mix::rdb {

const char* TypeName(Type t) {
  switch (t) {
    case Type::kInt:
      return "INT";
    case Type::kDouble:
      return "DOUBLE";
    case Type::kString:
      return "STRING";
  }
  return "?";
}

Type Value::type() const {
  if (std::holds_alternative<int64_t>(v_)) return Type::kInt;
  if (std::holds_alternative<double>(v_)) return Type::kDouble;
  return Type::kString;
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble: {
      std::string s = std::to_string(as_double());
      // Trim trailing zeros for stable rendering.
      size_t dot = s.find('.');
      if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot) last = dot - 1;
        s.erase(last + 1);
      }
      return s;
    }
    case Type::kString:
      return as_string();
  }
  return "";
}

bool Value::operator<(const Value& o) const {
  MIX_CHECK_MSG(type() == o.type(), "ordering across value types");
  return v_ < o.v_;
}

}  // namespace mix::rdb
