#include "rdb/table.h"

#include "core/check.h"

namespace mix::rdb {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Predicate::Eval(const Row& row) const {
  const Value& v = row[static_cast<size_t>(column)];
  switch (op) {
    case Op::kEq:
      return v == literal;
    case Op::kNe:
      return v != literal;
    case Op::kLt:
      return v < literal;
    case Op::kLe:
      return v < literal || v == literal;
    case Op::kGt:
      return !(v < literal) && v != literal;
    case Op::kGe:
      return !(v < literal);
  }
  return false;
}

const char* Predicate::OpName(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "<>";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
  }
  return "?";
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.column_count()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema of " +
        name_ + " (" + std::to_string(schema_.column_count()) + ")");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.columns()[i].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.columns()[i].name + " of " + name_);
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Row& Table::row(int64_t i) const {
  MIX_CHECK(i >= 0 && i < row_count());
  return rows_[static_cast<size_t>(i)];
}

Cursor::Cursor(const Table* table, std::vector<Predicate> predicates)
    : table_(table), predicates_(std::move(predicates)) {
  MIX_CHECK(table_ != nullptr);
}

const Row* Cursor::Next(int64_t* row_number) {
  while (pos_ < table_->row_count()) {
    const Row& r = table_->row(pos_);
    int64_t current = pos_++;
    ++rows_scanned_;
    bool match = true;
    for (const Predicate& p : predicates_) {
      if (!p.Eval(r)) {
        match = false;
        break;
      }
    }
    if (match) {
      if (row_number != nullptr) *row_number = current;
      return &r;
    }
  }
  return nullptr;
}

}  // namespace mix::rdb
