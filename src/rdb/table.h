// Tables, schemas and cursors for the relational substrate.
#ifndef MIX_RDB_TABLE_H_
#define MIX_RDB_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "rdb/value.h"

namespace mix::rdb {

struct Column {
  std::string name;
  Type type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t column_count() const { return columns_.size(); }
  /// Index of `name` or -1.
  int IndexOf(const std::string& name) const;

 private:
  std::vector<Column> columns_;
};

using Row = std::vector<Value>;

/// Comparison predicate `column op literal` — the WHERE atoms of mini-SQL
/// and the pushdown unit of the relational wrapper.
struct Predicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  int column = 0;
  Op op = Op::kEq;
  Value literal;

  bool Eval(const Row& row) const;
  static const char* OpName(Op op);
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Arity- and type-checks the row.
  Status Insert(Row row);

  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }
  const Row& row(int64_t i) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

/// Forward-only scan cursor — the JDBC-style access path. The relational
/// wrapper advances it tuple-at-a-time; `Seek` supports hole ids of the form
/// db.table.row (Section 4) which address an absolute row position.
class Cursor {
 public:
  /// `table` not owned. `predicates` are conjunctive filters.
  explicit Cursor(const Table* table, std::vector<Predicate> predicates = {});

  /// Next matching row, or nullptr at end. Also reports the absolute row
  /// number through `row_number` when non-null.
  const Row* Next(int64_t* row_number = nullptr);
  void Reset() { pos_ = 0; }
  /// Positions the cursor so that the next `Next()` returns the first
  /// matching row with absolute number >= `row_number`.
  void Seek(int64_t row_number) { pos_ = row_number; }

  /// Rows the cursor has stepped over so far (I/O proxy for benchmarks).
  int64_t rows_scanned() const { return rows_scanned_; }

 private:
  const Table* table_;
  std::vector<Predicate> predicates_;
  int64_t pos_ = 0;
  int64_t rows_scanned_ = 0;
};

}  // namespace mix::rdb

#endif  // MIX_RDB_TABLE_H_
