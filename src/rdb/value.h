// Typed values for the in-memory relational substrate.
//
// The paper's relational wrapper sits on a JDBC connection to a real RDBMS;
// this substrate replaces it with an embedded engine that exposes the same
// access pattern (schema catalog + forward-only cursors delivering whole
// tuples), which is what the granularity arguments of Section 4 rely on.
#ifndef MIX_RDB_VALUE_H_
#define MIX_RDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace mix::rdb {

enum class Type { kInt, kDouble, kString };

const char* TypeName(Type t);

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  Type type() const;
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Rendering used when tuples are exported as XML leaves.
  std::string ToString() const;

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return v_ != o.v_; }
  /// Ordering is only defined between same-typed values; MIX_CHECKed.
  bool operator<(const Value& o) const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace mix::rdb

#endif  // MIX_RDB_VALUE_H_
