#include "pathexpr/path_expr.h"

#include <cctype>

#include "core/check.h"

namespace mix::pathexpr {

int Nfa::AddState() {
  transitions_.emplace_back();
  epsilon_.emplace_back();
  accepting_.push_back(false);
  return state_count() - 1;
}

void Nfa::AddTransition(int from, int to, bool wildcard, std::string label) {
  Atom atom = wildcard ? Atom() : Atom::Intern(label);
  transitions_[static_cast<size_t>(from)].push_back(
      Transition{to, wildcard, std::move(label), atom});
}

void Nfa::AddEpsilon(int from, int to) {
  epsilon_[static_cast<size_t>(from)].push_back(to);
}

void Nfa::EpsilonClose(StateSet* set) const {
  std::vector<int> work;
  for (int s = 0; s < state_count(); ++s) {
    if ((*set)[static_cast<size_t>(s)]) work.push_back(s);
  }
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    for (int t : epsilon_[static_cast<size_t>(s)]) {
      if (!(*set)[static_cast<size_t>(t)]) {
        (*set)[static_cast<size_t>(t)] = true;
        work.push_back(t);
      }
    }
  }
}

Nfa::StateSet Nfa::StartSet() const {
  StateSet set(static_cast<size_t>(state_count()), false);
  set[static_cast<size_t>(start_)] = true;
  EpsilonClose(&set);
  return set;
}

Nfa::StateSet Nfa::Advance(const StateSet& set, Atom label) const {
  StateSet next(static_cast<size_t>(state_count()), false);
  for (int s = 0; s < state_count(); ++s) {
    if (!set[static_cast<size_t>(s)]) continue;
    for (const Transition& t : transitions_[static_cast<size_t>(s)]) {
      if (t.wildcard || t.label_atom == label) {
        next[static_cast<size_t>(t.target)] = true;
      }
    }
  }
  EpsilonClose(&next);
  return next;
}

bool Nfa::AnyAccepting(const StateSet& set) const {
  for (int s = 0; s < state_count(); ++s) {
    if (set[static_cast<size_t>(s)] && accepting_[static_cast<size_t>(s)]) {
      return true;
    }
  }
  return false;
}

bool Nfa::AnyOutgoing(const StateSet& set) const {
  for (int s = 0; s < state_count(); ++s) {
    if (set[static_cast<size_t>(s)] &&
        !transitions_[static_cast<size_t>(s)].empty()) {
      return true;
    }
  }
  return false;
}

bool Nfa::Empty(const StateSet& set) {
  for (bool b : set) {
    if (b) return false;
  }
  return true;
}

namespace {

/// AST for parsing; compiled away into the NFA.
struct Ast {
  enum class Kind { kLabel, kWildcard, kSeq, kAlt, kStar, kPlus, kOpt };
  Kind kind;
  std::string label;
  std::vector<std::unique_ptr<Ast>> children;
};

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '@' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<Ast>> Run() {
    auto ast = ParseAlt();
    if (!ast.ok()) return ast.status();
    SkipWs();
    if (pos_ < text_.size()) {
      return Err("unexpected character '" + std::string(1, text_[pos_]) + "'");
    }
    return std::move(ast).ValueOrDie();
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError("path expression: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<Ast>> ParseAlt() {
    auto left = ParseSeq();
    if (!left.ok()) return left.status();
    auto node = std::move(left).ValueOrDie();
    while (Eat('|')) {
      auto right = ParseSeq();
      if (!right.ok()) return right.status();
      auto alt = std::make_unique<Ast>();
      alt->kind = Ast::Kind::kAlt;
      alt->children.push_back(std::move(node));
      alt->children.push_back(std::move(right).ValueOrDie());
      node = std::move(alt);
    }
    return node;
  }

  Result<std::unique_ptr<Ast>> ParseSeq() {
    auto left = ParseRep();
    if (!left.ok()) return left.status();
    auto node = std::move(left).ValueOrDie();
    while (Eat('.')) {
      auto right = ParseRep();
      if (!right.ok()) return right.status();
      auto seq = std::make_unique<Ast>();
      seq->kind = Ast::Kind::kSeq;
      seq->children.push_back(std::move(node));
      seq->children.push_back(std::move(right).ValueOrDie());
      node = std::move(seq);
    }
    return node;
  }

  Result<std::unique_ptr<Ast>> ParseRep() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    auto node = std::move(atom).ValueOrDie();
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      Ast::Kind kind;
      if (c == '*') {
        kind = Ast::Kind::kStar;
      } else if (c == '+') {
        kind = Ast::Kind::kPlus;
      } else if (c == '?') {
        kind = Ast::Kind::kOpt;
      } else {
        break;
      }
      ++pos_;
      auto rep = std::make_unique<Ast>();
      rep->kind = kind;
      rep->children.push_back(std::move(node));
      node = std::move(rep);
    }
    return node;
  }

  Result<std::unique_ptr<Ast>> ParseAtom() {
    SkipWs();
    if (pos_ >= text_.size()) return Err("expected label, '_' or '('");
    if (text_[pos_] == '(') {
      ++pos_;
      auto inner = ParseAlt();
      if (!inner.ok()) return inner.status();
      if (!Eat(')')) return Err("expected ')'");
      return std::move(inner).ValueOrDie();
    }
    if (!IsLabelChar(text_[pos_])) {
      return Err("expected label, '_' or '('");
    }
    std::string label;
    while (pos_ < text_.size() && IsLabelChar(text_[pos_])) {
      label.push_back(text_[pos_++]);
    }
    auto node = std::make_unique<Ast>();
    if (label == "_") {
      node->kind = Ast::Kind::kWildcard;
    } else {
      node->kind = Ast::Kind::kLabel;
      node->label = std::move(label);
    }
    return node;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Thompson construction: compiles `ast` into `nfa`, returning
/// (entry, exit) states; `exit` has no outgoing edges of its own.
struct Frag {
  int entry;
  int exit;
};

Frag Compile(const Ast& ast, Nfa* nfa) {
  switch (ast.kind) {
    case Ast::Kind::kLabel:
    case Ast::Kind::kWildcard: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      nfa->AddTransition(a, b, ast.kind == Ast::Kind::kWildcard, ast.label);
      return {a, b};
    }
    case Ast::Kind::kSeq: {
      Frag l = Compile(*ast.children[0], nfa);
      Frag r = Compile(*ast.children[1], nfa);
      nfa->AddEpsilon(l.exit, r.entry);
      return {l.entry, r.exit};
    }
    case Ast::Kind::kAlt: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      Frag l = Compile(*ast.children[0], nfa);
      Frag r = Compile(*ast.children[1], nfa);
      nfa->AddEpsilon(a, l.entry);
      nfa->AddEpsilon(a, r.entry);
      nfa->AddEpsilon(l.exit, b);
      nfa->AddEpsilon(r.exit, b);
      return {a, b};
    }
    case Ast::Kind::kStar: {
      int a = nfa->AddState();
      int b = nfa->AddState();
      Frag inner = Compile(*ast.children[0], nfa);
      nfa->AddEpsilon(a, inner.entry);
      nfa->AddEpsilon(a, b);
      nfa->AddEpsilon(inner.exit, inner.entry);
      nfa->AddEpsilon(inner.exit, b);
      return {a, b};
    }
    case Ast::Kind::kPlus: {
      Frag inner = Compile(*ast.children[0], nfa);
      nfa->AddEpsilon(inner.exit, inner.entry);
      return inner;
    }
    case Ast::Kind::kOpt: {
      Frag inner = Compile(*ast.children[0], nfa);
      nfa->AddEpsilon(inner.entry, inner.exit);
      return inner;
    }
  }
  MIX_CHECK_MSG(false, "unreachable AST kind");
  return {0, 0};
}

bool HasClosure(const Ast& ast) {
  if (ast.kind == Ast::Kind::kStar || ast.kind == Ast::Kind::kPlus) return true;
  for (const auto& c : ast.children) {
    if (HasClosure(*c)) return true;
  }
  return false;
}

/// Extracts a literal chain a.b.c if the AST is pure Seq-of-Labels.
bool ExtractChain(const Ast& ast, std::vector<std::string>* out) {
  if (ast.kind == Ast::Kind::kLabel) {
    out->push_back(ast.label);
    return true;
  }
  if (ast.kind == Ast::Kind::kSeq) {
    return ExtractChain(*ast.children[0], out) &&
           ExtractChain(*ast.children[1], out);
  }
  return false;
}

std::string AstToString(const Ast& ast) {
  switch (ast.kind) {
    case Ast::Kind::kLabel:
      return ast.label;
    case Ast::Kind::kWildcard:
      return "_";
    case Ast::Kind::kSeq:
      return AstToString(*ast.children[0]) + "." + AstToString(*ast.children[1]);
    case Ast::Kind::kAlt:
      return "(" + AstToString(*ast.children[0]) + "|" +
             AstToString(*ast.children[1]) + ")";
    case Ast::Kind::kStar:
      return "(" + AstToString(*ast.children[0]) + ")*";
    case Ast::Kind::kPlus:
      return "(" + AstToString(*ast.children[0]) + ")+";
    case Ast::Kind::kOpt:
      return "(" + AstToString(*ast.children[0]) + ")?";
  }
  return "";
}

}  // namespace

Result<PathExpr> PathExpr::Parse(std::string_view text) {
  auto ast = Parser(text).Run();
  if (!ast.ok()) return ast.status();
  const Ast& root = *ast.value();

  auto nfa = std::make_shared<Nfa>();
  Frag frag = Compile(root, nfa.get());
  nfa->SetStart(frag.entry);
  nfa->SetAccepting(frag.exit);

  std::vector<std::string> chain;
  if (!ExtractChain(root, &chain)) chain.clear();

  return PathExpr(std::move(nfa), AstToString(root), HasClosure(root),
                  std::move(chain));
}

bool PathExpr::IsLabelChain(std::vector<std::string>* labels) const {
  if (chain_.empty()) return false;
  if (labels != nullptr) *labels = chain_;
  return true;
}

bool PathExpr::Matches(const std::vector<std::string>& path) const {
  Nfa::StateSet set = nfa_->StartSet();
  for (const std::string& label : path) {
    set = nfa_->Advance(set, label);
    if (Nfa::Empty(set)) return false;
  }
  return nfa_->AnyAccepting(set);
}

}  // namespace mix::pathexpr
