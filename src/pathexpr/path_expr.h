// Generalized regular path expressions (paper Section 3).
//
// XMAS conditions such as `homesSrc homes.home $H` and `$H zip._ $V1` bind
// variables to nodes reachable over label paths matching a regular
// expression. The supported operators are the paper's ". | * _" plus "+"
// and "?" for convenience:
//
//   expr  := seq ('|' seq)*
//   seq   := rep ('.' rep)*
//   rep   := atom ('*' | '+' | '?')*
//   atom  := label | '_' | '(' expr ')'
//
// A path [l1,...,lk] is the sequence of labels of the nodes visited from a
// child of the anchor element down to (and including) the extracted node.
// `_` matches any single label.
//
// Expressions compile to a Thompson NFA. The lazy getDescendants mediator
// runs the NFA alongside its depth-first traversal of the input subtree,
// pruning branches whose state set becomes empty.
#ifndef MIX_PATHEXPR_PATH_EXPR_H_
#define MIX_PATHEXPR_PATH_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/atom.h"
#include "core/status.h"

namespace mix::pathexpr {

/// Thompson NFA over labels. States are dense ints; `StateSet` is a bitset.
class Nfa {
 public:
  using StateSet = std::vector<bool>;

  struct Transition {
    int target = 0;
    bool wildcard = false;  ///< `_` — matches any label.
    std::string label;      ///< valid when !wildcard.
    Atom label_atom;        ///< interned `label` — the hot-loop compare key.
  };

  int AddState();
  void AddTransition(int from, int to, bool wildcard, std::string label);
  void AddEpsilon(int from, int to);
  void SetStart(int s) { start_ = s; }
  void SetAccepting(int s) { accepting_[static_cast<size_t>(s)] = true; }

  int state_count() const { return static_cast<int>(transitions_.size()); }

  /// ε-closure of the start state.
  StateSet StartSet() const;
  /// States reachable from `set` by consuming `label` (ε-closed). The Atom
  /// overload is the hot path (one integer compare per transition); the
  /// string overload interns and delegates.
  StateSet Advance(const StateSet& set, Atom label) const;
  StateSet Advance(const StateSet& set, const std::string& label) const {
    return Advance(set, Atom::Intern(label));
  }
  bool AnyAccepting(const StateSet& set) const;
  /// True if any state in `set` has an outgoing (labeled) transition —
  /// i.e. the set could still consume input. Lets the matcher skip whole
  /// child lists once a path is complete and dead-ended.
  bool AnyOutgoing(const StateSet& set) const;
  static bool Empty(const StateSet& set);

 private:
  void EpsilonClose(StateSet* set) const;

  std::vector<std::vector<Transition>> transitions_;
  std::vector<std::vector<int>> epsilon_;
  std::vector<bool> accepting_;
  int start_ = 0;
};

/// A parsed, compiled path expression.
class PathExpr {
 public:
  static Result<PathExpr> Parse(std::string_view text);

  const Nfa& nfa() const { return *nfa_; }
  /// The original (normalized) text, for plan printing.
  const std::string& text() const { return text_; }

  /// True if the expression is a plain chain of literal labels `a.b.c`
  /// (no alternation/closure/wildcard); fills `labels` when non-null.
  /// Such expressions make getDescendants σ-selectable, which is what the
  /// end of Section 2 uses to upgrade browsability.
  bool IsLabelChain(std::vector<std::string>* labels = nullptr) const;

  /// True if the expression contains a closure operator. The paper's
  /// getDescendants caches visited input nodes exactly "when [it] has a
  /// recursive regular path expression as a parameter".
  bool IsRecursive() const { return recursive_; }

  /// Whole-path match test (primarily for tests).
  bool Matches(const std::vector<std::string>& path) const;

 private:
  PathExpr(std::shared_ptr<const Nfa> nfa, std::string text, bool recursive,
           std::vector<std::string> chain)
      : nfa_(std::move(nfa)),
        text_(std::move(text)),
        recursive_(recursive),
        chain_(std::move(chain)) {}

  std::shared_ptr<const Nfa> nfa_;
  std::string text_;
  bool recursive_ = false;
  /// Non-empty iff IsLabelChain().
  std::vector<std::string> chain_;
};

}  // namespace mix::pathexpr

#endif  // MIX_PATHEXPR_PATH_EXPR_H_
