// Umbrella header for the MIX library.
//
// Downstream users who do not need fine-grained includes can pull in the
// whole public surface:
//
//   #include "mix.h"
//
// Layering (see README.md / DESIGN.md):
//   core      — node-ids, the DOM-VXD Navigable interface, Status
//   xml       — labeled ordered trees, parsing, materialization
//   pathexpr  — generalized regular path expressions
//   rdb/net   — relational and network substrates
//   buffer    — LXP protocol + the generic buffer component
//   wrappers  — relational / XML / Web / CSV sources
//   algebra   — XMAS operators as lazy mediators (+ reference evaluator)
//   xmas      — the XMAS query language
//   mediator  — plans, translation, rewriting, browsability, instantiation
//   client    — the thin DOM-style client library
#ifndef MIX_MIX_H_
#define MIX_MIX_H_

#include "core/check.h"
#include "core/navigable.h"
#include "core/node_id.h"
#include "core/status.h"
#include "core/super_root.h"

#include "xml/doc_navigable.h"
#include "xml/materialize.h"
#include "xml/parser.h"
#include "xml/random_tree.h"
#include "xml/tree.h"

#include "pathexpr/path_expr.h"

#include "rdb/database.h"
#include "rdb/sql.h"

#include "net/sim_net.h"

#include "buffer/buffer.h"
#include "buffer/lxp.h"

#include "wrappers/bookstore.h"
#include "wrappers/csv_wrapper.h"
#include "wrappers/relational_wrapper.h"
#include "wrappers/xml_lxp_wrapper.h"

#include "algebra/binding_stream.h"
#include "algebra/bindings_navigable.h"
#include "algebra/concatenate_op.h"
#include "algebra/create_element_op.h"
#include "algebra/extra_ops.h"
#include "algebra/get_descendants_op.h"
#include "algebra/group_by_op.h"
#include "algebra/join_op.h"
#include "algebra/materialize_op.h"
#include "algebra/order_by_op.h"
#include "algebra/reference.h"
#include "algebra/select_op.h"
#include "algebra/set_ops.h"
#include "algebra/source_op.h"
#include "algebra/tuple_destroy_op.h"

#include "xmas/ast.h"
#include "xmas/parser.h"

#include "mediator/browsability.h"
#include "mediator/instantiate.h"
#include "mediator/plan.h"
#include "mediator/plan_text.h"
#include "mediator/reference_eval.h"
#include "mediator/rewrite.h"
#include "mediator/translate.h"
#include "mediator/view_schema.h"

#include "client/client.h"

#endif  // MIX_MIX_H_
