// getDescendants_{e, re -> ch} (paper Section 3, Fig. 5).
//
// For each input binding b_in, extracts the descendants of the parent
// element b_in.e reachable over a label path matching the regular
// expression re, producing one output binding b_in + ch[d] per match, in
// document order.
//
// Lazy-mediator implementation: the operator runs a depth-first traversal
// of the anchor's subtree *in lockstep with the path-expression NFA*,
// pruning every branch whose state set becomes empty, and pauses at each
// accepting node — that node is the next match. Output binding ids are
// `gd_b(instance, handle)` where the handle resolves an operator-cached
// match cursor (the DFS stack of (node, state-set) frames). Keeping cursors
// per issued binding id realizes the paper's observation that
// getDescendants performs "much more efficiently by caching parts of [the]
// already visited input": resuming from any previously issued binding is
// O(1), never a re-walk.
//
// When the expression is a plain label chain (a.b.c) and
// `use_select_sibling` is set, sibling scans use the σ command
// (SelectSibling) instead of r/f loops. With a σ-capable source one source
// command suffices per level — exactly the upgrade from (unbounded)
// browsable to bounded browsable discussed at the end of Section 2.
#ifndef MIX_ALGEBRA_GET_DESCENDANTS_OP_H_
#define MIX_ALGEBRA_GET_DESCENDANTS_OP_H_

#include <deque>
#include <string>

#include "algebra/operator_base.h"
#include "pathexpr/path_expr.h"

namespace mix::algebra {

class GetDescendantsOp : public OperatorBase {
 public:
  struct Options {
    /// Use σ (SelectSibling) for sibling scans when the path expression is
    /// a literal label chain.
    bool use_select_sibling = false;
    /// Inline filter (select/getDescendants fusion): a match is emitted
    /// only when the predicate holds on the would-be output binding, with
    /// exactly BindingPredicate::Eval semantics. May reference the output
    /// variable and any input variable. Filtered-out matches store no
    /// cursor — they cost a predicate evaluation, not a binding.
    std::optional<BindingPredicate> filter;
  };

  /// `input` is not owned and must outlive the operator.
  GetDescendantsOp(BindingStream* input, std::string parent_var,
                   pathexpr::PathExpr path, std::string out_var,
                   Options options);
  GetDescendantsOp(BindingStream* input, std::string parent_var,
                   pathexpr::PathExpr path, std::string out_var)
      : GetDescendantsOp(input, std::move(parent_var), std::move(path),
                         std::move(out_var), Options()) {}

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  /// Batched match enumeration. The NFA-lockstep DFS itself stays
  /// node-at-a-time (a vectored child fetch would pull pruned branches the
  /// pruning walk never touches); only the per-output memo/snapshot
  /// bookkeeping is skipped between batch elements.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

  const pathexpr::PathExpr& path() const { return path_; }

 private:
  struct Frame {
    NodeId node;
    pathexpr::Nfa::StateSet states;
  };
  /// Snapshot of a paused DFS; one per issued output binding.
  struct Cursor {
    NodeId input_b;
    Navigable* nav = nullptr;
    std::vector<Frame> stack;  ///< path from an anchor child to the match.
  };

  /// Scans `cand` and its right siblings for the first node whose label
  /// advances `parent_states` to a non-empty set. `depth` = level below the
  /// anchor, used for σ scans on label chains.
  std::optional<Frame> TryLevel(Navigable* nav, std::optional<NodeId> cand,
                                const pathexpr::Nfa::StateSet& parent_states,
                                size_t depth);
  /// Moves the cursor to the next surviving node in pruned preorder.
  bool Step(Cursor* cursor);
  /// Positions a fresh cursor at the first DFS node under the anchor.
  bool Seed(Cursor* cursor, const ValueRef& anchor);
  /// Advances (or, with seeding, starts) to the next *accepting* node that
  /// passes the inline filter.
  bool NextMatch(Cursor* cursor);
  /// Evaluates Options::filter against the would-be output binding of a
  /// cursor paused on an accepting node. True when no filter is set.
  bool FilterPasses(const Cursor& cursor);
  /// Scans input bindings starting at `ib` for the first with a match.
  std::optional<NodeId> ScanInput(std::optional<NodeId> ib);

  NodeId StoreCursor(Cursor cursor);
  const Cursor& CursorOf(const NodeId& b) const;

  BindingStream* input_;
  std::string parent_var_;
  pathexpr::PathExpr path_;
  std::string out_var_;
  Options options_;
  VarList schema_;

  bool sigma_usable_ = false;
  std::vector<std::string> chain_;
  /// Interned chain labels and prebuilt σ predicates, one per depth —
  /// avoids re-interning and rebuilding a predicate on every level scan.
  std::vector<Atom> chain_atoms_;
  std::vector<LabelPredicate> chain_preds_;

  std::deque<Cursor> cursors_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_GET_DESCENDANTS_OP_H_
