// Document view of a binding stream: the bs[b[X[x],Y[y]],...] tree.
//
// This adaptor exposes what the paper's lazy mediator exports when its
// client is the *user* rather than another operator — the full binding
// tree navigable with plain DOM-VXD commands. Operators avoid it among
// themselves (they use the attribute shortcut), but tests, debugging tools
// and the examples use it to materialize intermediate binding lists and
// compare them against the paper's worked examples.
#ifndef MIX_ALGEBRA_BINDINGS_NAVIGABLE_H_
#define MIX_ALGEBRA_BINDINGS_NAVIGABLE_H_

#include "algebra/binding_stream.h"
#include "algebra/value_space.h"

namespace mix::algebra {

class BindingsNavigable : public Navigable {
 public:
  /// `stream` is not owned and must outlive the adaptor.
  explicit BindingsNavigable(BindingStream* stream);

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

  /// Vectored navigation: the binding level batches through the stream's
  /// NextBindings, the value level through the producing Navigable — a
  /// full-tree fetch of the bs-document is one cascade of batch calls.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  NodeId VarId(const NodeId& b, int64_t var_index) const;

  BindingStream* stream_;
  int64_t instance_;
  ValueSpace space_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_BINDINGS_NAVIGABLE_H_
