#include "algebra/value_space.h"

#include <atomic>

#include "core/check.h"

namespace mix::algebra {

namespace {
const Atom kFwTag = Atom::Intern("fw");
}  // namespace

int64_t NextOperatorInstance() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

int64_t ValueSpace::HandleFor(Navigable* nav) {
  auto it = handle_of_.find(nav);
  if (it != handle_of_.end()) return it->second;
  int64_t handle = static_cast<int64_t>(navs_.size());
  navs_.push_back(nav);
  handle_of_[nav] = handle;
  return handle;
}

NodeId ValueSpace::Wrap(const ValueRef& ref) {
  MIX_CHECK(ref.valid());
  if (wrap_cache_.empty()) wrap_cache_.resize(kWrapCacheSize);
  size_t slot = (ref.id.Hash() ^
                 (reinterpret_cast<uintptr_t>(ref.nav) >> 4)) &
                (kWrapCacheSize - 1);
  WrapEntry& entry = wrap_cache_[slot];
  if (entry.nav == ref.nav && entry.inner == ref.id) return entry.wrapped;
  NodeId wrapped(kFwTag, owner_, HandleFor(ref.nav), ref.id);
  entry = WrapEntry{ref.nav, ref.id, wrapped};
  return wrapped;
}

bool ValueSpace::Owns(const NodeId& id) const {
  return id.valid() && id.tag_atom() == kFwTag && id.arity() == 3 &&
         id.IntAt(0) == owner_;
}

ValueRef ValueSpace::Unwrap(const NodeId& id) const {
  MIX_CHECK_MSG(Owns(id), "foreign fw-id passed to ValueSpace");
  int64_t handle = id.IntAt(1);
  MIX_CHECK(handle >= 0 && handle < static_cast<int64_t>(navs_.size()));
  return ValueRef{navs_[static_cast<size_t>(handle)], id.IdAt(2)};
}

std::optional<NodeId> ValueSpace::Down(const NodeId& id) {
  ValueRef ref = Unwrap(id);
  std::optional<NodeId> child = ref.nav->Down(ref.id);
  if (!child.has_value()) return std::nullopt;
  return Wrap(ValueRef{ref.nav, *child});
}

std::optional<NodeId> ValueSpace::Right(const NodeId& id) {
  ValueRef ref = Unwrap(id);
  std::optional<NodeId> sibling = ref.nav->Right(ref.id);
  if (!sibling.has_value()) return std::nullopt;
  return Wrap(ValueRef{ref.nav, *sibling});
}

Label ValueSpace::Fetch(const NodeId& id) {
  ValueRef ref = Unwrap(id);
  return ref.nav->Fetch(ref.id);
}

Atom ValueSpace::FetchAtom(const NodeId& id) {
  ValueRef ref = Unwrap(id);
  return ref.nav->FetchAtom(ref.id);
}

void ValueSpace::DownAll(const NodeId& id, std::vector<NodeId>* out) {
  ValueRef ref = Unwrap(id);
  const size_t before = out->size();
  ref.nav->DownAll(ref.id, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = Wrap(ValueRef{ref.nav, (*out)[i]});
  }
}

void ValueSpace::NextSiblings(const NodeId& id, int64_t limit,
                              std::vector<NodeId>* out) {
  ValueRef ref = Unwrap(id);
  const size_t before = out->size();
  ref.nav->NextSiblings(ref.id, limit, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = Wrap(ValueRef{ref.nav, (*out)[i]});
  }
}

void ValueSpace::FetchSubtree(const NodeId& id, int64_t depth,
                              std::vector<SubtreeEntry>* out) {
  ValueRef ref = Unwrap(id);
  const size_t before = out->size();
  ref.nav->FetchSubtree(ref.id, depth, out);
  for (size_t i = before; i < out->size(); ++i) {
    SubtreeEntry& e = (*out)[i];
    if (e.truncated) e.id = Wrap(ValueRef{ref.nav, e.id});
  }
}

}  // namespace mix::algebra
