#include "algebra/tuple_destroy_op.h"

namespace mix::algebra {

namespace {
const Atom kTdRootTag = Atom::Intern("td_root");
}  // namespace

TupleDestroyOp::TupleDestroyOp(BindingStream* input, std::string var)
    : input_(input),
      var_(std::move(var)),
      instance_(NextOperatorInstance()),
      space_(instance_) {
  MIX_CHECK(input_ != nullptr);
  if (var_.empty()) {
    MIX_CHECK_MSG(input_->schema().size() == 1,
                  "tupleDestroy without a variable requires a unary schema");
    var_ = input_->schema()[0];
  }
}

NodeId TupleDestroyOp::Root() {
  // The paper's preprocessing contract: the root handle is symbolic and
  // costs zero source navigations; resolution happens on first use.
  return NodeId(kTdRootTag, instance_);
}

const ValueRef& TupleDestroyOp::Resolve() {
  if (!root_value_.valid()) {
    std::optional<NodeId> b = input_->FirstBinding();
    MIX_CHECK_MSG(
        b.has_value(),
        "tupleDestroy requires the singleton binding list bs[b[v[e]]]");
    // The singleton property of the *whole list* is intentionally not
    // probed: checking NextBinding eagerly could force source navigation.
    root_value_ = input_->Attr(*b, var_);
  }
  return root_value_;
}

bool TupleDestroyOp::IsRoot(const NodeId& p) const {
  return p.valid() && p.tag_atom() == kTdRootTag && p.arity() == 1 &&
         p.IntAt(0) == instance_;
}

std::optional<NodeId> TupleDestroyOp::Down(const NodeId& p) {
  if (IsRoot(p)) {
    const ValueRef& value = Resolve();
    std::optional<NodeId> child = value.nav->Down(value.id);
    if (!child.has_value()) return std::nullopt;
    return space_.Wrap(ValueRef{value.nav, *child});
  }
  return space_.Down(p);
}

std::optional<NodeId> TupleDestroyOp::Right(const NodeId& p) {
  if (IsRoot(p)) return std::nullopt;  // document roots have no siblings
  return space_.Right(p);
}

Label TupleDestroyOp::Fetch(const NodeId& p) {
  if (IsRoot(p)) {
    const ValueRef& value = Resolve();
    return value.nav->Fetch(value.id);
  }
  return space_.Fetch(p);
}

void TupleDestroyOp::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (!IsRoot(p)) {
    space_.DownAll(p, out);
    return;
  }
  const ValueRef& value = Resolve();
  const size_t before = out->size();
  value.nav->DownAll(value.id, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = space_.Wrap(ValueRef{value.nav, (*out)[i]});
  }
}

void TupleDestroyOp::NextSiblings(const NodeId& p, int64_t limit,
                                  std::vector<NodeId>* out) {
  if (IsRoot(p)) return;  // document roots have no siblings
  space_.NextSiblings(p, limit, out);
}

void TupleDestroyOp::FetchSubtree(const NodeId& p, int64_t depth,
                                  std::vector<SubtreeEntry>* out) {
  if (!IsRoot(p)) {
    space_.FetchSubtree(p, depth, out);
    return;
  }
  const ValueRef& value = Resolve();
  const size_t from = out->size();
  value.nav->FetchSubtree(value.id, depth, out);
  for (size_t i = from; i < out->size(); ++i) {
    SubtreeEntry& e = (*out)[i];
    if (e.truncated) e.id = space_.Wrap(ValueRef{value.nav, e.id});
  }
}

}  // namespace mix::algebra
