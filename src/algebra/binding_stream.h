// The operator-to-operator interface of the XMAS algebra (paper Section 3).
//
// Algebra operators input and output *lists of variable bindings*,
// represented as trees bs[ b[X[x],Y[y]], ... ]. Implementing each operator
// as a lazy mediator means it answers navigations into its output binding
// tree by issuing navigations into its inputs.
//
// Following Appendix A ("Since the client of the lazy mediator ... is
// another lazy mediator, it is wasteful to navigate over the attribute
// lists of the input mediator. Instead we allow the operators to directly
// request values of attributes."), operators talk to each other through
// `BindingStream`:
//
//   * FirstBinding / NextBinding iterate the b-level nodes;
//   * Attr(b, var) is the attribute shortcut b.X of Fig. 9 — it returns a
//     handle to the variable's *value*.
//
// Values live in whatever component produced them: a wrapper/buffer for
// source subtrees, or a constructing operator (createElement, groupBy,
// concatenate) for synthesized nodes. `ValueRef` couples the node-id with
// the Navigable that can serve navigations on it. Pass-through operators
// hand input ValueRefs straight through — the navigational cost at the
// source boundary is identical to the paper's chain of <id,p> pass-through
// mappings, without the per-level administrative rewrap.
//
// The full bs-tree *document* view of a stream (what the paper's client
// would navigate if it spoke to the operator directly) is provided by the
// BindingsNavigable adaptor (bindings_navigable.h).
#ifndef MIX_ALGEBRA_BINDING_STREAM_H_
#define MIX_ALGEBRA_BINDING_STREAM_H_

#include <optional>
#include <string>
#include <vector>

#include "core/navigable.h"
#include "core/node_id.h"

namespace mix::algebra {

/// Ordered list of variable names (no '$' prefix).
using VarList = std::vector<std::string>;

/// A navigable handle to a value node.
struct ValueRef {
  Navigable* nav = nullptr;
  NodeId id;

  bool valid() const { return nav != nullptr && id.valid(); }
};

/// One operator's output binding stream.
class BindingStream {
 public:
  virtual ~BindingStream() = default;

  /// Output schema: the variables each binding carries, in bs-tree order.
  virtual const VarList& schema() const = 0;

  /// First binding (b-level id), or nullopt for an empty stream.
  virtual std::optional<NodeId> FirstBinding() = 0;

  /// Binding following `b`. Navigation may resume from *any* previously
  /// returned binding id, in any order (clients navigate from multiple
  /// nodes; Section 1).
  virtual std::optional<NodeId> NextBinding(const NodeId& b) = 0;

  /// The attribute shortcut b.X: value of `var` in binding `b`.
  virtual ValueRef Attr(const NodeId& b, const std::string& var) = 0;

  /// Batched iteration: appends up to `limit` bindings following `after`
  /// (`limit < 0`: all remaining). An invalid `after` starts from the first
  /// binding. The default loops First/NextBinding; forward-scanning
  /// operators override it so one batch request on their output becomes one
  /// batch request on their input. Overrides never pull more input bindings
  /// than the node-at-a-time loop producing the same prefix would.
  virtual void NextBindings(const NodeId& after, int64_t limit,
                            std::vector<NodeId>* out);
};

/// Label reserved for list values (paper: "list is a special label for
/// denoting lists").
inline constexpr char kListLabel[] = "list";

// ---------------------------------------------------------------------------
// Value helpers (shared by selection, join, grouping, ordering).
// ---------------------------------------------------------------------------

/// True if the value is a list node.
bool ValueIsList(const ValueRef& v);

/// Atomic rendering for comparisons: a leaf's label; for a non-leaf, the
/// full term serialization (deep navigation!). Comparing non-atomic values
/// therefore explores them completely — which is semantically forced.
std::string AtomOf(const ValueRef& v);

/// Full term serialization of a value subtree via navigation.
std::string TermOfValue(const ValueRef& v);

/// Numeric-aware three-way comparison: if both render as numbers, compare
/// numerically, else lexicographically. (The paper orders "according to
/// some arithmetic attribute such as age".)
int CompareAtoms(const std::string& a, const std::string& b);

// ---------------------------------------------------------------------------
// Binding predicates (WHERE-clause comparisons after pattern matching).
// ---------------------------------------------------------------------------

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);
bool ApplyCompare(CompareOp op, int cmp);

/// A comparison between two variables or a variable and a constant,
/// evaluated against one binding.
class BindingPredicate {
 public:
  static BindingPredicate VarVar(std::string left_var, CompareOp op,
                                 std::string right_var);
  static BindingPredicate VarConst(std::string var, CompareOp op,
                                   std::string constant);

  bool Eval(BindingStream* stream, const NodeId& b) const;
  /// For a join: evaluates with the two sides' values fetched from
  /// different streams (left_var from `left`/`lb`, right from `right`/`rb`).
  bool EvalJoin(BindingStream* left, const NodeId& lb, BindingStream* right,
                const NodeId& rb) const;

  bool is_var_var() const { return !right_var_.empty(); }
  const std::string& left_var() const { return left_var_; }
  const std::string& right_var() const { return right_var_; }
  const std::string& constant() const { return constant_; }
  CompareOp op() const { return op_; }
  std::string ToString() const;

 private:
  BindingPredicate() = default;

  std::string left_var_;
  CompareOp op_ = CompareOp::kEq;
  std::string right_var_;  ///< empty for var-const predicates.
  std::string constant_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_BINDING_STREAM_H_
