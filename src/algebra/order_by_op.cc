#include "algebra/order_by_op.h"

#include <algorithm>
#include <unordered_map>

namespace mix::algebra {

namespace {
const Atom kObBTag = Atom::Intern("ob_b");
const Atom kObkTag = Atom::Intern("obk");
}  // namespace

OrderByOp::OrderByOp(BindingStream* input, VarList sort_vars, Mode mode)
    : input_(input), sort_vars_(std::move(sort_vars)), mode_(mode) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  for (const std::string& v : sort_vars_) {
    MIX_CHECK_MSG(std::find(in.begin(), in.end(), v) != in.end(),
                  "orderBy variable not bound by input");
  }
}

void OrderByOp::Ensure() {
  if (materialized_) return;
  materialized_ = true;

  struct Entry {
    NodeId ib;
    std::vector<std::string> atom_key;  // kByValue
    int64_t occurrence_key = 0;         // kByOccurrence
  };
  // For kByOccurrence: first-seen rank of a sort-variable value tuple,
  // keyed by node identity (footnote 7's preserved identities).
  std::unordered_map<NodeId, int64_t, NodeIdHash> first_seen;
  std::vector<Entry> entries;
  for (std::optional<NodeId> ib = input_->FirstBinding(); ib.has_value();
       ib = input_->NextBinding(*ib)) {
    Entry e;
    e.ib = *ib;
    if (mode_ == Mode::kByValue) {
      for (const std::string& v : sort_vars_) {
        e.atom_key.push_back(AtomOf(input_->Attr(*ib, v)));
      }
    } else {
      // Rank = first occurrence of the (composite) value identity.
      NodeId composite(kObkTag, [&] {
        std::vector<NodeIdComponent> parts;
        for (const std::string& v : sort_vars_) {
          parts.push_back(input_->Attr(*ib, v).id);
        }
        return parts;
      }());
      auto [it, inserted] = first_seen.try_emplace(
          composite, static_cast<int64_t>(first_seen.size()));
      e.occurrence_key = it->second;
    }
    entries.push_back(std::move(e));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [&](const Entry& a, const Entry& b) {
                     if (mode_ == Mode::kByOccurrence) {
                       return a.occurrence_key < b.occurrence_key;
                     }
                     for (size_t i = 0; i < a.atom_key.size(); ++i) {
                       int cmp = CompareAtoms(a.atom_key[i], b.atom_key[i]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  sorted_.reserve(entries.size());
  for (Entry& e : entries) sorted_.push_back(std::move(e.ib));
}

std::optional<NodeId> OrderByOp::FirstBinding() {
  Ensure();
  if (sorted_.empty()) return std::nullopt;
  return NodeId(kObBTag, instance_, int64_t{0});
}

std::optional<NodeId> OrderByOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kObBTag);
  Ensure();
  int64_t next = b.IntAt(1) + 1;
  if (next >= static_cast<int64_t>(sorted_.size())) return std::nullopt;
  return NodeId(kObBTag, instance_, next);
}

ValueRef OrderByOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kObBTag);
  Ensure();
  int64_t i = b.IntAt(1);
  MIX_CHECK(i >= 0 && i < static_cast<int64_t>(sorted_.size()));
  return input_->Attr(sorted_[static_cast<size_t>(i)], var);
}

}  // namespace mix::algebra
