// Base classes for algebra operators implemented as lazy mediators.
#ifndef MIX_ALGEBRA_OPERATOR_BASE_H_
#define MIX_ALGEBRA_OPERATOR_BASE_H_

#include "algebra/binding_stream.h"
#include "algebra/value_space.h"
#include "core/check.h"

namespace mix::algebra {

/// Common state: a process-unique instance id stamped into every node-id
/// the operator mints, so that decoding a foreign id fails fast.
class OperatorBase : public BindingStream {
 public:
  OperatorBase() : instance_(NextOperatorInstance()) {}

  int64_t instance() const { return instance_; }

 protected:
  /// Verifies that `b` is a binding id minted by this operator with the
  /// expected tag.
  void CheckOwn(const NodeId& b, const char* tag) const {
    MIX_CHECK_MSG(b.valid() && b.tag() == tag && b.IntAt(0) == instance_,
                  "navigation from a foreign binding id");
  }

  int64_t instance_;
};

/// Base for operators that synthesize value nodes and therefore must serve
/// value navigation themselves (createElement, concatenate, groupBy).
/// Root() is meaningless on an operator's value space and aborts.
class ConstructingOperatorBase : public OperatorBase, public Navigable {
 public:
  ConstructingOperatorBase() : space_(instance_) {}

  NodeId Root() override {
    MIX_CHECK_MSG(false, "operators expose no document root; use Attr()");
    return NodeId();
  }

 protected:
  /// Pass-through value forwarding (the <id,p> rows of Figs. 9/10).
  ValueSpace space_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_OPERATOR_BASE_H_
