// Base classes for algebra operators implemented as lazy mediators.
#ifndef MIX_ALGEBRA_OPERATOR_BASE_H_
#define MIX_ALGEBRA_OPERATOR_BASE_H_

#include "algebra/binding_stream.h"
#include "algebra/nav_memo.h"
#include "algebra/value_space.h"
#include "core/atom.h"
#include "core/check.h"

namespace mix::algebra {

/// Common state: a process-unique instance id stamped into every node-id
/// the operator mints, so that decoding a foreign id fails fast.
class OperatorBase : public BindingStream {
 public:
  OperatorBase() : instance_(NextOperatorInstance()) {}

  int64_t instance() const { return instance_; }

  /// Memo observability for tests/benchmarks (zeros when disabled).
  int64_t nav_memo_hits() const { return memo_.hits(); }
  int64_t nav_memo_misses() const { return memo_.misses(); }

 protected:
  /// Verifies that `b` is a binding id minted by this operator with the
  /// expected (interned) tag.
  void CheckOwn(const NodeId& b, Atom tag) const {
    MIX_CHECK_MSG(b.valid() && b.tag_atom() == tag && b.IntAt(0) == instance_,
                  "navigation from a foreign binding id");
  }

  /// Opts this operator into the selective navigation memo (paper §3's
  /// operator-local caching) at the process-wide default capacity. Called
  /// from the constructors of the expensive translators only.
  void EnableNavMemo() { memo_ = NavMemo(DefaultNavMemoCapacity()); }

  int64_t instance_;
  NavMemo memo_;
};

/// Base for operators that synthesize value nodes and therefore must serve
/// value navigation themselves (createElement, concatenate, groupBy).
/// Root() is meaningless on an operator's value space and aborts.
class ConstructingOperatorBase : public OperatorBase, public Navigable {
 public:
  ConstructingOperatorBase() : space_(instance_) {}

  NodeId Root() override {
    MIX_CHECK_MSG(false, "operators expose no document root; use Attr()");
    return NodeId();
  }

 protected:
  /// Pass-through value forwarding (the <id,p> rows of Figs. 9/10).
  ValueSpace space_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_OPERATOR_BASE_H_
