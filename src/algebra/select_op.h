// select_pred (σ on binding lists): filters bindings by a comparison
// predicate. This is the paper's conventional relational selection operating
// on lists of bindings (Section 3).
//
// Lazy-mediator behavior: each First/NextBinding scans the input until the
// predicate holds — the canonical *(unbounded) browsable* operator of
// Example 1: a prefix of the answer may be computable from a prefix of the
// input, but no bound on the scan length exists.
#ifndef MIX_ALGEBRA_SELECT_OP_H_
#define MIX_ALGEBRA_SELECT_OP_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class SelectOp : public OperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  SelectOp(BindingStream* input, BindingPredicate predicate);

  const VarList& schema() const override { return input_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  /// Batched scan: pulls input bindings in chunks of exactly the number of
  /// outputs still needed, so it never consumes more input than the
  /// node-at-a-time scan producing the same prefix.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

  const BindingPredicate& predicate() const { return predicate_; }

 private:
  std::optional<NodeId> Scan(std::optional<NodeId> ib);
  NodeId Unwrap(const NodeId& b) const;

  BindingStream* input_;
  BindingPredicate predicate_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_SELECT_OP_H_
