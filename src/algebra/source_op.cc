#include "algebra/source_op.h"

namespace mix::algebra {

SourceOp::SourceOp(Navigable* source, std::string var) : source_(source) {
  MIX_CHECK(source_ != nullptr);
  schema_.push_back(std::move(var));
}

std::optional<NodeId> SourceOp::FirstBinding() {
  return NodeId("src_b", {instance_});
}

std::optional<NodeId> SourceOp::NextBinding(const NodeId& b) {
  CheckOwn(b, "src_b");
  return std::nullopt;
}

ValueRef SourceOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, "src_b");
  MIX_CHECK_MSG(var == schema_[0], "unknown variable requested from source");
  return ValueRef{source_, source_->Root()};
}

}  // namespace mix::algebra
