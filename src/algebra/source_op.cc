#include "algebra/source_op.h"

namespace mix::algebra {

namespace {
const Atom kSrcBTag = Atom::Intern("src_b");
}  // namespace

SourceOp::SourceOp(Navigable* source, std::string var) : source_(source) {
  MIX_CHECK(source_ != nullptr);
  schema_.push_back(std::move(var));
}

std::optional<NodeId> SourceOp::FirstBinding() {
  return NodeId(kSrcBTag, instance_);
}

std::optional<NodeId> SourceOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kSrcBTag);
  return std::nullopt;
}

void SourceOp::NextBindings(const NodeId& after, int64_t limit,
                            std::vector<NodeId>* out) {
  if (after.valid() || limit == 0) return;
  out->push_back(NodeId(kSrcBTag, instance_));
}

ValueRef SourceOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kSrcBTag);
  MIX_CHECK_MSG(var == schema_[0], "unknown variable requested from source");
  return ValueRef{source_, source_->Root()};
}

}  // namespace mix::algebra
