// Eager reference evaluator — the differential-testing oracle.
//
// Implements the denotational semantics of every XMAS algebra operator
// directly on materialized trees and in-memory binding tables, with *no*
// shared machinery with the lazy mediators (beyond the path-expression
// NFA). Property tests check that materializing a lazy plan's virtual
// answer yields a tree equal to the reference evaluation, for random
// documents and plans.
//
// It also serves as the "current mediator systems" baseline of Section 1
// (compute the full result up front) in the lazy-vs-eager benchmarks.
#ifndef MIX_ALGEBRA_REFERENCE_H_
#define MIX_ALGEBRA_REFERENCE_H_

#include <string>
#include <vector>

#include "algebra/binding_stream.h"
#include "pathexpr/path_expr.h"
#include "xml/tree.h"

namespace mix::algebra::reference {

/// A fully materialized binding list.
struct Table {
  VarList schema;
  std::vector<std::vector<const xml::Node*>> rows;

  /// Column index of `var`; MIX_CHECKs presence.
  size_t IndexOf(const std::string& var) const;
};

/// Atomic rendering of a node (leaf label, else full term) — must agree
/// with algebra::AtomOf on equal trees.
std::string AtomOfNode(const xml::Node* n);

/// Deep copy into `doc` (detached).
xml::Node* CopyInto(xml::Document* doc, const xml::Node* n);

/// Eager operator semantics. Constructed nodes are allocated in `scratch`,
/// which must outlive every returned Table/node.
class Evaluator {
 public:
  explicit Evaluator(xml::Document* scratch);

  Table Source(const xml::Node* root, const std::string& var) const;
  Table GetDescendants(const Table& in, const std::string& parent_var,
                       const pathexpr::PathExpr& path,
                       const std::string& out_var) const;
  Table Select(const Table& in, const BindingPredicate& pred) const;
  Table Join(const Table& left, const Table& right,
             const BindingPredicate& pred) const;
  Table GroupBy(const Table& in, const VarList& group_vars,
                const std::string& grouped_var,
                const std::string& out_var) const;
  Table Concatenate(const Table& in, const std::string& x_var,
                    const std::string& y_var, const std::string& z_var) const;
  Table CreateElement(const Table& in, bool label_is_constant,
                      const std::string& label, const std::string& ch_var,
                      const std::string& out_var) const;
  Table OrderBy(const Table& in, const VarList& sort_vars) const;
  /// Occurrence-mode orderBy: cluster rows by the first occurrence of
  /// their sort-variable node identities, preserving input order within
  /// clusters.
  Table OrderByOccurrence(const Table& in, const VarList& sort_vars) const;
  Table Union(const Table& left, const Table& right) const;
  Table Difference(const Table& left, const Table& right) const;
  Table Distinct(const Table& in) const;
  Table Project(const Table& in, const VarList& vars) const;
  const xml::Node* TupleDestroy(const Table& in,
                                const std::string& var = "") const;

 private:
  bool EvalPredicateRow(const Table& table,
                        const std::vector<const xml::Node*>& row,
                        const BindingPredicate& pred) const;
  /// The list items a concatenate side contributes (paper's four cases).
  std::vector<const xml::Node*> ItemsOf(const xml::Node* value) const;

  xml::Document* scratch_;
};

}  // namespace mix::algebra::reference

#endif  // MIX_ALGEBRA_REFERENCE_H_
