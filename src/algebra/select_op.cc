#include "algebra/select_op.h"

namespace mix::algebra {

namespace {
const Atom kSelBTag = Atom::Intern("sel_b");
}  // namespace

SelectOp::SelectOp(BindingStream* input, BindingPredicate predicate)
    : input_(input), predicate_(std::move(predicate)) {
  MIX_CHECK(input_ != nullptr);
}

NodeId SelectOp::Unwrap(const NodeId& b) const {
  CheckOwn(b, kSelBTag);
  return b.IdAt(1);
}

std::optional<NodeId> SelectOp::Scan(std::optional<NodeId> ib) {
  while (ib.has_value()) {
    if (predicate_.Eval(input_, *ib)) {
      return NodeId(kSelBTag, instance_, *ib);
    }
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

std::optional<NodeId> SelectOp::FirstBinding() {
  return Scan(input_->FirstBinding());
}

std::optional<NodeId> SelectOp::NextBinding(const NodeId& b) {
  return Scan(input_->NextBinding(Unwrap(b)));
}

ValueRef SelectOp::Attr(const NodeId& b, const std::string& var) {
  return input_->Attr(Unwrap(b), var);
}

}  // namespace mix::algebra
