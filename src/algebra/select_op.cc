#include "algebra/select_op.h"

namespace mix::algebra {

namespace {
const Atom kSelBTag = Atom::Intern("sel_b");
}  // namespace

SelectOp::SelectOp(BindingStream* input, BindingPredicate predicate)
    : input_(input), predicate_(std::move(predicate)) {
  MIX_CHECK(input_ != nullptr);
}

NodeId SelectOp::Unwrap(const NodeId& b) const {
  CheckOwn(b, kSelBTag);
  return b.IdAt(1);
}

std::optional<NodeId> SelectOp::Scan(std::optional<NodeId> ib) {
  while (ib.has_value()) {
    if (predicate_.Eval(input_, *ib)) {
      return NodeId(kSelBTag, instance_, *ib);
    }
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

std::optional<NodeId> SelectOp::FirstBinding() {
  return Scan(input_->FirstBinding());
}

std::optional<NodeId> SelectOp::NextBinding(const NodeId& b) {
  return Scan(input_->NextBinding(Unwrap(b)));
}

ValueRef SelectOp::Attr(const NodeId& b, const std::string& var) {
  return input_->Attr(Unwrap(b), var);
}

void SelectOp::NextBindings(const NodeId& after, int64_t limit,
                            std::vector<NodeId>* out) {
  if (limit == 0) return;
  // Pull chunks of exactly `limit - taken` inputs: every emitted output
  // consumes at least one input, so a node-at-a-time scan for the same
  // prefix would have consumed at least as many input bindings.
  constexpr int64_t kUnboundedChunk = 64;
  NodeId cursor = after.valid() ? Unwrap(after) : NodeId();
  int64_t taken = 0;
  std::vector<NodeId> batch;
  for (;;) {
    int64_t want = limit < 0 ? kUnboundedChunk : limit - taken;
    batch.clear();
    input_->NextBindings(cursor, want, &batch);
    if (batch.empty()) return;
    for (const NodeId& ib : batch) {
      if (predicate_.Eval(input_, ib)) {
        out->push_back(NodeId(kSelBTag, instance_, ib));
        if (limit >= 0 && ++taken >= limit) return;
      }
    }
    cursor = batch.back();
  }
}

}  // namespace mix::algebra
