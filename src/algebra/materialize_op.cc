#include "algebra/materialize_op.h"

namespace mix::algebra {

namespace {
const Atom kMzBTag = Atom::Intern("mz_b");
}  // namespace

MaterializeOp::MaterializeOp(BindingStream* input) : input_(input) {
  MIX_CHECK(input_ != nullptr);
}

void MaterializeOp::Ensure() {
  if (materialized_) return;
  materialized_ = true;
  input_->NextBindings(NodeId(), -1, &bindings_);
}

void MaterializeOp::NextBindings(const NodeId& after, int64_t limit,
                                 std::vector<NodeId>* out) {
  if (limit == 0) return;
  Ensure();
  int64_t from = 0;
  if (after.valid()) {
    CheckOwn(after, kMzBTag);
    from = after.IntAt(1) + 1;
  }
  int64_t end = static_cast<int64_t>(bindings_.size());
  if (limit >= 0 && from + limit < end) end = from + limit;
  for (int64_t i = from; i < end; ++i) {
    out->push_back(NodeId(kMzBTag, instance_, i));
  }
}

std::optional<NodeId> MaterializeOp::FirstBinding() {
  Ensure();
  if (bindings_.empty()) return std::nullopt;
  return NodeId(kMzBTag, instance_, int64_t{0});
}

std::optional<NodeId> MaterializeOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kMzBTag);
  Ensure();
  int64_t next = b.IntAt(1) + 1;
  if (next >= static_cast<int64_t>(bindings_.size())) return std::nullopt;
  return NodeId(kMzBTag, instance_, next);
}

ValueRef MaterializeOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kMzBTag);
  Ensure();
  int64_t i = b.IntAt(1);
  MIX_CHECK(i >= 0 && i < static_cast<int64_t>(bindings_.size()));
  return input_->Attr(bindings_[static_cast<size_t>(i)], var);
}

}  // namespace mix::algebra
