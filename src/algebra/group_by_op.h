// groupBy_{v1..vk, v -> l} (paper Section 3, Fig. 10, Example 8).
//
// Groups the bindings of v by the bindings of the group-by variables
// v1..vk. For each group (in order of first occurrence) one output binding
// b[v1[..], .., vk[..], l[list[coll]]] is produced, where coll lists the
// group's v values in input order. Grouping is by *node identity* of the
// group-by values (footnote 7: the binding structure "preserves node
// identities which are needed when grouping elements").
//
// Lazy-mediator implementation follows Fig. 10 exactly:
//   * output binding ids are <b, pg, Gprev>: pg is the first input binding
//     of the group; Gprev the set of group-by keys seen before it. Since
//     "the list of previously seen group-by lists Gprev only grows", it is
//     stored operator-side and referenced by handle from the node-id —
//     the paper's "stores the list in the buffer and uses a reference ...
//     in the node-ids". Gprev is kept as a persistent chain so snapshots
//     share structure.
//   * NextBinding runs next_gb(pg): scan input for the first binding whose
//     key is not in Gprev ∪ {key(pg)}.
//   * navigating right among grouped values runs next(pb, pg): scan input
//     after pb for the next binding with key(pg).
//
// Fig. 10's closing optimization is implemented behind
// Options::cache_input (default on): "the groupBy operator also stores the
// grouped-by values ... and stores the associated lists" — the operator
// memoizes the input enumeration (binding ids + keys) as its scans pass
// over it, so the next_gb/next scans of later groups replay from the cache
// instead of re-driving the input operator (which, above a join, would
// re-advance the join). cache_input=false keeps the cache-less behavior
// for ablation benchmarks.
//
// Special case: groupBy with *no* group-by variables (the `{}` of answer
// construction) produces exactly one output binding even on empty input,
// carrying an empty list — "create one answer element (= for each {})".
#ifndef MIX_ALGEBRA_GROUP_BY_OP_H_
#define MIX_ALGEBRA_GROUP_BY_OP_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "algebra/operator_base.h"

namespace mix::algebra {

class GroupByOp : public ConstructingOperatorBase {
 public:
  struct Options {
    /// Memoize the input enumeration + keys (Fig. 10's list caching).
    bool cache_input = true;
  };

  /// `input` is not owned and must outlive the operator.
  GroupByOp(BindingStream* input, VarList group_vars, std::string grouped_var,
            std::string out_var, Options options);
  GroupByOp(BindingStream* input, VarList group_vars, std::string grouped_var,
            std::string out_var)
      : GroupByOp(input, std::move(group_vars), std::move(grouped_var),
                  std::move(out_var), Options()) {}

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

  // Value-space navigation for the synthesized list nodes & grouped items.
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

  /// Vectored navigation: a batch on the synthesized list enumerates the
  /// whole group in one next-in-group scan, without per-item memo traffic.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

  /// Input bindings enumerated (and memoized) so far — observability for
  /// the cache-ablation benchmarks.
  int64_t input_enumerated() const {
    return static_cast<int64_t>(seq_.size());
  }

 private:
  /// Group key: the group-by values' node identities.
  using Key = std::vector<NodeId>;
  /// Persistent set of previously seen keys (Fig. 10's Gprev).
  struct PrevNode {
    Key key;
    std::shared_ptr<const PrevNode> parent;
  };
  using PrevSet = std::shared_ptr<const PrevNode>;

  struct GroupState {
    NodeId pg;     ///< first input binding of the group.
    PrevSet prev;  ///< keys of all earlier groups.
  };

  /// One memoized input binding.
  struct SeqEntry {
    NodeId ib;
    Key key;
  };

  Key KeyOf(const NodeId& ib);
  static bool KeyEquals(const Key& a, const Key& b);
  static bool PrevContains(const PrevSet& set, const Key& key);

  /// next_gb: first input binding at/after `ib` whose key is not in `prev`.
  std::optional<NodeId> NextGroupLeader(std::optional<NodeId> ib,
                                        const PrevSet& prev);
  /// next(pb, pg): next input binding after `pb` in pg's group.
  std::optional<NodeId> NextInGroup(const NodeId& pb, const NodeId& pg);

  // --- input enumeration cache (Options::cache_input) ---
  /// Index of `ib` in the memoized sequence; extends the sequence until
  /// found. Only called with ids that were produced by this operator's own
  /// forward scans, so the entry exists or is the next to be appended.
  size_t SeqIndexOf(const NodeId& ib);
  /// Entry at `i`, extending on demand; nullptr past the end of input.
  const SeqEntry* SeqAt(size_t i);

  NodeId StoreState(GroupState state);
  const GroupState& StateOf(int64_t handle) const;

  BindingStream* input_;
  VarList group_vars_;
  std::string grouped_var_;
  std::string out_var_;
  Options options_;
  VarList schema_;

  std::deque<GroupState> states_;

  std::vector<SeqEntry> seq_;
  std::unordered_map<NodeId, size_t, NodeIdHash> seq_index_;
  bool seq_complete_ = false;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_GROUP_BY_OP_H_
