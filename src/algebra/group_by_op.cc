#include "algebra/group_by_op.h"

#include <algorithm>
#include <unordered_map>

namespace mix::algebra {

namespace {
/// Sentinel handle for the empty-group binding of a no-group-vars groupBy
/// over empty input.
constexpr int64_t kEmptyGroupHandle = -1;

const Atom kGbBTag = Atom::Intern("gb_b");
const Atom kGbListTag = Atom::Intern("gb_list");
const Atom kGbItemTag = Atom::Intern("gb_item");
const Atom kGbListLabel = Atom::Intern(kListLabel);
}  // namespace

GroupByOp::GroupByOp(BindingStream* input, VarList group_vars,
                     std::string grouped_var, std::string out_var,
                     Options options)
    : input_(input),
      group_vars_(std::move(group_vars)),
      grouped_var_(std::move(grouped_var)),
      out_var_(std::move(out_var)),
      options_(options) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  for (const std::string& v : group_vars_) {
    MIX_CHECK_MSG(std::find(in.begin(), in.end(), v) != in.end(),
                  "group-by variable not bound by input");
    schema_.push_back(v);
  }
  MIX_CHECK_MSG(std::find(in.begin(), in.end(), grouped_var_) != in.end(),
                "grouped variable not bound by input");
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "groupBy output variable collides with a group-by variable");
  schema_.push_back(out_var_);
  // cache_input=false is the cache-less ablation; it must stay cache-less,
  // so the navigation memo follows the same switch.
  if (options_.cache_input) EnableNavMemo();
}

GroupByOp::Key GroupByOp::KeyOf(const NodeId& ib) {
  Key key;
  key.reserve(group_vars_.size());
  for (const std::string& v : group_vars_) {
    key.push_back(input_->Attr(ib, v).id);
  }
  return key;
}

bool GroupByOp::KeyEquals(const Key& a, const Key& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool GroupByOp::PrevContains(const PrevSet& set, const Key& key) {
  for (const PrevNode* n = set.get(); n != nullptr; n = n->parent.get()) {
    if (KeyEquals(n->key, key)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Input enumeration cache (Fig. 10's list-caching optimization).
// ---------------------------------------------------------------------------

const GroupByOp::SeqEntry* GroupByOp::SeqAt(size_t i) {
  while (seq_.size() <= i && !seq_complete_) {
    std::optional<NodeId> next = seq_.empty()
                                     ? input_->FirstBinding()
                                     : input_->NextBinding(seq_.back().ib);
    if (!next.has_value()) {
      seq_complete_ = true;
      break;
    }
    seq_index_[*next] = seq_.size();
    seq_.push_back(SeqEntry{*next, KeyOf(*next)});
  }
  if (i >= seq_.size()) return nullptr;
  return &seq_[i];
}

size_t GroupByOp::SeqIndexOf(const NodeId& ib) {
  // Ids handed around by this operator come from its own forward scans, so
  // they are either memoized already or about to be appended.
  for (;;) {
    auto it = seq_index_.find(ib);
    if (it != seq_index_.end()) return it->second;
    const SeqEntry* entry = SeqAt(seq_.size());
    MIX_CHECK_MSG(entry != nullptr, "binding id not part of the input stream");
  }
}

// ---------------------------------------------------------------------------
// The Fig. 10 scans, with and without the enumeration cache.
// ---------------------------------------------------------------------------

std::optional<NodeId> GroupByOp::NextGroupLeader(std::optional<NodeId> ib,
                                                 const PrevSet& prev) {
  if (!ib.has_value()) return std::nullopt;
  if (options_.cache_input) {
    for (size_t i = SeqIndexOf(*ib);; ++i) {
      const SeqEntry* entry = SeqAt(i);
      if (entry == nullptr) return std::nullopt;
      if (!PrevContains(prev, entry->key)) return entry->ib;
    }
  }
  while (ib.has_value()) {
    if (!PrevContains(prev, KeyOf(*ib))) return ib;
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

std::optional<NodeId> GroupByOp::NextInGroup(const NodeId& pb,
                                             const NodeId& pg) {
  if (options_.cache_input) {
    const Key group_key = seq_[SeqIndexOf(pg)].key;
    for (size_t i = SeqIndexOf(pb) + 1;; ++i) {
      const SeqEntry* entry = SeqAt(i);
      if (entry == nullptr) return std::nullopt;
      if (KeyEquals(entry->key, group_key)) return entry->ib;
    }
  }
  Key group_key = KeyOf(pg);
  std::optional<NodeId> ib = input_->NextBinding(pb);
  while (ib.has_value()) {
    if (KeyEquals(KeyOf(*ib), group_key)) return ib;
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

NodeId GroupByOp::StoreState(GroupState state) {
  states_.push_back(std::move(state));
  return NodeId(kGbBTag, instance_, static_cast<int64_t>(states_.size() - 1));
}

const GroupByOp::GroupState& GroupByOp::StateOf(int64_t handle) const {
  MIX_CHECK(handle >= 0 && handle < static_cast<int64_t>(states_.size()));
  return states_[static_cast<size_t>(handle)];
}

std::optional<NodeId> GroupByOp::FirstBinding() {
  std::optional<NodeId> first =
      options_.cache_input
          ? (SeqAt(0) != nullptr ? std::optional<NodeId>(seq_[0].ib)
                                 : std::nullopt)
          : input_->FirstBinding();
  if (!first.has_value()) {
    if (group_vars_.empty()) {
      // "create one answer element (= for each {})": one group, empty list.
      return NodeId(kGbBTag, instance_, kEmptyGroupHandle);
    }
    return std::nullopt;
  }
  NodeId leader = StoreState(GroupState{*first, nullptr});
  memo_.SetFrontier(NavMemo::Command::kNextBinding, leader);
  return leader;
}

std::optional<NodeId> GroupByOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kGbBTag);
  int64_t handle = b.IntAt(1);
  if (handle == kEmptyGroupHandle) return std::nullopt;
  // Memoized for revisits: the next_gb scan from a given group leader is
  // deterministic, so revisits (second materialization pass, sibling
  // re-walks) become pure lookups instead of re-driving the input stream.
  // The forward scan bypasses the memo via the frontier.
  const bool frontier = memo_.IsFrontier(NavMemo::Command::kNextBinding, b);
  if (!frontier) {
    if (const auto* hit = memo_.Lookup(NavMemo::Command::kNextBinding, b)) {
      return *hit;
    }
  }
  const GroupState& state = StateOf(handle);
  auto new_prev =
      std::make_shared<PrevNode>(PrevNode{KeyOf(state.pg), state.prev});
  std::optional<NodeId> after = options_.cache_input
                                    ? [&]() -> std::optional<NodeId> {
    const SeqEntry* entry = SeqAt(SeqIndexOf(state.pg) + 1);
    return entry == nullptr ? std::nullopt
                            : std::optional<NodeId>(entry->ib);
  }()
                                    : input_->NextBinding(state.pg);
  std::optional<NodeId> leader = NextGroupLeader(after, new_prev);
  std::optional<NodeId> next;
  if (leader.has_value()) {
    next = StoreState(GroupState{*leader, std::move(new_prev)});
  }
  if (frontier) {
    memo_.SetFrontier(NavMemo::Command::kNextBinding, next);
  } else {
    memo_.Insert(NavMemo::Command::kNextBinding, b, next);
  }
  return next;
}

ValueRef GroupByOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kGbBTag);
  int64_t handle = b.IntAt(1);
  if (var == out_var_) {
    return ValueRef{this, NodeId(kGbListTag, instance_, handle)};
  }
  MIX_CHECK_MSG(handle != kEmptyGroupHandle,
                "empty-group binding has only the list variable");
  MIX_CHECK_MSG(std::find(group_vars_.begin(), group_vars_.end(), var) !=
                    group_vars_.end(),
                "unknown variable requested from groupBy");
  return input_->Attr(StateOf(handle).pg, var);
}

std::optional<NodeId> GroupByOp::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  if (p.tag_atom() == kGbListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    int64_t handle = p.IntAt(1);
    if (handle == kEmptyGroupHandle) return std::nullopt;
    const GroupState& state = StateOf(handle);
    // First grouped value: the group leader's own v value.
    NodeId first(kGbItemTag, instance_, handle, state.pg);
    memo_.SetFrontier(NavMemo::Command::kRight, first);
    return first;
  }
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  ValueRef value = input_->Attr(p.IdAt(2), grouped_var_);
  std::optional<NodeId> child = value.nav->Down(value.id);
  if (!child.has_value()) return std::nullopt;
  return space_.Wrap(ValueRef{value.nav, *child});
}

std::optional<NodeId> GroupByOp::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  if (p.tag_atom() == kGbListTag) {
    // A synthesized list is a value root; it has no siblings of its own.
    return std::nullopt;
  }
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  // Memoized for revisits: r over grouped items replays the (deterministic)
  // next-in-group scan; a re-walk of the same group's list never
  // re-navigates. The first walk bypasses the memo via the frontier.
  const bool frontier = memo_.IsFrontier(NavMemo::Command::kRight, p);
  if (!frontier) {
    if (const auto* hit = memo_.Lookup(NavMemo::Command::kRight, p)) {
      return *hit;
    }
  }
  int64_t handle = p.IntAt(1);
  const GroupState& state = StateOf(handle);
  std::optional<NodeId> next = NextInGroup(p.IdAt(2), state.pg);
  std::optional<NodeId> result;
  if (next.has_value()) {
    result = NodeId(kGbItemTag, instance_, handle, *next);
  }
  if (frontier) {
    memo_.SetFrontier(NavMemo::Command::kRight, result);
  } else {
    memo_.Insert(NavMemo::Command::kRight, p, result);
  }
  return result;
}

Label GroupByOp::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  if (p.tag_atom() == kGbListTag) return kListLabel;
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  ValueRef value = input_->Attr(p.IdAt(2), grouped_var_);
  return value.nav->Fetch(value.id);
}

void GroupByOp::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.DownAll(p, out);
    return;
  }
  if (p.tag_atom() == kGbListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    int64_t handle = p.IntAt(1);
    if (handle == kEmptyGroupHandle) return;
    const GroupState& state = StateOf(handle);
    NodeId cur = state.pg;
    out->push_back(NodeId(kGbItemTag, instance_, handle, cur));
    for (std::optional<NodeId> next = NextInGroup(cur, state.pg);
         next.has_value(); next = NextInGroup(cur, state.pg)) {
      cur = *next;
      out->push_back(NodeId(kGbItemTag, instance_, handle, cur));
    }
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  ValueRef value = input_->Attr(p.IdAt(2), grouped_var_);
  const size_t before = out->size();
  value.nav->DownAll(value.id, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = space_.Wrap(ValueRef{value.nav, (*out)[i]});
  }
}

void GroupByOp::NextSiblings(const NodeId& p, int64_t limit,
                             std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.NextSiblings(p, limit, out);
    return;
  }
  if (p.tag_atom() == kGbListTag) return;  // value root: no siblings
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  if (limit == 0) return;
  int64_t handle = p.IntAt(1);
  const GroupState& state = StateOf(handle);
  NodeId cur = p.IdAt(2);
  int64_t taken = 0;
  for (std::optional<NodeId> next = NextInGroup(cur, state.pg);
       next.has_value(); next = NextInGroup(cur, state.pg)) {
    cur = *next;
    out->push_back(NodeId(kGbItemTag, instance_, handle, cur));
    if (limit >= 0 && ++taken >= limit) return;
  }
}

void GroupByOp::FetchSubtree(const NodeId& p, int64_t depth,
                             std::vector<SubtreeEntry>* out) {
  if (space_.Owns(p)) {
    space_.FetchSubtree(p, depth, out);
    return;
  }
  if (p.tag_atom() == kGbListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    int64_t handle = p.IntAt(1);
    const bool has_items = handle != kEmptyGroupHandle;
    if (depth == 0) {
      out->push_back(SubtreeEntry{kGbListLabel, 0, has_items,
                                  has_items ? p : NodeId()});
      return;
    }
    out->push_back(SubtreeEntry{kGbListLabel, 0, false, NodeId()});
    if (!has_items) return;
    std::vector<NodeId> items;
    DownAll(p, &items);
    for (const NodeId& item : items) {
      const size_t from = out->size();
      FetchSubtree(item, depth < 0 ? -1 : depth - 1, out);
      ShiftSubtreeDepths(out, from, 1);
    }
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kGbItemTag,
                "foreign value id passed to groupBy");
  MIX_CHECK(p.IntAt(0) == instance_);
  // A grouped item is an alias of the underlying value: same label, same
  // children. Forward the whole fetch, rewrapping only truncated resume ids.
  ValueRef value = input_->Attr(p.IdAt(2), grouped_var_);
  const size_t from = out->size();
  value.nav->FetchSubtree(value.id, depth, out);
  for (size_t i = from; i < out->size(); ++i) {
    SubtreeEntry& e = (*out)[i];
    if (e.truncated) e.id = space_.Wrap(ValueRef{value.nav, e.id});
  }
}

}  // namespace mix::algebra
