// concatenate_{x,y -> z} (paper Section 3).
//
// For each input binding, z is bound to a synthesized list node whose
// items are: the elements of b.x if b.x is a list, else b.x itself,
// followed by the elements of b.y if b.y is a list, else b.y itself —
// the four cases of the paper's definition.
//
// Lazy-mediator behavior: the list node is virtual. Down enters the first
// item of the x side (falling through to y when x is an empty list);
// Right within a list side follows the underlying siblings; crossing from
// the last x item to the first y item is where the two inputs are stitched
// together. Interior navigation is pure pass-through (ValueSpace).
#ifndef MIX_ALGEBRA_CONCATENATE_OP_H_
#define MIX_ALGEBRA_CONCATENATE_OP_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class ConcatenateOp : public ConstructingOperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  ConcatenateOp(BindingStream* input, std::string x_var, std::string y_var,
                std::string out_var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

  /// Vectored navigation: a batch on the stitched list fans out to one
  /// batch per underlying side, crossing from x to y inside the same call.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  /// First item of side 0 (x) / 1 (y), or nullopt if that side is an empty
  /// list. The item id is cc_item(instance, b, side, fw) with fw the
  /// wrapped underlying node.
  std::optional<NodeId> FirstItemOfSide(const NodeId& b, int side);
  const std::string& VarOfSide(int side) const;

  BindingStream* input_;
  std::string x_var_;
  std::string y_var_;
  std::string out_var_;
  VarList schema_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_CONCATENATE_OP_H_
