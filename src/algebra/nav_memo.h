// Selective operator-local navigation caching (paper Section 3, Figs. 9/10).
//
// The paper prescribes that "some of the operators use caching of parts of
// the input they have already seen" — selectively, on the operators where a
// repeated navigation re-drives an expensive scan of the inputs
// (getDescendants resumes a DFS, join re-scans the inner stream, groupBy
// re-runs the next_gb/next scans). `NavMemo` is that cache: a bounded map
// from (navigation command, node-id) to the command's result, owned by one
// operator instance.
//
// Safety: node-ids are immutable Skolem terms and every operator is a
// deterministic function of its (immutable) input streams, so a memoized
// (command, id) -> result entry can never go stale. Caching only ever
// *removes* source navigations — the NavStats regression test in
// tests/nav_memo_test.cc pins this down.
//
// Representation: a direct-mapped slot array (capacity rounded up to a power
// of two), evict-on-collision. Operators sit on the navigation hot path and
// iterate forward far more often than clients revisit, so the memo must cost
// almost nothing when it never hits: a direct-mapped probe is one hash and
// one compare, and an insert overwrites a slot in place — no allocation, no
// rebalancing, no eviction bookkeeping. A collision simply forgets the older
// entry (the next revisit recomputes it), which bounds memory at `capacity`
// entries regardless of how long a client browses.
#ifndef MIX_ALGEBRA_NAV_MEMO_H_
#define MIX_ALGEBRA_NAV_MEMO_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/node_id.h"

namespace mix::algebra {

/// Process-wide default capacity for newly constructed expensive operators
/// (getDescendants, join, groupBy). 0 disables memoization — used by
/// ablation benchmarks and the NavStats regression test.
size_t DefaultNavMemoCapacity();
void SetDefaultNavMemoCapacity(size_t capacity);

class NavMemo {
 public:
  /// Which navigation command a memo entry answers.
  enum class Command : uint8_t {
    kNextBinding,
    kDown,
    kRight,
  };

  /// `capacity` == 0 disables the memo (Lookup always misses, Insert is a
  /// no-op). The slot array starts tiny and grows geometrically up to
  /// `capacity`, so short-lived operators never pay for a full-size table.
  explicit NavMemo(size_t capacity = 0) : capacity_(SlotCount(capacity)) {}

  bool enabled() const { return capacity_ != 0; }

  /// Forward-scan fast path. Operators iterate forward (NextBinding on the
  /// binding they just issued) far more often than clients revisit old
  /// bindings; memoizing that frontier step is pure overhead because each
  /// key is seen exactly once. `IsFrontier` tells the operator "this is the
  /// forward scan" so it can skip Lookup/Insert and just advance the
  /// frontier. The frontier is a *raw* rep pointer, compared but never
  /// dereferenced: a stale pointer can at worst misclassify one step
  /// (changing what gets cached, never what is returned).
  bool IsFrontier(Command cmd, const NodeId& key) const {
    return enabled() && frontier_[Index(cmd)] == key.rep_identity();
  }
  void SetFrontier(Command cmd, const std::optional<NodeId>& next) {
    frontier_[Index(cmd)] =
        next.has_value() ? next->rep_identity() : nullptr;
  }

  /// Returns the memoized result for (cmd, key), or nullptr on a miss.
  /// The pointer is valid until the next Insert.
  const std::optional<NodeId>* Lookup(Command cmd, const NodeId& key) {
    if (slots_.empty()) {
      if (enabled()) ++misses_;
      return nullptr;
    }
    const Entry& e = slots_[SlotOf(cmd, key)];
    if (e.used && e.cmd == cmd && e.key == key) {
      ++hits_;
      return &e.value;
    }
    ++misses_;
    return nullptr;
  }

  void Insert(Command cmd, const NodeId& key, std::optional<NodeId> value) {
    if (!enabled()) return;
    if (slots_.empty() || (size_ * 2 >= slots_.size() &&
                           slots_.size() < capacity_)) {
      Grow();
    }
    Entry& e = slots_[SlotOf(cmd, key)];
    if (!e.used) {
      e.used = true;
      ++size_;
    }
    e.cmd = cmd;
    e.key = key;
    e.value = std::move(value);
  }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  /// Number of occupied slots.
  size_t size() const { return size_; }

 private:
  struct Entry {
    bool used = false;
    Command cmd = Command::kNextBinding;
    NodeId key;
    std::optional<NodeId> value;
  };

  /// Rounds `capacity` up to a power of two; 0 stays 0 (disabled).
  static size_t SlotCount(size_t capacity) {
    if (capacity == 0) return 0;
    size_t n = 1;
    while (n < capacity) n <<= 1;
    return n;
  }

  static size_t Index(Command cmd) { return static_cast<size_t>(cmd); }

  size_t SlotOf(Command cmd, const NodeId& key) const {
    size_t h = key.Hash() + static_cast<size_t>(cmd) * 0x9e3779b97f4a7c15ULL;
    return (h ^ (h >> 29)) & (slots_.size() - 1);
  }

  /// Doubles the slot array (first growth: 16 slots), re-slotting occupied
  /// entries. A collision during re-slotting keeps the later entry — this
  /// is a cache, dropping an entry is always safe.
  void Grow() {
    size_t next = slots_.empty() ? 16 : slots_.size() * 2;
    if (next > capacity_) next = capacity_;
    if (next == slots_.size()) return;
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(next, Entry{});
    size_ = 0;
    for (Entry& e : old) {
      if (!e.used) continue;
      Entry& dst = slots_[SlotOf(e.cmd, e.key)];
      if (!dst.used) ++size_;
      dst = std::move(e);
      dst.used = true;
    }
  }

  /// Slot-count ceiling (power of two); 0 when disabled.
  size_t capacity_;
  std::vector<Entry> slots_;
  size_t size_ = 0;
  /// Per-command raw rep pointer of the most recently issued result;
  /// compare-only (see IsFrontier).
  const void* frontier_[3] = {nullptr, nullptr, nullptr};
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_NAV_MEMO_H_
