// materialize: an intermediate eager step (paper Section 6).
//
// The paper's optimization outlook: "The resulting strategy will be a
// combination of lazy demand-driven evaluation and intermediate eager
// steps." This operator is that building block: on first access it drains
// its input binding stream completely and replays the memoized bindings.
// Semantically the identity; navigationally it converts an input whose
// NextBinding cost is unbounded (e.g. the output of a selective join) into
// a bounded-browsable stream — at the price of one eager evaluation.
//
// Values still pass through by reference: only binding *ids* are
// memoized, not subtree contents, so the eager step does not copy data.
#ifndef MIX_ALGEBRA_MATERIALIZE_OP_H_
#define MIX_ALGEBRA_MATERIALIZE_OP_H_

#include <vector>

#include "algebra/operator_base.h"

namespace mix::algebra {

class MaterializeOp : public OperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  explicit MaterializeOp(BindingStream* input);

  const VarList& schema() const override { return input_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  /// After the eager drain (itself one batched input pull), batched
  /// iteration is a plain index-range emit.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

  /// Whether the eager drain has run (observability for tests/benches).
  bool materialized() const { return materialized_; }
  int64_t binding_count() const {
    return static_cast<int64_t>(bindings_.size());
  }

 private:
  void Ensure();

  BindingStream* input_;
  bool materialized_ = false;
  std::vector<NodeId> bindings_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_MATERIALIZE_OP_H_
