#include "algebra/join_op.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace mix::algebra {

namespace {
const Atom kJnBTag = Atom::Intern("jn_b");

bool Contains(const VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// Hash key under which CompareAtoms-equal atoms collide: numerics are
/// canonicalized (so "2.5" and "2.50" index identically, matching the
/// numeric-aware equality of the nested-loops path).
std::string NormalizeAtomKey(const std::string& atom) {
  if (atom.empty()) return atom;
  char* end = nullptr;
  double value = std::strtod(atom.c_str(), &end);
  if (end != atom.c_str() + atom.size()) return atom;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "#num:%.17g", value);
  return buf;
}
}  // namespace

JoinOp::JoinOp(BindingStream* left, BindingStream* right,
               BindingPredicate predicate, Options options)
    : left_(left),
      right_(right),
      predicate_(std::move(predicate)),
      options_(options) {
  MIX_CHECK(left_ != nullptr && right_ != nullptr);
  MIX_CHECK_MSG(predicate_.is_var_var(),
                "join predicate must compare two variables");
  schema_ = left_->schema();
  for (const std::string& v : right_->schema()) {
    MIX_CHECK_MSG(!Contains(schema_, v), "join input schemas must be disjoint");
    schema_.push_back(v);
  }
  // Indexing needs the memoized inner cache.
  if (options_.index_inner) options_.cache_inner = true;
  left_has_left_var_ = Contains(left_->schema(), predicate_.left_var());
  const std::string& lv =
      left_has_left_var_ ? predicate_.left_var() : predicate_.right_var();
  const std::string& rv =
      left_has_left_var_ ? predicate_.right_var() : predicate_.left_var();
  MIX_CHECK_MSG(Contains(left_->schema(), lv) && Contains(right_->schema(), rv),
                "join predicate variables must come from both sides");
  // cache_inner=false is the cache-less ablation; the navigation memo
  // follows the same switch so ablation benches measure the uncached path.
  if (options_.cache_inner) EnableNavMemo();
}

const JoinOp::InnerEntry* JoinOp::Inner(size_t i) {
  const std::string& inner_var =
      left_has_left_var_ ? predicate_.right_var() : predicate_.left_var();
  if (!options_.cache_inner) {
    // Ablation mode: no memoization — every access re-derives the inner
    // binding and re-fetches its join attribute from the source. Accesses
    // are overwhelmingly sequential (Scan iterates ri upward), so keep a
    // one-entry position cursor; a backward jump restarts the stream, as a
    // cache-less mediator would.
    if (!scratch_valid_ || scratch_index_ > i) {
      scratch_index_ = 0;
      std::optional<NodeId> rb = right_->FirstBinding();
      if (!rb.has_value()) return nullptr;
      scratch_rb_ = *rb;
      scratch_valid_ = true;
    }
    while (scratch_index_ < i) {
      std::optional<NodeId> rb = right_->NextBinding(scratch_rb_);
      if (!rb.has_value()) {
        scratch_valid_ = false;
        return nullptr;
      }
      scratch_rb_ = *rb;
      ++scratch_index_;
    }
    scratch_ = InnerEntry{scratch_rb_,
                          AtomOf(right_->Attr(scratch_rb_, inner_var))};
    return &scratch_;
  }
  while (inner_cache_.size() <= i && !inner_exhausted_) {
    std::optional<NodeId> rb =
        inner_cache_.empty()
            ? right_->FirstBinding()
            : right_->NextBinding(inner_cache_.back().rb);
    if (!rb.has_value()) {
      inner_exhausted_ = true;
      break;
    }
    inner_cache_.push_back({*rb, AtomOf(right_->Attr(*rb, inner_var))});
  }
  if (i >= inner_cache_.size()) return nullptr;
  return &inner_cache_[i];
}

void JoinOp::DrainInner() {
  if (inner_exhausted_) return;
  const std::string& inner_var =
      left_has_left_var_ ? predicate_.right_var() : predicate_.left_var();
  std::vector<NodeId> rbs;
  right_->NextBindings(
      inner_cache_.empty() ? NodeId() : inner_cache_.back().rb, -1, &rbs);
  inner_cache_.reserve(inner_cache_.size() + rbs.size());
  for (const NodeId& rb : rbs) {
    inner_cache_.push_back({rb, AtomOf(right_->Attr(rb, inner_var))});
  }
  inner_exhausted_ = true;
}

void JoinOp::EnsureIndex() {
  if (index_built_) return;
  index_built_ = true;
  // Eager step: drain the inner stream completely (one batched pull)...
  DrainInner();
  // ...and index it by atom. Positions are appended in ascending order.
  for (size_t i = 0; i < inner_cache_.size(); ++i) {
    inner_index_[NormalizeAtomKey(inner_cache_[i].atom)].push_back(i);
  }
}

std::optional<size_t> JoinOp::IndexProbe(const std::string& atom,
                                         size_t from) const {
  auto it = inner_index_.find(NormalizeAtomKey(atom));
  if (it == inner_index_.end()) return std::nullopt;
  const std::vector<size_t>& positions = it->second;
  auto pos = std::lower_bound(positions.begin(), positions.end(), from);
  if (pos == positions.end()) return std::nullopt;
  return *pos;
}

std::optional<NodeId> JoinOp::Scan(std::optional<NodeId> lb, size_t ri) {
  const std::string& outer_var =
      left_has_left_var_ ? predicate_.left_var() : predicate_.right_var();

  // Hash-indexed probing (equality predicates only).
  if (options_.index_inner && predicate_.op() == CompareOp::kEq) {
    EnsureIndex();
    while (lb.has_value()) {
      std::string left_atom = AtomOf(left_->Attr(*lb, outer_var));
      std::optional<size_t> hit = IndexProbe(left_atom, ri);
      if (hit.has_value()) {
        return NodeId(kJnBTag, instance_, *lb, static_cast<int64_t>(*hit));
      }
      lb = left_->NextBinding(*lb);
      ri = 0;
    }
    return std::nullopt;
  }

  while (lb.has_value()) {
    std::string left_atom = AtomOf(left_->Attr(*lb, outer_var));
    for (const InnerEntry* entry = Inner(ri); entry != nullptr;
         entry = Inner(++ri)) {
      // Predicate orientation: left_var op right_var.
      int cmp = left_has_left_var_ ? CompareAtoms(left_atom, entry->atom)
                                   : CompareAtoms(entry->atom, left_atom);
      if (ApplyCompare(predicate_.op(), cmp)) {
        return NodeId(kJnBTag, instance_, *lb, static_cast<int64_t>(ri));
      }
    }
    lb = left_->NextBinding(*lb);
    ri = 0;
  }
  return std::nullopt;
}

std::optional<NodeId> JoinOp::FirstBinding() {
  std::optional<NodeId> first = Scan(left_->FirstBinding(), 0);
  memo_.SetFrontier(NavMemo::Command::kNextBinding, first);
  return first;
}

std::optional<NodeId> JoinOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kJnBTag);
  // Memoized for revisits: repeated NextBinding from the same output binding
  // (clients re-walking materialized structure) skips the outer/inner
  // re-scan. The forward scan bypasses the memo via the frontier.
  const bool frontier = memo_.IsFrontier(NavMemo::Command::kNextBinding, b);
  if (!frontier) {
    if (const auto* hit = memo_.Lookup(NavMemo::Command::kNextBinding, b)) {
      return *hit;
    }
  }
  NodeId lb = b.IdAt(1);
  size_t ri = static_cast<size_t>(b.IntAt(2));
  std::optional<NodeId> next = Scan(lb, ri + 1);
  if (frontier) {
    memo_.SetFrontier(NavMemo::Command::kNextBinding, next);
  } else {
    memo_.Insert(NavMemo::Command::kNextBinding, b, next);
  }
  return next;
}

void JoinOp::NextBindings(const NodeId& after, int64_t limit,
                          std::vector<NodeId>* out) {
  if (limit == 0) return;
  std::optional<NodeId> b;
  if (after.valid()) {
    CheckOwn(after, kJnBTag);
    b = Scan(after.IdAt(1), static_cast<size_t>(after.IntAt(2)) + 1);
  } else {
    b = Scan(left_->FirstBinding(), 0);
  }
  int64_t taken = 0;
  while (b.has_value()) {
    out->push_back(*b);
    if (limit >= 0 && ++taken >= limit) return;
    const NodeId& cur = out->back();
    b = Scan(cur.IdAt(1), static_cast<size_t>(cur.IntAt(2)) + 1);
  }
}

ValueRef JoinOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kJnBTag);
  if (Contains(left_->schema(), var)) {
    return left_->Attr(b.IdAt(1), var);
  }
  const InnerEntry* entry = Inner(static_cast<size_t>(b.IntAt(2)));
  MIX_CHECK_MSG(entry != nullptr, "stale inner index in join binding id");
  return right_->Attr(entry->rb, var);
}

}  // namespace mix::algebra
