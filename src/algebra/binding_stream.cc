#include "algebra/binding_stream.h"

#include <cstdlib>

#include "core/check.h"

namespace mix::algebra {

bool ValueIsList(const ValueRef& v) {
  MIX_CHECK(v.valid());
  return v.nav->Fetch(v.id) == kListLabel;
}

void BindingStream::NextBindings(const NodeId& after, int64_t limit,
                                 std::vector<NodeId>* out) {
  if (limit == 0) return;
  int64_t taken = 0;
  std::optional<NodeId> b = after.valid() ? NextBinding(after) : FirstBinding();
  while (b.has_value()) {
    out->push_back(*b);
    if (limit >= 0 && ++taken >= limit) return;
    b = NextBinding(out->back());
  }
}

namespace {

/// Serializes a pre-order SubtreeEntry range (one FetchSubtree batch)
/// into term syntax — replaces the d/r/f-per-node recursion.
void TermFromEntries(const std::vector<SubtreeEntry>& entries,
                     std::string* out) {
  int32_t depth = 0;
  bool need_comma = false;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SubtreeEntry& e = entries[i];
    while (depth > e.depth) {
      *out += ']';
      --depth;
      need_comma = true;
    }
    if (need_comma) *out += ',';
    *out += e.label.name();
    const bool has_children =
        i + 1 < entries.size() && entries[i + 1].depth > e.depth;
    if (has_children) {
      *out += '[';
      ++depth;
      need_comma = false;
    } else {
      need_comma = true;
    }
  }
  while (depth > 0) {
    *out += ']';
    --depth;
  }
}

/// Parses a full numeric literal; returns false on any trailing garbage.
bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string TermOfValue(const ValueRef& v) {
  MIX_CHECK(v.valid());
  // One vectored fetch instead of d/r/f per node: key computation and
  // deep comparison ride the same batch path as materialization.
  std::vector<SubtreeEntry> entries;
  v.nav->FetchSubtree(v.id, -1, &entries);
  std::string out;
  TermFromEntries(entries, &out);
  return out;
}

std::string AtomOf(const ValueRef& v) {
  MIX_CHECK(v.valid());
  std::optional<NodeId> child = v.nav->Down(v.id);
  if (!child.has_value()) return v.nav->Fetch(v.id);
  return TermOfValue(v);
}

int CompareAtoms(const std::string& a, const std::string& b) {
  double na = 0;
  double nb = 0;
  if (ParseNumber(a, &na) && ParseNumber(b, &nb)) {
    if (na < nb) return -1;
    if (na > nb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool ApplyCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

BindingPredicate BindingPredicate::VarVar(std::string left_var, CompareOp op,
                                          std::string right_var) {
  BindingPredicate p;
  p.left_var_ = std::move(left_var);
  p.op_ = op;
  p.right_var_ = std::move(right_var);
  return p;
}

BindingPredicate BindingPredicate::VarConst(std::string var, CompareOp op,
                                            std::string constant) {
  BindingPredicate p;
  p.left_var_ = std::move(var);
  p.op_ = op;
  p.constant_ = std::move(constant);
  return p;
}

bool BindingPredicate::Eval(BindingStream* stream, const NodeId& b) const {
  std::string left = AtomOf(stream->Attr(b, left_var_));
  std::string right =
      is_var_var() ? AtomOf(stream->Attr(b, right_var_)) : constant_;
  return ApplyCompare(op_, CompareAtoms(left, right));
}

bool BindingPredicate::EvalJoin(BindingStream* left, const NodeId& lb,
                                BindingStream* right, const NodeId& rb) const {
  MIX_CHECK_MSG(is_var_var(), "join predicate must compare two variables");
  std::string lv = AtomOf(left->Attr(lb, left_var_));
  std::string rv = AtomOf(right->Attr(rb, right_var_));
  return ApplyCompare(op_, CompareAtoms(lv, rv));
}

std::string BindingPredicate::ToString() const {
  std::string out = "$" + left_var_;
  out += CompareOpName(op_);
  if (is_var_var()) {
    out += "$" + right_var_;
  } else {
    out += "'" + constant_ + "'";
  }
  return out;
}

}  // namespace mix::algebra
