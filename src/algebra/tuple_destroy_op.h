// tupleDestroy (paper Section 3): returns the element e from the singleton
// binding list bs[b[v[e]]] — the plan root that turns the final binding
// stream into the virtual answer *document* the client navigates.
//
// Root() is lazy all the way down: obtaining the handle builds binding ids
// through the operator tree without a single source navigation, realizing
// the paper's guarantee that the mediator "returns a handle to the root
// element of the virtual XML answer document without even accessing the
// sources".
#ifndef MIX_ALGEBRA_TUPLE_DESTROY_OP_H_
#define MIX_ALGEBRA_TUPLE_DESTROY_OP_H_

#include "algebra/binding_stream.h"
#include "algebra/value_space.h"
#include "core/check.h"

namespace mix::algebra {

class TupleDestroyOp : public Navigable {
 public:
  /// `input` is not owned; it must produce exactly one binding, whose
  /// `var` value becomes the document root (MIX_CHECKed on first access).
  /// With an empty `var`, the input's single schema variable is used.
  explicit TupleDestroyOp(BindingStream* input, std::string var = "");

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

  /// Vectored navigation: a full-depth FetchSubtree on the plan root is ONE
  /// call cascading through the whole operator tree — the entire answer
  /// document arrives without minting a single pass-through id.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  /// Resolves (and caches) the root value from the input's first binding.
  const ValueRef& Resolve();
  bool IsRoot(const NodeId& p) const;

  BindingStream* input_;
  std::string var_;
  int64_t instance_;
  ValueSpace space_;
  ValueRef root_value_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_TUPLE_DESTROY_OP_H_
