#include "algebra/set_ops.h"

#include <algorithm>

namespace mix::algebra {

namespace {
const Atom kUnBTag = Atom::Intern("un_b");
const Atom kDfBTag = Atom::Intern("df_b");
const Atom kDtBTag = Atom::Intern("dt_b");
const Atom kPjBTag = Atom::Intern("pj_b");
}  // namespace

// ---------------------------------------------------------------------------
// UnionOp
// ---------------------------------------------------------------------------

UnionOp::UnionOp(BindingStream* left, BindingStream* right)
    : left_(left), right_(right) {
  MIX_CHECK(left_ != nullptr && right_ != nullptr);
  MIX_CHECK_MSG(left_->schema() == right_->schema(),
                "union inputs must have identical schemas");
}

BindingStream* UnionOp::SideOf(int64_t side) const {
  return side == 0 ? left_ : right_;
}

std::optional<NodeId> UnionOp::FirstBinding() {
  std::optional<NodeId> lb = left_->FirstBinding();
  if (lb.has_value()) return NodeId(kUnBTag, instance_, int64_t{0}, *lb);
  std::optional<NodeId> rb = right_->FirstBinding();
  if (rb.has_value()) return NodeId(kUnBTag, instance_, int64_t{1}, *rb);
  return std::nullopt;
}

std::optional<NodeId> UnionOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kUnBTag);
  int64_t side = b.IntAt(1);
  std::optional<NodeId> next = SideOf(side)->NextBinding(b.IdAt(2));
  if (next.has_value()) return NodeId(kUnBTag, instance_, side, *next);
  if (side == 0) {
    std::optional<NodeId> rb = right_->FirstBinding();
    if (rb.has_value()) return NodeId(kUnBTag, instance_, int64_t{1}, *rb);
  }
  return std::nullopt;
}

ValueRef UnionOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kUnBTag);
  return SideOf(b.IntAt(1))->Attr(b.IdAt(2), var);
}

// ---------------------------------------------------------------------------
// DifferenceOp
// ---------------------------------------------------------------------------

DifferenceOp::DifferenceOp(BindingStream* left, BindingStream* right)
    : left_(left), right_(right) {
  MIX_CHECK(left_ != nullptr && right_ != nullptr);
  MIX_CHECK_MSG(left_->schema() == right_->schema(),
                "difference inputs must have identical schemas");
}

std::string DifferenceOp::KeyOf(BindingStream* stream, const NodeId& b) const {
  std::string key;
  for (const std::string& v : left_->schema()) {
    key += TermOfValue(stream->Attr(b, v));
    key += '\x1f';
  }
  return key;
}

void DifferenceOp::EnsureRightKeys() {
  if (right_drained_) return;
  right_drained_ = true;
  for (std::optional<NodeId> rb = right_->FirstBinding(); rb.has_value();
       rb = right_->NextBinding(*rb)) {
    right_keys_.insert(KeyOf(right_, *rb));
  }
}

std::optional<NodeId> DifferenceOp::Scan(std::optional<NodeId> lb) {
  EnsureRightKeys();
  while (lb.has_value()) {
    if (right_keys_.count(KeyOf(left_, *lb)) == 0) {
      return NodeId(kDfBTag, instance_, *lb);
    }
    lb = left_->NextBinding(*lb);
  }
  return std::nullopt;
}

std::optional<NodeId> DifferenceOp::FirstBinding() {
  return Scan(left_->FirstBinding());
}

std::optional<NodeId> DifferenceOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kDfBTag);
  return Scan(left_->NextBinding(b.IdAt(1)));
}

ValueRef DifferenceOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kDfBTag);
  return left_->Attr(b.IdAt(1), var);
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

DistinctOp::DistinctOp(BindingStream* input) : input_(input) {
  MIX_CHECK(input_ != nullptr);
}

std::string DistinctOp::KeyOf(const NodeId& ib) const {
  std::string key;
  for (const std::string& v : input_->schema()) {
    key += TermOfValue(input_->Attr(ib, v));
    key += '\x1f';
  }
  return key;
}

bool DistinctOp::Contains(const SeenSet& seen, const std::string& key) {
  for (const SeenNode* n = seen.get(); n != nullptr; n = n->parent.get()) {
    if (n->key == key) return true;
  }
  return false;
}

NodeId DistinctOp::StoreState(State state) {
  states_.push_back(std::move(state));
  return NodeId(kDtBTag, instance_, static_cast<int64_t>(states_.size() - 1));
}

std::optional<NodeId> DistinctOp::Scan(std::optional<NodeId> ib, SeenSet seen) {
  while (ib.has_value()) {
    if (!Contains(seen, KeyOf(*ib))) {
      return StoreState(State{*ib, std::move(seen)});
    }
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

std::optional<NodeId> DistinctOp::FirstBinding() {
  return Scan(input_->FirstBinding(), nullptr);
}

std::optional<NodeId> DistinctOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kDtBTag);
  int64_t handle = b.IntAt(1);
  MIX_CHECK(handle >= 0 && handle < static_cast<int64_t>(states_.size()));
  const State& state = states_[static_cast<size_t>(handle)];
  auto seen = std::make_shared<SeenNode>(SeenNode{KeyOf(state.ib), state.seen});
  return Scan(input_->NextBinding(state.ib), std::move(seen));
}

ValueRef DistinctOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kDtBTag);
  int64_t handle = b.IntAt(1);
  MIX_CHECK(handle >= 0 && handle < static_cast<int64_t>(states_.size()));
  return input_->Attr(states_[static_cast<size_t>(handle)].ib, var);
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(BindingStream* input, VarList vars)
    : input_(input), vars_(std::move(vars)) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  for (const std::string& v : vars_) {
    MIX_CHECK_MSG(std::find(in.begin(), in.end(), v) != in.end(),
                  "projection variable not bound by input");
  }
}

std::optional<NodeId> ProjectOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kPjBTag, instance_, *ib);
}

std::optional<NodeId> ProjectOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kPjBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kPjBTag, instance_, *ib);
}

ValueRef ProjectOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kPjBTag);
  MIX_CHECK_MSG(std::find(vars_.begin(), vars_.end(), var) != vars_.end(),
                "variable was projected away");
  return input_->Attr(b.IdAt(1), var);
}

}  // namespace mix::algebra
