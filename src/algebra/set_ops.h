// The conventional relational operators on binding lists the paper lists
// alongside σ/π/⋈: union (∪), difference (\), duplicate elimination, and
// projection (paper Section 3).
//
// Navigational complexity notes:
//   * union is bounded: output navigations map 1:1 to input navigations
//     (plus one cross-over from the left list's end to the right's start);
//   * projection is bounded (pure pass-through);
//   * duplicate elimination is (unbounded) browsable: each NextBinding may
//     scan arbitrarily far, and seen-keys grow like groupBy's Gprev;
//   * difference is unbrowsable: the right input must be drained before the
//     first output binding can be emitted (value equality, not identity).
#ifndef MIX_ALGEBRA_SET_OPS_H_
#define MIX_ALGEBRA_SET_OPS_H_

#include <deque>
#include <memory>
#include <unordered_set>

#include "algebra/operator_base.h"

namespace mix::algebra {

/// bs1 ∪ bs2: list concatenation of two streams with identical schemas.
class UnionOp : public OperatorBase {
 public:
  UnionOp(BindingStream* left, BindingStream* right);

  const VarList& schema() const override { return left_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  BindingStream* SideOf(int64_t side) const;

  BindingStream* left_;
  BindingStream* right_;
};

/// bs1 \ bs2: left bindings whose values (deep equality over the whole
/// schema) do not occur in the right stream.
class DifferenceOp : public OperatorBase {
 public:
  DifferenceOp(BindingStream* left, BindingStream* right);

  const VarList& schema() const override { return left_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  /// Deep-equality key of a binding: concatenated value terms.
  std::string KeyOf(BindingStream* stream, const NodeId& b) const;
  /// Drains the right input into the key set (unbrowsable step).
  void EnsureRightKeys();
  std::optional<NodeId> Scan(std::optional<NodeId> lb);

  BindingStream* left_;
  BindingStream* right_;
  bool right_drained_ = false;
  std::unordered_set<std::string> right_keys_;
};

/// Duplicate elimination by deep value equality, preserving first
/// occurrences. Seen keys are kept as a persistent chain referenced from
/// the binding ids (same technique as groupBy's Gprev).
class DistinctOp : public OperatorBase {
 public:
  explicit DistinctOp(BindingStream* input);

  const VarList& schema() const override { return input_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  struct SeenNode {
    std::string key;
    std::shared_ptr<const SeenNode> parent;
  };
  using SeenSet = std::shared_ptr<const SeenNode>;

  struct State {
    NodeId ib;
    SeenSet seen;  ///< keys seen strictly before ib.
  };

  std::string KeyOf(const NodeId& ib) const;
  static bool Contains(const SeenSet& seen, const std::string& key);
  std::optional<NodeId> Scan(std::optional<NodeId> ib, SeenSet seen);
  NodeId StoreState(State state);

  BindingStream* input_;
  std::deque<State> states_;
};

/// π: restricts the schema to `vars` (pass-through).
class ProjectOp : public OperatorBase {
 public:
  ProjectOp(BindingStream* input, VarList vars);

  const VarList& schema() const override { return vars_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  BindingStream* input_;
  VarList vars_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_SET_OPS_H_
