#include "algebra/concatenate_op.h"

#include <algorithm>

namespace mix::algebra {

namespace {
const Atom kCcBTag = Atom::Intern("cc_b");
const Atom kCcListTag = Atom::Intern("cc_list");
const Atom kCcItemTag = Atom::Intern("cc_item");
const Atom kCcListLabel = Atom::Intern(kListLabel);
}  // namespace

ConcatenateOp::ConcatenateOp(BindingStream* input, std::string x_var,
                             std::string y_var, std::string out_var)
    : input_(input),
      x_var_(std::move(x_var)),
      y_var_(std::move(y_var)),
      out_var_(std::move(out_var)) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  MIX_CHECK_MSG(std::find(in.begin(), in.end(), x_var_) != in.end(),
                "concatenate x variable not bound by input");
  MIX_CHECK_MSG(std::find(in.begin(), in.end(), y_var_) != in.end(),
                "concatenate y variable not bound by input");
  schema_ = in;
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "concatenate output variable already bound");
  schema_.push_back(out_var_);
}

std::optional<NodeId> ConcatenateOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCcBTag, instance_, *ib);
}

std::optional<NodeId> ConcatenateOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kCcBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCcBTag, instance_, *ib);
}

ValueRef ConcatenateOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kCcBTag);
  if (var == out_var_) {
    return ValueRef{this, NodeId(kCcListTag, instance_, b.IdAt(1))};
  }
  return input_->Attr(b.IdAt(1), var);
}

const std::string& ConcatenateOp::VarOfSide(int side) const {
  return side == 0 ? x_var_ : y_var_;
}

std::optional<NodeId> ConcatenateOp::FirstItemOfSide(const NodeId& ib,
                                                     int side) {
  ValueRef value = input_->Attr(ib, VarOfSide(side));
  if (ValueIsList(value)) {
    std::optional<NodeId> first = value.nav->Down(value.id);
    if (!first.has_value()) return std::nullopt;  // empty list side
    return NodeId(kCcItemTag, instance_, ib, static_cast<int64_t>(side),
                  space_.Wrap(ValueRef{value.nav, *first}));
  }
  // Non-list value: the value itself is the single item of this side.
  return NodeId(kCcItemTag, instance_, ib, static_cast<int64_t>(side),
                space_.Wrap(value));
}

std::optional<NodeId> ConcatenateOp::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  if (p.tag_atom() == kCcListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    NodeId ib = p.IdAt(1);
    std::optional<NodeId> item = FirstItemOfSide(ib, 0);
    if (!item.has_value()) item = FirstItemOfSide(ib, 1);
    return item;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  return space_.Down(p.IdAt(3));
}

std::optional<NodeId> ConcatenateOp::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  if (p.tag_atom() == kCcListTag) {
    return std::nullopt;  // value root: no siblings
  }
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  NodeId ib = p.IdAt(1);
  int side = static_cast<int>(p.IntAt(2));

  // Within a list side, items advance along the underlying siblings; a
  // single-value side has exactly one item.
  if (ValueIsList(input_->Attr(ib, VarOfSide(side)))) {
    std::optional<NodeId> next = space_.Right(p.IdAt(3));
    if (next.has_value()) {
      return NodeId(kCcItemTag, instance_, ib, static_cast<int64_t>(side),
                    *next);
    }
  }
  // Side exhausted: cross from x to y.
  if (side == 0) return FirstItemOfSide(ib, 1);
  return std::nullopt;
}

Label ConcatenateOp::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  if (p.tag_atom() == kCcListTag) return kListLabel;
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  return space_.Fetch(p.IdAt(3));
}

void ConcatenateOp::NextBindings(const NodeId& after, int64_t limit,
                                 std::vector<NodeId>* out) {
  NodeId ia;
  if (after.valid()) {
    CheckOwn(after, kCcBTag);
    ia = after.IdAt(1);
  }
  const size_t before = out->size();
  input_->NextBindings(ia, limit, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = NodeId(kCcBTag, instance_, (*out)[i]);
  }
}

void ConcatenateOp::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.DownAll(p, out);
    return;
  }
  if (p.tag_atom() == kCcListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    NodeId ib = p.IdAt(1);
    for (int side = 0; side < 2; ++side) {
      ValueRef value = input_->Attr(ib, VarOfSide(side));
      if (ValueIsList(value)) {
        const size_t before = out->size();
        value.nav->DownAll(value.id, out);
        for (size_t i = before; i < out->size(); ++i) {
          (*out)[i] =
              NodeId(kCcItemTag, instance_, ib, static_cast<int64_t>(side),
                     space_.Wrap(ValueRef{value.nav, (*out)[i]}));
        }
      } else {
        out->push_back(NodeId(kCcItemTag, instance_, ib,
                              static_cast<int64_t>(side), space_.Wrap(value)));
      }
    }
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  space_.DownAll(p.IdAt(3), out);
}

void ConcatenateOp::NextSiblings(const NodeId& p, int64_t limit,
                                 std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.NextSiblings(p, limit, out);
    return;
  }
  if (p.tag_atom() == kCcListTag) return;  // value root: no siblings
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  if (limit == 0) return;
  NodeId ib = p.IdAt(1);
  int side = static_cast<int>(p.IntAt(2));
  const size_t before = out->size();
  if (ValueIsList(input_->Attr(ib, VarOfSide(side)))) {
    space_.NextSiblings(p.IdAt(3), limit, out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = NodeId(kCcItemTag, instance_, ib,
                         static_cast<int64_t>(side), (*out)[i]);
    }
  }
  int64_t taken = static_cast<int64_t>(out->size() - before);
  if (limit >= 0 && taken >= limit) return;
  if (side != 0) return;
  // Side exhausted within the request: cross from x to y.
  std::optional<NodeId> first = FirstItemOfSide(ib, 1);
  if (!first.has_value()) return;
  out->push_back(*first);
  if (limit >= 0 && ++taken >= limit) return;
  NextSiblings(out->back(), limit < 0 ? -1 : limit - taken, out);
}

void ConcatenateOp::FetchSubtree(const NodeId& p, int64_t depth,
                                 std::vector<SubtreeEntry>* out) {
  if (space_.Owns(p)) {
    space_.FetchSubtree(p, depth, out);
    return;
  }
  if (p.tag_atom() == kCcListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    if (depth == 0) {
      const bool has_items = Down(p).has_value();
      out->push_back(SubtreeEntry{kCcListLabel, 0, has_items,
                                  has_items ? p : NodeId()});
      return;
    }
    out->push_back(SubtreeEntry{kCcListLabel, 0, false, NodeId()});
    std::vector<NodeId> items;
    DownAll(p, &items);
    for (const NodeId& item : items) {
      const size_t from = out->size();
      FetchSubtree(item, depth < 0 ? -1 : depth - 1, out);
      ShiftSubtreeDepths(out, from, 1);
    }
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCcItemTag,
                "foreign value id passed to concatenate");
  MIX_CHECK(p.IntAt(0) == instance_);
  // Items delegate to the underlying value; a truncated root resumes via
  // the fw-id, which this operator serves through its ValueSpace.
  space_.FetchSubtree(p.IdAt(3), depth, out);
}

}  // namespace mix::algebra
