// ⋈_pred: nested-loops join of two binding streams (paper Section 3).
//
// Output bindings carry the union of both schemas; ids are
// jn_b(instance, lb, rb) — the association a(p) is the *pair* of input
// pointers, directly encoded Skolem-style.
//
// Per the paper's caching note ("the nested-loops join operator stores the
// parts of the inner argument of the loop ... the 'binding' nodes along
// with the attributes that participate in the join condition"), the
// operator memoizes the inner stream: binding ids plus the join-attribute
// atom, so re-iterations of the inner loop do not re-navigate the source.
// Result attributes are NOT cached (footnote 9: low join selectivity makes
// them relatively infrequent).
#ifndef MIX_ALGEBRA_JOIN_OP_H_
#define MIX_ALGEBRA_JOIN_OP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator_base.h"

namespace mix::algebra {

class JoinOp : public OperatorBase {
 public:
  struct Options {
    /// Memoize inner bindings + join atoms (the paper's caching). Turning
    /// it off re-scans the inner stream — useful for ablation benches.
    bool cache_inner = true;
    /// "Intermediate eager step" (paper Section 6): on first use, drain
    /// the inner stream completely and hash-index it by join atom. Makes
    /// every subsequent inner probe O(1) at the price of one eager inner
    /// evaluation up front. Only effective for equality predicates;
    /// implies cache_inner.
    bool index_inner = false;
  };

  /// Inputs are not owned; their schemas must be disjoint. The predicate
  /// must be var-var with left_var from `left` and right_var from `right`.
  JoinOp(BindingStream* left, BindingStream* right, BindingPredicate predicate,
         Options options);
  JoinOp(BindingStream* left, BindingStream* right, BindingPredicate predicate)
      : JoinOp(left, right, std::move(predicate), Options()) {}

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  /// Batched scan: same outer/inner walk as the node-at-a-time path but
  /// without per-step memo traffic for intermediate results.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

 private:
  struct InnerEntry {
    NodeId rb;
    std::string atom;
  };

  /// Inner binding at cache position `i`, extending the cache on demand;
  /// nullptr when the inner stream is exhausted.
  const InnerEntry* Inner(size_t i);
  /// First match at or after (lb, inner index ri).
  std::optional<NodeId> Scan(std::optional<NodeId> lb, size_t ri);
  /// Drains the remaining inner stream into the cache with one batched
  /// NextBindings pull (the eager step consumes the whole inner anyway).
  void DrainInner();
  /// Eagerly drains + indexes the inner cache (Options::index_inner).
  void EnsureIndex();
  /// Smallest indexed inner position >= `from` whose atom equals `atom`.
  std::optional<size_t> IndexProbe(const std::string& atom, size_t from) const;

  BindingStream* left_;
  BindingStream* right_;
  BindingPredicate predicate_;
  Options options_;
  VarList schema_;
  bool left_has_left_var_ = true;

  std::vector<InnerEntry> inner_cache_;
  bool inner_exhausted_ = false;
  /// index_inner: join atom -> ascending inner cache positions.
  std::unordered_map<std::string, std::vector<size_t>> inner_index_;
  bool index_built_ = false;
  /// Position cursor + result slot for the cache-disabled ablation path.
  InnerEntry scratch_;
  NodeId scratch_rb_;
  size_t scratch_index_ = 0;
  bool scratch_valid_ = false;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_JOIN_OP_H_
