#include "algebra/cached_view_source_op.h"

namespace mix::algebra {

namespace {
const Atom kCvdBTag = Atom::Intern("cvd_b");  // document mode
const Atom kCvcBTag = Atom::Intern("cvc_b");  // children mode
}  // namespace

CachedViewSourceOp::CachedViewSourceOp(Navigable* view, std::string var,
                                       Mode mode)
    : view_(view), mode_(mode) {
  MIX_CHECK(view_ != nullptr);
  schema_.push_back(std::move(var));
}

void CachedViewSourceOp::EnsureChildren() {
  if (children_loaded_) return;
  view_->DownAll(view_->Root(), &children_);
  children_loaded_ = true;
}

std::optional<NodeId> CachedViewSourceOp::FirstBinding() {
  if (mode_ == Mode::kDocument) return NodeId(kCvdBTag, instance_);
  EnsureChildren();
  if (children_.empty()) return std::nullopt;
  return NodeId(kCvcBTag, instance_, 0);
}

std::optional<NodeId> CachedViewSourceOp::NextBinding(const NodeId& b) {
  if (mode_ == Mode::kDocument) {
    CheckOwn(b, kCvdBTag);
    return std::nullopt;
  }
  CheckOwn(b, kCvcBTag);
  EnsureChildren();
  int64_t next = b.IntAt(1) + 1;
  if (next >= static_cast<int64_t>(children_.size())) return std::nullopt;
  return NodeId(kCvcBTag, instance_, next);
}

void CachedViewSourceOp::NextBindings(const NodeId& after, int64_t limit,
                                      std::vector<NodeId>* out) {
  if (limit == 0) return;
  if (mode_ == Mode::kDocument) {
    if (after.valid()) return;
    out->push_back(NodeId(kCvdBTag, instance_));
    return;
  }
  EnsureChildren();
  int64_t from = 0;
  if (after.valid()) {
    CheckOwn(after, kCvcBTag);
    from = after.IntAt(1) + 1;
  }
  for (int64_t i = from; i < static_cast<int64_t>(children_.size()); ++i) {
    out->push_back(NodeId(kCvcBTag, instance_, i));
    if (limit > 0 && --limit == 0) return;
  }
}

ValueRef CachedViewSourceOp::Attr(const NodeId& b, const std::string& var) {
  MIX_CHECK_MSG(var == schema_[0],
                "unknown variable requested from cached view");
  if (mode_ == Mode::kDocument) {
    CheckOwn(b, kCvdBTag);
    return ValueRef{view_, view_->Root()};
  }
  CheckOwn(b, kCvcBTag);
  EnsureChildren();
  int64_t i = b.IntAt(1);
  MIX_CHECK_MSG(i >= 0 && i < static_cast<int64_t>(children_.size()),
                "cached-view binding out of range");
  return ValueRef{view_, children_[static_cast<size_t>(i)]};
}

}  // namespace mix::algebra
