// createElement_{label, ch -> e} (paper Section 3, Fig. 9).
//
// For each input binding, e is bound to a freshly synthesized element whose
// label is either a constant or the (atomic) value of a label variable, and
// whose children are the *subtrees of* b.ch (not b.ch itself) — Fig. 9's
// 6th mapping: d(<v,pb>) = <id, d(pb.HLSs)>.
//
// Lazy-mediator behavior matches Fig. 9 row by row: fetching the new
// element's label costs nothing (7th mapping), descending into it forwards
// one d to the input's ch value, and everything below is pass-through
// <id,p> navigation.
#ifndef MIX_ALGEBRA_CREATE_ELEMENT_OP_H_
#define MIX_ALGEBRA_CREATE_ELEMENT_OP_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class CreateElementOp : public ConstructingOperatorBase {
 public:
  /// Element label: a constant, or the atomic value of a variable.
  struct LabelSpec {
    static LabelSpec Constant(std::string label);
    static LabelSpec Variable(std::string var);

    bool is_constant = true;
    std::string text;  ///< the constant, or the variable name.
  };

  /// `input` is not owned and must outlive the operator.
  CreateElementOp(BindingStream* input, LabelSpec label, std::string ch_var,
                  std::string out_var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

  /// Vectored navigation: batch requests on the synthesized element become
  /// one batch request on b.ch's value space.
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  BindingStream* input_;
  LabelSpec label_;
  std::string ch_var_;
  std::string out_var_;
  VarList schema_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_CREATE_ELEMENT_OP_H_
