// orderBy_{x1..xk} (paper Section 3).
//
// Two ordering modes:
//   * kByValue — reorders the bindings by the (atomic) values of the sort
//     variables; this is Example 1's "reorder ... according to some
//     arithmetic attribute such as age";
//   * kByOccurrence — the paper's literal definition: "reorders the
//     bindings in the output according to the occurrence of bindings
//     bin.x1...xk in the input" — bindings cluster by the first occurrence
//     of their sort-variable values (node identity), in input order.
//
// Either way this is the canonical *unbrowsable* operator: the mediator
// "cannot respond to the user until it has seen the complete list" — the
// first navigation into the output drains the input entirely.
#ifndef MIX_ALGEBRA_ORDER_BY_OP_H_
#define MIX_ALGEBRA_ORDER_BY_OP_H_

#include <vector>

#include "algebra/operator_base.h"

namespace mix::algebra {

class OrderByOp : public OperatorBase {
 public:
  enum class Mode {
    kByValue,       ///< numeric-aware atom ordering, stable
    kByOccurrence,  ///< first-occurrence clustering (paper's definition)
  };

  /// `input` is not owned and must outlive the operator.
  OrderByOp(BindingStream* input, VarList sort_vars, Mode mode);
  OrderByOp(BindingStream* input, VarList sort_vars)
      : OrderByOp(input, std::move(sort_vars), Mode::kByValue) {}

  const VarList& schema() const override { return input_->schema(); }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  /// Drains and sorts the input (idempotent).
  void Ensure();

  BindingStream* input_;
  VarList sort_vars_;
  Mode mode_;
  bool materialized_ = false;
  std::vector<NodeId> sorted_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_ORDER_BY_OP_H_
