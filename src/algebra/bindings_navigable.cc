#include "algebra/bindings_navigable.h"

#include "core/check.h"

namespace mix::algebra {

namespace {
const Atom kBnBsTag = Atom::Intern("bn_bs");
const Atom kBnBTag = Atom::Intern("bn_b");
const Atom kBnVarTag = Atom::Intern("bn_var");
const Atom kBnVrootTag = Atom::Intern("bn_vroot");
const Atom kBsLabel = Atom::Intern("bs");
const Atom kBLabel = Atom::Intern("b");
}  // namespace

// Id layout:
//   bn_bs(instance)                      — the bs root
//   bn_b(instance, ib)                   — one binding element
//   bn_var(instance, ib, var_index)      — one variable element X[...]
//   bn_vroot(instance, fw)               — a value root (single child of var)
//   fw(...)                              — value interior (ValueSpace)

BindingsNavigable::BindingsNavigable(BindingStream* stream)
    : stream_(stream),
      instance_(NextOperatorInstance()),
      space_(instance_) {
  MIX_CHECK(stream_ != nullptr);
}

NodeId BindingsNavigable::Root() { return NodeId(kBnBsTag, instance_); }

NodeId BindingsNavigable::VarId(const NodeId& b, int64_t var_index) const {
  return NodeId(kBnVarTag, instance_, b, var_index);
}

std::optional<NodeId> BindingsNavigable::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) {
    std::optional<NodeId> b = stream_->FirstBinding();
    if (!b.has_value()) return std::nullopt;
    return NodeId(kBnBTag, instance_, *b);
  }
  if (p.tag_atom() == kBnBTag) {
    if (stream_->schema().empty()) return std::nullopt;
    return VarId(p.IdAt(1), 0);
  }
  if (p.tag_atom() == kBnVarTag) {
    const std::string& var =
        stream_->schema()[static_cast<size_t>(p.IntAt(2))];
    ValueRef value = stream_->Attr(p.IdAt(1), var);
    return NodeId(kBnVrootTag, instance_, space_.Wrap(value));
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return space_.Down(p.IdAt(1));
}

std::optional<NodeId> BindingsNavigable::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) return std::nullopt;
  if (p.tag_atom() == kBnBTag) {
    std::optional<NodeId> next = stream_->NextBinding(p.IdAt(1));
    if (!next.has_value()) return std::nullopt;
    return NodeId(kBnBTag, instance_, *next);
  }
  if (p.tag_atom() == kBnVarTag) {
    int64_t next = p.IntAt(2) + 1;
    if (next >= static_cast<int64_t>(stream_->schema().size())) {
      return std::nullopt;
    }
    return VarId(p.IdAt(1), next);
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return std::nullopt;  // a value is the sole child of its variable element
}

Label BindingsNavigable::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) return "bs";
  if (p.tag_atom() == kBnBTag) return "b";
  if (p.tag_atom() == kBnVarTag) {
    return stream_->schema()[static_cast<size_t>(p.IntAt(2))];
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return space_.Fetch(p.IdAt(1));
}

void BindingsNavigable::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.DownAll(p, out);
    return;
  }
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) {
    const size_t before = out->size();
    stream_->NextBindings(NodeId(), -1, out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = NodeId(kBnBTag, instance_, (*out)[i]);
    }
    return;
  }
  if (p.tag_atom() == kBnBTag) {
    const int64_t vars = static_cast<int64_t>(stream_->schema().size());
    for (int64_t v = 0; v < vars; ++v) out->push_back(VarId(p.IdAt(1), v));
    return;
  }
  if (p.tag_atom() == kBnVarTag) {
    std::optional<NodeId> vroot = Down(p);
    if (vroot.has_value()) out->push_back(*vroot);
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag,
                "foreign id passed to BindingsNavigable");
  space_.DownAll(p.IdAt(1), out);
}

void BindingsNavigable::NextSiblings(const NodeId& p, int64_t limit,
                                     std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.NextSiblings(p, limit, out);
    return;
  }
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (limit == 0) return;
  if (p.tag_atom() == kBnBTag) {
    const size_t before = out->size();
    stream_->NextBindings(p.IdAt(1), limit, out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = NodeId(kBnBTag, instance_, (*out)[i]);
    }
    return;
  }
  if (p.tag_atom() == kBnVarTag) {
    const int64_t vars = static_cast<int64_t>(stream_->schema().size());
    int64_t taken = 0;
    for (int64_t v = p.IntAt(2) + 1; v < vars; ++v) {
      out->push_back(VarId(p.IdAt(1), v));
      if (limit >= 0 && ++taken >= limit) return;
    }
    return;
  }
  // bs root and value roots have no siblings.
  MIX_CHECK(p.tag_atom() == kBnBsTag || p.tag_atom() == kBnVrootTag);
}

void BindingsNavigable::FetchSubtree(const NodeId& p, int64_t depth,
                                     std::vector<SubtreeEntry>* out) {
  if (space_.Owns(p)) {
    space_.FetchSubtree(p, depth, out);
    return;
  }
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnVrootTag) {
    // A value root is an alias of the wrapped value node.
    space_.FetchSubtree(p.IdAt(1), depth, out);
    return;
  }
  if (depth == 0) {
    const bool has_children = Down(p).has_value();
    out->push_back(SubtreeEntry{FetchAtom(p), 0, has_children,
                                has_children ? p : NodeId()});
    return;
  }
  const int64_t child_depth = depth < 0 ? -1 : depth - 1;
  if (p.tag_atom() == kBnBsTag) {
    out->push_back(SubtreeEntry{kBsLabel, 0, false, NodeId()});
    std::vector<NodeId> bindings;
    stream_->NextBindings(NodeId(), -1, &bindings);
    for (const NodeId& ib : bindings) {
      const size_t from = out->size();
      FetchSubtree(NodeId(kBnBTag, instance_, ib), child_depth, out);
      ShiftSubtreeDepths(out, from, 1);
    }
    return;
  }
  if (p.tag_atom() == kBnBTag) {
    out->push_back(SubtreeEntry{kBLabel, 0, false, NodeId()});
    const int64_t vars = static_cast<int64_t>(stream_->schema().size());
    for (int64_t v = 0; v < vars; ++v) {
      const size_t from = out->size();
      FetchSubtree(VarId(p.IdAt(1), v), child_depth, out);
      ShiftSubtreeDepths(out, from, 1);
    }
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVarTag,
                "foreign id passed to BindingsNavigable");
  out->push_back(SubtreeEntry{FetchAtom(p), 0, false, NodeId()});
  const std::string& var = stream_->schema()[static_cast<size_t>(p.IntAt(2))];
  ValueRef value = stream_->Attr(p.IdAt(1), var);
  const size_t from = out->size();
  value.nav->FetchSubtree(value.id, child_depth, out);
  ShiftSubtreeDepths(out, from, 1);
  for (size_t i = from; i < out->size(); ++i) {
    SubtreeEntry& e = (*out)[i];
    if (e.truncated) e.id = space_.Wrap(ValueRef{value.nav, e.id});
  }
}

}  // namespace mix::algebra
