#include "algebra/bindings_navigable.h"

#include "core/check.h"

namespace mix::algebra {

namespace {
const Atom kBnBsTag = Atom::Intern("bn_bs");
const Atom kBnBTag = Atom::Intern("bn_b");
const Atom kBnVarTag = Atom::Intern("bn_var");
const Atom kBnVrootTag = Atom::Intern("bn_vroot");
}  // namespace

// Id layout:
//   bn_bs(instance)                      — the bs root
//   bn_b(instance, ib)                   — one binding element
//   bn_var(instance, ib, var_index)      — one variable element X[...]
//   bn_vroot(instance, fw)               — a value root (single child of var)
//   fw(...)                              — value interior (ValueSpace)

BindingsNavigable::BindingsNavigable(BindingStream* stream)
    : stream_(stream),
      instance_(NextOperatorInstance()),
      space_(instance_) {
  MIX_CHECK(stream_ != nullptr);
}

NodeId BindingsNavigable::Root() { return NodeId(kBnBsTag, instance_); }

NodeId BindingsNavigable::VarId(const NodeId& b, int64_t var_index) const {
  return NodeId(kBnVarTag, instance_, b, var_index);
}

std::optional<NodeId> BindingsNavigable::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) {
    std::optional<NodeId> b = stream_->FirstBinding();
    if (!b.has_value()) return std::nullopt;
    return NodeId(kBnBTag, instance_, *b);
  }
  if (p.tag_atom() == kBnBTag) {
    if (stream_->schema().empty()) return std::nullopt;
    return VarId(p.IdAt(1), 0);
  }
  if (p.tag_atom() == kBnVarTag) {
    const std::string& var =
        stream_->schema()[static_cast<size_t>(p.IntAt(2))];
    ValueRef value = stream_->Attr(p.IdAt(1), var);
    return NodeId(kBnVrootTag, instance_, space_.Wrap(value));
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return space_.Down(p.IdAt(1));
}

std::optional<NodeId> BindingsNavigable::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) return std::nullopt;
  if (p.tag_atom() == kBnBTag) {
    std::optional<NodeId> next = stream_->NextBinding(p.IdAt(1));
    if (!next.has_value()) return std::nullopt;
    return NodeId(kBnBTag, instance_, *next);
  }
  if (p.tag_atom() == kBnVarTag) {
    int64_t next = p.IntAt(2) + 1;
    if (next >= static_cast<int64_t>(stream_->schema().size())) {
      return std::nullopt;
    }
    return VarId(p.IdAt(1), next);
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return std::nullopt;  // a value is the sole child of its variable element
}

Label BindingsNavigable::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag_atom() == kBnBsTag) return "bs";
  if (p.tag_atom() == kBnBTag) return "b";
  if (p.tag_atom() == kBnVarTag) {
    return stream_->schema()[static_cast<size_t>(p.IntAt(2))];
  }
  MIX_CHECK_MSG(p.tag_atom() == kBnVrootTag, "foreign id passed to BindingsNavigable");
  return space_.Fetch(p.IdAt(1));
}

}  // namespace mix::algebra
