#include "algebra/bindings_navigable.h"

#include "core/check.h"

namespace mix::algebra {

// Id layout:
//   bn_bs(instance)                      — the bs root
//   bn_b(instance, ib)                   — one binding element
//   bn_var(instance, ib, var_index)      — one variable element X[...]
//   bn_vroot(instance, fw)               — a value root (single child of var)
//   fw(...)                              — value interior (ValueSpace)

BindingsNavigable::BindingsNavigable(BindingStream* stream)
    : stream_(stream),
      instance_(NextOperatorInstance()),
      space_(instance_) {
  MIX_CHECK(stream_ != nullptr);
}

NodeId BindingsNavigable::Root() { return NodeId("bn_bs", {instance_}); }

NodeId BindingsNavigable::VarId(const NodeId& b, int64_t var_index) const {
  return NodeId("bn_var", {instance_, b, var_index});
}

std::optional<NodeId> BindingsNavigable::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag() == "bn_bs") {
    std::optional<NodeId> b = stream_->FirstBinding();
    if (!b.has_value()) return std::nullopt;
    return NodeId("bn_b", {instance_, *b});
  }
  if (p.tag() == "bn_b") {
    if (stream_->schema().empty()) return std::nullopt;
    return VarId(p.IdAt(1), 0);
  }
  if (p.tag() == "bn_var") {
    const std::string& var =
        stream_->schema()[static_cast<size_t>(p.IntAt(2))];
    ValueRef value = stream_->Attr(p.IdAt(1), var);
    return NodeId("bn_vroot", {instance_, space_.Wrap(value)});
  }
  MIX_CHECK_MSG(p.tag() == "bn_vroot", "foreign id passed to BindingsNavigable");
  return space_.Down(p.IdAt(1));
}

std::optional<NodeId> BindingsNavigable::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag() == "bn_bs") return std::nullopt;
  if (p.tag() == "bn_b") {
    std::optional<NodeId> next = stream_->NextBinding(p.IdAt(1));
    if (!next.has_value()) return std::nullopt;
    return NodeId("bn_b", {instance_, *next});
  }
  if (p.tag() == "bn_var") {
    int64_t next = p.IntAt(2) + 1;
    if (next >= static_cast<int64_t>(stream_->schema().size())) {
      return std::nullopt;
    }
    return VarId(p.IdAt(1), next);
  }
  MIX_CHECK_MSG(p.tag() == "bn_vroot", "foreign id passed to BindingsNavigable");
  return std::nullopt;  // a value is the sole child of its variable element
}

Label BindingsNavigable::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  MIX_CHECK(p.valid() && p.IntAt(0) == instance_);
  if (p.tag() == "bn_bs") return "bs";
  if (p.tag() == "bn_b") return "b";
  if (p.tag() == "bn_var") {
    return stream_->schema()[static_cast<size_t>(p.IntAt(2))];
  }
  MIX_CHECK_MSG(p.tag() == "bn_vroot", "foreign id passed to BindingsNavigable");
  return space_.Fetch(p.IdAt(1));
}

}  // namespace mix::algebra
