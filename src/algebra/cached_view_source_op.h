// cachedView_{snapshot -> v}: serves a plan from an immutable materialized
// answer snapshot instead of live sources (answer-view cache, DESIGN.md §4).
//
// Two modes mirror the two sound rewrite shapes:
//
//   * kDocument — the singleton binding list bs[b[v[root]]] over the
//     snapshot's root. Composed under tupleDestroy it reproduces the donor
//     session's answer byte-for-byte (tupleDestroy forwards vectored
//     FetchSubtree straight to the snapshot's DocNavigable).
//   * kChildren — one binding per child of the snapshot root, in document
//     order. This re-exposes the donor's grouped member list so a residual
//     select / groupBy / createElement stack can narrow it (subsumption
//     with a strictly narrower predicate).
//
// Unlike SourceOp the snapshot is NOT wrapped in a SuperRootNavigable: the
// snapshot root *is* the answer element, not a source document that will be
// re-rooted by construction.
#ifndef MIX_ALGEBRA_CACHED_VIEW_SOURCE_OP_H_
#define MIX_ALGEBRA_CACHED_VIEW_SOURCE_OP_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class CachedViewSourceOp : public OperatorBase {
 public:
  enum class Mode { kDocument, kChildren };

  /// `view` is not owned and must outlive the operator (the session pins the
  /// snapshot for its whole lifetime).
  CachedViewSourceOp(Navigable* view, std::string var, Mode mode);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

 private:
  /// Resolves the snapshot root's child list once (kChildren mode).
  void EnsureChildren();

  Navigable* view_;
  Mode mode_;
  VarList schema_;
  bool children_loaded_ = false;
  std::vector<NodeId> children_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_CACHED_VIEW_SOURCE_OP_H_
