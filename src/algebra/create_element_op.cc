#include "algebra/create_element_op.h"

#include <algorithm>

namespace mix::algebra {

namespace {
const Atom kCeBTag = Atom::Intern("ce_b");
const Atom kCeETag = Atom::Intern("ce_e");
}  // namespace

CreateElementOp::LabelSpec CreateElementOp::LabelSpec::Constant(
    std::string label) {
  return LabelSpec{true, std::move(label)};
}

CreateElementOp::LabelSpec CreateElementOp::LabelSpec::Variable(
    std::string var) {
  return LabelSpec{false, std::move(var)};
}

CreateElementOp::CreateElementOp(BindingStream* input, LabelSpec label,
                                 std::string ch_var, std::string out_var)
    : input_(input),
      label_(std::move(label)),
      ch_var_(std::move(ch_var)),
      out_var_(std::move(out_var)) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  MIX_CHECK_MSG(std::find(in.begin(), in.end(), ch_var_) != in.end(),
                "createElement children variable not bound by input");
  if (!label_.is_constant) {
    MIX_CHECK_MSG(std::find(in.begin(), in.end(), label_.text) != in.end(),
                  "createElement label variable not bound by input");
  }
  schema_ = in;
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "createElement output variable already bound");
  schema_.push_back(out_var_);
}

std::optional<NodeId> CreateElementOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCeBTag, instance_, *ib);
}

std::optional<NodeId> CreateElementOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kCeBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCeBTag, instance_, *ib);
}

ValueRef CreateElementOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kCeBTag);
  if (var == out_var_) {
    return ValueRef{this, NodeId(kCeETag, instance_, b.IdAt(1))};
  }
  return input_->Attr(b.IdAt(1), var);
}

std::optional<NodeId> CreateElementOp::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  MIX_CHECK(p.IntAt(0) == instance_);
  // Fig. 9, 6th mapping: descend into the subtrees of b.ch.
  ValueRef ch = input_->Attr(p.IdAt(1), ch_var_);
  std::optional<NodeId> child = ch.nav->Down(ch.id);
  if (!child.has_value()) return std::nullopt;
  return space_.Wrap(ValueRef{ch.nav, *child});
}

std::optional<NodeId> CreateElementOp::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  return std::nullopt;  // a synthesized element is a value root
}

Label CreateElementOp::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  MIX_CHECK(p.IntAt(0) == instance_);
  if (label_.is_constant) return label_.text;  // Fig. 9, 7th mapping
  return AtomOf(input_->Attr(p.IdAt(1), label_.text));
}

void CreateElementOp::NextBindings(const NodeId& after, int64_t limit,
                                   std::vector<NodeId>* out) {
  NodeId ia;
  if (after.valid()) {
    CheckOwn(after, kCeBTag);
    ia = after.IdAt(1);
  }
  const size_t before = out->size();
  input_->NextBindings(ia, limit, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = NodeId(kCeBTag, instance_, (*out)[i]);
  }
}

void CreateElementOp::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.DownAll(p, out);
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  ValueRef ch = input_->Attr(p.IdAt(1), ch_var_);
  const size_t before = out->size();
  ch.nav->DownAll(ch.id, out);
  for (size_t i = before; i < out->size(); ++i) {
    (*out)[i] = space_.Wrap(ValueRef{ch.nav, (*out)[i]});
  }
}

void CreateElementOp::NextSiblings(const NodeId& p, int64_t limit,
                                   std::vector<NodeId>* out) {
  if (space_.Owns(p)) {
    space_.NextSiblings(p, limit, out);
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  // a synthesized element is a value root: no siblings
}

void CreateElementOp::FetchSubtree(const NodeId& p, int64_t depth,
                                   std::vector<SubtreeEntry>* out) {
  if (space_.Owns(p)) {
    space_.FetchSubtree(p, depth, out);
    return;
  }
  MIX_CHECK_MSG(p.tag_atom() == kCeETag,
                "foreign value id passed to createElement");
  if (depth == 0) {
    ValueRef ch = input_->Attr(p.IdAt(1), ch_var_);
    const bool has_children = ch.nav->Down(ch.id).has_value();
    out->push_back(SubtreeEntry{FetchAtom(p), 0, has_children,
                                has_children ? p : NodeId()});
    return;
  }
  out->push_back(SubtreeEntry{FetchAtom(p), 0, false, NodeId()});
  // The element's children are b.ch's children, at the same depths below
  // their shared parent — fetch ch's subtree with the same cutoff and erase
  // the ch-root entry; the descendant depths are already correct.
  ValueRef ch = input_->Attr(p.IdAt(1), ch_var_);
  const size_t from = out->size();
  ch.nav->FetchSubtree(ch.id, depth, out);
  out->erase(out->begin() + static_cast<ptrdiff_t>(from));
  for (size_t i = from; i < out->size(); ++i) {
    SubtreeEntry& e = (*out)[i];
    if (e.truncated) e.id = space_.Wrap(ValueRef{ch.nav, e.id});
  }
}

}  // namespace mix::algebra
