// source_{url -> v}: creates the singleton binding list bs[b[v[e]]] for the
// root element e of a navigable source (paper Section 3).
//
// The source Navigable is typically a BufferComponent over an LXP wrapper
// (Fig. 7) or a DocNavigable for in-memory documents; either way, the
// operator touches it only when the root value is actually navigated — the
// preprocessing phase can hand out plan handles without any source access.
#ifndef MIX_ALGEBRA_SOURCE_OP_H_
#define MIX_ALGEBRA_SOURCE_OP_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class SourceOp : public OperatorBase {
 public:
  /// `source` is not owned and must outlive the operator.
  SourceOp(Navigable* source, std::string var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;
  void NextBindings(const NodeId& after, int64_t limit,
                    std::vector<NodeId>* out) override;

 private:
  Navigable* source_;
  VarList schema_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_SOURCE_OP_H_
