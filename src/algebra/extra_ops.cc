#include "algebra/extra_ops.h"

#include <algorithm>

namespace mix::algebra {

namespace {
const Atom kWlBTag = Atom::Intern("wl_b");
const Atom kWlListTag = Atom::Intern("wl_list");
const Atom kWlItemTag = Atom::Intern("wl_item");
const Atom kRnBTag = Atom::Intern("rn_b");
const Atom kCtBTag = Atom::Intern("ct_b");
const Atom kCtLeafTag = Atom::Intern("ct_leaf");
}  // namespace

// ---------------------------------------------------------------------------
// WrapListOp
// ---------------------------------------------------------------------------

WrapListOp::WrapListOp(BindingStream* input, std::string x_var,
                       std::string out_var)
    : input_(input), x_var_(std::move(x_var)), out_var_(std::move(out_var)) {
  MIX_CHECK(input_ != nullptr);
  const VarList& in = input_->schema();
  MIX_CHECK_MSG(std::find(in.begin(), in.end(), x_var_) != in.end(),
                "wrapList variable not bound by input");
  schema_ = in;
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "wrapList output variable already bound");
  schema_.push_back(out_var_);
}

std::optional<NodeId> WrapListOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kWlBTag, instance_, *ib);
}

std::optional<NodeId> WrapListOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kWlBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kWlBTag, instance_, *ib);
}

ValueRef WrapListOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kWlBTag);
  if (var == out_var_) {
    return ValueRef{this, NodeId(kWlListTag, instance_, b.IdAt(1))};
  }
  return input_->Attr(b.IdAt(1), var);
}

std::optional<NodeId> WrapListOp::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  if (p.tag_atom() == kWlListTag) {
    MIX_CHECK(p.IntAt(0) == instance_);
    return NodeId(kWlItemTag, instance_, p.IdAt(1));
  }
  MIX_CHECK_MSG(p.tag_atom() == kWlItemTag, "foreign value id passed to wrapList");
  MIX_CHECK(p.IntAt(0) == instance_);
  ValueRef value = input_->Attr(p.IdAt(1), x_var_);
  std::optional<NodeId> child = value.nav->Down(value.id);
  if (!child.has_value()) return std::nullopt;
  return space_.Wrap(ValueRef{value.nav, *child});
}

std::optional<NodeId> WrapListOp::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  // Both the list root and its single item have no right sibling.
  MIX_CHECK(p.tag_atom() == kWlListTag || p.tag_atom() == kWlItemTag);
  return std::nullopt;
}

Label WrapListOp::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  if (p.tag_atom() == kWlListTag) return kListLabel;
  MIX_CHECK_MSG(p.tag_atom() == kWlItemTag, "foreign value id passed to wrapList");
  MIX_CHECK(p.IntAt(0) == instance_);
  ValueRef value = input_->Attr(p.IdAt(1), x_var_);
  return value.nav->Fetch(value.id);
}

// ---------------------------------------------------------------------------
// RenameOp
// ---------------------------------------------------------------------------

RenameOp::RenameOp(BindingStream* input, std::string old_var,
                   std::string new_var)
    : input_(input),
      old_var_(std::move(old_var)),
      new_var_(std::move(new_var)) {
  MIX_CHECK(input_ != nullptr);
  schema_ = input_->schema();
  bool found = false;
  for (std::string& v : schema_) {
    if (v == old_var_) {
      v = new_var_;
      found = true;
    } else {
      MIX_CHECK_MSG(v != new_var_, "rename target variable already bound");
    }
  }
  MIX_CHECK_MSG(found, "rename source variable not bound by input");
}

std::optional<NodeId> RenameOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kRnBTag, instance_, *ib);
}

std::optional<NodeId> RenameOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kRnBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kRnBTag, instance_, *ib);
}

ValueRef RenameOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kRnBTag);
  return input_->Attr(b.IdAt(1), var == new_var_ ? old_var_ : var);
}

// ---------------------------------------------------------------------------
// ConstOp
// ---------------------------------------------------------------------------

ConstOp::ConstOp(BindingStream* input, std::string text, std::string out_var)
    : input_(input), text_(std::move(text)), out_var_(std::move(out_var)) {
  MIX_CHECK(input_ != nullptr);
  schema_ = input_->schema();
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "const output variable already bound");
  schema_.push_back(out_var_);
}

std::optional<NodeId> ConstOp::FirstBinding() {
  std::optional<NodeId> ib = input_->FirstBinding();
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCtBTag, instance_, *ib);
}

std::optional<NodeId> ConstOp::NextBinding(const NodeId& b) {
  CheckOwn(b, kCtBTag);
  std::optional<NodeId> ib = input_->NextBinding(b.IdAt(1));
  if (!ib.has_value()) return std::nullopt;
  return NodeId(kCtBTag, instance_, *ib);
}

ValueRef ConstOp::Attr(const NodeId& b, const std::string& var) {
  CheckOwn(b, kCtBTag);
  if (var == out_var_) {
    return ValueRef{this, NodeId(kCtLeafTag, instance_)};
  }
  return input_->Attr(b.IdAt(1), var);
}

std::optional<NodeId> ConstOp::Down(const NodeId& p) {
  if (space_.Owns(p)) return space_.Down(p);
  MIX_CHECK(p.tag_atom() == kCtLeafTag);
  return std::nullopt;
}

std::optional<NodeId> ConstOp::Right(const NodeId& p) {
  if (space_.Owns(p)) return space_.Right(p);
  MIX_CHECK(p.tag_atom() == kCtLeafTag);
  return std::nullopt;
}

Label ConstOp::Fetch(const NodeId& p) {
  if (space_.Owns(p)) return space_.Fetch(p);
  MIX_CHECK(p.tag_atom() == kCtLeafTag);
  return text_;
}

}  // namespace mix::algebra
