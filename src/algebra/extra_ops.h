// Convenience constructors used by XMAS head compilation.
//
// The paper's worked plan (Fig. 4) always feeds createElement from a
// concatenate or groupBy, whose outputs are list nodes. Two degenerate
// head shapes need tiny extra constructors (nested-relational singleton /
// constant constructors; not named in the paper but implied by XMAS):
//
//   * wrapList_{x -> z}: binds z to list[x] — the singleton list, so that
//     an element with a single scalar child can be built with
//     createElement (whose children are the *subtrees* of ch);
//   * const_{text -> z}: binds z to a fresh leaf labeled `text` — literal
//     character content in CONSTRUCT templates.
#ifndef MIX_ALGEBRA_EXTRA_OPS_H_
#define MIX_ALGEBRA_EXTRA_OPS_H_

#include "algebra/operator_base.h"

namespace mix::algebra {

class WrapListOp : public ConstructingOperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  WrapListOp(BindingStream* input, std::string x_var, std::string out_var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

 private:
  BindingStream* input_;
  std::string x_var_;
  std::string out_var_;
  VarList schema_;
};

/// rename_{x -> y}: pass-through that renames one schema variable —
/// the standard relational ρ, needed to align schemas for union and
/// difference across independently built chains.
class RenameOp : public OperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  RenameOp(BindingStream* input, std::string old_var, std::string new_var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

 private:
  BindingStream* input_;
  std::string old_var_;
  std::string new_var_;
  VarList schema_;
};

class ConstOp : public ConstructingOperatorBase {
 public:
  /// `input` is not owned and must outlive the operator.
  ConstOp(BindingStream* input, std::string text, std::string out_var);

  const VarList& schema() const override { return schema_; }
  std::optional<NodeId> FirstBinding() override;
  std::optional<NodeId> NextBinding(const NodeId& b) override;
  ValueRef Attr(const NodeId& b, const std::string& var) override;

  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;

 private:
  BindingStream* input_;
  std::string text_;
  std::string out_var_;
  VarList schema_;
};

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_EXTRA_OPS_H_
