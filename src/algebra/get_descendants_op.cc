#include "algebra/get_descendants_op.h"

#include <algorithm>

namespace mix::algebra {

using pathexpr::Nfa;

namespace {
const Atom kGdBTag = Atom::Intern("gd_b");
}  // namespace

GetDescendantsOp::GetDescendantsOp(BindingStream* input, std::string parent_var,
                                   pathexpr::PathExpr path, std::string out_var,
                                   Options options)
    : input_(input),
      parent_var_(std::move(parent_var)),
      path_(std::move(path)),
      out_var_(std::move(out_var)),
      options_(options) {
  MIX_CHECK(input_ != nullptr);
  schema_ = input_->schema();
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), out_var_) ==
                    schema_.end(),
                "getDescendants output variable already bound");
  MIX_CHECK_MSG(std::find(schema_.begin(), schema_.end(), parent_var_) !=
                    schema_.end(),
                "getDescendants parent variable not bound by input");
  schema_.push_back(out_var_);
  sigma_usable_ = options_.use_select_sibling && path_.IsLabelChain(&chain_);
  if (sigma_usable_) {
    chain_atoms_.reserve(chain_.size());
    chain_preds_.reserve(chain_.size());
    for (const std::string& label : chain_) {
      chain_atoms_.push_back(Atom::Intern(label));
      chain_preds_.push_back(LabelPredicate::Equals(label));
    }
  }
  EnableNavMemo();
}

std::optional<GetDescendantsOp::Frame> GetDescendantsOp::TryLevel(
    Navigable* nav, std::optional<NodeId> cand,
    const Nfa::StateSet& parent_states, size_t depth) {
  while (cand.has_value()) {
    Atom label = nav->FetchAtom(*cand);
    Nfa::StateSet states = path_.nfa().Advance(parent_states, label);
    if (!Nfa::Empty(states)) return Frame{*cand, std::move(states)};
    if (sigma_usable_ && depth < chain_.size()) {
      // One σ command finds the next sibling with the only label that can
      // advance the chain at this depth.
      std::optional<NodeId> hit =
          nav->SelectSibling(*cand, chain_preds_[depth]);
      if (!hit.has_value()) return std::nullopt;
      Nfa::StateSet st = path_.nfa().Advance(parent_states, chain_atoms_[depth]);
      MIX_CHECK(!Nfa::Empty(st));
      return Frame{*hit, std::move(st)};
    }
    cand = nav->Right(*cand);
  }
  return std::nullopt;
}

bool GetDescendantsOp::Seed(Cursor* cursor, const ValueRef& anchor) {
  std::optional<NodeId> child = anchor.nav->Down(anchor.id);
  std::optional<Frame> frame =
      TryLevel(anchor.nav, child, path_.nfa().StartSet(), 0);
  if (!frame.has_value()) return false;
  cursor->stack.push_back(std::move(*frame));
  return true;
}

bool GetDescendantsOp::Step(Cursor* cursor) {
  Navigable* nav = cursor->nav;
  auto& stack = cursor->stack;
  MIX_CHECK(!stack.empty());

  // 1. Try to descend — but only if the state set can still consume input;
  // a dead-ended (e.g. just-accepted chain) frame skips its entire subtree
  // without touching the source.
  if (path_.nfa().AnyOutgoing(stack.back().states)) {
    const Frame& top = stack.back();
    std::optional<NodeId> child = nav->Down(top.node);
    if (child.has_value()) {
      Nfa::StateSet parent_states = top.states;  // copy: push invalidates ref
      std::optional<Frame> frame =
          TryLevel(nav, child, parent_states, stack.size());
      if (frame.has_value()) {
        stack.push_back(std::move(*frame));
        return true;
      }
    }
  }
  // 2. Move right, popping levels as they exhaust.
  while (!stack.empty()) {
    Frame done = std::move(stack.back());
    stack.pop_back();
    const Nfa::StateSet parent_states =
        stack.empty() ? path_.nfa().StartSet() : stack.back().states;
    std::optional<NodeId> sibling = nav->Right(done.node);
    std::optional<Frame> frame =
        TryLevel(nav, sibling, parent_states, stack.size());
    if (frame.has_value()) {
      stack.push_back(std::move(*frame));
      return true;
    }
  }
  return false;
}

bool GetDescendantsOp::FilterPasses(const Cursor& cursor) {
  if (!options_.filter.has_value()) return true;
  const BindingPredicate& p = *options_.filter;
  auto value_of = [this, &cursor](const std::string& var) -> ValueRef {
    if (var == out_var_) {
      return ValueRef{cursor.nav, cursor.stack.back().node};
    }
    return input_->Attr(cursor.input_b, var);
  };
  // Exactly BindingPredicate::Eval, with the output binding synthesized
  // from the paused cursor instead of a stored binding id.
  std::string left = AtomOf(value_of(p.left_var()));
  std::string right =
      p.is_var_var() ? AtomOf(value_of(p.right_var())) : p.constant();
  return ApplyCompare(p.op(), CompareAtoms(left, right));
}

bool GetDescendantsOp::NextMatch(Cursor* cursor) {
  while (Step(cursor)) {
    if (path_.nfa().AnyAccepting(cursor->stack.back().states) &&
        FilterPasses(*cursor)) {
      return true;
    }
  }
  return false;
}

NodeId GetDescendantsOp::StoreCursor(Cursor cursor) {
  cursors_.push_back(std::move(cursor));
  return NodeId(kGdBTag, instance_,
                static_cast<int64_t>(cursors_.size() - 1));
}

const GetDescendantsOp::Cursor& GetDescendantsOp::CursorOf(
    const NodeId& b) const {
  CheckOwn(b, kGdBTag);
  int64_t handle = b.IntAt(1);
  MIX_CHECK(handle >= 0 && handle < static_cast<int64_t>(cursors_.size()));
  return cursors_[static_cast<size_t>(handle)];
}

std::optional<NodeId> GetDescendantsOp::ScanInput(std::optional<NodeId> ib) {
  while (ib.has_value()) {
    ValueRef anchor = input_->Attr(*ib, parent_var_);
    Cursor cursor;
    cursor.input_b = *ib;
    cursor.nav = anchor.nav;
    if (Seed(&cursor, anchor)) {
      if ((path_.nfa().AnyAccepting(cursor.stack.back().states) &&
           FilterPasses(cursor)) ||
          NextMatch(&cursor)) {
        return StoreCursor(std::move(cursor));
      }
    }
    ib = input_->NextBinding(*ib);
  }
  return std::nullopt;
}

std::optional<NodeId> GetDescendantsOp::FirstBinding() {
  std::optional<NodeId> first = ScanInput(input_->FirstBinding());
  memo_.SetFrontier(NavMemo::Command::kNextBinding, first);
  return first;
}

std::optional<NodeId> GetDescendantsOp::NextBinding(const NodeId& b) {
  // Memoized for *revisits*: re-asking NextBinding from an already-advanced
  // binding is a pure lookup — no source navigation and no duplicate cursor
  // snapshot. The forward scan itself (NextBinding on the binding just
  // issued) bypasses the memo: each frontier key is seen exactly once, so
  // caching it would be pure overhead.
  const bool frontier = memo_.IsFrontier(NavMemo::Command::kNextBinding, b);
  if (!frontier) {
    if (const auto* hit = memo_.Lookup(NavMemo::Command::kNextBinding, b)) {
      return *hit;
    }
  }
  Cursor cursor = CursorOf(b);  // snapshot copy; the original stays valid
  std::optional<NodeId> next;
  if (NextMatch(&cursor)) {
    next = StoreCursor(std::move(cursor));
  } else {
    next = ScanInput(input_->NextBinding(cursor.input_b));
  }
  if (frontier) {
    memo_.SetFrontier(NavMemo::Command::kNextBinding, next);
  } else {
    memo_.Insert(NavMemo::Command::kNextBinding, b, next);
  }
  return next;
}

void GetDescendantsOp::NextBindings(const NodeId& after, int64_t limit,
                                    std::vector<NodeId>* out) {
  if (limit == 0) return;
  auto advance = [this](const NodeId& b) -> std::optional<NodeId> {
    Cursor cursor = CursorOf(b);  // snapshot copy; the original stays valid
    if (NextMatch(&cursor)) return StoreCursor(std::move(cursor));
    return ScanInput(input_->NextBinding(cursor.input_b));
  };
  std::optional<NodeId> b =
      after.valid() ? advance(after) : ScanInput(input_->FirstBinding());
  int64_t taken = 0;
  while (b.has_value()) {
    out->push_back(*b);
    if (limit >= 0 && ++taken >= limit) return;
    b = advance(out->back());
  }
}

ValueRef GetDescendantsOp::Attr(const NodeId& b, const std::string& var) {
  const Cursor& cursor = CursorOf(b);
  if (var == out_var_) {
    return ValueRef{cursor.nav, cursor.stack.back().node};
  }
  return input_->Attr(cursor.input_b, var);
}

}  // namespace mix::algebra
