// Pass-through value forwarding for constructing operators.
//
// Operators that synthesize nodes (createElement, concatenate, groupBy)
// must serve navigations on them; once navigation descends *inside* an
// underlying input value, every further command is a pure pass-through —
// the <id, p_i> rows of Figs. 9 and 10, where d/r/f map to d/r/f on the
// input pointer. `ValueSpace` implements exactly that: it wraps a foreign
// ValueRef into an id `fw(owner, handle, inner)` (the handle resolves the
// foreign Navigable through an operator-local table) and forwards d/r/f,
// rewrapping results so the client can keep talking to the owner.
//
// Wrap() deduplicates through a small direct-mapped cache: a client that
// repeatedly crosses the same pass-through boundary (every d/r on
// synthesized structure re-wraps the result) gets the previously minted
// fw-id back instead of re-hash-consing it.
#ifndef MIX_ALGEBRA_VALUE_SPACE_H_
#define MIX_ALGEBRA_VALUE_SPACE_H_

#include <unordered_map>
#include <vector>

#include "algebra/binding_stream.h"
#include "core/atom.h"
#include "core/navigable.h"

namespace mix::algebra {

class ValueSpace {
 public:
  /// `owner_instance` stamps the minted ids so foreign fw-ids are rejected.
  explicit ValueSpace(int64_t owner_instance) : owner_(owner_instance) {}

  NodeId Wrap(const ValueRef& ref);
  bool Owns(const NodeId& id) const;
  ValueRef Unwrap(const NodeId& id) const;

  /// Forwarded navigation (<id,p> rows of Fig. 9).
  std::optional<NodeId> Down(const NodeId& id);
  std::optional<NodeId> Right(const NodeId& id);
  Label Fetch(const NodeId& id);
  Atom FetchAtom(const NodeId& id);

  /// Vectored forwarding: one batch call on the inner Navigable, results
  /// rewrapped in place. FetchSubtree rewraps only truncated resume ids —
  /// a full-depth fetch through a pass-through stack mints no ids at all.
  void DownAll(const NodeId& id, std::vector<NodeId>* out);
  void NextSiblings(const NodeId& id, int64_t limit, std::vector<NodeId>* out);
  void FetchSubtree(const NodeId& id, int64_t depth,
                    std::vector<SubtreeEntry>* out);

 private:
  struct WrapEntry {
    Navigable* nav = nullptr;
    NodeId inner;
    NodeId wrapped;
  };
  /// Direct-mapped; 256 entries ≈ the client's active working set of
  /// forwarded handles. Collisions just overwrite (correctness does not
  /// depend on hits — Wrap re-mints on a miss).
  static constexpr size_t kWrapCacheSize = 256;

  int64_t HandleFor(Navigable* nav);

  int64_t owner_;
  std::vector<Navigable*> navs_;
  std::unordered_map<Navigable*, int64_t> handle_of_;
  std::vector<WrapEntry> wrap_cache_;  ///< lazily sized to kWrapCacheSize
};

/// Process-unique operator instance id (stamped into operator node-ids).
int64_t NextOperatorInstance();

}  // namespace mix::algebra

#endif  // MIX_ALGEBRA_VALUE_SPACE_H_
