#include "algebra/reference.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/check.h"

namespace mix::algebra::reference {

size_t Table::IndexOf(const std::string& var) const {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == var) return i;
  }
  MIX_CHECK_MSG(false, ("variable not in table schema: " + var).c_str());
  return 0;
}

std::string AtomOfNode(const xml::Node* n) {
  MIX_CHECK(n != nullptr);
  if (n->is_leaf()) return n->label;
  return xml::ToTerm(n);
}

xml::Node* CopyInto(xml::Document* doc, const xml::Node* n) {
  if (n->is_leaf()) {
    return n->kind == xml::NodeKind::kText ? doc->NewText(n->label)
                                           : doc->NewElement(n->label);
  }
  xml::Node* e = doc->NewElement(n->label);
  for (const xml::Node* c : n->children) {
    doc->AppendChild(e, CopyInto(doc, c));
  }
  return e;
}

Evaluator::Evaluator(xml::Document* scratch) : scratch_(scratch) {
  MIX_CHECK(scratch_ != nullptr);
}

Table Evaluator::Source(const xml::Node* root, const std::string& var) const {
  Table t;
  t.schema.push_back(var);
  t.rows.push_back({root});
  return t;
}

namespace {

void CollectMatches(const xml::Node* n, const pathexpr::Nfa& nfa,
                    const pathexpr::Nfa::StateSet& parent_states,
                    std::vector<const xml::Node*>* out) {
  for (const xml::Node* child : n->children) {
    pathexpr::Nfa::StateSet states = nfa.Advance(parent_states, child->label);
    if (pathexpr::Nfa::Empty(states)) continue;
    if (nfa.AnyAccepting(states)) out->push_back(child);
    CollectMatches(child, nfa, states, out);
  }
}

}  // namespace

Table Evaluator::GetDescendants(const Table& in, const std::string& parent_var,
                                const pathexpr::PathExpr& path,
                                const std::string& out_var) const {
  size_t anchor = in.IndexOf(parent_var);
  Table out;
  out.schema = in.schema;
  out.schema.push_back(out_var);
  for (const auto& row : in.rows) {
    std::vector<const xml::Node*> matches;
    CollectMatches(row[anchor], path.nfa(), path.nfa().StartSet(), &matches);
    for (const xml::Node* m : matches) {
      auto extended = row;
      extended.push_back(m);
      out.rows.push_back(std::move(extended));
    }
  }
  return out;
}

bool Evaluator::EvalPredicateRow(const Table& table,
                                 const std::vector<const xml::Node*>& row,
                                 const BindingPredicate& pred) const {
  std::string left = AtomOfNode(row[table.IndexOf(pred.left_var())]);
  std::string right = pred.is_var_var()
                          ? AtomOfNode(row[table.IndexOf(pred.right_var())])
                          : pred.constant();
  return ApplyCompare(pred.op(), CompareAtoms(left, right));
}

Table Evaluator::Select(const Table& in, const BindingPredicate& pred) const {
  Table out;
  out.schema = in.schema;
  for (const auto& row : in.rows) {
    if (EvalPredicateRow(in, row, pred)) out.rows.push_back(row);
  }
  return out;
}

Table Evaluator::Join(const Table& left, const Table& right,
                      const BindingPredicate& pred) const {
  Table out;
  out.schema = left.schema;
  for (const std::string& v : right.schema) out.schema.push_back(v);

  // Orient the predicate.
  bool left_has =
      std::find(left.schema.begin(), left.schema.end(), pred.left_var()) !=
      left.schema.end();
  size_t li = left.IndexOf(left_has ? pred.left_var() : pred.right_var());
  size_t ri = right.IndexOf(left_has ? pred.right_var() : pred.left_var());

  for (const auto& lrow : left.rows) {
    for (const auto& rrow : right.rows) {
      int cmp = left_has
                    ? CompareAtoms(AtomOfNode(lrow[li]), AtomOfNode(rrow[ri]))
                    : CompareAtoms(AtomOfNode(rrow[ri]), AtomOfNode(lrow[li]));
      if (!ApplyCompare(pred.op(), cmp)) continue;
      auto row = lrow;
      row.insert(row.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Table Evaluator::GroupBy(const Table& in, const VarList& group_vars,
                         const std::string& grouped_var,
                         const std::string& out_var) const {
  std::vector<size_t> gidx;
  gidx.reserve(group_vars.size());
  for (const std::string& v : group_vars) gidx.push_back(in.IndexOf(v));
  size_t vidx = in.IndexOf(grouped_var);

  using Key = std::vector<const xml::Node*>;
  std::vector<Key> order;
  std::map<Key, std::vector<const xml::Node*>> groups;
  for (const auto& row : in.rows) {
    Key key;
    key.reserve(gidx.size());
    for (size_t i : gidx) key.push_back(row[i]);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.push_back(row[vidx]);
  }

  Table out;
  out.schema = group_vars;
  out.schema.push_back(out_var);
  if (in.rows.empty() && group_vars.empty()) {
    // groupBy{} over an empty input: one group with an empty list.
    out.rows.push_back({scratch_->NewElement(kListLabel)});
    return out;
  }
  for (const Key& key : order) {
    xml::Node* list = scratch_->NewElement(kListLabel);
    for (const xml::Node* member : groups[key]) {
      scratch_->AppendChild(list, CopyInto(scratch_, member));
    }
    std::vector<const xml::Node*> row(key.begin(), key.end());
    row.push_back(list);
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::vector<const xml::Node*> Evaluator::ItemsOf(const xml::Node* value) const {
  if (!value->is_leaf() && value->label == kListLabel) {
    return {value->children.begin(), value->children.end()};
  }
  // An empty element labeled "list" is also an (empty) list.
  if (value->kind == xml::NodeKind::kElement && value->label == kListLabel) {
    return {};
  }
  return {value};
}

Table Evaluator::Concatenate(const Table& in, const std::string& x_var,
                             const std::string& y_var,
                             const std::string& z_var) const {
  size_t xi = in.IndexOf(x_var);
  size_t yi = in.IndexOf(y_var);
  Table out;
  out.schema = in.schema;
  out.schema.push_back(z_var);
  for (const auto& row : in.rows) {
    xml::Node* list = scratch_->NewElement(kListLabel);
    for (const xml::Node* item : ItemsOf(row[xi])) {
      scratch_->AppendChild(list, CopyInto(scratch_, item));
    }
    for (const xml::Node* item : ItemsOf(row[yi])) {
      scratch_->AppendChild(list, CopyInto(scratch_, item));
    }
    auto extended = row;
    extended.push_back(list);
    out.rows.push_back(std::move(extended));
  }
  return out;
}

Table Evaluator::CreateElement(const Table& in, bool label_is_constant,
                               const std::string& label,
                               const std::string& ch_var,
                               const std::string& out_var) const {
  size_t ci = in.IndexOf(ch_var);
  Table out;
  out.schema = in.schema;
  out.schema.push_back(out_var);
  for (const auto& row : in.rows) {
    std::string l =
        label_is_constant ? label : AtomOfNode(row[in.IndexOf(label)]);
    xml::Node* e = scratch_->NewElement(std::move(l));
    for (const xml::Node* child : row[ci]->children) {
      scratch_->AppendChild(e, CopyInto(scratch_, child));
    }
    auto extended = row;
    extended.push_back(e);
    out.rows.push_back(std::move(extended));
  }
  return out;
}

Table Evaluator::OrderBy(const Table& in, const VarList& sort_vars) const {
  std::vector<size_t> sidx;
  sidx.reserve(sort_vars.size());
  for (const std::string& v : sort_vars) sidx.push_back(in.IndexOf(v));
  Table out = in;
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [&](const auto& a, const auto& b) {
                     for (size_t i : sidx) {
                       int cmp =
                           CompareAtoms(AtomOfNode(a[i]), AtomOfNode(b[i]));
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return out;
}

Table Evaluator::OrderByOccurrence(const Table& in,
                                   const VarList& sort_vars) const {
  std::vector<size_t> sidx;
  sidx.reserve(sort_vars.size());
  for (const std::string& v : sort_vars) sidx.push_back(in.IndexOf(v));

  std::map<std::vector<const xml::Node*>, size_t> first_seen;
  std::vector<std::pair<size_t, std::vector<const xml::Node*>>> keyed;
  for (const auto& row : in.rows) {
    std::vector<const xml::Node*> key;
    key.reserve(sidx.size());
    for (size_t i : sidx) key.push_back(row[i]);
    auto [it, inserted] = first_seen.try_emplace(key, first_seen.size());
    keyed.emplace_back(it->second, row);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  Table out;
  out.schema = in.schema;
  for (auto& [rank, row] : keyed) out.rows.push_back(std::move(row));
  return out;
}

Table Evaluator::Union(const Table& left, const Table& right) const {
  MIX_CHECK_MSG(left.schema == right.schema,
                "union inputs must have identical schemas");
  Table out = left;
  out.rows.insert(out.rows.end(), right.rows.begin(), right.rows.end());
  return out;
}

namespace {
std::string RowKey(const std::vector<const xml::Node*>& row) {
  std::string key;
  for (const xml::Node* n : row) {
    key += xml::ToTerm(n);
    key += '\x1f';
  }
  return key;
}
}  // namespace

Table Evaluator::Difference(const Table& left, const Table& right) const {
  MIX_CHECK_MSG(left.schema == right.schema,
                "difference inputs must have identical schemas");
  std::unordered_set<std::string> right_keys;
  for (const auto& row : right.rows) right_keys.insert(RowKey(row));
  Table out;
  out.schema = left.schema;
  for (const auto& row : left.rows) {
    if (right_keys.count(RowKey(row)) == 0) out.rows.push_back(row);
  }
  return out;
}

Table Evaluator::Distinct(const Table& in) const {
  std::unordered_set<std::string> seen;
  Table out;
  out.schema = in.schema;
  for (const auto& row : in.rows) {
    if (seen.insert(RowKey(row)).second) out.rows.push_back(row);
  }
  return out;
}

Table Evaluator::Project(const Table& in, const VarList& vars) const {
  std::vector<size_t> idx;
  idx.reserve(vars.size());
  for (const std::string& v : vars) idx.push_back(in.IndexOf(v));
  Table out;
  out.schema = vars;
  for (const auto& row : in.rows) {
    std::vector<const xml::Node*> projected;
    projected.reserve(idx.size());
    for (size_t i : idx) projected.push_back(row[i]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

const xml::Node* Evaluator::TupleDestroy(const Table& in,
                                         const std::string& var) const {
  MIX_CHECK_MSG(in.rows.size() == 1,
                "tupleDestroy requires a singleton binding list");
  size_t idx = 0;
  if (var.empty()) {
    MIX_CHECK_MSG(in.schema.size() == 1, "tupleDestroy needs a unary schema");
  } else {
    idx = in.IndexOf(var);
  }
  return in.rows[0][idx];
}

}  // namespace mix::algebra::reference
