#include "algebra/nav_memo.h"

#include <atomic>

namespace mix::algebra {

namespace {
std::atomic<size_t> g_default_capacity{1024};
}  // namespace

size_t DefaultNavMemoCapacity() {
  return g_default_capacity.load(std::memory_order_relaxed);
}

void SetDefaultNavMemoCapacity(size_t capacity) {
  g_default_capacity.store(capacity, std::memory_order_relaxed);
}

}  // namespace mix::algebra
