// Parser for the XMAS surface syntax of Fig. 3. See ast.h for the grammar
// notes; `%` starts a line comment, literal text is single-quoted.
#ifndef MIX_XMAS_PARSER_H_
#define MIX_XMAS_PARSER_H_

#include <string_view>

#include "core/status.h"
#include "xmas/ast.h"

namespace mix::xmas {

Result<Query> ParseQuery(std::string_view text);

}  // namespace mix::xmas

#endif  // MIX_XMAS_PARSER_H_
