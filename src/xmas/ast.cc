#include "xmas/ast.h"

namespace mix::xmas {

namespace {

std::string GroupToString(const std::optional<std::vector<std::string>>& group) {
  if (!group.has_value()) return "";
  std::string out = " {";
  bool first = true;
  for (const std::string& v : *group) {
    if (!first) out += ",";
    first = false;
    out += "$" + v;
  }
  out += "}";
  return out;
}

}  // namespace

std::string HeadNode::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "$" + var + GroupToString(group);
    case Kind::kText:
      return "'" + label + "'" + GroupToString(group);
    case Kind::kElement: {
      std::string out = "<" + label + ">";
      for (const auto& c : children) {
        out += " " + c->ToString();
      }
      out += " </" + label + ">" + GroupToString(group);
      return out;
    }
  }
  return "";
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kSourcePath:
      return source + " " + path + " $" + out_var;
    case Kind::kVarPath:
      return "$" + src_var + " " + path + " $" + out_var;
    case Kind::kCompare: {
      std::string out = "$" + left_var;
      out += " ";
      out += algebra::CompareOpName(op);
      out += " ";
      out += right_is_var ? "$" + right : "'" + right + "'";
      return out;
    }
  }
  return "";
}

std::vector<std::string> Query::SourceNames() const {
  std::vector<std::string> names;
  for (const Condition& c : conditions) {
    if (c.kind != Condition::Kind::kSourcePath) continue;
    bool seen = false;
    for (const std::string& n : names) {
      if (n == c.source) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(c.source);
  }
  return names;
}

std::string Query::ToString() const {
  std::string out = "CONSTRUCT " + head->ToString() + "\nWHERE ";
  for (size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) out += "\n  AND ";
    out += conditions[i].ToString();
  }
  return out;
}

}  // namespace mix::xmas
