#include "xmas/parser.h"

#include <cctype>

namespace mix::xmas {

namespace {

struct Token {
  enum class Kind {
    kWord,      ///< identifier / path expression / number
    kVar,       ///< $name
    kTagOpen,   ///< <name>
    kTagClose,  ///< </name>
    kQuoted,    ///< 'text'
    kOp,        ///< = != <> < <= > >=
    kLBrace,
    kRBrace,
    kComma,
    kEnd,
  };
  Kind kind;
  std::string text;
  int line = 1;
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '|' || c == '*' || c == '+' || c == '?' || c == '(' ||
         c == ')' || c == '@' || c == ':' || c == '-';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipWsAndComments();
      if (pos_ >= text_.size()) {
        out.push_back({Token::Kind::kEnd, "", line_});
        return out;
      }
      char c = text_[pos_];
      if (c == '<') {
        auto tag = LexTag();
        if (!tag.ok()) return tag.status();
        out.push_back(std::move(tag).ValueOrDie());
      } else if (c == '$') {
        ++pos_;
        std::string name = LexWordText();
        if (name.empty()) return Err("expected variable name after '$'");
        out.push_back({Token::Kind::kVar, std::move(name), line_});
      } else if (c == '\'') {
        ++pos_;
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          s.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) return Err("unterminated string literal");
        ++pos_;
        out.push_back({Token::Kind::kQuoted, std::move(s), line_});
      } else if (c == '{') {
        ++pos_;
        out.push_back({Token::Kind::kLBrace, "{", line_});
      } else if (c == '}') {
        ++pos_;
        out.push_back({Token::Kind::kRBrace, "}", line_});
      } else if (c == ',') {
        ++pos_;
        out.push_back({Token::Kind::kComma, ",", line_});
      } else if (c == '=' || c == '!' || c == '>') {
        out.push_back(LexOp());
      } else if (IsWordChar(c)) {
        out.push_back({Token::Kind::kWord, LexWordText(), line_});
      } else {
        return Err(std::string("unexpected character '") + c + "'");
      }
    }
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError("XMAS: " + msg + " at line " +
                              std::to_string(line_));
  }

  void SkipWsAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  std::string LexWordText() {
    std::string s;
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) {
      s.push_back(text_[pos_++]);
    }
    return s;
  }

  Token LexOp() {
    char c = text_[pos_++];
    if (c == '=') return {Token::Kind::kOp, "=", line_};
    if (c == '!' && pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      return {Token::Kind::kOp, "!=", line_};
    }
    // '>' or '>='
    if (pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      return {Token::Kind::kOp, std::string(1, c) + "=", line_};
    }
    return {Token::Kind::kOp, std::string(1, c), line_};
  }

  Result<Token> LexTag() {
    // pos_ at '<'. Could be <name>, </name>, or the operators < <= <>.
    size_t start = pos_;
    ++pos_;
    bool closing = false;
    if (pos_ < text_.size() && text_[pos_] == '/') {
      closing = true;
      ++pos_;
    }
    std::string name = LexWordText();
    if (!name.empty() && pos_ < text_.size() && text_[pos_] == '>') {
      ++pos_;
      return Token{closing ? Token::Kind::kTagClose : Token::Kind::kTagOpen,
                   std::move(name), line_};
    }
    // Not a tag: treat as comparison operator.
    pos_ = start + 1;
    if (pos_ < text_.size() && (text_[pos_] == '=' || text_[pos_] == '>')) {
      std::string op = std::string("<") + text_[pos_];
      ++pos_;
      return Token{Token::Kind::kOp, op == "<>" ? "!=" : op, line_};
    }
    return Token{Token::Kind::kOp, "<", line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

std::string Upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

Result<algebra::CompareOp> OpFromText(const std::string& text) {
  using algebra::CompareOp;
  if (text == "=") return CompareOp::kEq;
  if (text == "!=") return CompareOp::kNe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  return Status::ParseError("XMAS: unknown comparison operator " + text);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    if (!EatKeyword("CONSTRUCT")) return Err("expected CONSTRUCT");
    auto head = ParseTemplate();
    if (!head.ok()) return head.status();
    if (!EatKeyword("WHERE")) return Err("expected WHERE");
    Query q;
    q.head = std::move(head).ValueOrDie();
    for (;;) {
      if (Peek().kind == Token::Kind::kTagOpen) {
        auto pattern_conds = ParsePatternCondition();
        if (!pattern_conds.ok()) return pattern_conds.status();
        for (Condition& c : pattern_conds.value()) {
          q.conditions.push_back(std::move(c));
        }
      } else {
        auto cond = ParseCondition();
        if (!cond.ok()) return cond.status();
        q.conditions.push_back(std::move(cond).ValueOrDie());
      }
      if (!EatKeyword("AND")) break;
    }
    if (Peek().kind != Token::Kind::kEnd) return Err("trailing tokens");
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
    return tokens_[i];
  }
  Token Next() { return tokens_[pos_ >= tokens_.size() ? tokens_.size() - 1 : pos_++]; }

  bool EatKeyword(const char* kw) {
    if (Peek().kind == Token::Kind::kWord && Upper(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("XMAS: " + msg + " at line " +
                              std::to_string(Peek().line) + " near '" +
                              Peek().text + "'");
  }

  /// Parses an optional grouping annotation `{ $v, ... }`.
  Result<std::optional<std::vector<std::string>>> TryParseGroup() {
    if (Peek().kind != Token::Kind::kLBrace) {
      return std::optional<std::vector<std::string>>();
    }
    Next();
    std::vector<std::string> vars;
    if (Peek().kind == Token::Kind::kRBrace) {
      Next();
      return std::optional<std::vector<std::string>>(std::move(vars));
    }
    for (;;) {
      if (Peek().kind != Token::Kind::kVar) {
        return Err("expected variable in grouping annotation");
      }
      vars.push_back(Next().text);
      if (Peek().kind == Token::Kind::kComma) {
        Next();
        continue;
      }
      break;
    }
    if (Peek().kind != Token::Kind::kRBrace) return Err("expected '}'");
    Next();
    return std::optional<std::vector<std::string>>(std::move(vars));
  }

  Result<std::unique_ptr<HeadNode>> ParseTemplate() {
    auto node = std::make_unique<HeadNode>();
    if (Peek().kind == Token::Kind::kTagOpen) {
      Token open = Next();
      node->kind = HeadNode::Kind::kElement;
      node->label = open.text;
      while (Peek().kind != Token::Kind::kTagClose) {
        if (Peek().kind == Token::Kind::kEnd) {
          return Err("unterminated element <" + node->label + ">");
        }
        auto child = ParseTemplate();
        if (!child.ok()) return child.status();
        node->children.push_back(std::move(child).ValueOrDie());
      }
      Token close = Next();
      if (close.text != node->label) {
        return Err("mismatched </" + close.text + ">, expected </" +
                   node->label + ">");
      }
    } else if (Peek().kind == Token::Kind::kVar) {
      node->kind = HeadNode::Kind::kVar;
      node->var = Next().text;
    } else if (Peek().kind == Token::Kind::kQuoted) {
      node->kind = HeadNode::Kind::kText;
      node->label = Next().text;
    } else {
      return Err("expected element, variable or literal in CONSTRUCT");
    }
    auto group = TryParseGroup();
    if (!group.ok()) return group.status();
    node->group = std::move(group).ValueOrDie();
    return node;
  }

  // -----------------------------------------------------------------
  // Tree patterns (footnote 6): `<homes> $H: <home> <zip>$V1</zip>
  // </home> </homes> IN homesSrc` is sugar for path conditions. A
  // pattern element matches a child step; `$X:` before an element binds
  // X to it; a bare `$X` inside an element binds X to (any) content.
  // Desugaring folds unbound single-child chains into composite paths,
  // so the example becomes exactly `homesSrc homes.home $H AND
  // $H zip._ $V1`.
  // -----------------------------------------------------------------

  struct PatternNode {
    std::string label;
    std::string bound_var;  ///< via the `$X:` binder; empty if unbound.
    struct Item {
      bool is_var = false;
      std::string var;                   ///< is_var
      std::unique_ptr<PatternNode> sub;  ///< !is_var
    };
    std::vector<Item> items;
  };

  Result<std::unique_ptr<PatternNode>> ParsePatternNode() {
    if (Peek().kind != Token::Kind::kTagOpen) {
      return Err("expected pattern element");
    }
    Token open = Next();
    auto node = std::make_unique<PatternNode>();
    node->label = open.text;
    while (Peek().kind != Token::Kind::kTagClose) {
      PatternNode::Item item;
      if (Peek().kind == Token::Kind::kVar) {
        std::string var = Next().text;
        bool binder = false;
        if (!var.empty() && var.back() == ':') {
          var.pop_back();
          binder = true;
        } else if (Peek().kind == Token::Kind::kWord && Peek().text == ":") {
          Next();
          binder = true;
        }
        if (var.empty()) return Err("expected variable name in pattern");
        if (binder) {
          auto sub = ParsePatternNode();
          if (!sub.ok()) return sub.status();
          item.sub = std::move(sub).ValueOrDie();
          item.sub->bound_var = std::move(var);
        } else {
          item.is_var = true;
          item.var = std::move(var);
        }
      } else if (Peek().kind == Token::Kind::kTagOpen) {
        auto sub = ParsePatternNode();
        if (!sub.ok()) return sub.status();
        item.sub = std::move(sub).ValueOrDie();
      } else {
        return Err("expected variable or nested element in pattern");
      }
      node->items.push_back(std::move(item));
    }
    Token close = Next();
    if (close.text != node->label) {
      return Err("mismatched pattern tag </" + close.text + ">");
    }
    return node;
  }

  /// Emits the conditions for `node` anchored at `anchor` (a source name
  /// when `anchor_is_source`), appending to `out`.
  Status DesugarPattern(const std::string& anchor, bool anchor_is_source,
                        const PatternNode& node, std::vector<Condition>* out) {
    auto emit = [&](std::string path, std::string out_var) {
      Condition c;
      c.kind = anchor_is_source ? Condition::Kind::kSourcePath
                                : Condition::Kind::kVarPath;
      c.source = anchor_is_source ? anchor : "";
      c.src_var = anchor_is_source ? "" : anchor;
      c.path = std::move(path);
      c.out_var = std::move(out_var);
      out->push_back(std::move(c));
    };

    // Fold single-child chains into one composite path, descending until a
    // binder, a content variable, or a branching element.
    std::string path = node.label;
    const PatternNode* cur = &node;
    while (cur->bound_var.empty() && cur->items.size() == 1) {
      const PatternNode::Item& item = cur->items[0];
      if (item.is_var) {
        // <zip>$V1</zip>: the content step — path ends in a wildcard.
        emit(path + "._", item.var);
        return Status::OK();
      }
      path += "." + item.sub->label;
      cur = item.sub.get();
    }

    std::string target = cur->bound_var;
    if (target.empty()) {
      // Branching or leaf element with no binder: fresh anchor variable
      // (also serves as the existence witness for empty patterns).
      target = "#p" + std::to_string(fresh_pattern_vars_++);
    }
    emit(std::move(path), target);
    for (const auto& item : cur->items) {
      Status s = DesugarItem(target, item, out);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  Status DesugarItem(const std::string& anchor,
                     const PatternNode::Item& item,
                     std::vector<Condition>* out) {
    if (item.is_var) {
      Condition c;
      c.kind = Condition::Kind::kVarPath;
      c.src_var = anchor;
      c.path = "_";
      c.out_var = item.var;
      out->push_back(std::move(c));
      return Status::OK();
    }
    return DesugarPattern(anchor, /*anchor_is_source=*/false, *item.sub, out);
  }

  /// Parses `pattern IN source`, returning the desugared conditions.
  Result<std::vector<Condition>> ParsePatternCondition() {
    auto pattern = ParsePatternNode();
    if (!pattern.ok()) return pattern.status();
    if (!EatKeyword("IN")) return Err("expected IN after tree pattern");
    if (Peek().kind != Token::Kind::kWord) {
      return Err("expected source name after IN");
    }
    std::string source = Next().text;
    std::vector<Condition> out;
    Status s = DesugarPattern(source, /*anchor_is_source=*/true,
                              *pattern.value(), &out);
    if (!s.ok()) return s;
    return out;
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    if (Peek().kind == Token::Kind::kVar) {
      std::string var = Next().text;
      if (Peek().kind == Token::Kind::kOp) {
        cond.kind = Condition::Kind::kCompare;
        cond.left_var = std::move(var);
        auto op = OpFromText(Next().text);
        if (!op.ok()) return op.status();
        cond.op = op.value();
        if (Peek().kind == Token::Kind::kVar) {
          cond.right_is_var = true;
          cond.right = Next().text;
        } else if (Peek().kind == Token::Kind::kQuoted ||
                   Peek().kind == Token::Kind::kWord) {
          cond.right_is_var = false;
          cond.right = Next().text;
        } else {
          return Err("expected variable or constant after comparison");
        }
        return cond;
      }
      if (Peek().kind == Token::Kind::kWord) {
        cond.kind = Condition::Kind::kVarPath;
        cond.src_var = std::move(var);
        cond.path = Next().text;
        if (Peek().kind != Token::Kind::kVar) {
          return Err("expected output variable after path expression");
        }
        cond.out_var = Next().text;
        return cond;
      }
      return Err("expected path or comparison after variable");
    }
    if (Peek().kind == Token::Kind::kWord) {
      cond.kind = Condition::Kind::kSourcePath;
      cond.source = Next().text;
      if (Peek().kind != Token::Kind::kWord) {
        return Err("expected path expression after source name");
      }
      cond.path = Next().text;
      if (Peek().kind != Token::Kind::kVar) {
        return Err("expected output variable after path expression");
      }
      cond.out_var = Next().text;
      return cond;
    }
    return Err("expected condition");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int fresh_pattern_vars_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Lexer(text).Run();
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).ValueOrDie()).Run();
}

}  // namespace mix::xmas
