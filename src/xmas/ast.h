// XMAS — the XML Matching And Structuring Language (paper Section 3).
//
// A query has the shape of Fig. 3:
//
//   CONSTRUCT <answer>
//               <med_home> $H $S {$S} </med_home> {$H}
//             </answer> {}
//   WHERE   homesSrc homes.home $H AND $H zip._ $V1
//     AND   schoolsSrc schools.school $S AND $S zip._ $V2
//     AND   $V1 = $V2
//
// The WHERE clause is a list of conditions: generalized-path-expression
// matches rooted at a source (`source path $V`) or at a bound variable
// (`$X path $V`), and comparisons (`$X op $Y`, `$X op 'const'`). The
// CONSTRUCT clause (head) is an element template whose nodes may carry a
// grouping annotation {v1,..,vk}; an unannotated node is a scalar within
// its enclosing group. `%` starts a line comment. Literal text content is
// written in single quotes.
//
// Unlike XML-QL/Lorel-style languages, XMAS uses *explicit group-by*
// instead of Skolem functions, "thereby facilitating a direct translation
// of the queries into an algebra" — see mediator/translate.h.
#ifndef MIX_XMAS_AST_H_
#define MIX_XMAS_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/binding_stream.h"
#include "core/status.h"

namespace mix::xmas {

/// A node of the CONSTRUCT template.
struct HeadNode {
  enum class Kind { kElement, kVar, kText };

  Kind kind = Kind::kElement;
  std::string label;  ///< element tag (kElement) or literal text (kText).
  std::string var;    ///< variable name without '$' (kVar).
  std::vector<std::unique_ptr<HeadNode>> children;  ///< kElement only.
  /// Grouping annotation: {v1..vk} (possibly empty = "{}"); nullopt means
  /// the node is a scalar within the enclosing group.
  std::optional<std::vector<std::string>> group;

  std::string ToString() const;
};

/// One WHERE condition.
struct Condition {
  enum class Kind {
    kSourcePath,  ///< source path $V
    kVarPath,     ///< $X path $V
    kCompare,     ///< $X op ($Y | 'const')
  };

  Kind kind = Kind::kCompare;

  // kSourcePath / kVarPath:
  std::string source;   ///< source name (kSourcePath).
  std::string src_var;  ///< anchor variable (kVarPath).
  std::string path;     ///< path-expression text.
  std::string out_var;  ///< bound variable.

  // kCompare:
  std::string left_var;
  algebra::CompareOp op = algebra::CompareOp::kEq;
  bool right_is_var = false;
  std::string right;  ///< variable name or constant text.

  std::string ToString() const;
};

struct Query {
  std::unique_ptr<HeadNode> head;
  std::vector<Condition> conditions;

  /// Source names mentioned in the WHERE clause, in first-use order.
  std::vector<std::string> SourceNames() const;

  std::string ToString() const;
};

}  // namespace mix::xmas

#endif  // MIX_XMAS_AST_H_
