#include "client/framed_document.h"

namespace mix::client {

namespace {
using service::wire::Frame;
using service::wire::MsgType;
}  // namespace

Result<std::unique_ptr<FramedDocument>> FramedDocument::Open(
    service::wire::FrameTransport* transport, const std::string& xmas_text,
    int64_t deadline_ns) {
  Frame req;
  req.type = MsgType::kOpen;
  req.text = xmas_text;
  req.deadline_ns = deadline_ns;
  Result<Frame> resp = service::wire::Call(transport, req);
  if (!resp.ok()) return resp.status();
  if (resp.value().type != MsgType::kOpenOk || resp.value().session == 0) {
    return Status::Internal("malformed open response");
  }
  return std::unique_ptr<FramedDocument>(
      new FramedDocument(transport, resp.value().session, deadline_ns));
}

Result<std::unique_ptr<FramedDocument>> FramedDocument::Open(
    service::wire::FrameTransport* transport, const std::string& xmas_text,
    int64_t deadline_ns, const net::RetryOptions& retry, uint64_t seed) {
  net::RetryPolicy policy(retry, seed);
  Result<std::unique_ptr<FramedDocument>> result =
      Status::Internal("open never attempted");
  net::RetryPolicy::Outcome outcome = policy.Run(
      [&]() {
        result = Open(transport, xmas_text, deadline_ns);
        return result.ok() ? Status::OK() : result.status();
      },
      /*clock=*/nullptr, /*deadline_ns=*/-1);
  if (!outcome.status.ok()) return outcome.status;
  result.value()->set_retry(retry, seed);
  result.value()->retries_ += outcome.retries;
  return result;
}

Result<std::unique_ptr<FramedDocument>> FramedDocument::Open(
    std::unique_ptr<service::wire::FrameTransport> transport,
    const std::string& xmas_text, int64_t deadline_ns) {
  Result<std::unique_ptr<FramedDocument>> doc =
      Open(transport.get(), xmas_text, deadline_ns);
  if (!doc.ok()) return doc.status();
  doc.value()->owned_transport_ = std::move(transport);
  return doc;
}

Result<std::unique_ptr<FramedDocument>> FramedDocument::Open(
    std::unique_ptr<service::wire::FrameTransport> transport,
    const std::string& xmas_text, int64_t deadline_ns,
    const net::RetryOptions& retry, uint64_t seed) {
  Result<std::unique_ptr<FramedDocument>> doc =
      Open(transport.get(), xmas_text, deadline_ns, retry, seed);
  if (!doc.ok()) return doc.status();
  doc.value()->owned_transport_ = std::move(transport);
  return doc;
}

void FramedDocument::set_retry(const net::RetryOptions& retry, uint64_t seed) {
  retry_ = std::make_unique<net::RetryPolicy>(retry, seed);
}

Status FramedDocument::Close() {
  // A close that failed in transit is safe to re-issue: a duplicate close
  // reports kNotFound, which is non-retryable and surfaces as-is.
  Frame req = Request(MsgType::kClose);
  Result<Frame> resp = CallWithRetry(req);
  if (!resp.ok()) {
    last_status_ = resp.status();
    return resp.status();
  }
  return Status::OK();
}

Frame FramedDocument::Request(MsgType type) const {
  Frame f;
  f.type = type;
  f.session = session_;
  f.deadline_ns = deadline_ns_;
  return f;
}

Result<Frame> FramedDocument::CallWithRetry(const Frame& request) {
  if (retry_ == nullptr) return service::wire::Call(transport_, request);
  Result<Frame> result = Status::Internal("call never attempted");
  // No clock: client-side retries are attempt-bounded, not time-funded —
  // the transport's own latency paces them.
  net::RetryPolicy::Outcome outcome = retry_->Run(
      [&]() {
        result = service::wire::Call(transport_, request);
        return result.ok() ? Status::OK() : result.status();
      },
      /*clock=*/nullptr, /*deadline_ns=*/-1);
  retries_ += outcome.retries;
  if (!outcome.status.ok()) return outcome.status;
  return result;
}

std::optional<Frame> FramedDocument::Dispatch(const Frame& request) {
  Result<Frame> resp = CallWithRetry(request);
  if (!resp.ok()) {
    last_status_ = resp.status();
    return std::nullopt;
  }
  return std::move(resp).ValueOrDie();
}

NodeId FramedDocument::Root() {
  std::optional<Frame> resp = Dispatch(Request(MsgType::kRoot));
  if (!resp.has_value() || !resp->flag) return NodeId();
  return resp->node;
}

std::optional<NodeId> FramedDocument::Down(const NodeId& p) {
  Frame req = Request(MsgType::kDown);
  req.node = p;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value() || !resp->flag) return std::nullopt;
  return resp->node;
}

std::optional<NodeId> FramedDocument::Right(const NodeId& p) {
  Frame req = Request(MsgType::kRight);
  req.node = p;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value() || !resp->flag) return std::nullopt;
  return resp->node;
}

Label FramedDocument::Fetch(const NodeId& p) {
  Frame req = Request(MsgType::kFetch);
  req.node = p;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value()) return "";
  return std::move(resp->text);
}

std::optional<NodeId> FramedDocument::SelectSibling(
    const NodeId& p, const LabelPredicate& pred) {
  if (!pred.is_equality()) return Navigable::SelectSibling(p, pred);
  Frame req = Request(MsgType::kSelectSibling);
  req.node = p;
  req.text2 = pred.equals_atom().name();
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value() || !resp->flag) return std::nullopt;
  return resp->node;
}

std::optional<NodeId> FramedDocument::NthChild(const NodeId& p, int64_t index) {
  Frame req = Request(MsgType::kNthChild);
  req.node = p;
  req.number = index;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value() || !resp->flag) return std::nullopt;
  return resp->node;
}

void FramedDocument::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  Frame req = Request(MsgType::kDownAll);
  req.node = p;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value()) return;
  out->insert(out->end(), resp->nodes.begin(), resp->nodes.end());
}

void FramedDocument::NextSiblings(const NodeId& p, int64_t limit,
                                  std::vector<NodeId>* out) {
  Frame req = Request(MsgType::kNextSiblings);
  req.node = p;
  req.number = limit;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value()) return;
  out->insert(out->end(), resp->nodes.begin(), resp->nodes.end());
}

void FramedDocument::FetchSubtree(const NodeId& p, int64_t depth,
                                  std::vector<SubtreeEntry>* out) {
  Frame req = Request(MsgType::kFetchSubtree);
  req.node = p;
  req.number = depth;
  std::optional<Frame> resp = Dispatch(req);
  if (!resp.has_value()) return;
  out->insert(out->end(), resp->entries.begin(), resp->entries.end());
}

}  // namespace mix::client
