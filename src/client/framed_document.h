// Client-side session stub: a Navigable over the mixd wire protocol.
//
// FramedDocument is what turns a remote mediator session into "just another
// document": it implements the full Navigable interface by encoding each
// DOM-VXD command as one frame, round-tripping it through a FrameTransport,
// and decoding the response. Layered under client::VirtualXmlDocument, the
// paper's transparency property (Section 5) extends across the service
// boundary — XmlElement code cannot tell a framed session from an
// in-process mediator, which the codec round-trip tests assert byte for
// byte.
//
// Error model: Navigable has no Status channel (the paper's d/r/f return
// node-or-⊥), so failures — overload, expired deadlines, closed sessions —
// surface as ⊥/empty results, and the precise Status is latched in
// last_status() for the application to inspect. Navigating on after an
// error is safe: the session (if alive) is untouched by failed requests.
#ifndef MIX_CLIENT_FRAMED_DOCUMENT_H_
#define MIX_CLIENT_FRAMED_DOCUMENT_H_

#include <memory>
#include <string>

#include "core/navigable.h"
#include "core/status.h"
#include "net/fault.h"
#include "service/wire.h"

namespace mix::client {

class FramedDocument : public Navigable {
 public:
  /// Opens a session for `xmas_text` on the server behind `transport`.
  /// `deadline_ns` (0 = none) applies to the open and every later command.
  static Result<std::unique_ptr<FramedDocument>> Open(
      service::wire::FrameTransport* transport, const std::string& xmas_text,
      int64_t deadline_ns = 0);

  /// Open with client-side retry: the open frame itself and every later
  /// command retry transport-level failures per `retry`. (Server-reported
  /// errors come back as kError frames, which Call converts to their
  /// Status — retryable codes among those are retried too.)
  static Result<std::unique_ptr<FramedDocument>> Open(
      service::wire::FrameTransport* transport, const std::string& xmas_text,
      int64_t deadline_ns, const net::RetryOptions& retry,
      uint64_t seed = 0x636c69656e742d72ull);

  /// Owning-transport Open: the document takes the transport with it. This
  /// is the factory seam a connection-minting tier plugs into — e.g.
  /// fleet::SessionRouter::OpenDocument hands each client document its own
  /// routed transport — without the caller tracking two lifetimes.
  static Result<std::unique_ptr<FramedDocument>> Open(
      std::unique_ptr<service::wire::FrameTransport> transport,
      const std::string& xmas_text, int64_t deadline_ns = 0);
  static Result<std::unique_ptr<FramedDocument>> Open(
      std::unique_ptr<service::wire::FrameTransport> transport,
      const std::string& xmas_text, int64_t deadline_ns,
      const net::RetryOptions& retry, uint64_t seed = 0x636c69656e742d72ull);

  /// Closes the server-side session; further navigation returns ⊥ with
  /// last_status() == kNotFound. Idempotent (second close reports the
  /// server's kNotFound).
  Status Close();

  uint64_t session_id() const { return session_; }
  const Status& last_status() const { return last_status_; }
  void clear_last_status() { last_status_ = Status::OK(); }
  /// Per-command deadline for subsequent requests (0 = none).
  void set_deadline_ns(int64_t ns) { deadline_ns_ = ns; }

  /// Installs (or replaces) client-side retry for subsequent commands.
  /// Client retries are attempt-bounded only (no clock: the transport's own
  /// latency is the pacing); navigation requests are idempotent reads, so
  /// re-issuing them is always safe.
  void set_retry(const net::RetryOptions& retry,
                 uint64_t seed = 0x636c69656e742d72ull);
  /// Command re-issues performed by this stub so far.
  int64_t retries() const { return retries_; }

  // --- Navigable over frames ---
  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  /// Equality predicates travel as σ frames; arbitrary predicates fall back
  /// to the base-class r/f loop (they cannot be serialized).
  std::optional<NodeId> SelectSibling(const NodeId& p,
                                      const LabelPredicate& pred) override;
  std::optional<NodeId> NthChild(const NodeId& p, int64_t index) override;
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  FramedDocument(service::wire::FrameTransport* transport, uint64_t session,
                 int64_t deadline_ns)
      : transport_(transport), session_(session), deadline_ns_(deadline_ns) {}

  /// Builds a request frame bound to this session/deadline.
  service::wire::Frame Request(service::wire::MsgType type) const;
  /// wire::Call, re-issued under the installed retry policy (if any).
  Result<service::wire::Frame> CallWithRetry(
      const service::wire::Frame& request);
  /// Calls and latches errors; nullopt response on failure.
  std::optional<service::wire::Frame> Dispatch(
      const service::wire::Frame& request);

  service::wire::FrameTransport* transport_;
  /// Set only by the owning-transport Open overloads; transport_ aliases it
  /// then. Destroyed after no request can be in flight (documents are not
  /// thread-safe, so destruction is ordered after the last call).
  std::unique_ptr<service::wire::FrameTransport> owned_transport_;
  uint64_t session_;
  int64_t deadline_ns_;
  Status last_status_;
  std::unique_ptr<net::RetryPolicy> retry_;
  int64_t retries_ = 0;
};

}  // namespace mix::client

#endif  // MIX_CLIENT_FRAMED_DOCUMENT_H_
