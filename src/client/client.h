// The thin client library (paper Section 5).
//
// "A thin client library between the mediator and the client application
// makes the virtual document exported by the mediator indistinguishable
// from a main memory resident document accessed via DOM": `XmlElement`
// objects hide the mediator's structured node-ids in a private field and
// translate DOM-style calls (FirstChild, NextSibling, Name) into DOM-VXD
// commands on the mediator. The same class works over a materialized
// DocNavigable — client code cannot tell the difference, which is the
// transparency property tests assert.
#ifndef MIX_CLIENT_CLIENT_H_
#define MIX_CLIENT_CLIENT_H_

#include <string>
#include <vector>

#include "core/navigable.h"

namespace mix::client {

/// A handle to one element/leaf of a (possibly virtual) XML document.
/// Cheap to copy; null handles answer IsNull().
class XmlElement {
 public:
  XmlElement() = default;

  bool IsNull() const { return nav_ == nullptr; }

  /// Tag name of an element, or the character content of a leaf (f).
  std::string Name() const;

  /// First child (d); null for leaves.
  XmlElement FirstChild() const;

  /// Right sibling (r); null at the end of a child list.
  XmlElement NextSibling() const;

  /// First following sibling whose name equals `name` (σ).
  XmlElement SelectSibling(const std::string& name) const;

  // --- conveniences layered on the three primitives ---

  /// All children, via one vectored DownAll (one request/response pair on a
  /// demand-paged buffer instead of one per child).
  std::vector<XmlElement> Children() const;

  /// Up to `limit` following siblings (`limit < 0`: all), via one vectored
  /// NextSiblings — the result-paging call of a browsing client.
  std::vector<XmlElement> FollowingSiblings(int64_t limit) const;

  /// First child named `name`, or null.
  XmlElement Child(const std::string& name) const;

  /// The `index`-th (0-based) child, or null (XPointer-style NthChild).
  XmlElement ChildAt(int64_t index) const;

  /// The label of the first leaf descendant (typical "text content" of
  /// record-shaped elements like <zip>91220</zip>).
  std::string Text() const;

  /// Value of the XML attribute `name`. Attributes surface as leading
  /// "@name" child elements (xml/tree.h); returns "" when absent.
  std::string Attribute(const std::string& name) const;

  bool IsLeaf() const { return FirstChild().IsNull(); }

 private:
  friend class VirtualXmlDocument;
  XmlElement(Navigable* nav, NodeId id) : nav_(nav), id_(std::move(id)) {}

  // The paper's "private field node_id that contains the corresponding
  // node-id exported by the mediator".
  Navigable* nav_ = nullptr;
  NodeId id_;
};

/// Entry point: wraps a mediator's virtual answer document (or any
/// Navigable).
class VirtualXmlDocument {
 public:
  /// `doc` is not owned and must outlive the document and every element
  /// handle obtained from it.
  explicit VirtualXmlDocument(Navigable* doc) : doc_(doc) {}

  XmlElement Root() const;

 private:
  Navigable* doc_;
};

}  // namespace mix::client

#endif  // MIX_CLIENT_CLIENT_H_
