#include "client/client.h"

#include "core/check.h"

namespace mix::client {

std::string XmlElement::Name() const {
  MIX_CHECK_MSG(!IsNull(), "Name() on a null element");
  return nav_->Fetch(id_);
}

XmlElement XmlElement::FirstChild() const {
  MIX_CHECK_MSG(!IsNull(), "FirstChild() on a null element");
  std::optional<NodeId> child = nav_->Down(id_);
  if (!child.has_value()) return XmlElement();
  return XmlElement(nav_, std::move(*child));
}

XmlElement XmlElement::NextSibling() const {
  MIX_CHECK_MSG(!IsNull(), "NextSibling() on a null element");
  std::optional<NodeId> sibling = nav_->Right(id_);
  if (!sibling.has_value()) return XmlElement();
  return XmlElement(nav_, std::move(*sibling));
}

XmlElement XmlElement::SelectSibling(const std::string& name) const {
  MIX_CHECK_MSG(!IsNull(), "SelectSibling() on a null element");
  std::optional<NodeId> hit =
      nav_->SelectSibling(id_, LabelPredicate::Equals(name));
  if (!hit.has_value()) return XmlElement();
  return XmlElement(nav_, std::move(*hit));
}

std::vector<XmlElement> XmlElement::Children() const {
  MIX_CHECK_MSG(!IsNull(), "Children() on a null element");
  std::vector<NodeId> ids;
  nav_->DownAll(id_, &ids);
  std::vector<XmlElement> out;
  out.reserve(ids.size());
  for (NodeId& id : ids) out.push_back(XmlElement(nav_, std::move(id)));
  return out;
}

std::vector<XmlElement> XmlElement::FollowingSiblings(int64_t limit) const {
  MIX_CHECK_MSG(!IsNull(), "FollowingSiblings() on a null element");
  std::vector<NodeId> ids;
  nav_->NextSiblings(id_, limit, &ids);
  std::vector<XmlElement> out;
  out.reserve(ids.size());
  for (NodeId& id : ids) out.push_back(XmlElement(nav_, std::move(id)));
  return out;
}

XmlElement XmlElement::Child(const std::string& name) const {
  for (XmlElement c = FirstChild(); !c.IsNull(); c = c.NextSibling()) {
    if (c.Name() == name) return c;
  }
  return XmlElement();
}

std::string XmlElement::Text() const {
  XmlElement cur = *this;
  for (;;) {
    XmlElement child = cur.FirstChild();
    if (child.IsNull()) return cur.Name();
    cur = child;
  }
}

XmlElement XmlElement::ChildAt(int64_t index) const {
  MIX_CHECK_MSG(!IsNull(), "ChildAt() on a null element");
  std::optional<NodeId> child = nav_->NthChild(id_, index);
  if (!child.has_value()) return XmlElement();
  return XmlElement(nav_, std::move(*child));
}

std::string XmlElement::Attribute(const std::string& name) const {
  XmlElement attr = Child("@" + name);
  if (attr.IsNull()) return "";
  return attr.Text();
}

XmlElement VirtualXmlDocument::Root() const {
  MIX_CHECK(doc_ != nullptr);
  return XmlElement(doc_, doc_->Root());
}

}  // namespace mix::client
