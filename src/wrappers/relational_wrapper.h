// The relational LXP wrapper (paper Section 4).
//
// Exports a relational database as an XML view and answers LXP fills by
// advancing relational cursors. Two views are supported:
//
// 1. Whole-database view (`GetRoot("db")`), matching the paper's schema:
//
//      db_name[ table1[hole], ..., tablek[hole] ]
//
//    with row chunks of `chunk` tuples per fill and a trailing hole
//    `t:<table>:<row>` (the paper's `db_name.table.row_number` encoding:
//    all wrapper state lives in the hole id, no lookup table needed).
//
// 2. Query-result views: `GetRoot("sql:<SELECT ...>")` registers a mini-SQL
//    query (the paper: "the source generates a URI to identify the query
//    result") and exports view[row...] in Fig. 6's format, also chunked.
//
// Rows ship complete — "the wrapper does not have to deal with navigations
// at the attribute level". Row elements use the constant label "row"
// (Fig. 6 uses positional names row1..rown for presentation; a constant
// label is what path expressions need).
#ifndef MIX_WRAPPERS_RELATIONAL_WRAPPER_H_
#define MIX_WRAPPERS_RELATIONAL_WRAPPER_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "rdb/database.h"
#include "rdb/sql.h"

namespace mix::wrappers {

class RelationalLxpWrapper : public buffer::LxpWrapper {
 public:
  struct Options {
    /// Tuples per fill (the paper's parameter n).
    int chunk = 10;
  };

  /// `db` is not owned and must outlive the wrapper.
  RelationalLxpWrapper(const rdb::Database* db, Options options);
  explicit RelationalLxpWrapper(const rdb::Database* db)
      : RelationalLxpWrapper(db, Options()) {}

  /// Predicate pushdown capability: the optimizer may rewrite a plan's
  /// source to a "sql:SELECT ... WHERE ..." query view, in which case the
  /// WHERE clause runs against the relational cursors and filtered rows
  /// never become fragments. σ stays off: crossing row holes still costs
  /// one fill per chunk, so sibling selection is not a bounded exchange.
  buffer::PushdownCapability Capability() const override;

  /// URIs: "db" for the whole-database view, "sql:<stmt>" for a query view.
  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  /// Batched fills with continuation-hole chasing: the hole-id encodings
  /// are stateless, so the shared budgeted chase loop applies directly.
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  int64_t fills_served() const { return fills_served_; }
  /// Total source rows the wrapper's cursors stepped over (I/O proxy).
  int64_t rows_scanned() const { return rows_scanned_; }

 protected:
  /// Adaptive fill sizing from the shared chase loop: full scans serve
  /// max(chunk, hint) rows per fill, amortizing the per-fill cursor reopen.
  void SetFillSizeHint(int64_t elements) override {
    fill_size_hint_ = elements;
  }

 private:
  int64_t EffectiveChunk() const {
    return fill_size_hint_ > 0
               ? std::max<int64_t>(options_.chunk, fill_size_hint_)
               : options_.chunk;
  }

  buffer::Fragment RowFragment(const rdb::Schema& schema, const rdb::Row& row);
  buffer::FragmentList FillDatabase();
  buffer::FragmentList FillTable(const std::string& table, int64_t from_row);
  buffer::FragmentList FillQuery(int64_t query_id, int64_t from_row,
                                 bool root_fill);

  const rdb::Database* db_;
  Options options_;
  int64_t fill_size_hint_ = 0;
  int64_t fills_served_ = 0;
  int64_t rows_scanned_ = 0;

  struct RegisteredQuery {
    rdb::SelectStatement statement;
    std::unique_ptr<rdb::SelectResult> result;
  };
  std::vector<RegisteredQuery> queries_;
};

}  // namespace mix::wrappers

#endif  // MIX_WRAPPERS_RELATIONAL_WRAPPER_H_
