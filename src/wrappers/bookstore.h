// Simulated Web bookstore sources — the introduction's allbooks scenario.
//
// The paper motivates virtual views with a mediator integrating
// amazon.com and barnesandnoble.com: the complete dataset cannot be
// obtained, availability changes constantly, and users browse only the
// first few results. We cannot scrape the real sites (DESIGN.md
// substitution table), so this module provides:
//
//   * a deterministic synthetic catalog generator (titles, authors, price,
//     stock), with configurable overlap between two stores;
//   * an XHTML page renderer — each "site" serves its catalog as paginated
//     HTML listing pages;
//   * `BookstoreLxpWrapper`, an HTML-XML wrapper (Fig. 1) that fetches a
//     page at a time, *parses the HTML* and exports the books as an XML
//     view `books[book[title,author,price,stock]...]`, page-at-a-time —
//     the Section 4 coarse-granularity Web source.
#ifndef MIX_WRAPPERS_BOOKSTORE_H_
#define MIX_WRAPPERS_BOOKSTORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/lxp.h"

namespace mix::wrappers {

struct Book {
  std::string title;
  std::string author;
  int64_t price_cents = 0;
  int64_t stock = 0;
};

struct CatalogOptions {
  int size = 100;
  uint64_t seed = 1;
  /// Books [0, shared_prefix) are generated from a seed common to both
  /// stores, so two catalogs with the same shared_prefix overlap on them.
  int shared_prefix = 0;
};

/// Deterministic synthetic catalog.
std::vector<Book> MakeCatalog(const CatalogOptions& options);

/// One paginated "web site" serving a catalog as XHTML listing pages.
class BookstoreSite {
 public:
  BookstoreSite(std::string name, std::vector<Book> catalog, int page_size);

  const std::string& name() const { return name_; }
  int page_count() const;
  int page_size() const { return page_size_; }
  int64_t catalog_size() const { return static_cast<int64_t>(catalog_.size()); }

  /// Renders listing page `page` (0-based) as XHTML. The page embeds each
  /// book as <li class="book"> with <span> fields, plus a rel="next" link
  /// when more pages exist — the structure the wrapper scrapes.
  std::string RenderPageHtml(int page) const;

  int64_t pages_served() const { return pages_served_; }

 private:
  std::string name_;
  std::vector<Book> catalog_;
  int page_size_;
  mutable int64_t pages_served_ = 0;
};

/// HTML-XML wrapper over a BookstoreSite: fetches pages on demand, scrapes
/// them with the XML parser (pages are well-formed XHTML) and exports
///   books[ book[title[..],author[..],price[..],stock[..]]* ]
/// with one LXP fill per page and a trailing hole "page:<k+1>".
class BookstoreLxpWrapper : public buffer::LxpWrapper {
 public:
  /// `site` is not owned and must outlive the wrapper.
  explicit BookstoreLxpWrapper(const BookstoreSite* site);

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  /// Batched fills with continuation-hole chasing: the hole-id encodings
  /// are stateless, so the shared budgeted chase loop applies directly.
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  int64_t pages_fetched() const { return pages_fetched_; }

 private:
  const BookstoreSite* site_;
  int64_t pages_fetched_ = 0;
};

}  // namespace mix::wrappers

#endif  // MIX_WRAPPERS_BOOKSTORE_H_
