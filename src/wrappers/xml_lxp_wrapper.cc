#include "wrappers/xml_lxp_wrapper.h"

#include <algorithm>
#include <cstdlib>

#include "core/check.h"

namespace mix::wrappers {

using buffer::Fragment;
using buffer::FragmentList;
using buffer::FillBudget;
using buffer::HoleFillList;

namespace {

/// Hole ids address a child range: "x:<node>:<lo>:<hi>" = children of arena
/// node <node> at positions [lo, hi).
std::string HoleId(int64_t node_index, int64_t lo, int64_t hi) {
  return "x:" + std::to_string(node_index) + ":" + std::to_string(lo) + ":" +
         std::to_string(hi);
}

void ParseHoleId(const std::string& id, int64_t* node_index, int64_t* lo,
                 int64_t* hi) {
  MIX_CHECK_MSG(id.size() > 2 && id[0] == 'x' && id[1] == ':',
                "foreign hole id passed to XmlLxpWrapper");
  const char* p = id.c_str() + 2;
  char* end = nullptr;
  *node_index = std::strtoll(p, &end, 10);
  MIX_CHECK(end != nullptr && *end == ':');
  *lo = std::strtoll(end + 1, &end, 10);
  MIX_CHECK(end != nullptr && *end == ':');
  *hi = std::strtoll(end + 1, &end, 10);
}

}  // namespace

XmlLxpWrapper::XmlLxpWrapper(const xml::Document* doc, Options options)
    : doc_(doc), options_(options) {
  MIX_CHECK(doc_ != nullptr && doc_->root() != nullptr);
  MIX_CHECK(options_.chunk >= 1);
}

std::string XmlLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;
  return "xroot";
}

Fragment XmlLxpWrapper::FragmentFor(const xml::Node* child) {
  if (options_.inline_limit > 0 &&
      xml::SubtreeSize(child) <= options_.inline_limit) {
    return Fragment::FromXmlSubtree(child);
  }
  if (child->kind == xml::NodeKind::kText) {
    return Fragment::Text(child->label);
  }
  if (child->children.empty()) {
    return Fragment::Element(child->label);
  }
  Fragment f = Fragment::Element(child->label);
  f.children.push_back(Fragment::Hole(
      HoleId(child->index, 0, static_cast<int64_t>(child->children.size()))));
  return f;
}

FragmentList XmlLxpWrapper::Fill(const std::string& hole_id) {
  ++fills_served_;
  if (hole_id == "xroot") {
    return {FragmentFor(doc_->root())};
  }
  int64_t node_index = 0;
  int64_t lo = 0;
  int64_t hi = 0;
  ParseHoleId(hole_id, &node_index, &lo, &hi);
  const xml::Node* parent = doc_->NodeAt(node_index);
  MIX_CHECK(lo >= 0 && lo <= hi &&
            hi <= static_cast<int64_t>(parent->children.size()));

  int64_t take = std::min<int64_t>(EffectiveChunk(), hi - lo);
  FragmentList out;
  if (take == 0) return out;

  if (options_.policy == FillPolicy::kLeftToRight) {
    // [e_lo ... e_{lo+take-1}, hole(lo+take, hi)?]
    for (int64_t i = lo; i < lo + take; ++i) {
      out.push_back(FragmentFor(parent->children[static_cast<size_t>(i)]));
    }
    if (lo + take < hi) {
      out.push_back(Fragment::Hole(HoleId(node_index, lo + take, hi)));
    }
  } else {
    // Liberal (Ex. 7 style): [hole(lo, hi-take)?, e_{hi-take} ... e_{hi-1}]
    int64_t front_end = hi - take;
    if (front_end > lo) {
      out.push_back(Fragment::Hole(HoleId(node_index, lo, front_end)));
    }
    for (int64_t i = front_end; i < hi; ++i) {
      out.push_back(FragmentFor(parent->children[static_cast<size_t>(i)]));
    }
  }
  return out;
}

HoleFillList XmlLxpWrapper::FillMany(const std::vector<std::string>& holes,
                            const FillBudget& budget) {
  return ChaseFills(holes, budget);
}

}  // namespace mix::wrappers
