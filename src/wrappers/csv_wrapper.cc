#include "wrappers/csv_wrapper.h"

#include <cstdlib>

#include "core/check.h"

namespace mix::wrappers {

using buffer::Fragment;
using buffer::FragmentList;
using buffer::FillBudget;
using buffer::HoleFillList;

Result<CsvTable> ParseCsv(std::string_view text) {
  CsvTable table;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() -> Status {
    if (record.empty()) return Status::OK();
    if (table.columns.empty()) {
      table.columns = std::move(record);
    } else {
      if (record.size() != table.columns.size()) {
        return Status::ParseError(
            "CSV row " + std::to_string(table.rows.size() + 2) + " has " +
            std::to_string(record.size()) + " fields, header has " +
            std::to_string(table.columns.size()));
      }
      table.rows.push_back(std::move(record));
    }
    record.clear();
    return Status::OK();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("CSV: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n': {
        if (!field.empty() || field_started || !record.empty()) end_field();
        Status s = end_record();
        if (!s.ok()) return s;
        break;
      }
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) return Status::ParseError("CSV: unterminated quoted field");
  if (!field.empty() || field_started || !record.empty()) end_field();
  Status s = end_record();
  if (!s.ok()) return s;
  if (table.columns.empty()) {
    return Status::ParseError("CSV: missing header record");
  }
  return table;
}

CsvLxpWrapper::CsvLxpWrapper(const CsvTable* table, Options options)
    : table_(table), options_(options) {
  MIX_CHECK(table_ != nullptr);
  MIX_CHECK(options_.chunk >= 1);
}

std::string CsvLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;
  return "c:root";
}

Fragment CsvLxpWrapper::RowFragment(size_t row) const {
  Fragment f = Fragment::Element("row");
  const auto& values = table_->rows[row];
  for (size_t i = 0; i < table_->columns.size(); ++i) {
    Fragment col = Fragment::Element(table_->columns[i]);
    col.children.push_back(Fragment::Text(values[i]));
    f.children.push_back(std::move(col));
  }
  return f;
}

FragmentList CsvLxpWrapper::Fill(const std::string& hole_id) {
  ++fills_served_;
  MIX_CHECK_MSG(hole_id.rfind("c:", 0) == 0,
                "foreign hole id passed to CsvLxpWrapper");
  if (hole_id == "c:root") {
    Fragment root = Fragment::Element("csv");
    if (!table_->rows.empty()) {
      root.children.push_back(Fragment::Hole("c:0"));
    }
    return {std::move(root)};
  }
  size_t from = static_cast<size_t>(std::strtoll(hole_id.c_str() + 2,
                                                 nullptr, 10));
  MIX_CHECK(from <= table_->rows.size());
  size_t to = std::min(table_->rows.size(),
                       from + static_cast<size_t>(EffectiveChunk()));
  FragmentList out;
  for (size_t i = from; i < to; ++i) out.push_back(RowFragment(i));
  if (to < table_->rows.size()) {
    out.push_back(Fragment::Hole("c:" + std::to_string(to)));
  }
  return out;
}

HoleFillList CsvLxpWrapper::FillMany(const std::vector<std::string>& holes,
                            const FillBudget& budget) {
  return ChaseFills(holes, budget);
}

}  // namespace mix::wrappers
