// LXP wrapper over an XML document source.
//
// Models the paper's XML/OODB sources (Fig. 1) and its streaming policy for
// huge documents: "start streaming of huge documents by sending complete
// elements if their size does not exceed a certain limit (say 50K)". Fills
// return up to `chunk` children at a time; children whose subtree size is at
// most `inline_limit` nodes ship completely, larger children ship as a
// labeled element with a child hole.
//
// Hole ids encode all state ("whenever feasible, it is usually better to
// encode all necessary information into the hole id"): `x:<node>:<child>`
// addresses the children of arena node `<node>` starting at position
// `<child>`.
#ifndef MIX_WRAPPERS_XML_LXP_WRAPPER_H_
#define MIX_WRAPPERS_XML_LXP_WRAPPER_H_

#include <algorithm>
#include <string>

#include "buffer/lxp.h"
#include "xml/tree.h"

namespace mix::wrappers {

class XmlLxpWrapper : public buffer::LxpWrapper {
 public:
  enum class FillPolicy {
    /// Children explored left-to-right, at most one hole at the end — the
    /// restrictive LXP policy of Section 4.
    kLeftToRight,
    /// Liberal policy (Ex. 7): returns the chunk from the *right* end of the
    /// unexplored range with a hole at the front, exercising the buffer's
    /// generalized chase.
    kRightToLeft,
  };

  struct Options {
    /// Children returned per fill.
    int chunk = 8;
    /// Subtrees of at most this many nodes ship completely; larger ones
    /// ship as label + hole. <=0 means "always label + hole".
    int64_t inline_limit = 4;
    FillPolicy policy = FillPolicy::kLeftToRight;
  };

  /// `doc` is not owned and must outlive the wrapper.
  XmlLxpWrapper(const xml::Document* doc, Options options);
  explicit XmlLxpWrapper(const xml::Document* doc)
      : XmlLxpWrapper(doc, Options()) {}

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  /// Batched fills with continuation-hole chasing: the hole-id encodings
  /// are stateless, so the shared budgeted chase loop applies directly.
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  int64_t fills_served() const { return fills_served_; }

 protected:
  /// Adaptive fill sizing from the shared chase loop: long sibling scans
  /// serve max(chunk, hint) children per fill.
  void SetFillSizeHint(int64_t elements) override {
    fill_size_hint_ = elements;
  }

 private:
  int64_t EffectiveChunk() const {
    return fill_size_hint_ > 0
               ? std::max<int64_t>(options_.chunk, fill_size_hint_)
               : options_.chunk;
  }

  buffer::Fragment FragmentFor(const xml::Node* child);

  const xml::Document* doc_;
  Options options_;
  int64_t fills_served_ = 0;
  int64_t fill_size_hint_ = 0;
};

}  // namespace mix::wrappers

#endif  // MIX_WRAPPERS_XML_LXP_WRAPPER_H_
