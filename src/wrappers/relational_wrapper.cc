#include "wrappers/relational_wrapper.h"

#include <cstdlib>

#include "core/check.h"

namespace mix::wrappers {

using buffer::Fragment;
using buffer::FragmentList;
using buffer::FillBudget;
using buffer::HoleFillList;

RelationalLxpWrapper::RelationalLxpWrapper(const rdb::Database* db,
                                           Options options)
    : db_(db), options_(options) {
  MIX_CHECK(db_ != nullptr);
  MIX_CHECK(options_.chunk >= 1);
}

buffer::PushdownCapability RelationalLxpWrapper::Capability() const {
  buffer::PushdownCapability cap;
  cap.pushdown = true;
  cap.database = db_->name();
  for (const std::string& name : db_->table_names()) {
    const rdb::Table* table = db_->GetTable(name);
    std::vector<buffer::PushdownCapability::Column> cols;
    for (const rdb::Column& c : table->schema().columns()) {
      buffer::PushdownCapability::ColumnType type;
      switch (c.type) {
        case rdb::Type::kInt:
          type = buffer::PushdownCapability::ColumnType::kInt;
          break;
        case rdb::Type::kDouble:
          type = buffer::PushdownCapability::ColumnType::kDouble;
          break;
        default:
          type = buffer::PushdownCapability::ColumnType::kString;
          break;
      }
      cols.push_back({c.name, type});
    }
    cap.tables[name] = std::move(cols);
  }
  return cap;
}

std::string RelationalLxpWrapper::GetRoot(const std::string& uri) {
  if (uri == "db" || uri.empty()) {
    return "dbroot";
  }
  constexpr std::string_view kSqlPrefix = "sql:";
  MIX_CHECK_MSG(uri.rfind(kSqlPrefix, 0) == 0,
                "RelationalLxpWrapper URI must be 'db' or 'sql:<stmt>'");
  auto stmt = rdb::ParseSelect(uri.substr(kSqlPrefix.size()));
  MIX_CHECK_MSG(stmt.ok(), stmt.status().ToString().c_str());
  // LIMIT state cannot be carried across stateless chunked fills (each fill
  // reopens a cursor from the hole id); chunking already bounds transfers.
  MIX_CHECK_MSG(!stmt.value().limit.has_value(),
                "LIMIT is not supported on LXP query views");
  auto bound = rdb::BindSelect(*db_, stmt.value());
  MIX_CHECK_MSG(bound.ok(), bound.status().ToString().c_str());
  RegisteredQuery q;
  q.statement = stmt.value();
  q.result = std::make_unique<rdb::SelectResult>(std::move(bound).ValueOrDie());
  queries_.push_back(std::move(q));
  return "q:" + std::to_string(queries_.size() - 1) + ":root";
}

Fragment RelationalLxpWrapper::RowFragment(const rdb::Schema& schema,
                                           const rdb::Row& row) {
  Fragment f = Fragment::Element("row");
  for (size_t i = 0; i < schema.column_count(); ++i) {
    Fragment att = Fragment::Element(schema.columns()[i].name);
    att.children.push_back(Fragment::Text(row[i].ToString()));
    f.children.push_back(std::move(att));
  }
  return f;
}

FragmentList RelationalLxpWrapper::FillDatabase() {
  // Database level: the schema — one element per table, each with a hole
  // for its rows (the paper returns the relational schema here).
  Fragment db = Fragment::Element(db_->name());
  for (const std::string& name : db_->table_names()) {
    const rdb::Table* table = db_->GetTable(name);
    Fragment t = Fragment::Element(name);
    if (table->row_count() > 0) {
      t.children.push_back(Fragment::Hole("t:" + name + ":0"));
    }
    db.children.push_back(std::move(t));
  }
  return {std::move(db)};
}

FragmentList RelationalLxpWrapper::FillTable(const std::string& table_name,
                                             int64_t from_row) {
  const rdb::Table* table = db_->GetTable(table_name);
  MIX_CHECK_MSG(table != nullptr, "hole id names unknown table");
  MIX_CHECK(from_row >= 0 && from_row <= table->row_count());

  FragmentList out;
  int64_t hi = std::min<int64_t>(from_row + EffectiveChunk(), table->row_count());
  for (int64_t i = from_row; i < hi; ++i) {
    out.push_back(RowFragment(table->schema(), table->row(i)));
    ++rows_scanned_;
  }
  if (hi < table->row_count()) {
    out.push_back(Fragment::Hole("t:" + table_name + ":" + std::to_string(hi)));
  }
  return out;
}

FragmentList RelationalLxpWrapper::FillQuery(int64_t query_id, int64_t from_row,
                                             bool root_fill) {
  MIX_CHECK(query_id >= 0 &&
            query_id < static_cast<int64_t>(queries_.size()));
  const RegisteredQuery& q = queries_[static_cast<size_t>(query_id)];

  // Cursors are recreated per fill and positioned from the hole id — the
  // wrapper keeps no per-hole state (Section 4's id-encoding advice).
  auto cursor = q.result->Open();
  cursor.Seek(from_row);

  FragmentList rows;
  rdb::Row row;
  int64_t produced = 0;
  std::string next_hole;
  // The underlying cursor reports absolute source positions through
  // rows_scanned; we rebuild the absolute position of the *next* match by
  // walking matches one at a time.
  int64_t absolute = from_row;
  const int64_t chunk = EffectiveChunk();
  while (produced < chunk) {
    int64_t scanned_before = cursor.rows_scanned();
    if (!cursor.Next(&row)) break;
    absolute += cursor.rows_scanned() - scanned_before;
    rows.push_back(RowFragment(q.result->schema(), row));
    ++produced;
  }
  // Probe for one more match to decide whether a trailing hole is needed.
  int64_t scanned_before = cursor.rows_scanned();
  if (cursor.Next(&row)) {
    int64_t next_abs = absolute + (cursor.rows_scanned() - scanned_before) - 1;
    next_hole = "q:" + std::to_string(query_id) + ":" + std::to_string(next_abs);
  }
  rows_scanned_ += cursor.rows_scanned();

  if (root_fill) {
    Fragment view = Fragment::Element("view");
    view.children = std::move(rows);
    if (!next_hole.empty()) {
      view.children.push_back(Fragment::Hole(next_hole));
    }
    return {std::move(view)};
  }
  FragmentList out = std::move(rows);
  if (!next_hole.empty()) out.push_back(Fragment::Hole(next_hole));
  return out;
}

FragmentList RelationalLxpWrapper::Fill(const std::string& hole_id) {
  ++fills_served_;
  if (hole_id == "dbroot") return FillDatabase();

  if (hole_id.rfind("t:", 0) == 0) {
    size_t colon = hole_id.rfind(':');
    MIX_CHECK(colon > 2);
    std::string table = hole_id.substr(2, colon - 2);
    int64_t from_row = std::strtoll(hole_id.c_str() + colon + 1, nullptr, 10);
    return FillTable(table, from_row);
  }

  MIX_CHECK_MSG(hole_id.rfind("q:", 0) == 0,
                "foreign hole id passed to RelationalLxpWrapper");
  size_t colon = hole_id.find(':', 2);
  MIX_CHECK(colon != std::string::npos);
  int64_t query_id = std::strtoll(hole_id.c_str() + 2, nullptr, 10);
  std::string rest = hole_id.substr(colon + 1);
  if (rest == "root") return FillQuery(query_id, 0, /*root_fill=*/true);
  return FillQuery(query_id, std::strtoll(rest.c_str(), nullptr, 10),
                   /*root_fill=*/false);
}

HoleFillList RelationalLxpWrapper::FillMany(const std::vector<std::string>& holes,
                                   const FillBudget& budget) {
  return ChaseFills(holes, budget);
}

}  // namespace mix::wrappers
