#include "wrappers/bookstore.h"

#include <cstdlib>

#include "core/check.h"
#include "xml/parser.h"

namespace mix::wrappers {

using buffer::Fragment;
using buffer::FragmentList;
using buffer::FillBudget;
using buffer::HoleFillList;

namespace {

/// SplitMix64, as in xml/random_tree.cc (kept local: different stream).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* kAdjectives[] = {"Silent", "Crimson", "Hidden", "Broken",
                             "Golden", "Lonely",  "Rapid",  "Ancient"};
const char* kNouns[] = {"River",  "Garden", "Mediator", "Query",
                        "Schema", "Harbor", "Compass",  "Lantern"};
const char* kFirst[] = {"Ada", "Edgar", "Grace", "Alan", "Barbara", "Jim"};
const char* kLast[] = {"Codd", "Hopper", "Gray", "Stonebraker", "Ullman"};

Book MakeBook(uint64_t key) {
  Book b;
  uint64_t h1 = Mix(key);
  uint64_t h2 = Mix(h1);
  uint64_t h3 = Mix(h2);
  b.title = std::string(kAdjectives[h1 % 8]) + " " + kNouns[h2 % 8] + " #" +
            std::to_string(key % 100000);
  b.author = std::string(kFirst[h2 % 6]) + " " + kLast[h3 % 5];
  b.price_cents = 499 + static_cast<int64_t>(h3 % 9000);
  b.stock = static_cast<int64_t>(h1 % 20);
  return b;
}

}  // namespace

std::vector<Book> MakeCatalog(const CatalogOptions& options) {
  std::vector<Book> catalog;
  catalog.reserve(static_cast<size_t>(options.size));
  for (int i = 0; i < options.size; ++i) {
    // Shared-prefix books derive from a store-independent key so that two
    // catalogs overlap on them exactly.
    uint64_t key = i < options.shared_prefix
                       ? 0xC0FFEEULL * 1000003ULL + static_cast<uint64_t>(i)
                       : options.seed * 0x100000001b3ULL + static_cast<uint64_t>(i);
    catalog.push_back(MakeBook(key));
  }
  return catalog;
}

BookstoreSite::BookstoreSite(std::string name, std::vector<Book> catalog,
                             int page_size)
    : name_(std::move(name)), catalog_(std::move(catalog)), page_size_(page_size) {
  MIX_CHECK(page_size_ >= 1);
}

int BookstoreSite::page_count() const {
  return static_cast<int>((catalog_.size() + static_cast<size_t>(page_size_) - 1) /
                          static_cast<size_t>(page_size_));
}

std::string BookstoreSite::RenderPageHtml(int page) const {
  MIX_CHECK(page >= 0 && page < page_count());
  ++pages_served_;
  size_t lo = static_cast<size_t>(page) * static_cast<size_t>(page_size_);
  size_t hi = std::min(catalog_.size(), lo + static_cast<size_t>(page_size_));

  std::string html = "<html><head><title>" + name_ +
                     " page " + std::to_string(page) + "</title></head><body>";
  html += "<ul class=\"results\">";
  for (size_t i = lo; i < hi; ++i) {
    const Book& b = catalog_[i];
    html += "<li class=\"book\">";
    html += "<span class=\"title\">" + b.title + "</span>";
    html += "<span class=\"author\">" + b.author + "</span>";
    html += "<span class=\"price\">" + std::to_string(b.price_cents) + "</span>";
    html += "<span class=\"stock\">" + std::to_string(b.stock) + "</span>";
    html += "</li>";
  }
  html += "</ul>";
  if (page + 1 < page_count()) {
    html += "<a rel=\"next\" href=\"?page=" + std::to_string(page + 1) +
            "\">next</a>";
  }
  html += "</body></html>";
  return html;
}

BookstoreLxpWrapper::BookstoreLxpWrapper(const BookstoreSite* site)
    : site_(site) {
  MIX_CHECK(site_ != nullptr);
}

std::string BookstoreLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;
  return "books:root";
}

namespace {

/// Collects all <li class="book"> elements.
void CollectBooks(const xml::Node* n, std::vector<const xml::Node*>* out) {
  if (n->kind == xml::NodeKind::kElement && n->label == "li") {
    for (const xml::Node* c : n->children) {
      if (c->label == "@class" && !c->children.empty() &&
          c->children[0]->label == "book") {
        out->push_back(n);
        break;
      }
    }
  }
  for (const xml::Node* c : n->children) CollectBooks(c, out);
}

/// Extracts the text of the <span class="..."> field named `cls`.
std::string SpanText(const xml::Node* li, const std::string& cls) {
  for (const xml::Node* span : li->children) {
    if (span->label != "span") continue;
    bool match = false;
    std::string text;
    for (const xml::Node* c : span->children) {
      if (c->label == "@class" && !c->children.empty() &&
          c->children[0]->label == cls) {
        match = true;
      } else if (c->kind == xml::NodeKind::kText) {
        text = c->label;
      }
    }
    if (match) return text;
  }
  return "";
}

Fragment FieldFragment(const std::string& name, std::string value) {
  Fragment f = Fragment::Element(name);
  f.children.push_back(Fragment::Text(std::move(value)));
  return f;
}

}  // namespace

FragmentList BookstoreLxpWrapper::Fill(const std::string& hole_id) {
  int page = 0;
  bool root = hole_id == "books:root";
  if (!root) {
    MIX_CHECK_MSG(hole_id.rfind("page:", 0) == 0,
                  "foreign hole id passed to BookstoreLxpWrapper");
    page = std::atoi(hole_id.c_str() + 5);
  }

  // Fetch + scrape one page: the HTML is parsed with the XML parser
  // (pages are well-formed XHTML) and book fields are extracted.
  ++pages_fetched_;
  int fetch_page = root ? 0 : page;
  std::string html = site_->RenderPageHtml(fetch_page);
  auto parsed = xml::Parse(html);
  MIX_CHECK_MSG(parsed.ok(), parsed.status().ToString().c_str());

  std::vector<const xml::Node*> lis;
  CollectBooks(parsed.value()->root(), &lis);

  FragmentList books;
  for (const xml::Node* li : lis) {
    Fragment book = Fragment::Element("book");
    book.children.push_back(FieldFragment("title", SpanText(li, "title")));
    book.children.push_back(FieldFragment("author", SpanText(li, "author")));
    book.children.push_back(FieldFragment("price", SpanText(li, "price")));
    book.children.push_back(FieldFragment("stock", SpanText(li, "stock")));
    books.push_back(std::move(book));
  }
  bool has_next = fetch_page + 1 < site_->page_count();
  if (has_next) {
    books.push_back(Fragment::Hole("page:" + std::to_string(fetch_page + 1)));
  }

  if (root) {
    Fragment view = Fragment::Element("books");
    view.children = std::move(books);
    return {std::move(view)};
  }
  return books;
}

HoleFillList BookstoreLxpWrapper::FillMany(const std::vector<std::string>& holes,
                                  const FillBudget& budget) {
  return ChaseFills(holes, budget);
}

}  // namespace mix::wrappers
