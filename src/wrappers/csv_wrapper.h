// LXP wrapper for CSV files — a third source species for the Fig. 1
// architecture (flat files are the classic "legacy source" of mediator
// systems). The CSV text is parsed once (header row = column names,
// RFC-4180-style quoting) and exported as
//
//   csv[ row[col1[v], col2[v], ...]* ]
//
// with `chunk` rows per LXP fill and `c:<row>` hole ids — the same
// granularity scheme as the relational wrapper, so every Section 4
// buffering result applies unchanged.
#ifndef MIX_WRAPPERS_CSV_WRAPPER_H_
#define MIX_WRAPPERS_CSV_WRAPPER_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/lxp.h"
#include "core/status.h"

namespace mix::wrappers {

/// Parsed CSV content.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text: first record is the header. Handles quoted fields
/// ("a,b", doubled quotes), CRLF/LF, and a missing trailing newline.
/// Rows with a different arity than the header are a ParseError.
Result<CsvTable> ParseCsv(std::string_view text);

class CsvLxpWrapper : public buffer::LxpWrapper {
 public:
  struct Options {
    int chunk = 25;
  };

  /// `table` is not owned and must outlive the wrapper.
  CsvLxpWrapper(const CsvTable* table, Options options);
  explicit CsvLxpWrapper(const CsvTable* table)
      : CsvLxpWrapper(table, Options()) {}

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  /// Batched fills with continuation-hole chasing: the hole-id encodings
  /// are stateless, so the shared budgeted chase loop applies directly.
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  int64_t fills_served() const { return fills_served_; }

 protected:
  /// Adaptive fill sizing from the shared chase loop: full scans serve
  /// max(chunk, hint) rows per fill.
  void SetFillSizeHint(int64_t elements) override {
    fill_size_hint_ = elements;
  }

 private:
  int64_t EffectiveChunk() const {
    return fill_size_hint_ > 0
               ? std::max<int64_t>(options_.chunk, fill_size_hint_)
               : options_.chunk;
  }

  buffer::Fragment RowFragment(size_t row) const;

  const CsvTable* table_;
  Options options_;
  int64_t fills_served_ = 0;
  int64_t fill_size_hint_ = 0;
};

}  // namespace mix::wrappers

#endif  // MIX_WRAPPERS_CSV_WRAPPER_H_
