#include "xml/tree.h"

#include "core/check.h"

namespace mix::xml {

Node* Node::right_sibling() const {
  if (parent == nullptr) return nullptr;
  size_t next = static_cast<size_t>(pos_in_parent) + 1;
  if (next >= parent->children.size()) return nullptr;
  return parent->children[next];
}

Node* Document::Alloc(NodeKind kind, std::string label) {
  nodes_.emplace_back();
  Node* n = &nodes_.back();
  n->kind = kind;
  n->label = std::move(label);
  n->label_atom = Atom::Intern(n->label);
  n->index = static_cast<int64_t>(by_index_.size());
  by_index_.push_back(n);
  return n;
}

Node* Document::NewElement(std::string tag) {
  return Alloc(NodeKind::kElement, std::move(tag));
}

Node* Document::NewText(std::string text) {
  return Alloc(NodeKind::kText, std::move(text));
}

void Document::AppendChild(Node* parent, Node* child) {
  MIX_CHECK(parent != nullptr && child != nullptr);
  MIX_CHECK_MSG(child->parent == nullptr, "node already attached");
  child->parent = parent;
  child->pos_in_parent = static_cast<int32_t>(parent->children.size());
  parent->children.push_back(child);
}

Node* Document::NewElement(std::string tag, const std::vector<Node*>& children) {
  Node* e = NewElement(std::move(tag));
  for (Node* c : children) AppendChild(e, c);
  return e;
}

Node* Document::NodeAt(int64_t index) const {
  MIX_CHECK(index >= 0 && index < node_count());
  return by_index_[static_cast<size_t>(index)];
}

bool TreeEquals(const Node* a, const Node* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->label != b->label) return false;
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!TreeEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '&':
        *out += "&amp;";
        break;
      case '"':
        *out += "&quot;";
        break;
      default:
        *out += c;
    }
  }
}

void ToXmlInto(const Node* node, bool pretty, int depth, std::string* out) {
  auto indent = [&] {
    if (pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  };
  if (node->kind == NodeKind::kText) {
    indent();
    EscapeInto(node->label, out);
    if (pretty) *out += '\n';
    return;
  }
  indent();
  *out += '<';
  *out += node->label;
  if (node->children.empty()) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (pretty) *out += '\n';
  for (const Node* c : node->children) {
    ToXmlInto(c, pretty, depth + 1, out);
  }
  indent();
  *out += "</";
  *out += node->label;
  *out += '>';
  if (pretty) *out += '\n';
}

}  // namespace

std::string ToXml(const Node* node, bool pretty) {
  MIX_CHECK(node != nullptr);
  std::string out;
  ToXmlInto(node, pretty, 0, &out);
  return out;
}

std::string ToTerm(const Node* node) {
  MIX_CHECK(node != nullptr);
  if (node->is_leaf()) return node->label;
  std::string out = node->label;
  out += '[';
  bool first = true;
  for (const Node* c : node->children) {
    if (!first) out += ',';
    first = false;
    out += ToTerm(c);
  }
  out += ']';
  return out;
}

int64_t SubtreeSize(const Node* node) {
  MIX_CHECK(node != nullptr);
  int64_t n = 1;
  for (const Node* c : node->children) n += SubtreeSize(c);
  return n;
}

}  // namespace mix::xml
