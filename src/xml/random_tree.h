// Deterministic synthetic document generators.
//
// Used by property tests (random labeled ordered trees) and by the
// benchmark harness (the paper's running example: homes and schools
// joined on zip code, Fig. 3).
#ifndef MIX_XML_RANDOM_TREE_H_
#define MIX_XML_RANDOM_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xml/tree.h"

namespace mix::xml {

/// Shape parameters for random tree generation.
struct RandomTreeOptions {
  uint64_t seed = 42;
  /// Maximum tree depth (root is depth 0).
  int max_depth = 5;
  /// Maximum children per element.
  int max_fanout = 5;
  /// Probability (in percent) that a non-root node at depth < max_depth is
  /// an internal element rather than a leaf.
  int element_percent = 60;
  /// Number of distinct element labels (a0..a{n-1}).
  int label_alphabet = 6;
};

/// Generates a random labeled ordered tree into a fresh document.
std::unique_ptr<Document> RandomTree(const RandomTreeOptions& options);

/// homes[home[addr[...],zip[...]]*] — `n` homes with zip codes drawn from
/// `zip_count` distinct values (deterministic in `seed`).
std::unique_ptr<Document> MakeHomesDoc(int n, int zip_count, uint64_t seed = 7);

/// schools[school[dir[...],zip[...]]*].
std::unique_ptr<Document> MakeSchoolsDoc(int n, int zip_count,
                                         uint64_t seed = 11);

/// The zip value used for position `i` given `zip_count` distinct zips;
/// exposed so tests/benches can predict join selectivity.
std::string ZipFor(int i, int zip_count, uint64_t seed);

}  // namespace mix::xml

#endif  // MIX_XML_RANDOM_TREE_H_
