#include "xml/doc_navigable.h"

#include <atomic>

#include "core/check.h"

namespace mix::xml {

namespace {
int64_t NextInstanceId() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

const Atom kSrcTag = Atom::Intern("src");
}  // namespace

DocNavigable::DocNavigable(const Document* doc)
    : doc_(doc), instance_(NextInstanceId()) {
  MIX_CHECK(doc_ != nullptr);
  MIX_CHECK_MSG(doc_->root() != nullptr, "document has no root");
}

NodeId DocNavigable::MakeId(const Node* n) const {
  return NodeId(kSrcTag, instance_, n->index);
}

const Node* DocNavigable::Resolve(const NodeId& p) const {
  MIX_CHECK_MSG(p.valid() && p.tag_atom() == kSrcTag && p.IntAt(0) == instance_,
                "foreign node-id passed to DocNavigable");
  return doc_->NodeAt(p.IntAt(1));
}

NodeId DocNavigable::Root() { return MakeId(doc_->root()); }

std::optional<NodeId> DocNavigable::Down(const NodeId& p) {
  const Node* n = Resolve(p)->first_child();
  if (n == nullptr) return std::nullopt;
  return MakeId(n);
}

std::optional<NodeId> DocNavigable::Right(const NodeId& p) {
  const Node* n = Resolve(p)->right_sibling();
  if (n == nullptr) return std::nullopt;
  return MakeId(n);
}

Label DocNavigable::Fetch(const NodeId& p) { return Resolve(p)->label; }

Atom DocNavigable::FetchAtom(const NodeId& p) { return Resolve(p)->label_atom; }

std::optional<NodeId> DocNavigable::NthChild(const NodeId& p, int64_t index) {
  const Node* n = Resolve(p);
  if (index < 0 || index >= static_cast<int64_t>(n->children.size())) {
    return std::nullopt;
  }
  return MakeId(n->children[static_cast<size_t>(index)]);
}

}  // namespace mix::xml
