#include "xml/doc_navigable.h"

#include <algorithm>
#include <atomic>

#include "core/check.h"

namespace mix::xml {

namespace {
int64_t NextInstanceId() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

const Atom kSrcTag = Atom::Intern("src");
}  // namespace

DocNavigable::DocNavigable(const Document* doc)
    : doc_(doc), instance_(NextInstanceId()) {
  MIX_CHECK(doc_ != nullptr);
  MIX_CHECK_MSG(doc_->root() != nullptr, "document has no root");
}

NodeId DocNavigable::MakeId(const Node* n) const {
  return NodeId(kSrcTag, instance_, n->index);
}

const Node* DocNavigable::Resolve(const NodeId& p) const {
  MIX_CHECK_MSG(p.valid() && p.tag_atom() == kSrcTag && p.IntAt(0) == instance_,
                "foreign node-id passed to DocNavigable");
  return doc_->NodeAt(p.IntAt(1));
}

NodeId DocNavigable::Root() { return MakeId(doc_->root()); }

std::optional<NodeId> DocNavigable::Down(const NodeId& p) {
  const Node* n = Resolve(p)->first_child();
  if (n == nullptr) return std::nullopt;
  return MakeId(n);
}

std::optional<NodeId> DocNavigable::Right(const NodeId& p) {
  const Node* n = Resolve(p)->right_sibling();
  if (n == nullptr) return std::nullopt;
  return MakeId(n);
}

Label DocNavigable::Fetch(const NodeId& p) { return Resolve(p)->label; }

Atom DocNavigable::FetchAtom(const NodeId& p) { return Resolve(p)->label_atom; }

std::optional<NodeId> DocNavigable::NthChild(const NodeId& p, int64_t index) {
  const Node* n = Resolve(p);
  if (index < 0 || index >= static_cast<int64_t>(n->children.size())) {
    return std::nullopt;
  }
  return MakeId(n->children[static_cast<size_t>(index)]);
}

void DocNavigable::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  const Node* n = Resolve(p);
  out->reserve(out->size() + n->children.size());
  for (const Node* c : n->children) out->push_back(MakeId(c));
}

void DocNavigable::NextSiblings(const NodeId& p, int64_t limit,
                                std::vector<NodeId>* out) {
  const Node* n = Resolve(p);
  if (n->parent == nullptr) return;
  const auto& siblings = n->parent->children;
  size_t from = static_cast<size_t>(n->pos_in_parent) + 1;
  size_t count = siblings.size() - std::min(from, siblings.size());
  if (limit >= 0) count = std::min(count, static_cast<size_t>(limit));
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) out->push_back(MakeId(siblings[from + i]));
}

void DocNavigable::FetchSubtree(const NodeId& p, int64_t depth,
                                std::vector<SubtreeEntry>* out) {
  struct Item {
    const Node* node;
    int32_t depth;
  };
  std::vector<Item> stack;
  stack.push_back(Item{Resolve(p), 0});
  while (!stack.empty()) {
    Item it = stack.back();
    stack.pop_back();
    const bool cut =
        depth >= 0 && it.depth >= depth && !it.node->children.empty();
    out->push_back(SubtreeEntry{it.node->label_atom, it.depth, cut,
                                cut ? MakeId(it.node) : NodeId()});
    if (cut) continue;
    for (size_t i = it.node->children.size(); i > 0; --i) {
      stack.push_back(Item{it.node->children[i - 1], it.depth + 1});
    }
  }
}

}  // namespace mix::xml
