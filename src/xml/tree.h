// Labeled ordered trees — the paper's data model (Section 2).
//
// An XML document is abstracted as a labeled ordered tree over a domain D:
// a tree t is either a leaf (an atomic label d ∈ D) or d[t1,...,tn]. In XML
// terms, t is an element, a non-leaf label is the tag name, and a leaf label
// is character content or an empty element. Following footnote 3, attributes
// are folded into the tree: the parser maps attribute a="v" to a leading
// child element labeled "@a" with text child "v".
//
// `Document` is an arena that owns every `Node`; nodes are identified by a
// dense index, which document navigables embed in NodeIds.
#ifndef MIX_XML_TREE_H_
#define MIX_XML_TREE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/atom.h"

namespace mix::xml {

/// Distinguishes character content from (possibly empty) elements. The
/// paper's abstraction does not need the distinction (both are leaves); it
/// only affects serialization.
enum class NodeKind { kElement, kText };

class Document;

/// One tree node. Owned by a Document arena; never created directly.
struct Node {
  NodeKind kind = NodeKind::kElement;
  /// Tag name for elements, character content for text nodes.
  std::string label;
  /// `label`, interned at allocation — lets the fetch path answer the f
  /// command without hashing or copying the label string.
  mix::Atom label_atom;
  std::vector<Node*> children;

  Node* parent = nullptr;
  /// Position within parent->children (0-based); 0 for the root.
  int32_t pos_in_parent = 0;
  /// Dense index within the owning Document.
  int64_t index = 0;

  bool is_leaf() const { return children.empty(); }
  /// First child or nullptr.
  Node* first_child() const { return children.empty() ? nullptr : children[0]; }
  /// Right sibling or nullptr.
  Node* right_sibling() const;
};

/// Arena-owning XML document.
class Document {
 public:
  Document() = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Creates a detached element node.
  Node* NewElement(std::string tag);
  /// Creates a detached text node.
  Node* NewText(std::string text);
  /// Appends `child` under `parent`, fixing parent/position links.
  void AppendChild(Node* parent, Node* child);
  /// Convenience: element with the given (already created) children.
  Node* NewElement(std::string tag, const std::vector<Node*>& children);

  void set_root(Node* root) { root_ = root; }
  Node* root() const { return root_; }

  /// Node lookup by dense index; MIX_CHECKs bounds.
  Node* NodeAt(int64_t index) const;
  int64_t node_count() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  Node* Alloc(NodeKind kind, std::string label);

  std::deque<Node> nodes_;
  std::vector<Node*> by_index_;
  Node* root_ = nullptr;
};

/// Structural equality on (label, children); NodeKind is ignored (the
/// paper's abstraction cannot observe it).
bool TreeEquals(const Node* a, const Node* b);

/// Serializes to XML text. `pretty` adds indentation/newlines.
std::string ToXml(const Node* node, bool pretty = false);

/// Renders in the paper's term notation, e.g. `home[addr[La Jolla],zip[91220]]`.
std::string ToTerm(const Node* node);

/// Number of nodes in the subtree rooted at `node`.
int64_t SubtreeSize(const Node* node);

}  // namespace mix::xml

#endif  // MIX_XML_TREE_H_
