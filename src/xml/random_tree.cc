#include "xml/random_tree.h"

#include <string>

namespace mix::xml {

namespace {

/// SplitMix64 — small deterministic PRNG, stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  int Uniform(int bound) { return static_cast<int>(Next() % static_cast<uint64_t>(bound)); }

 private:
  uint64_t state_;
};

Node* Generate(Document* doc, Rng* rng, const RandomTreeOptions& o, int depth) {
  bool leaf = depth >= o.max_depth ||
              (depth > 0 && rng->Uniform(100) >= o.element_percent);
  if (leaf) {
    if (rng->Uniform(2) == 0) {
      return doc->NewText("t" + std::to_string(rng->Uniform(1000)));
    }
    return doc->NewElement("a" + std::to_string(rng->Uniform(o.label_alphabet)));
  }
  Node* e = doc->NewElement("a" + std::to_string(rng->Uniform(o.label_alphabet)));
  int fanout = 1 + rng->Uniform(o.max_fanout);
  for (int i = 0; i < fanout; ++i) {
    doc->AppendChild(e, Generate(doc, rng, o, depth + 1));
  }
  return e;
}

}  // namespace

std::unique_ptr<Document> RandomTree(const RandomTreeOptions& options) {
  auto doc = std::make_unique<Document>();
  Rng rng(options.seed);
  doc->set_root(Generate(doc.get(), &rng, options, 0));
  return doc;
}

std::string ZipFor(int i, int zip_count, uint64_t seed) {
  Rng rng(seed + static_cast<uint64_t>(i) * 1315423911ULL);
  return std::to_string(91000 + rng.Uniform(zip_count));
}

std::unique_ptr<Document> MakeHomesDoc(int n, int zip_count, uint64_t seed) {
  auto doc = std::make_unique<Document>();
  Node* root = doc->NewElement("homes");
  for (int i = 0; i < n; ++i) {
    Node* home = doc->NewElement("home");
    Node* addr = doc->NewElement("addr");
    doc->AppendChild(addr, doc->NewText("street " + std::to_string(i)));
    Node* zip = doc->NewElement("zip");
    doc->AppendChild(zip, doc->NewText(ZipFor(i, zip_count, seed)));
    doc->AppendChild(home, addr);
    doc->AppendChild(home, zip);
    doc->AppendChild(root, home);
  }
  doc->set_root(root);
  return doc;
}

std::unique_ptr<Document> MakeSchoolsDoc(int n, int zip_count, uint64_t seed) {
  auto doc = std::make_unique<Document>();
  Node* root = doc->NewElement("schools");
  for (int i = 0; i < n; ++i) {
    Node* school = doc->NewElement("school");
    Node* dir = doc->NewElement("dir");
    doc->AppendChild(dir, doc->NewText("director " + std::to_string(i)));
    Node* zip = doc->NewElement("zip");
    doc->AppendChild(zip, doc->NewText(ZipFor(i, zip_count, seed)));
    doc->AppendChild(school, dir);
    doc->AppendChild(school, zip);
    doc->AppendChild(root, school);
  }
  doc->set_root(root);
  return doc;
}

}  // namespace mix::xml
