#include "xml/parser.h"

#include <cctype>
#include <string>

namespace mix::xml {

namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  char Next() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void Skip(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Next();
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Next();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':' || c == '@';
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : cur_(input) {}

  Result<std::unique_ptr<Document>> Run() {
    auto doc = std::make_unique<Document>();
    Status s = SkipMisc();
    if (!s.ok()) return s;
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    Node* root = nullptr;
    s = ParseElement(doc.get(), &root);
    if (!s.ok()) return s;
    doc->set_root(root);
    s = SkipMisc();
    if (!s.ok()) return s;
    if (!cur_.AtEnd()) return cur_.Error("trailing content after root element");
    return doc;
  }

 private:
  /// Skips whitespace, comments, PIs and DOCTYPE between markup.
  Status SkipMisc() {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.StartsWith("<!--")) {
        cur_.Skip(4);
        while (!cur_.AtEnd() && !cur_.StartsWith("-->")) cur_.Next();
        if (cur_.AtEnd()) return cur_.Error("unterminated comment");
        cur_.Skip(3);
      } else if (cur_.StartsWith("<?")) {
        cur_.Skip(2);
        while (!cur_.AtEnd() && !cur_.StartsWith("?>")) cur_.Next();
        if (cur_.AtEnd()) return cur_.Error("unterminated processing instruction");
        cur_.Skip(2);
      } else if (cur_.StartsWith("<!DOCTYPE")) {
        while (!cur_.AtEnd() && cur_.Peek() != '>') cur_.Next();
        if (cur_.AtEnd()) return cur_.Error("unterminated DOCTYPE");
        cur_.Next();
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseName(std::string* out) {
    out->clear();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) out->push_back(cur_.Next());
    if (out->empty()) return cur_.Error("expected name");
    return Status::OK();
  }

  Status DecodeEntity(std::string* out) {
    // cur_ points just past '&'.
    std::string name;
    while (!cur_.AtEnd() && cur_.Peek() != ';') name.push_back(cur_.Next());
    if (cur_.AtEnd()) return cur_.Error("unterminated entity reference");
    cur_.Next();  // ';'
    if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "amp") {
      *out += '&';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else if (name.size() > 1 && name[0] == '#') {
      int code = name[1] == 'x' ? std::stoi(name.substr(2), nullptr, 16)
                                : std::atoi(name.c_str() + 1);
      *out += static_cast<char>(code);
    } else {
      return cur_.Error("unknown entity &" + name + ";");
    }
    return Status::OK();
  }

  Status ParseAttributes(Document* doc, Node* element) {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      char c = cur_.Peek();
      if (c == '>' || c == '/') return Status::OK();
      std::string name;
      Status s = ParseName(&name);
      if (!s.ok()) return s;
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || cur_.Peek() != '=') {
        return cur_.Error("expected '=' after attribute name");
      }
      cur_.Next();
      cur_.SkipWhitespace();
      if (cur_.AtEnd() || (cur_.Peek() != '"' && cur_.Peek() != '\'')) {
        return cur_.Error("expected quoted attribute value");
      }
      char quote = cur_.Next();
      std::string value;
      while (!cur_.AtEnd() && cur_.Peek() != quote) {
        if (cur_.Peek() == '&') {
          cur_.Next();
          s = DecodeEntity(&value);
          if (!s.ok()) return s;
        } else {
          value.push_back(cur_.Next());
        }
      }
      if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
      cur_.Next();  // closing quote
      // Attribute a="v" becomes child element @a[v] (footnote 3 treatment).
      Node* attr = doc->NewElement("@" + name);
      doc->AppendChild(attr, doc->NewText(value));
      doc->AppendChild(element, attr);
    }
  }

  Status ParseContent(Document* doc, Node* element) {
    std::string text;
    auto flush_text = [&] {
      // Whitespace-only runs between elements are formatting, not data.
      bool all_ws = true;
      for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_ws = false;
          break;
        }
      }
      if (!text.empty() && !all_ws) {
        // Trim leading/trailing whitespace of mixed content.
        size_t b = text.find_first_not_of(" \t\r\n");
        size_t e = text.find_last_not_of(" \t\r\n");
        doc->AppendChild(element, doc->NewText(text.substr(b, e - b + 1)));
      }
      text.clear();
    };
    for (;;) {
      if (cur_.AtEnd()) return cur_.Error("unterminated element <" + element->label + ">");
      if (cur_.StartsWith("</")) {
        flush_text();
        cur_.Skip(2);
        std::string name;
        Status s = ParseName(&name);
        if (!s.ok()) return s;
        if (name != element->label) {
          return cur_.Error("mismatched end tag </" + name + ">, expected </" +
                            element->label + ">");
        }
        cur_.SkipWhitespace();
        if (cur_.AtEnd() || cur_.Peek() != '>') return cur_.Error("expected '>'");
        cur_.Next();
        return Status::OK();
      }
      if (cur_.StartsWith("<!--")) {
        flush_text();
        Status s = SkipMisc();
        if (!s.ok()) return s;
        continue;
      }
      if (cur_.Peek() == '<') {
        flush_text();
        Node* child = nullptr;
        Status s = ParseElement(doc, &child);
        if (!s.ok()) return s;
        doc->AppendChild(element, child);
        continue;
      }
      if (cur_.Peek() == '&') {
        cur_.Next();
        Status s = DecodeEntity(&text);
        if (!s.ok()) return s;
        continue;
      }
      text.push_back(cur_.Next());
    }
  }

  Status ParseElement(Document* doc, Node** out) {
    // cur_ points at '<'.
    cur_.Next();
    std::string name;
    Status s = ParseName(&name);
    if (!s.ok()) return s;
    Node* element = doc->NewElement(name);
    s = ParseAttributes(doc, element);
    if (!s.ok()) return s;
    if (cur_.Peek() == '/') {
      cur_.Next();
      if (cur_.AtEnd() || cur_.Peek() != '>') return cur_.Error("expected '>'");
      cur_.Next();
      *out = element;
      return Status::OK();
    }
    cur_.Next();  // '>'
    s = ParseContent(doc, element);
    if (!s.ok()) return s;
    *out = element;
    return Status::OK();
  }

  Cursor cur_;
};

/// Parser for the paper's term notation.
class TermParser {
 public:
  explicit TermParser(std::string_view input) : cur_(input) {}

  Result<std::unique_ptr<Document>> Run() {
    auto doc = std::make_unique<Document>();
    Node* root = nullptr;
    Status s = ParseTree(doc.get(), &root);
    if (!s.ok()) return s;
    cur_.SkipWhitespace();
    if (!cur_.AtEnd()) return cur_.Error("trailing content");
    doc->set_root(root);
    return doc;
  }

 private:
  Status ParseLabel(std::string* out) {
    out->clear();
    cur_.SkipWhitespace();
    while (!cur_.AtEnd()) {
      char c = cur_.Peek();
      if (c == '[' || c == ']' || c == ',') break;
      out->push_back(cur_.Next());
    }
    // Trim trailing whitespace.
    while (!out->empty() && std::isspace(static_cast<unsigned char>(out->back()))) {
      out->pop_back();
    }
    if (out->empty()) return cur_.Error("expected label");
    return Status::OK();
  }

  Status ParseTree(Document* doc, Node** out) {
    std::string label;
    Status s = ParseLabel(&label);
    if (!s.ok()) return s;
    cur_.SkipWhitespace();
    if (cur_.AtEnd() || cur_.Peek() != '[') {
      *out = doc->NewText(label);
      return Status::OK();
    }
    cur_.Next();  // '['
    Node* element = doc->NewElement(label);
    cur_.SkipWhitespace();
    if (!cur_.AtEnd() && cur_.Peek() == ']') {
      cur_.Next();
      *out = element;
      return Status::OK();
    }
    for (;;) {
      Node* child = nullptr;
      s = ParseTree(doc, &child);
      if (!s.ok()) return s;
      doc->AppendChild(element, child);
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated '['");
      char c = cur_.Next();
      if (c == ']') break;
      if (c != ',') return cur_.Error("expected ',' or ']'");
    }
    *out = element;
    return Status::OK();
  }

  Cursor cur_;
};

}  // namespace

Result<std::unique_ptr<Document>> Parse(std::string_view input) {
  return XmlParser(input).Run();
}

Result<std::unique_ptr<Document>> ParseTerm(std::string_view input) {
  return TermParser(input).Run();
}

}  // namespace mix::xml
