#include "xml/materialize.h"

#include <utility>
#include <vector>

#include "core/check.h"

namespace mix::xml {

namespace {

struct Budget {
  int64_t remaining;
  bool unlimited;
  bool Take() {
    if (unlimited) return true;
    if (remaining <= 0) return false;
    --remaining;
    return true;
  }
};

Node* Copy(Navigable* nav, const NodeId& p, Document* doc, Budget* budget) {
  Label label = nav->Fetch(p);
  std::optional<NodeId> child = nav->Down(p);
  if (!child.has_value()) {
    return doc->NewText(std::move(label));
  }
  Node* element = doc->NewElement(std::move(label));
  while (child.has_value() && budget->Take()) {
    doc->AppendChild(element, Copy(nav, *child, doc, budget));
    child = nav->Right(*child);
  }
  return element;
}

/// Rebuilds a tree from a pre-order SubtreeEntry snapshot: an entry is a
/// leaf iff its successor is not deeper; stack[d] tracks the open element
/// at each depth for parent linking.
Node* BuildFromPreorder(const std::vector<SubtreeEntry>& entries,
                        Document* doc) {
  MIX_CHECK(!entries.empty());
  std::vector<Node*> stack;
  Node* root = nullptr;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SubtreeEntry& e = entries[i];
    MIX_CHECK_MSG(!e.truncated, "full-depth fetch returned a truncated entry");
    const bool has_children =
        i + 1 < entries.size() && entries[i + 1].depth > e.depth;
    Node* n = has_children ? doc->NewElement(std::string(e.label.name()))
                           : doc->NewText(std::string(e.label.name()));
    if (e.depth == 0) {
      root = n;
    } else {
      doc->AppendChild(stack[static_cast<size_t>(e.depth) - 1], n);
    }
    if (stack.size() <= static_cast<size_t>(e.depth)) {
      stack.resize(static_cast<size_t>(e.depth) + 1);
    }
    stack[static_cast<size_t>(e.depth)] = n;
  }
  return root;
}

}  // namespace

Node* MaterializeInto(Navigable* nav, Document* doc) {
  MIX_CHECK(nav != nullptr && doc != nullptr);
  // One vectored fetch for the whole answer: the batch cascades through
  // every mediation layer instead of a d/r/f round per node.
  std::vector<SubtreeEntry> entries;
  nav->FetchSubtree(nav->Root(), -1, &entries);
  return BuildFromPreorder(entries, doc);
}

Node* MaterializeIntoNodeAtATime(Navigable* nav, Document* doc) {
  return MaterializePrefixInto(nav, doc, -1);
}

std::unique_ptr<Document> Materialize(Navigable* nav) {
  auto doc = std::make_unique<Document>();
  doc->set_root(MaterializeInto(nav, doc.get()));
  return doc;
}

Node* MaterializePrefixInto(Navigable* nav, Document* doc, int64_t max_nodes) {
  MIX_CHECK(nav != nullptr && doc != nullptr);
  Budget budget{max_nodes, max_nodes < 0};
  budget.Take();  // the root itself
  return Copy(nav, nav->Root(), doc, &budget);
}

}  // namespace mix::xml
