#include "xml/materialize.h"

#include <utility>
#include <vector>

#include "core/check.h"

namespace mix::xml {

namespace {

struct Budget {
  int64_t remaining;
  bool unlimited;
  bool Take() {
    if (unlimited) return true;
    if (remaining <= 0) return false;
    --remaining;
    return true;
  }
};

Node* Copy(Navigable* nav, const NodeId& p, Document* doc, Budget* budget) {
  Label label = nav->Fetch(p);
  std::optional<NodeId> child = nav->Down(p);
  if (!child.has_value()) {
    return doc->NewText(std::move(label));
  }
  Node* element = doc->NewElement(std::move(label));
  while (child.has_value() && budget->Take()) {
    doc->AppendChild(element, Copy(nav, *child, doc, budget));
    child = nav->Right(*child);
  }
  return element;
}

}  // namespace

Node* MaterializeInto(Navigable* nav, Document* doc) {
  return MaterializePrefixInto(nav, doc, -1);
}

std::unique_ptr<Document> Materialize(Navigable* nav) {
  auto doc = std::make_unique<Document>();
  doc->set_root(MaterializeInto(nav, doc.get()));
  return doc;
}

Node* MaterializePrefixInto(Navigable* nav, Document* doc, int64_t max_nodes) {
  MIX_CHECK(nav != nullptr && doc != nullptr);
  Budget budget{max_nodes, max_nodes < 0};
  budget.Take();  // the root itself
  return Copy(nav, nav->Root(), doc, &budget);
}

}  // namespace mix::xml
