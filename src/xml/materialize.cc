#include "xml/materialize.h"

#include <utility>
#include <vector>

#include "core/check.h"

namespace mix::xml {

namespace {

struct Budget {
  int64_t remaining;
  bool unlimited;
  bool Take() {
    if (unlimited) return true;
    if (remaining <= 0) return false;
    --remaining;
    return true;
  }
};

Node* Copy(Navigable* nav, const NodeId& p, Document* doc, Budget* budget) {
  Label label = nav->Fetch(p);
  std::optional<NodeId> child = nav->Down(p);
  if (!child.has_value()) {
    return doc->NewText(std::move(label));
  }
  Node* element = doc->NewElement(std::move(label));
  while (child.has_value() && budget->Take()) {
    doc->AppendChild(element, Copy(nav, *child, doc, budget));
    child = nav->Right(*child);
  }
  return element;
}

}  // namespace

Node* BuildFromSubtreeEntries(const std::vector<SubtreeEntry>& entries,
                              Document* doc) {
  // Pre-order rebuild: an entry is a leaf iff its successor is not deeper;
  // stack[d] tracks the open element at each depth for parent linking.
  if (entries.empty() || doc == nullptr) return nullptr;
  std::vector<Node*> stack;
  Node* root = nullptr;
  int64_t prev_depth = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SubtreeEntry& e = entries[i];
    if (e.truncated) return nullptr;
    if (i == 0 ? e.depth != 0 : (e.depth < 1 || e.depth > prev_depth + 1)) {
      return nullptr;
    }
    prev_depth = e.depth;
    const bool has_children =
        i + 1 < entries.size() && entries[i + 1].depth > e.depth;
    Node* n = has_children ? doc->NewElement(std::string(e.label.name()))
                           : doc->NewText(std::string(e.label.name()));
    if (e.depth == 0) {
      root = n;
    } else {
      doc->AppendChild(stack[static_cast<size_t>(e.depth) - 1], n);
    }
    if (stack.size() <= static_cast<size_t>(e.depth)) {
      stack.resize(static_cast<size_t>(e.depth) + 1);
    }
    stack[static_cast<size_t>(e.depth)] = n;
  }
  return root;
}

Node* MaterializeInto(Navigable* nav, Document* doc) {
  MIX_CHECK(nav != nullptr && doc != nullptr);
  // One vectored fetch for the whole answer: the batch cascades through
  // every mediation layer instead of a d/r/f round per node.
  std::vector<SubtreeEntry> entries;
  nav->FetchSubtree(nav->Root(), -1, &entries);
  Node* root = BuildFromSubtreeEntries(entries, doc);
  MIX_CHECK_MSG(root != nullptr,
                "full-depth fetch returned a truncated or malformed snapshot");
  return root;
}

Node* MaterializeIntoNodeAtATime(Navigable* nav, Document* doc) {
  return MaterializePrefixInto(nav, doc, -1);
}

std::unique_ptr<Document> Materialize(Navigable* nav) {
  auto doc = std::make_unique<Document>();
  doc->set_root(MaterializeInto(nav, doc.get()));
  return doc;
}

Node* MaterializePrefixInto(Navigable* nav, Document* doc, int64_t max_nodes) {
  MIX_CHECK(nav != nullptr && doc != nullptr);
  Budget budget{max_nodes, max_nodes < 0};
  budget.Take();  // the root itself
  return Copy(nav, nav->Root(), doc, &budget);
}

}  // namespace mix::xml
