// A small XML parser covering the subset the MIX reproduction needs:
// elements, nested elements, character content, attributes (mapped to
// leading "@name" child elements per tree.h), self-closing tags, comments,
// processing instructions, DOCTYPE (skipped), and the five predefined
// entities. Namespaces are treated as opaque label text.
#ifndef MIX_XML_PARSER_H_
#define MIX_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "core/status.h"
#include "xml/tree.h"

namespace mix::xml {

/// Parses `input` into a fresh Document. Returns ParseError with a
/// line/column locus on malformed input.
Result<std::unique_ptr<Document>> Parse(std::string_view input);

/// Parses the paper's term notation, e.g. "bs[b[H[home1],S[school1]]]".
/// Labels are runs of characters other than '[', ']', ',' (trimmed).
/// Useful for writing tests that quote the paper's examples verbatim.
Result<std::unique_ptr<Document>> ParseTerm(std::string_view input);

}  // namespace mix::xml

#endif  // MIX_XML_PARSER_H_
