// Materialization: fully exploring a Navigable into a memory-resident tree.
//
// This is both a test oracle (a lazily navigated virtual answer must
// materialize to the same tree as the reference evaluation) and the "current
// mediator systems" baseline of Section 1, which computes and returns the
// result of the user query completely.
#ifndef MIX_XML_MATERIALIZE_H_
#define MIX_XML_MATERIALIZE_H_

#include <memory>

#include "core/navigable.h"
#include "xml/tree.h"

namespace mix::xml {

/// Fully explores `nav` from its root and copies the tree into `doc`,
/// returning the copied root. Leaves become text nodes (the abstraction
/// cannot distinguish empty elements from character data). Uses ONE
/// vectored FetchSubtree — the request cascades through the layered
/// mediators as batch calls instead of d/r/f per node.
Node* MaterializeInto(Navigable* nav, Document* doc);

/// The node-at-a-time baseline: the same exploration driven by d/r/f per
/// node. Kept callable for the batched-vs-baseline benchmarks and the
/// byte-identical property tests.
Node* MaterializeIntoNodeAtATime(Navigable* nav, Document* doc);

/// Convenience: materializes into a fresh document.
std::unique_ptr<Document> Materialize(Navigable* nav);

/// Materializes only `max_nodes` nodes (depth-first prefix); used by
/// benchmarks that model a user who stops after browsing a few results.
/// A negative limit means no limit.
Node* MaterializePrefixInto(Navigable* nav, Document* doc, int64_t max_nodes);

/// Rebuilds a tree from a full-depth pre-order FetchSubtree export without
/// trusting it: returns nullptr (instead of aborting) when the export is
/// empty, contains truncated entries, or its depth sequence is not a valid
/// pre-order (first entry at depth 0, each later entry at most one level
/// deeper than its predecessor). The answer-view cache publishes snapshots
/// through this so hostile/partial exports are rejected, not fatal.
Node* BuildFromSubtreeEntries(const std::vector<SubtreeEntry>& entries,
                              Document* doc);

}  // namespace mix::xml

#endif  // MIX_XML_MATERIALIZE_H_
