// Navigable view over a materialized (memory-resident) Document.
//
// This is the "ideal source" of the paper: it answers every DOM-VXD command
// in O(1) from the in-memory tree. Node-ids are `src(instance, index)` where
// `instance` distinguishes documents (so ids cannot be confused across
// sources) and `index` is the node's dense arena index.
#ifndef MIX_XML_DOC_NAVIGABLE_H_
#define MIX_XML_DOC_NAVIGABLE_H_

#include "core/navigable.h"
#include "xml/tree.h"

namespace mix::xml {

class DocNavigable : public Navigable {
 public:
  /// `doc` is not owned and must outlive this navigable; it must have a root.
  explicit DocNavigable(const Document* doc);

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  /// O(1): returns the atom interned at node allocation.
  Atom FetchAtom(const NodeId& p) override;
  /// O(1) indexed child access (in-memory children vector).
  std::optional<NodeId> NthChild(const NodeId& p, int64_t index) override;

  /// Vectored commands: direct copies out of the in-memory children
  /// vectors — one call per list/subtree instead of one per node.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

  /// Decodes one of this navigable's ids back to the underlying node.
  const Node* Resolve(const NodeId& p) const;

 private:
  NodeId MakeId(const Node* n) const;

  const Document* doc_;
  int64_t instance_;
};

}  // namespace mix::xml

#endif  // MIX_XML_DOC_NAVIGABLE_H_
