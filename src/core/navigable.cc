#include "core/navigable.h"

namespace mix {

LabelPredicate LabelPredicate::Equals(std::string label) {
  std::string desc = "=" + label;
  Atom atom = Atom::Intern(label);
  LabelPredicate pred(
      [label = std::move(label)](const Label& l) { return l == label; },
      std::move(desc));
  pred.equals_atom_ = atom;
  return pred;
}

LabelPredicate LabelPredicate::Any() {
  return LabelPredicate([](const Label&) { return true; }, "_");
}

LabelPredicate LabelPredicate::Fn(std::function<bool(const Label&)> fn,
                                  std::string description) {
  return LabelPredicate(std::move(fn), std::move(description));
}

std::optional<NodeId> Navigable::SelectSibling(const NodeId& p,
                                               const LabelPredicate& pred) {
  std::optional<NodeId> cur = Right(p);
  if (pred.is_equality()) {
    // Equality σ: match by interned atom — no label string copies.
    const Atom target = pred.equals_atom();
    while (cur.has_value()) {
      if (FetchAtom(*cur) == target) return cur;
      cur = Right(*cur);
    }
    return std::nullopt;
  }
  while (cur.has_value()) {
    if (pred.Matches(Fetch(*cur))) return cur;
    cur = Right(*cur);
  }
  return std::nullopt;
}

std::optional<NodeId> Navigable::NthChild(const NodeId& p, int64_t index) {
  std::optional<NodeId> cur = Down(p);
  for (int64_t i = 0; i < index && cur.has_value(); ++i) {
    cur = Right(*cur);
  }
  return cur;
}

std::optional<NodeId> CountingNavigable::Down(const NodeId& p) {
  ++stats_->downs;
  return inner_->Down(p);
}

std::optional<NodeId> CountingNavigable::Right(const NodeId& p) {
  ++stats_->rights;
  return inner_->Right(p);
}

Label CountingNavigable::Fetch(const NodeId& p) {
  ++stats_->fetches;
  return inner_->Fetch(p);
}

Atom CountingNavigable::FetchAtom(const NodeId& p) {
  // One f command, whichever form the caller asked for.
  ++stats_->fetches;
  return inner_->FetchAtom(p);
}

std::optional<NodeId> CountingNavigable::SelectSibling(
    const NodeId& p, const LabelPredicate& pred) {
  ++stats_->selects;
  return inner_->SelectSibling(p, pred);
}

std::optional<NodeId> CountingNavigable::NthChild(const NodeId& p,
                                                  int64_t index) {
  ++stats_->nths;
  return inner_->NthChild(p, index);
}

}  // namespace mix
