#include "core/navigable.h"

namespace mix {

LabelPredicate LabelPredicate::Equals(std::string label) {
  std::string desc = "=" + label;
  Atom atom = Atom::Intern(label);
  LabelPredicate pred(
      [label = std::move(label)](const Label& l) { return l == label; },
      std::move(desc));
  pred.equals_atom_ = atom;
  return pred;
}

LabelPredicate LabelPredicate::Any() {
  return LabelPredicate([](const Label&) { return true; }, "_");
}

LabelPredicate LabelPredicate::Fn(std::function<bool(const Label&)> fn,
                                  std::string description) {
  return LabelPredicate(std::move(fn), std::move(description));
}

std::optional<NodeId> Navigable::SelectSibling(const NodeId& p,
                                               const LabelPredicate& pred) {
  std::optional<NodeId> cur = Right(p);
  if (pred.is_equality()) {
    // Equality σ: match by interned atom — no label string copies.
    const Atom target = pred.equals_atom();
    while (cur.has_value()) {
      if (FetchAtom(*cur) == target) return cur;
      cur = Right(*cur);
    }
    return std::nullopt;
  }
  while (cur.has_value()) {
    if (pred.Matches(Fetch(*cur))) return cur;
    cur = Right(*cur);
  }
  return std::nullopt;
}

std::optional<NodeId> Navigable::NthChild(const NodeId& p, int64_t index) {
  std::optional<NodeId> cur = Down(p);
  for (int64_t i = 0; i < index && cur.has_value(); ++i) {
    cur = Right(*cur);
  }
  return cur;
}

void ShiftSubtreeDepths(std::vector<SubtreeEntry>* out, size_t from,
                        int32_t delta) {
  for (size_t i = from; i < out->size(); ++i) (*out)[i].depth += delta;
}

void Navigable::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  std::optional<NodeId> cur = Down(p);
  while (cur.has_value()) {
    out->push_back(*cur);
    cur = Right(out->back());
  }
}

void Navigable::NextSiblings(const NodeId& p, int64_t limit,
                             std::vector<NodeId>* out) {
  if (limit == 0) return;
  int64_t taken = 0;
  std::optional<NodeId> cur = Right(p);
  while (cur.has_value()) {
    out->push_back(*cur);
    if (limit >= 0 && ++taken >= limit) return;
    cur = Right(out->back());
  }
}

namespace {
/// Default pre-order walk. Routes child enumeration through the *virtual*
/// DownAll, so a source that only overrides DownAll still answers subtree
/// fetches with batched child lists.
void FetchSubtreeWalk(Navigable* nav, const NodeId& p, int32_t depth_here,
                      int64_t depth_limit, std::vector<SubtreeEntry>* out) {
  const size_t slot = out->size();
  out->push_back(SubtreeEntry{nav->FetchAtom(p), depth_here, false, NodeId()});
  if (depth_limit >= 0 && depth_here >= depth_limit) {
    if (nav->Down(p).has_value()) {
      (*out)[slot].truncated = true;
      (*out)[slot].id = p;
    }
    return;
  }
  std::vector<NodeId> children;
  nav->DownAll(p, &children);
  for (const NodeId& c : children) {
    FetchSubtreeWalk(nav, c, depth_here + 1, depth_limit, out);
  }
}
}  // namespace

void Navigable::FetchSubtree(const NodeId& p, int64_t depth,
                             std::vector<SubtreeEntry>* out) {
  FetchSubtreeWalk(this, p, 0, depth, out);
}

std::optional<NodeId> CountingNavigable::Down(const NodeId& p) {
  ++stats_->downs;
  return inner_->Down(p);
}

std::optional<NodeId> CountingNavigable::Right(const NodeId& p) {
  ++stats_->rights;
  return inner_->Right(p);
}

Label CountingNavigable::Fetch(const NodeId& p) {
  ++stats_->fetches;
  return inner_->Fetch(p);
}

Atom CountingNavigable::FetchAtom(const NodeId& p) {
  // One f command, whichever form the caller asked for.
  ++stats_->fetches;
  return inner_->FetchAtom(p);
}

std::optional<NodeId> CountingNavigable::SelectSibling(
    const NodeId& p, const LabelPredicate& pred) {
  ++stats_->selects;
  return inner_->SelectSibling(p, pred);
}

std::optional<NodeId> CountingNavigable::NthChild(const NodeId& p,
                                                  int64_t index) {
  ++stats_->nths;
  return inner_->NthChild(p, index);
}

void CountingNavigable::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  const size_t before = out->size();
  inner_->DownAll(p, out);
  // Node-at-a-time equivalent: one d, then one r per child (the last r of
  // the loop is the one that returns null).
  ++stats_->downs;
  stats_->rights += static_cast<int64_t>(out->size() - before);
}

void CountingNavigable::NextSiblings(const NodeId& p, int64_t limit,
                                     std::vector<NodeId>* out) {
  const size_t before = out->size();
  inner_->NextSiblings(p, limit, out);
  // k results cost k r commands when the limit stopped the loop, k+1 (the
  // trailing null) when the sibling list ran out first.
  const int64_t k = static_cast<int64_t>(out->size() - before);
  stats_->rights += k + ((limit < 0 || k < limit) ? 1 : 0);
}

void CountingNavigable::FetchSubtree(const NodeId& p, int64_t depth,
                                     std::vector<SubtreeEntry>* out) {
  const size_t before = out->size();
  inner_->FetchSubtree(p, depth, out);
  // A single-step pre-order walk over n nodes issues n f, n d (including
  // the leaf/cutoff probes) and n-1 r commands.
  const int64_t n = static_cast<int64_t>(out->size() - before);
  stats_->fetches += n;
  stats_->downs += n;
  if (n > 0) stats_->rights += n - 1;
}

}  // namespace mix
