#include "core/navigable.h"

namespace mix {

NavStats& NavStats::operator+=(const NavStats& o) {
  downs += o.downs;
  rights += o.rights;
  fetches += o.fetches;
  selects += o.selects;
  nths += o.nths;
  return *this;
}

std::string NavStats::ToString() const {
  return "d=" + std::to_string(downs) + " r=" + std::to_string(rights) +
         " f=" + std::to_string(fetches) + " sel=" + std::to_string(selects) +
         " nth=" + std::to_string(nths) + " total=" + std::to_string(total());
}

}  // namespace mix
