// Structured, Skolem-style node identifiers.
//
// The paper (Section 3) observes that maintaining association tables mapping
// every issued pointer p to its input associations a(p) is wasteful, because
// the mediator cannot know when the client drops a pointer. MIX therefore
// encodes the association information directly inside the node-id, like a
// Skolem term: the node-id pV of Example 4 is <v, p'V>, the binding-level id
// pB is <b, p'B, p''B>, and so on.
//
// `NodeId` realizes this: an immutable term with a short tag (the level
// marker, e.g. "b", "v", "id", "fwd") and a component list whose entries are
// integers (indices, state-table handles, child positions), strings
// (variable names, hole ids), or nested NodeIds (input pointers). Ids are
// cheaply copyable (shared representation), value-comparable, and hashable,
// so operators can decode navigation requests without per-pointer state.
#ifndef MIX_CORE_NODE_ID_H_
#define MIX_CORE_NODE_ID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mix {

class NodeId;

/// One component of a structured node-id.
using NodeIdComponent = std::variant<int64_t, std::string, NodeId>;

class NodeId {
 public:
  /// An invalid (null) id; `valid()` is false. Navigating from it is a bug.
  NodeId() = default;

  /// Builds the term tag(components...).
  explicit NodeId(std::string tag, std::vector<NodeIdComponent> components = {});

  bool valid() const { return rep_ != nullptr; }
  const std::string& tag() const;
  const std::vector<NodeIdComponent>& components() const;
  size_t arity() const { return components().size(); }

  /// Typed component accessors; MIX_CHECK on type/index mismatch
  /// (a mismatch means an operator decoded a foreign id — an internal bug).
  int64_t IntAt(size_t i) const;
  const std::string& StrAt(size_t i) const;
  const NodeId& IdAt(size_t i) const;

  bool operator==(const NodeId& other) const;
  bool operator!=(const NodeId& other) const { return !(*this == other); }

  /// Structural hash (precomputed at construction).
  size_t Hash() const;

  /// Debug rendering, e.g. `b(v(doc:17),3)`.
  std::string ToString() const;

 private:
  struct Rep {
    std::string tag;
    std::vector<NodeIdComponent> components;
    size_t hash = 0;
  };

  std::shared_ptr<const Rep> rep_;
};

/// Hash functor for unordered containers keyed by NodeId.
struct NodeIdHash {
  size_t operator()(const NodeId& id) const { return id.Hash(); }
};

}  // namespace mix

#endif  // MIX_CORE_NODE_ID_H_
