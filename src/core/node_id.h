// Structured, Skolem-style node identifiers.
//
// The paper (Section 3) observes that maintaining association tables mapping
// every issued pointer p to its input associations a(p) is wasteful, because
// the mediator cannot know when the client drops a pointer. MIX therefore
// encodes the association information directly inside the node-id, like a
// Skolem term: the node-id pV of Example 4 is <v, p'V>, the binding-level id
// pB is <b, p'B, p''B>, and so on.
//
// `NodeId` realizes this: an immutable term with a short tag (the level
// marker, e.g. "b", "v", "id", "fwd") and a component list whose entries are
// integers (indices, state-table handles, child positions), strings
// (variable names, hole ids), or nested NodeIds (input pointers). Ids are
// cheaply copyable (shared representation), value-comparable, and hashable,
// so operators can decode navigation requests without per-pointer state.
//
// Representation (perf-critical — every navigation across an operator
// boundary mints or decodes ids):
//   * tags are interned `Atom`s, so tag dispatch is an integer compare;
//   * small arities (<= 4, which covers every id the system mints today)
//     store their components in-situ in the shared rep — no component
//     vector allocation;
//   * construction is hash-consed through a bounded, thread-local intern
//     cache (lock-free by construction): a recurring id is admitted to the
//     cache on its second mint, and every re-mint after that returns the
//     *same* rep — the common re-mint patterns become allocation-free and
//     equality and container probes upgrade to a pointer compare. One-shot
//     ids (forward scans) are never admitted, so they never evict and pay
//     nothing beyond a probe;
//   * rep blocks are recycled through a thread-local free-list pool, so even
//     intern-cache misses usually avoid the general-purpose allocator.
// The intern cache is an accelerator, not an identity guarantee: equal ids
// built before/after an eviction, or on different threads, may hold distinct
// reps, and operator== falls back to structural comparison in that case.
#ifndef MIX_CORE_NODE_ID_H_
#define MIX_CORE_NODE_ID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/atom.h"

namespace mix {

class NodeId;

/// One component of a structured node-id.
using NodeIdComponent = std::variant<int64_t, std::string, NodeId>;

class NodeId {
 public:
  /// Shared immutable representation; defined in node_id.cc. Public only so
  /// the intern-cache machinery there can name it — not part of the API.
  struct Rep;

  /// An invalid (null) id; `valid()` is false. Navigating from it is a bug.
  NodeId() = default;

  /// Builds the term tag(components...), interning the tag. Prefer the
  /// Atom overloads on hot paths (call sites cache the interned tag).
  explicit NodeId(std::string tag, std::vector<NodeIdComponent> components = {});

  /// Fast-path constructors: no tag interning, no component vector.
  explicit NodeId(Atom tag);
  NodeId(Atom tag, NodeIdComponent c0);
  NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1);
  NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1, NodeIdComponent c2);
  NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1, NodeIdComponent c2,
         NodeIdComponent c3);
  NodeId(Atom tag, std::vector<NodeIdComponent> components);

  bool valid() const { return rep_ != nullptr; }
  Atom tag_atom() const;
  const std::string& tag() const;
  size_t arity() const;
  const NodeIdComponent& ComponentAt(size_t i) const;

  /// Typed component accessors; MIX_CHECK on type/index mismatch
  /// (a mismatch means an operator decoded a foreign id — an internal bug).
  int64_t IntAt(size_t i) const;
  const std::string& StrAt(size_t i) const;
  const NodeId& IdAt(size_t i) const;

  bool operator==(const NodeId& other) const {
    if (rep_ == other.rep_) return true;  // hash-consing fast path
    return EqualsSlow(other);
  }
  bool operator!=(const NodeId& other) const { return !(*this == other); }

  /// Structural hash (precomputed at construction).
  size_t Hash() const;

  /// Debug rendering, e.g. `b(v(doc:17),3)`.
  std::string ToString() const;

  /// Identity of the shared rep — for tests/diagnostics of hash-consing
  /// (equal ids *usually* share a rep; see header comment).
  const void* rep_identity() const { return rep_.get(); }

 private:
  explicit NodeId(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  bool EqualsSlow(const NodeId& other) const;

  static std::shared_ptr<const Rep> Mint(Atom tag, NodeIdComponent* components,
                                         size_t arity);

  std::shared_ptr<const Rep> rep_;
};

/// Hash functor for unordered containers keyed by NodeId.
struct NodeIdHash {
  size_t operator()(const NodeId& id) const { return id.Hash(); }
};

}  // namespace mix

#endif  // MIX_CORE_NODE_ID_H_
