#include "core/super_root.h"

#include <atomic>

#include "core/check.h"

namespace mix {

namespace {
int64_t NextInstance() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

const Atom kSupTag = Atom::Intern("sup");
}  // namespace

SuperRootNavigable::SuperRootNavigable(Navigable* inner)
    : inner_(inner), instance_(NextInstance()) {
  MIX_CHECK(inner_ != nullptr);
}

bool SuperRootNavigable::IsSuperRoot(const NodeId& p) const {
  return p.valid() && p.tag_atom() == kSupTag && p.arity() == 1 &&
         p.IntAt(0) == instance_;
}

bool SuperRootNavigable::IsInnerRoot(const NodeId& p) const {
  return inner_root_.valid() && p == inner_root_;
}

NodeId SuperRootNavigable::Root() { return NodeId(kSupTag, instance_); }

std::optional<NodeId> SuperRootNavigable::Down(const NodeId& p) {
  if (IsSuperRoot(p)) {
    // First real source access happens here, not at Root().
    inner_root_ = inner_->Root();
    return inner_root_;
  }
  return inner_->Down(p);
}

std::optional<NodeId> SuperRootNavigable::Right(const NodeId& p) {
  if (IsSuperRoot(p)) return std::nullopt;
  // The root element is the document node's only child.
  if (IsInnerRoot(p)) return std::nullopt;
  return inner_->Right(p);
}

Label SuperRootNavigable::Fetch(const NodeId& p) {
  if (IsSuperRoot(p)) return "#document";
  return inner_->Fetch(p);
}

Atom SuperRootNavigable::FetchAtom(const NodeId& p) {
  if (IsSuperRoot(p)) {
    static const Atom kDocument = Atom::Intern("#document");
    return kDocument;
  }
  return inner_->FetchAtom(p);
}

std::optional<NodeId> SuperRootNavigable::SelectSibling(
    const NodeId& p, const LabelPredicate& pred) {
  if (IsSuperRoot(p) || IsInnerRoot(p)) return std::nullopt;
  return inner_->SelectSibling(p, pred);
}

std::optional<NodeId> SuperRootNavigable::NthChild(const NodeId& p,
                                                   int64_t index) {
  if (IsSuperRoot(p)) {
    if (index != 0) return std::nullopt;
    return Down(p);
  }
  return inner_->NthChild(p, index);
}

void SuperRootNavigable::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  if (IsSuperRoot(p)) {
    inner_root_ = inner_->Root();
    out->push_back(inner_root_);
    return;
  }
  inner_->DownAll(p, out);
}

void SuperRootNavigable::NextSiblings(const NodeId& p, int64_t limit,
                                      std::vector<NodeId>* out) {
  if (IsSuperRoot(p) || IsInnerRoot(p)) return;
  inner_->NextSiblings(p, limit, out);
}

void SuperRootNavigable::FetchSubtree(const NodeId& p, int64_t depth,
                                      std::vector<SubtreeEntry>* out) {
  if (!IsSuperRoot(p)) {
    inner_->FetchSubtree(p, depth, out);
    return;
  }
  static const Atom kDocument = Atom::Intern("#document");
  const size_t slot = out->size();
  out->push_back(SubtreeEntry{kDocument, 0, false, NodeId()});
  if (depth == 0) {
    (*out)[slot].truncated = true;
    (*out)[slot].id = p;
    return;
  }
  inner_root_ = inner_->Root();
  const size_t from = out->size();
  inner_->FetchSubtree(inner_root_, depth < 0 ? depth : depth - 1, out);
  ShiftSubtreeDepths(out, from, 1);
}

}  // namespace mix
