// Internal invariant checking. MIX_CHECK aborts (with location and message)
// when an invariant that must hold regardless of user input is violated.
// User-input errors are reported through Status/Result instead (status.h).
#ifndef MIX_CORE_CHECK_H_
#define MIX_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define MIX_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MIX_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define MIX_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MIX_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // MIX_CORE_CHECK_H_
