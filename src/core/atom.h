// Interned strings ("atoms") for the navigation hot path.
//
// Node-id tags ("src", "gd_b", "fw", ...) and element labels recur millions
// of times during plan evaluation; carrying them as std::string means a
// copy, a heap block, and a byte-wise compare at every operator boundary.
// An `Atom` is a small integer handle into a process-wide intern table:
// interning the same text always yields the same handle, so equality is one
// integer compare and the text itself is stored exactly once.
//
// Thread-safety: interning takes a lock; resolving an Atom back to its text
// is lock-free (handles are only handed out after the string is published,
// and interned strings live — at a stable address — for the process
// lifetime, so `name()` references never dangle).
#ifndef MIX_CORE_ATOM_H_
#define MIX_CORE_ATOM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mix {

class Atom {
 public:
  /// The invalid atom; `valid()` is false. Interning "" yields a *valid*
  /// atom distinct from this.
  constexpr Atom() = default;

  /// Returns the unique atom for `text`, interning it on first use.
  static Atom Intern(std::string_view text);

  /// Number of distinct atoms interned so far (diagnostics/tests).
  static size_t InternedCount();

  bool valid() const { return id_ != 0; }

  /// The interned text. Stable address for the process lifetime.
  /// Must not be called on an invalid atom.
  const std::string& name() const;

  /// Dense handle (> 0 for valid atoms); suitable for table indexing.
  uint32_t id() const { return id_; }

  bool operator==(const Atom& other) const { return id_ == other.id_; }
  bool operator!=(const Atom& other) const { return id_ != other.id_; }
  bool operator<(const Atom& other) const { return id_ < other.id_; }

 private:
  explicit constexpr Atom(uint32_t id) : id_(id) {}

  uint32_t id_ = 0;
};

/// Hash functor for unordered containers keyed by Atom.
struct AtomHash {
  size_t operator()(const Atom& a) const {
    // Fibonacci mixing: atom ids are small and dense.
    return static_cast<size_t>(a.id()) * 0x9e3779b97f4a7c15ULL;
  }
};

}  // namespace mix

#endif  // MIX_CORE_ATOM_H_
