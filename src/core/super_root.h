// Document-node adapter.
//
// XMAS source conditions match paths *from the root of the source*
// inclusive of the root element's label ("$H binds to home trees, reachable
// by following the path homes.home from the root of homesSrc", §3 — `homes`
// is the root element). getDescendants, however, matches paths over an
// anchor's *descendants*. The two compose by anchoring source bindings at a
// virtual document node (DOM's Document vs. documentElement) whose single
// child is the root element. `SuperRootNavigable` provides that node and
// forwards everything else — including σ — to the wrapped source.
//
// Laziness: constructing the adapter and fetching its root cost nothing;
// the wrapped source's Root() is first called when the client descends.
#ifndef MIX_CORE_SUPER_ROOT_H_
#define MIX_CORE_SUPER_ROOT_H_

#include <optional>

#include "core/navigable.h"

namespace mix {

class SuperRootNavigable : public Navigable {
 public:
  /// `inner` is not owned and must outlive the adapter.
  explicit SuperRootNavigable(Navigable* inner);

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  Atom FetchAtom(const NodeId& p) override;
  std::optional<NodeId> SelectSibling(const NodeId& p,
                                      const LabelPredicate& pred) override;
  std::optional<NodeId> NthChild(const NodeId& p, int64_t index) override;

  // Vectored commands forward to the wrapped source (the document node has
  // exactly one child, the root element, and no siblings).
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  bool IsSuperRoot(const NodeId& p) const;
  bool IsInnerRoot(const NodeId& p) const;

  Navigable* inner_;
  int64_t instance_;
  /// Cached inner root id (valid once the client first descended).
  NodeId inner_root_;
};

}  // namespace mix

#endif  // MIX_CORE_SUPER_ROOT_H_
