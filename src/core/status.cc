#include "core/status.h"

namespace mix {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace mix
