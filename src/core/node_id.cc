#include "core/node_id.h"

#include <functional>

#include "core/check.h"

namespace mix {

namespace {

size_t CombineHash(size_t seed, size_t value) {
  // Boost-style hash combining.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t HashComponent(const NodeIdComponent& c) {
  if (const auto* i = std::get_if<int64_t>(&c)) {
    return std::hash<int64_t>()(*i);
  }
  if (const auto* s = std::get_if<std::string>(&c)) {
    return std::hash<std::string>()(*s);
  }
  return std::get<NodeId>(c).Hash();
}

}  // namespace

NodeId::NodeId(std::string tag, std::vector<NodeIdComponent> components) {
  auto rep = std::make_shared<Rep>();
  rep->tag = std::move(tag);
  rep->components = std::move(components);
  size_t h = std::hash<std::string>()(rep->tag);
  for (const auto& c : rep->components) {
    h = CombineHash(h, HashComponent(c));
  }
  rep->hash = h;
  rep_ = std::move(rep);
}

const std::string& NodeId::tag() const {
  MIX_CHECK(valid());
  return rep_->tag;
}

const std::vector<NodeIdComponent>& NodeId::components() const {
  MIX_CHECK(valid());
  return rep_->components;
}

int64_t NodeId::IntAt(size_t i) const {
  const auto& cs = components();
  MIX_CHECK(i < cs.size());
  const auto* v = std::get_if<int64_t>(&cs[i]);
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not an int");
  return *v;
}

const std::string& NodeId::StrAt(size_t i) const {
  const auto& cs = components();
  MIX_CHECK(i < cs.size());
  const auto* v = std::get_if<std::string>(&cs[i]);
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not a string");
  return *v;
}

const NodeId& NodeId::IdAt(size_t i) const {
  const auto& cs = components();
  MIX_CHECK(i < cs.size());
  const auto* v = std::get_if<NodeId>(&cs[i]);
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not a NodeId");
  return *v;
}

bool NodeId::operator==(const NodeId& other) const {
  if (rep_ == other.rep_) return true;
  if (!rep_ || !other.rep_) return false;
  if (rep_->hash != other.rep_->hash) return false;
  if (rep_->tag != other.rep_->tag) return false;
  if (rep_->components.size() != other.rep_->components.size()) return false;
  for (size_t i = 0; i < rep_->components.size(); ++i) {
    if (rep_->components[i] != other.rep_->components[i]) return false;
  }
  return true;
}

size_t NodeId::Hash() const {
  if (!rep_) return 0;
  return rep_->hash;
}

std::string NodeId::ToString() const {
  if (!rep_) return "<null>";
  std::string s = rep_->tag;
  if (rep_->components.empty()) return s;
  s += "(";
  bool first = true;
  for (const auto& c : rep_->components) {
    if (!first) s += ",";
    first = false;
    if (const auto* i = std::get_if<int64_t>(&c)) {
      s += std::to_string(*i);
    } else if (const auto* str = std::get_if<std::string>(&c)) {
      s += "'" + *str + "'";
    } else {
      s += std::get<NodeId>(c).ToString();
    }
  }
  s += ")";
  return s;
}

}  // namespace mix
