#include "core/node_id.h"

#include <array>
#include <atomic>
#include <functional>
#include <new>
#include <utility>

#include "core/check.h"

namespace mix {

namespace {

size_t CombineHash(size_t seed, size_t value) {
  // Boost-style hash combining.
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t HashComponent(const NodeIdComponent& c) {
  if (const auto* i = std::get_if<int64_t>(&c)) {
    return std::hash<int64_t>()(*i);
  }
  if (const auto* s = std::get_if<std::string>(&c)) {
    return std::hash<std::string>()(*s);
  }
  return std::get<NodeId>(c).Hash();
}

size_t HashParts(Atom tag, const NodeIdComponent* components, size_t arity) {
  size_t h = AtomHash()(tag);
  for (size_t i = 0; i < arity; ++i) {
    h = CombineHash(h, HashComponent(components[i]));
  }
  return h;
}

bool ComponentEquals(const NodeIdComponent& a, const NodeIdComponent& b) {
  if (a.index() != b.index()) return false;
  switch (a.index()) {
    case 0:
      return *std::get_if<int64_t>(&a) == *std::get_if<int64_t>(&b);
    case 1:
      return *std::get_if<std::string>(&a) == *std::get_if<std::string>(&b);
    default:
      // NodeId::operator== takes the shared-rep pointer fast path.
      return *std::get_if<NodeId>(&a) == *std::get_if<NodeId>(&b);
  }
}

// ---------------------------------------------------------------------------
// Rep block pool: per-thread free list recycling the allocate_shared blocks
// (rep + control block in one allocation). Thread-local, so Take/Give touch
// no shared state and need no locking; a block freed on a different thread
// than it was allocated on simply joins that thread's list (all pooled
// blocks are the same size). The list drains to operator delete at thread
// exit.
// ---------------------------------------------------------------------------

class RepPool {
 public:
  /// Forces construction of this thread's pool state. The intern cache
  /// calls this from its own constructor so the pool's thread_local is
  /// constructed FIRST and therefore destroyed LAST: cache teardown at
  /// thread exit releases shared_ptrs whose deleter calls Give(), which
  /// would otherwise touch an already-destroyed thread_local (UB). With
  /// multiple worker threads minting ids (the mixd service), threads exit
  /// while their caches still hold reps, so the ordering matters.
  static void Warm() { Tls(); }

  static void* Take(size_t size) {
    Local& local = Tls();
    if (local.free != nullptr && size == local.block_size) {
      FreeNode* block = local.free;
      local.free = block->next;
      --local.count;
      return block;
    }
    return ::operator new(size);
  }

  static void Give(void* block, size_t size) {
    Local& local = Tls();
    if (local.block_size == 0) local.block_size = size;
    if (size == local.block_size && local.count < kMaxFree) {
      auto* node = static_cast<FreeNode*>(block);
      node->next = local.free;
      local.free = node;
      ++local.count;
      return;
    }
    ::operator delete(block);
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr size_t kMaxFree = 4096;

  struct Local {
    FreeNode* free = nullptr;
    size_t count = 0;
    /// All pooled blocks are allocate_shared<Rep> blocks of one size,
    /// learned from the first deallocation; other sizes fall through to
    /// operator new/delete.
    size_t block_size = 0;

    ~Local() {
      while (free != nullptr) {
        FreeNode* next = free->next;
        ::operator delete(free);
        free = next;
      }
    }
  };

  static Local& Tls() {
    thread_local Local local;
    return local;
  }
};

template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    if (n == 1) return static_cast<T*>(RepPool::Take(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    if (n == 1) {
      RepPool::Give(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const {
    return false;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Rep: shared immutable term representation with in-situ small components.
// ---------------------------------------------------------------------------

struct NodeId::Rep {
  static constexpr uint32_t kInlineArity = 4;

  Atom tag;
  uint32_t arity = 0;
  size_t hash = 0;
  /// Components live in `inline_comps` for arity <= kInlineArity, otherwise
  /// all of them live in `overflow` (the inline slots stay unused).
  std::array<NodeIdComponent, kInlineArity> inline_comps;
  std::vector<NodeIdComponent> overflow;

  const NodeIdComponent* data() const {
    return arity <= kInlineArity ? inline_comps.data() : overflow.data();
  }

  bool Matches(Atom t, const NodeIdComponent* components, size_t n) const {
    if (tag != t || arity != n) return false;
    const NodeIdComponent* mine = data();
    for (size_t i = 0; i < n; ++i) {
      if (!ComponentEquals(mine[i], components[i])) return false;
    }
    return true;
  }
};

namespace {

// ---------------------------------------------------------------------------
// Bounded hash-consing cache: direct-mapped and thread-local, so probing and
// inserting are lock-free. A slot conflict simply evicts (outstanding ids
// keep their reps alive via shared_ptr), so memory stays bounded at
// kInternSlots reps per minting thread. Ids minted on different threads
// never share a rep — operator== falls back to structural comparison for
// them, exactly as it does across an eviction.
//
// Admission policy: a miss does not immediately cache the fresh rep.
// Forward scans mint millions of ids exactly once, and caching those would
// turn every mint into an eviction (a shared_ptr release + rep destruction
// per mint — measurably slower than not caching at all). Instead each slot
// remembers the hash of its last rejected key (`seen`); only a key minted
// *twice* is admitted. Recurring ids (re-mints of issued handles, wrap ids
// on the pass-through path) are cached from their second sighting, one-shot
// ids never displace them.
// ---------------------------------------------------------------------------

constexpr size_t kInternSlots = 2048;

/// Rep pointer and doorkeeper share a slot so a mint touches one cache line.
struct InternSlot {
  std::shared_ptr<const NodeId::Rep> rep;
  /// Doorkeeper: hash of the most recent rejected miss.
  size_t seen = 0;
};

struct InternCache {
  InternCache() { RepPool::Warm(); }  // pool TLS must outlive the cache
  std::array<InternSlot, kInternSlots> slots;
};

InternCache& Cache() {
  thread_local InternCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const NodeId::Rep> NodeId::Mint(Atom tag,
                                                NodeIdComponent* components,
                                                size_t arity) {
  size_t hash = HashParts(tag, components, arity);
  InternSlot& slot = Cache().slots[(hash ^ (hash >> 13)) & (kInternSlots - 1)];
  std::shared_ptr<const Rep>& cached = slot.rep;
  if (cached != nullptr && cached->hash == hash &&
      cached->Matches(tag, components, arity)) {
    return cached;
  }
  auto rep = std::allocate_shared<Rep>(PoolAllocator<Rep>());
  rep->tag = tag;
  rep->arity = static_cast<uint32_t>(arity);
  rep->hash = hash;
  if (arity <= Rep::kInlineArity) {
    for (size_t i = 0; i < arity; ++i) {
      rep->inline_comps[i] = std::move(components[i]);
    }
  } else {
    rep->overflow.assign(std::make_move_iterator(components),
                         std::make_move_iterator(components + arity));
  }
  if (slot.seen == hash) {
    cached = rep;
  } else {
    slot.seen = hash;
  }
  return rep;
}

NodeId::NodeId(std::string tag, std::vector<NodeIdComponent> components)
    : rep_(Mint(Atom::Intern(tag), components.data(), components.size())) {}

NodeId::NodeId(Atom tag) : rep_(Mint(tag, nullptr, 0)) {}

NodeId::NodeId(Atom tag, NodeIdComponent c0) {
  NodeIdComponent comps[] = {std::move(c0)};
  rep_ = Mint(tag, comps, 1);
}

NodeId::NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1) {
  NodeIdComponent comps[] = {std::move(c0), std::move(c1)};
  rep_ = Mint(tag, comps, 2);
}

NodeId::NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1,
               NodeIdComponent c2) {
  NodeIdComponent comps[] = {std::move(c0), std::move(c1), std::move(c2)};
  rep_ = Mint(tag, comps, 3);
}

NodeId::NodeId(Atom tag, NodeIdComponent c0, NodeIdComponent c1,
               NodeIdComponent c2, NodeIdComponent c3) {
  NodeIdComponent comps[] = {std::move(c0), std::move(c1), std::move(c2),
                             std::move(c3)};
  rep_ = Mint(tag, comps, 4);
}

NodeId::NodeId(Atom tag, std::vector<NodeIdComponent> components)
    : rep_(Mint(tag, components.data(), components.size())) {}

Atom NodeId::tag_atom() const {
  MIX_CHECK(valid());
  return rep_->tag;
}

const std::string& NodeId::tag() const {
  MIX_CHECK(valid());
  return rep_->tag.name();
}

size_t NodeId::arity() const {
  MIX_CHECK(valid());
  return rep_->arity;
}

const NodeIdComponent& NodeId::ComponentAt(size_t i) const {
  MIX_CHECK(valid());
  MIX_CHECK(i < rep_->arity);
  return rep_->data()[i];
}

int64_t NodeId::IntAt(size_t i) const {
  const auto* v = std::get_if<int64_t>(&ComponentAt(i));
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not an int");
  return *v;
}

const std::string& NodeId::StrAt(size_t i) const {
  const auto* v = std::get_if<std::string>(&ComponentAt(i));
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not a string");
  return *v;
}

const NodeId& NodeId::IdAt(size_t i) const {
  const auto* v = std::get_if<NodeId>(&ComponentAt(i));
  MIX_CHECK_MSG(v != nullptr, "NodeId component is not a NodeId");
  return *v;
}

bool NodeId::EqualsSlow(const NodeId& other) const {
  // rep_ == other.rep_ was already ruled out by the inline fast path.
  if (!rep_ || !other.rep_) return false;
  if (rep_->hash != other.rep_->hash) return false;
  return rep_->Matches(other.rep_->tag, other.rep_->data(), other.rep_->arity);
}

size_t NodeId::Hash() const {
  if (!rep_) return 0;
  return rep_->hash;
}

std::string NodeId::ToString() const {
  if (!rep_) return "<null>";
  std::string s = rep_->tag.name();
  if (rep_->arity == 0) return s;
  s += "(";
  const NodeIdComponent* comps = rep_->data();
  for (size_t i = 0; i < rep_->arity; ++i) {
    if (i > 0) s += ",";
    const NodeIdComponent& c = comps[i];
    if (const auto* v = std::get_if<int64_t>(&c)) {
      s += std::to_string(*v);
    } else if (const auto* str = std::get_if<std::string>(&c)) {
      s += "'" + *str + "'";
    } else {
      s += std::get<NodeId>(c).ToString();
    }
  }
  s += ")";
  return s;
}

}  // namespace mix
