// The DOM-VXD navigational interface (paper Section 2).
//
// XML documents — real or virtual — are explored with a minimal command set
// NC sufficient to completely explore arbitrary trees:
//
//   d (down):  p' := d(p)  — first child of p, or null for a leaf;
//   r (right): p' := r(p)  — right sibling of p, or null;
//   f (fetch): l  := f(p)  — the label of p;
//
// plus the optional sibling-selection command of Section 2:
//
//   select(σ): p' := σ(p)  — first sibling to the right whose label
//                            satisfies σ, or null.
//
// Every component that exports an XML tree — wrappers, the buffer, every
// algebra operator acting as a lazy mediator, and the top-level virtual
// answer document — implements `Navigable`. Node positions are passed as
// structured `NodeId`s (node_id.h).
#ifndef MIX_CORE_NAVIGABLE_H_
#define MIX_CORE_NAVIGABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/atom.h"
#include "core/node_id.h"

namespace mix {

/// Labels are the paper's domain D: element names and character content.
using Label = std::string;

/// A predicate over labels, used by the σ (select-sibling) command and by
/// selection operators. Carries a description for plan/diagnostic printing.
class LabelPredicate {
 public:
  /// Matches exactly `label`.
  static LabelPredicate Equals(std::string label);
  /// Matches any label (the `_` wildcard).
  static LabelPredicate Any();
  /// Arbitrary predicate with a human-readable description.
  static LabelPredicate Fn(std::function<bool(const Label&)> fn,
                           std::string description);

  bool Matches(const Label& label) const { return fn_(label); }
  const std::string& description() const { return description_; }

  /// Equality predicates expose their interned target label, letting σ
  /// loops match by atom compare instead of fetching label strings.
  bool is_equality() const { return equals_atom_.valid(); }
  Atom equals_atom() const { return equals_atom_; }

 private:
  LabelPredicate(std::function<bool(const Label&)> fn, std::string description)
      : fn_(std::move(fn)), description_(std::move(description)) {}

  std::function<bool(const Label&)> fn_;
  std::string description_;
  Atom equals_atom_;  ///< valid iff built via Equals().
};

/// One node of a batched subtree snapshot (`Navigable::FetchSubtree`), in
/// pre-order. `depth` is relative to the fetched node (0 = the node itself).
/// `truncated` marks entries at the depth cutoff that have unexplored
/// children; only those carry a valid `id` (a handle to resume navigation
/// from). Interior entries deliberately carry no id: a full-depth fetch
/// through pass-through layers then mints no per-node ids at all.
struct SubtreeEntry {
  Atom label;
  int32_t depth = 0;
  bool truncated = false;
  NodeId id;
};

/// Shifts the depth of entries [from, out->size()) by `delta`. Helper for
/// layered FetchSubtree implementations that emit a synthesized root and
/// then splice an input subtree underneath it.
void ShiftSubtreeDepths(std::vector<SubtreeEntry>* out, size_t from,
                        int32_t delta);

/// A navigable (possibly virtual) labeled ordered tree.
///
/// Null results are conveyed as std::nullopt (the paper's ⊥). Implementations
/// must tolerate navigation from any id they previously handed out, in any
/// order — the client may proceed from multiple nodes whose descendants or
/// siblings have not been visited yet (Section 1, Related Work).
class Navigable {
 public:
  virtual ~Navigable() = default;

  /// Handle to the root element. By the paper's contract this must not
  /// touch the sources (the preprocessing phase returns a handle "without
  /// even accessing the sources").
  virtual NodeId Root() = 0;

  /// d: first child of `p`, or nullopt if `p` is a leaf.
  virtual std::optional<NodeId> Down(const NodeId& p) = 0;

  /// r: right sibling of `p`, or nullopt.
  virtual std::optional<NodeId> Right(const NodeId& p) = 0;

  /// f: label of `p`.
  virtual Label Fetch(const NodeId& p) = 0;

  /// f, interned: the label of `p` as an Atom. Semantically identical to
  /// `Atom::Intern(Fetch(p))` (the default implementation); sources that
  /// store interned labels override it to answer without copying or
  /// re-hashing the label string. Hot consumers (getDescendants' NFA
  /// lockstep, σ equality scans) match labels through this.
  virtual Atom FetchAtom(const NodeId& p) { return Atom::Intern(Fetch(p)); }

  /// σ: first sibling to the right of `p` (exclusive) whose label satisfies
  /// `pred`. The default implementation loops r/f; sources that can evaluate
  /// predicates natively override it — this is what upgrades selection views
  /// from browsable to bounded browsable (end of Section 2).
  virtual std::optional<NodeId> SelectSibling(const NodeId& p,
                                              const LabelPredicate& pred);

  /// XPointer-style indexed access (Section 2: "additional navigation
  /// commands can be provided in the style of [XPo]"): the `index`-th
  /// (0-based) child of `p`, or nullopt. The default implementation loops
  /// d/r; random-access sources override it with O(1) lookups.
  virtual std::optional<NodeId> NthChild(const NodeId& p, int64_t index);

  // --- vectored navigation (batched d/r/f) ---
  //
  // Semantically these are pure compositions of the primitives above, and
  // the default implementations are exactly those loops — so every
  // implementation keeps the paper's Def. 1 contract unchanged. Sources and
  // pass-through layers override them to answer a whole child list, sibling
  // page, or subtree in one call instead of N single-step translations.

  /// Appends the ids of all children of `p`, in order (d then r*).
  virtual void DownAll(const NodeId& p, std::vector<NodeId>* out);

  /// Appends up to `limit` siblings to the right of `p` (exclusive), in
  /// order; `limit < 0` means all (r*).
  virtual void NextSiblings(const NodeId& p, int64_t limit,
                            std::vector<NodeId>* out);

  /// Appends a pre-order snapshot of the subtree under `p`, down to `depth`
  /// levels below it (`depth < 0`: the complete subtree; `depth == 0`: just
  /// `p`). Entries at the cutoff with unexplored children are marked
  /// `truncated` and carry a resume id; all other entries carry labels only.
  virtual void FetchSubtree(const NodeId& p, int64_t depth,
                            std::vector<SubtreeEntry>* out);
};

/// Navigation-command counters — the measuring stick of navigational
/// complexity (Def. 2). One `NavStats` is typically attached per
/// mediator/source boundary.
struct NavStats {
  int64_t downs = 0;
  int64_t rights = 0;
  int64_t fetches = 0;
  int64_t selects = 0;
  int64_t nths = 0;

  int64_t total() const {
    return downs + rights + fetches + selects + nths;
  }
  NavStats& operator+=(const NavStats& o);
  std::string ToString() const;
};

/// Decorator that forwards to an underlying Navigable while counting
/// commands into a caller-owned NavStats. Used to measure the source
/// navigations a lazy mediator issues per client navigation.
class CountingNavigable : public Navigable {
 public:
  /// Neither pointer is owned; both must outlive this object.
  CountingNavigable(Navigable* inner, NavStats* stats)
      : inner_(inner), stats_(stats) {}

  NodeId Root() override { return inner_->Root(); }
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  Atom FetchAtom(const NodeId& p) override;
  std::optional<NodeId> SelectSibling(const NodeId& p,
                                      const LabelPredicate& pred) override;
  std::optional<NodeId> NthChild(const NodeId& p, int64_t index) override;

  // Batch commands forward to the inner batch path but are charged at the
  // node-at-a-time equivalent rate (one d plus one r per child, etc.), so a
  // batched traversal can never report more source navigations than the
  // single-step loop it replaces.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

 private:
  Navigable* inner_;
  NavStats* stats_;
};

}  // namespace mix

#endif  // MIX_CORE_NAVIGABLE_H_
