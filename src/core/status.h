// Error handling for the MIX library.
//
// Follows the RocksDB/Arrow convention: fallible public APIs return a
// `Status` (or a `Result<T>` which couples a Status with a value) instead of
// throwing. Internal invariants use MIX_CHECK (check.h).
#ifndef MIX_CORE_STATUS_H_
#define MIX_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

namespace mix {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kParseError,
    kUnimplemented,
    kInternal,
    /// The service is overloaded or shutting down; retrying later may
    /// succeed (bounded admission queues reject with this).
    kUnavailable,
    /// The request's deadline elapsed before it could be served.
    kDeadlineExceeded,
    /// A stream lost synchronization with work already in flight (e.g. a
    /// pipelined batch partially written or partially answered): the state
    /// of the in-flight commands is unknown, so a blind retry could observe
    /// or cause duplicated effects. NOT retryable — callers must rebuild
    /// their stream state first.
    kDataLoss,
  };

  /// Default-constructed status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }
  /// Rebuilds a status from its parts — how a wire peer's error frame is
  /// turned back into the Status the remote call site sees.
  static Status FromCode(Code code, std::string msg) {
    if (code == Code::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token '}'".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error. `ValueOrDie()` aborts on error (for tests/examples
/// where failure is a bug); production call sites check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    MIX_CHECK_MSG(!status_.ok(), "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MIX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    MIX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& ValueOrDie() && {
    MIX_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mix

#endif  // MIX_CORE_STATUS_H_
