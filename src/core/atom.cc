#include "core/atom.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/check.h"

namespace mix {

namespace {

// Interned strings are stored in fixed-size chunks so that readers can
// resolve an Atom to its text without taking the intern lock: the chunk
// pointer array is a fixed static table of atomics, a chunk is published
// (release) before any handle pointing into it escapes, and chunks are
// never freed or moved.
constexpr uint32_t kChunkShift = 10;
constexpr uint32_t kChunkSize = 1u << kChunkShift;  // strings per chunk
constexpr uint32_t kMaxChunks = 1u << 12;           // 4M atoms max

struct Chunk {
  std::array<std::string, kChunkSize> names;
};

// Lock-free lookup index: open-addressed table of (hash-tag, id) entries,
// probed with plain acquire loads. Slots are written exactly once, under the
// intern lock, after the backing string is stored — so any entry a reader
// observes names a fully-published atom. 0 means empty (ids start at 1, so
// a populated entry is never 0 even when the hash tag is). The table is a
// cache in front of the authoritative map: when a probe window fills up the
// entry simply isn't published and lookups for it take the locked path.
constexpr uint32_t kFastBits = 16;
constexpr uint32_t kFastSize = 1u << kFastBits;  // 64K cached atoms
constexpr uint32_t kMaxProbe = 16;

class Table {
 public:
  static Table& Instance() {
    // Leaky singleton: atoms must stay resolvable during static destruction.
    static Table* table = new Table();
    return *table;
  }

  uint32_t Intern(std::string_view text) {
    const size_t hash = std::hash<std::string_view>()(text);
    const uint32_t tag = static_cast<uint32_t>(hash >> 32);
    for (uint32_t probe = 0; probe < kMaxProbe; ++probe) {
      uint64_t entry =
          fast_[(hash + probe) & (kFastSize - 1)].load(std::memory_order_acquire);
      if (entry == 0) break;
      if (static_cast<uint32_t>(entry >> 32) == tag) {
        uint32_t id = static_cast<uint32_t>(entry);
        if (NameOf(id) == text) return id;
      }
    }
    return InternSlow(text, hash, tag);
  }

  const std::string& NameOf(uint32_t id) const {
    Chunk* chunk = chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    MIX_CHECK_MSG(chunk != nullptr, "invalid atom handle");
    return chunk->names[id & (kChunkSize - 1)];
  }

  size_t Count() {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

 private:
  Table() = default;

  uint32_t InternSlow(std::string_view text, size_t hash, uint32_t tag) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(text);
    if (it != index_.end()) return it->second;
    uint32_t id = next_id_++;
    uint32_t chunk_index = id >> kChunkShift;
    MIX_CHECK_MSG(chunk_index < kMaxChunks, "atom table exhausted");
    Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    std::string& stored = chunk->names[id & (kChunkSize - 1)];
    stored.assign(text.data(), text.size());
    index_.emplace(std::string_view(stored), id);
    // Publish to the lock-free index; if the probe window is full the atom
    // stays lookup-able through the map only.
    for (uint32_t probe = 0; probe < kMaxProbe; ++probe) {
      std::atomic<uint64_t>& slot = fast_[(hash + probe) & (kFastSize - 1)];
      if (slot.load(std::memory_order_relaxed) == 0) {
        slot.store((static_cast<uint64_t>(tag) << 32) | id,
                   std::memory_order_release);
        break;
      }
    }
    return id;
  }

  std::mutex mu_;
  /// Views point into chunk storage, which never moves.
  std::unordered_map<std::string_view, uint32_t> index_;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::array<std::atomic<uint64_t>, kFastSize> fast_{};
  uint32_t next_id_ = 1;  // 0 is the invalid atom
};

}  // namespace

Atom Atom::Intern(std::string_view text) {
  return Atom(Table::Instance().Intern(text));
}

size_t Atom::InternedCount() { return Table::Instance().Count(); }

const std::string& Atom::name() const {
  MIX_CHECK_MSG(valid(), "name() on the invalid atom");
  return Table::Instance().NameOf(id_);
}

}  // namespace mix
