// Plan rewriting for navigational complexity (paper Section 3 mentions a
// rewriting phase but omits the rules "due to space limitations"; these
// are our reconstruction, documented in DESIGN.md §6).
//
// Rules (applied to fixpoint):
//   1. enable-σ      — getDescendants over a literal label chain uses the
//                      σ sibling-selection command when sources support it
//                      (upgrades browsable → bounded browsable, Section 2);
//   2. select-pushdown — a selection above a join moves into the side that
//                      binds all its variables; a selection not involving
//                      a getDescendants output moves below it; a selection
//                      on group-by variables moves below the groupBy.
//                      Earlier filtering means lazier scans;
//   3. project-prune — projections that keep the full schema are dropped.
#ifndef MIX_MEDIATOR_REWRITE_H_
#define MIX_MEDIATOR_REWRITE_H_

#include <string>

#include "mediator/plan.h"

namespace mix::mediator {

struct RewriteOptions {
  /// Sources answer σ natively; enables rule 1.
  bool sigma_capable_sources = false;
};

struct RewriteStats {
  int sigma_enabled = 0;
  int selects_pushed = 0;
  int projects_removed = 0;

  int total() const { return sigma_enabled + selects_pushed + projects_removed; }
  std::string ToString() const;
};

/// Rewrites in place; `*plan` may be re-rooted.
RewriteStats Rewrite(PlanPtr* plan, const RewriteOptions& options);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_REWRITE_H_
