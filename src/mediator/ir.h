// Optimizer IR over the XMAS algebra (DESIGN.md §6).
//
// The rewriter used to pattern-match directly on the PlanNode tree, which
// forced every rule to re-derive schemas and re-walk subtrees for each
// probe. The IR keeps the *same* operator vocabulary (each IrNode embeds a
// childless PlanNode) but annotates every node with the facts the passes
// keep asking for:
//
//   * schema       — the node's output binding schema (ComputeSchema's
//                    per-operator transition, folded once bottom-up);
//   * var_source   — which registered source each schema variable's value
//                    navigates into ("" = synthesized by a constructor);
//   * sources      — sorted set of source names in the subtree;
//   * self_cls/cls — browsability of the operator alone / of the subtree,
//                    with σ-capability resolved per source;
//   * fanout       — crude cardinality estimate for join ordering.
//
// Passes mutate the tree shape freely and call AnalyzeIr() to refresh the
// annotations; PassManager does this between passes, so a pass may trust
// the annotations on entry.
#ifndef MIX_MEDIATOR_IR_H_
#define MIX_MEDIATOR_IR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mediator/browsability.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Column types a pushdown-capable source exposes. Mirrors rdb::Type but
/// lives here because mix_mediator does not link mix_rdb; the service layer
/// converts from the wrapper's capability struct (buffer::PushdownCapability).
enum class ColumnType { kInt, kDouble, kString };

/// What the wrapper behind a registered source can absorb. Queried per
/// source (ISSUE 6 satellite: capability is not a global bool), so a plan
/// mixing relational and CSV legs only rewrites the legs that honor it.
struct SourceCapability {
  /// Source answers σ (sibling label selection) natively: label-chain
  /// getDescendants over it is bounded browsable.
  bool sigma = false;
  /// Source accepts a "sql:SELECT ..." view URI: comparison predicates can
  /// be compiled into the view so filtered tuples never cross the wire.
  bool pushdown = false;
  /// Root label of the exported database document (the <db> in
  /// db.<table>.row paths). Only meaningful when `pushdown`.
  std::string database;
  struct Column {
    std::string name;
    ColumnType type = ColumnType::kString;
  };
  /// table name -> columns, for pushdown type-legality checks.
  std::map<std::string, std::vector<Column>> tables;
};

struct IrNode;
using IrPtr = std::unique_ptr<IrNode>;

struct IrNode {
  /// The operator: a PlanNode whose `children` vector is always empty
  /// (structure lives in IrNode::children so annotations travel with it).
  PlanNode op;
  std::vector<IrPtr> children;

  // --- annotations, valid after AnalyzeIr ---
  /// Output schema. Empty for the kTupleDestroy root (document, not
  /// bindings).
  algebra::VarList schema;
  /// schema var -> source name whose values it navigates, "" if the value
  /// is synthesized (constructor / groupBy output).
  std::map<std::string, std::string> var_source;
  /// Sorted, deduplicated source names appearing in this subtree.
  std::vector<std::string> sources;
  /// Browsability of this operator alone / of the whole subtree.
  Browsability self_cls = Browsability::kBoundedBrowsable;
  Browsability cls = Browsability::kBoundedBrowsable;
  /// Estimated output cardinality (arbitrary units; only ratios matter).
  double fanout = 1.0;
};

/// Deep-copies `plan` into IR form (annotations unset; run AnalyzeIr).
IrPtr IrFromPlan(const PlanNode& plan);

/// Reconstructs a plain plan tree from the IR (deep copy).
PlanPtr IrToPlan(const IrNode& ir);

/// Recomputes every annotation bottom-up. Fails if the tree is not
/// schema-valid (a pass broke variable scoping — the pass must revert).
/// `caps` maps source name -> capability; missing sources get the default
/// (no σ, no pushdown). `assume_all_sigma` preserves the legacy
/// RewriteOptions::sigma_capable_sources behavior: treat every source as
/// σ-capable regardless of `caps`.
Status AnalyzeIr(IrNode* root, const std::map<std::string, SourceCapability>& caps,
                 bool assume_all_sigma);

/// Renders the IR via plan_text. With `annotate`, appends a trailing
/// "% schema=... src=... cls=... fanout=..." comment per line (still
/// parseable: plan_text strips % comments).
std::string DumpIr(const IrNode& ir, bool annotate);

/// Number of times `var` is consumed as an *input* anywhere in the tree
/// (predicates, anchors, group/sort/project lists, constructor arguments,
/// the tupleDestroy root variable). Schema pass-through does not count.
int CountVarUses(const IrNode& root, const std::string& var);

/// The variables `op` reads from its input bindings.
std::vector<std::string> InputVars(const PlanNode& op);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_IR_H_
