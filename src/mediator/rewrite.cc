#include "mediator/rewrite.h"

#include <algorithm>

#include "pathexpr/path_expr.h"

namespace mix::mediator {

std::string RewriteStats::ToString() const {
  return "sigma_enabled=" + std::to_string(sigma_enabled) +
         " selects_pushed=" + std::to_string(selects_pushed) +
         " projects_removed=" + std::to_string(projects_removed);
}

namespace {

bool Contains(const algebra::VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// Variables a predicate reads.
std::vector<std::string> PredicateVars(const algebra::BindingPredicate& p) {
  std::vector<std::string> vars{p.left_var()};
  if (p.is_var_var()) vars.push_back(p.right_var());
  return vars;
}

bool AllIn(const std::vector<std::string>& vars,
           const algebra::VarList& schema) {
  for (const std::string& v : vars) {
    if (!Contains(schema, v)) return false;
  }
  return true;
}

/// Rule 1: enable σ scans on label-chain getDescendants.
bool EnableSigma(PlanNode* node) {
  if (node->kind != PlanNode::Kind::kGetDescendants || node->use_sigma) {
    return false;
  }
  auto path = pathexpr::PathExpr::Parse(node->path);
  if (!path.ok() || !path.value().IsLabelChain()) return false;
  node->use_sigma = true;
  return true;
}

/// Re-rooting helpers: detach/attach children by value.
PlanPtr Detach(PlanPtr* slot) { return std::move(*slot); }

/// Applies all rules to the subtree at *slot; returns number of changes.
int RewriteNode(PlanPtr* slot, const RewriteOptions& options,
                RewriteStats* stats) {
  int changes = 0;
  PlanNode* node = slot->get();

  // Rule 1.
  if (options.sigma_capable_sources && EnableSigma(node)) {
    ++stats->sigma_enabled;
    ++changes;
  }

  // Rule 2: select pushdown.
  if (node->kind == PlanNode::Kind::kSelect) {
    PlanNode* child = node->children[0].get();
    std::vector<std::string> vars = PredicateVars(*node->predicate);

    if (child->kind == PlanNode::Kind::kJoin) {
      for (size_t side = 0; side < 2; ++side) {
        auto schema = ComputeSchema(*child->children[side]);
        if (!schema.ok()) break;
        if (!AllIn(vars, schema.value())) continue;
        // select(join(a, b)) → join(select(a), b) (or the right side).
        PlanPtr select = Detach(slot);
        PlanPtr join = std::move(select->children[0]);
        PlanPtr target = std::move(join->children[side]);
        select->children[0] = std::move(target);
        join->children[side] = std::move(select);
        *slot = std::move(join);
        ++stats->selects_pushed;
        return changes + 1;  // tree reshaped; caller recurses again
      }
    } else if (child->kind == PlanNode::Kind::kGetDescendants &&
               !Contains(vars, child->out_var)) {
      // select(getDescendants(c)) → getDescendants(select(c)).
      PlanPtr select = Detach(slot);
      PlanPtr gd = std::move(select->children[0]);
      PlanPtr input = std::move(gd->children[0]);
      select->children[0] = std::move(input);
      gd->children[0] = std::move(select);
      *slot = std::move(gd);
      ++stats->selects_pushed;
      return changes + 1;
    } else if (child->kind == PlanNode::Kind::kGroupBy &&
               AllIn(vars, child->vars)) {
      // select(groupBy(c)) → groupBy(select(c)): group-by variables pass
      // through unchanged, so filtering groups equals filtering bindings.
      PlanPtr select = Detach(slot);
      PlanPtr gb = std::move(select->children[0]);
      PlanPtr input = std::move(gb->children[0]);
      select->children[0] = std::move(input);
      gb->children[0] = std::move(select);
      *slot = std::move(gb);
      ++stats->selects_pushed;
      return changes + 1;
    }
  }

  // Rule 3: project-prune.
  if (node->kind == PlanNode::Kind::kProject) {
    auto child_schema = ComputeSchema(*node->children[0]);
    if (child_schema.ok() && child_schema.value() == node->vars) {
      PlanPtr project = Detach(slot);
      *slot = std::move(project->children[0]);
      ++stats->projects_removed;
      return changes + 1;
    }
  }

  // Recurse.
  for (PlanPtr& c : slot->get()->children) {
    changes += RewriteNode(&c, options, stats);
  }
  return changes;
}

}  // namespace

RewriteStats Rewrite(PlanPtr* plan, const RewriteOptions& options) {
  RewriteStats stats;
  // Fixpoint: each pass may expose new opportunities.
  for (int pass = 0; pass < 64; ++pass) {
    if (RewriteNode(plan, options, &stats) == 0) break;
  }
  return stats;
}

}  // namespace mix::mediator
