#include "mediator/rewrite.h"

#include "mediator/ir.h"
#include "mediator/passes/pass.h"

namespace mix::mediator {

std::string RewriteStats::ToString() const {
  return "sigma_enabled=" + std::to_string(sigma_enabled) +
         " selects_pushed=" + std::to_string(selects_pushed) +
         " projects_removed=" + std::to_string(projects_removed);
}

// Rewrite() is the legacy three-rule entry point, now a shim over the pass
// pipeline (mediator/passes/): it runs exactly the passes implementing the
// original rules — select_pushdown (rule 2), project_prune (rule 3), and
// browsability (rule 1), with the global sigma_capable_sources bool mapped
// to assume_all_sigma. The full pipeline (wrapper pushdown, fusion, join
// reordering, per-source capabilities) is passes::OptimizePlan.
RewriteStats Rewrite(PlanPtr* plan, const RewriteOptions& options) {
  RewriteStats stats;
  passes::OptimizerOptions opts;
  opts.assume_all_sigma = options.sigma_capable_sources;

  IrPtr ir = IrFromPlan(**plan);
  passes::PassManager pm;
  pm.Add(passes::MakeSelectPushdownPass());
  pm.Add(passes::MakeProjectPrunePass());
  pm.Add(passes::MakeBrowsabilityPass());
  auto report = pm.Run(&ir, opts);
  // An unanalyzable plan (invalid variable scoping) is left untouched,
  // matching the legacy rewriter's do-no-harm behavior.
  if (!report.ok()) return stats;

  *plan = IrToPlan(*ir);
  stats.selects_pushed = report.value().applied("select_pushdown");
  stats.projects_removed = report.value().applied("project_prune");
  stats.sigma_enabled = report.value().applied("browsability");
  return stats;
}

}  // namespace mix::mediator
