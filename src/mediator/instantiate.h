// Plan instantiation: building the tree of lazy mediators (Fig. 4 → the
// runtime of Fig. 2).
//
// `LazyMediator` owns one lazy-mediator object per algebra operator and
// exposes the virtual answer document. Obtaining `document()` performs the
// paper's preprocessing contract: a handle to the root of the virtual
// answer is available "without even accessing the sources"; sources are
// first touched when the client starts navigating.
//
// Mediator stacking (Fig. 1): a LazyMediator's document() is itself a
// Navigable, so registering it in another mediator's SourceRegistry builds
// a tree of mediators — query ∘ view composition by plan stacking.
#ifndef MIX_MEDIATOR_INSTANTIATE_H_
#define MIX_MEDIATOR_INSTANTIATE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/binding_stream.h"
#include "core/navigable.h"
#include "core/status.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Name → navigable source (wrapped source, buffered LXP source, or a
/// lower mediator's virtual document). Pointers are not owned.
class SourceRegistry {
 public:
  /// Opens a view of a source under an optimizer-chosen URI (the
  /// PlanNode::source_uri override). The returned navigable is owned by
  /// the instantiated mediator. nullptr = the view cannot be opened.
  using Opener =
      std::function<std::unique_ptr<Navigable>(const std::string& uri)>;

  void Register(std::string name, Navigable* source);
  /// nullptr when unknown.
  Navigable* Get(const std::string& name) const;

  /// Registers a per-source view opener. Plans whose source node carries a
  /// URI override instantiate against opener(uri) instead of Get(name);
  /// without an opener (or when it returns nullptr) instantiation fails —
  /// an overridden plan is only correct against the overridden view.
  void RegisterOpener(const std::string& name, Opener opener);
  /// Null function when the source has no opener.
  Opener GetOpener(const std::string& name) const;

 private:
  std::map<std::string, Navigable*> sources_;
  std::map<std::string, Opener> openers_;
};

class LazyMediator {
 public:
  /// Builds the operator tree for `plan` (whose root must be tupleDestroy)
  /// against `sources`. Fails on unknown sources, malformed path
  /// expressions, or schema violations.
  static Result<std::unique_ptr<LazyMediator>> Build(
      const PlanNode& plan, const SourceRegistry& sources);

  /// The virtual XML answer document.
  Navigable* document() { return document_; }

  /// The binding stream feeding tupleDestroy (for tests and tools).
  algebra::BindingStream* root_stream() { return root_stream_; }

 private:
  LazyMediator() = default;

  Result<algebra::BindingStream*> BuildStream(const PlanNode& node,
                                              const SourceRegistry& sources);

  std::vector<std::unique_ptr<algebra::BindingStream>> streams_;
  std::vector<std::unique_ptr<Navigable>> navigables_;
  algebra::BindingStream* root_stream_ = nullptr;
  Navigable* document_ = nullptr;
};

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_INSTANTIATE_H_
