// Answer-document schema inference (paper Section 6 / [LPVV99]).
//
// Section 6 motivates the DTD-oriented BBQ interface, which needs to know
// the *shape* of a virtual answer without evaluating it; the companion
// paper "View Definition and DTD Inference for XML" studies the general
// problem. This module implements the practical core: from an algebra
// plan, infer a content-model tree for the answer document —
//
//   answer                      answer
//     med_home*          for      <med_home> $H $S {$S} </med_home> {$H}
//       ANY                       (element content from a variable)
//       ANY*
//
// Each schema node is an element label with a multiplicity (exactly-one or
// zero-or-more); content originating from a query variable (whose type
// depends on the sources) is the wildcard ANY. This is what a BBQ-style
// interface renders as the navigable skeleton before any source access.
#ifndef MIX_MEDIATOR_VIEW_SCHEMA_H_
#define MIX_MEDIATOR_VIEW_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "mediator/plan.h"

namespace mix::mediator {

struct SchemaNode {
  /// Element label; "ANY" for variable-typed content, "#text" for literal
  /// character content.
  std::string label;
  /// True if this position repeats (list content: grouped children).
  bool repeated = false;
  std::vector<std::unique_ptr<SchemaNode>> children;

  /// DTD-flavored rendering, e.g. `answer(med_home(ANY,ANY*)*)`.
  std::string ToString() const;
};

/// Infers the answer schema of a tupleDestroy-rooted plan. Fails on plans
/// whose root content cannot be traced to a createElement (e.g. a raw
/// source passthrough, whose shape depends entirely on the data).
Result<std::unique_ptr<SchemaNode>> InferAnswerSchema(const PlanNode& plan);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_VIEW_SCHEMA_H_
