// Cross-session answer-view cache (DESIGN.md §4 "Answer-view cache").
//
// PR 5's SourceCache shares raw *source fragments*; this cache shares
// *answers*: a registry of canonical plan-IR view descriptors, each bound
// to an immutable, navigation-complete snapshot of the originating
// session's materialized answer (exported via one full-depth FetchSubtree
// and published only when fully filled — degraded `#unavailable` splices
// and truncated exports are rejected). A new `Session::Open` tests its
// plan for subsumption against the cached descriptors and, on a hit, is
// served from the snapshot through an ordinary `CachedViewSourceOp` with
// ZERO wrapper exchanges.
//
// Subsumption is deliberately conservative — only provably-sound cases,
// in the spirit of view-based XPath rewriting (Cautis et al.):
//
//   1. Identical canonical plans (after stripping a transparent project
//      under tupleDestroy) → replay the snapshot document verbatim.
//   2. The factored crown tupleDestroy→createElement[const]→groupBy[{}]
//      over select*(E): a query whose predicate set IMPLIES a cached
//      view's (every cached conjunct implied by some incoming conjunct)
//      is served by re-filtering the snapshot root's children with the
//      incoming selects — σ_{Pi}(σ_{Pc}(S)) = σ_{Pi}(S) when Pi ⇒ Pc,
//      and re-applying implied filters is idempotent.
//
// Because `CompareAtoms` is mixed-mode (numeric when both sides parse as
// numbers, else lexicographic), single-conjunct implication is only
// claimed when it holds under BOTH constant orderings and both constants
// agree on numeric-ness; anything else is an honest subsumption_reject.
#ifndef MIX_MEDIATOR_ANSWER_VIEW_CACHE_H_
#define MIX_MEDIATOR_ANSWER_VIEW_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/binding_stream.h"
#include "core/navigable.h"
#include "mediator/plan.h"
#include "xml/doc_navigable.h"
#include "xml/tree.h"

namespace mix::mediator {

/// Reserved SourceRegistry name under which a view-served session's
/// snapshot navigable is registered (rewritten plans reference it).
inline constexpr char kAnswerViewSourceName[] = "__answer_view";

/// Per-node byte-accounting overhead added to each snapshot label
/// (arena node + child-vector bookkeeping), mirroring SourceCache's
/// entry-overhead convention.
inline constexpr int64_t kViewNodeOverheadBytes = 64;

/// One stripped var-constant conjunct of a view descriptor.
struct ViewPredicate {
  std::string var;
  algebra::CompareOp op = algebra::CompareOp::kEq;
  std::string constant;

  bool operator==(const ViewPredicate& o) const {
    return var == o.var && op == o.op && constant == o.constant;
  }
};

/// Canonical descriptor of what a plan computes, for subsumption matching.
/// Computed from the RAW compiled plan (before the optimizer absorbs
/// predicates into wrapper URIs) and cached in PlanCache::Compiled.
struct ViewShape {
  /// False when the plan is not a well-formed tupleDestroy tree (such
  /// plans never participate in view matching).
  bool valid = false;
  /// True when the factored crown matched; enables predicate subsumption
  /// (case 2). Non-factored shapes match identical plans only.
  bool factored = false;
  /// Canonical text of the plan with the transparent project and the top
  /// select-chain over the grouped variable stripped.
  std::string base_key;
  /// The stripped conjuncts (all on `grouped_var`), outermost first.
  std::vector<ViewPredicate> preds;
  // Factored-crown parameters, used to rebuild the residual serving plan.
  std::string root_label;
  std::string create_out;
  std::string group_out;
  std::string grouped_var;
  /// Sorted, deduplicated source names the plan touches.
  std::vector<std::string> sources;
};

/// Computes the view descriptor of a raw (pre-optimization) plan.
ViewShape ComputeViewShape(const PlanNode& raw_plan);

/// True iff (v have.op have.constant) ⇒ (v want.op want.constant) for every
/// value v under CompareAtoms semantics (both numeric and lexicographic
/// constant orderings must agree — see file comment).
bool PredicateImplies(const ViewPredicate& have, const ViewPredicate& want);

/// An immutable published answer. Sessions pin it via shared_ptr, so LRU
/// eviction never invalidates an in-flight reader.
struct AnswerSnapshot {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<xml::DocNavigable> nav;
  int64_t bytes = 0;
  ViewShape shape;
  /// Answer-view generations of shape.sources pinned when the donor
  /// session opened; a bump of any of them invalidates the snapshot.
  std::map<std::string, int64_t> generations;
};

class AnswerViewCache {
 public:
  struct Options {
    /// Total snapshot byte budget; <= 0 disables the cache entirely (the
    /// `answer_view_cache_bytes = 0` A/B baseline).
    int64_t byte_budget = 0;
  };

  /// A subsumption-match result: null snapshot = miss; on a hit, `plan`
  /// is the rewritten serving plan over kAnswerViewSourceName.
  struct Match {
    std::shared_ptr<const AnswerSnapshot> snapshot;
    PlanPtr plan;
  };

  explicit AnswerViewCache(Options options) : options_(options) {}
  AnswerViewCache(const AnswerViewCache&) = delete;
  AnswerViewCache& operator=(const AnswerViewCache&) = delete;

  bool enabled() const { return options_.byte_budget > 0; }

  /// Tests `shape` against the cached descriptors (MRU first per base
  /// key). Counts view_hits/view_misses and subsumption rejects.
  Match TryMatch(const ViewShape& shape);

  /// Publishes a navigation-complete answer export under `shape`.
  /// Rejects (with a counted reason, never an abort) degraded or
  /// truncated exports, stale generation pins, duplicates, and
  /// over-budget snapshots; evicts LRU entries to fit the byte budget.
  void Publish(const ViewShape& shape,
               const std::vector<SubtreeEntry>& entries,
               const std::map<std::string, int64_t>& pinned_generations);

  /// Current answer-view generations for `sources` (for pinning at
  /// session open; absent sources are generation 0).
  std::map<std::string, int64_t> PinGenerations(
      const std::vector<std::string>& sources) const;

  /// Freshness: bumps the source's generation and eagerly drops every
  /// view whose descriptor depends on it.
  void InvalidateSource(const std::string& source);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t publishes = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;
    int64_t bytes = 0;
    int64_t entries = 0;
    /// Match + publish reject counts by reason ("predicate", "absent",
    /// "stale", "degraded", "truncated", "malformed", "budget", ...).
    std::map<std::string, int64_t> rejects;
  };
  Stats stats() const;

 private:
  using LruList = std::list<std::shared_ptr<const AnswerSnapshot>>;

  bool GenerationsCurrentLocked(const AnswerSnapshot& snap) const;
  void DropLocked(LruList::iterator it);

  Options options_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::multimap<std::string, LruList::iterator> index_;  ///< by base_key
  std::map<std::string, int64_t> generations_;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t publishes_ = 0;
  int64_t evictions_ = 0;
  int64_t invalidations_ = 0;
  std::map<std::string, int64_t> rejects_;
};

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_ANSWER_VIEW_CACHE_H_
