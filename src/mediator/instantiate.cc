#include "mediator/instantiate.h"

#include "algebra/cached_view_source_op.h"
#include "algebra/concatenate_op.h"
#include "algebra/create_element_op.h"
#include "algebra/extra_ops.h"
#include "algebra/get_descendants_op.h"
#include "algebra/group_by_op.h"
#include "algebra/join_op.h"
#include "algebra/materialize_op.h"
#include "algebra/order_by_op.h"
#include "algebra/select_op.h"
#include "algebra/set_ops.h"
#include "algebra/source_op.h"
#include "algebra/tuple_destroy_op.h"
#include "core/super_root.h"
#include "pathexpr/path_expr.h"

namespace mix::mediator {

void SourceRegistry::Register(std::string name, Navigable* source) {
  sources_[std::move(name)] = source;
}

Navigable* SourceRegistry::Get(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second;
}

void SourceRegistry::RegisterOpener(const std::string& name, Opener opener) {
  openers_[name] = std::move(opener);
}

SourceRegistry::Opener SourceRegistry::GetOpener(
    const std::string& name) const {
  auto it = openers_.find(name);
  return it == openers_.end() ? nullptr : it->second;
}

Result<algebra::BindingStream*> LazyMediator::BuildStream(
    const PlanNode& node, const SourceRegistry& sources) {
  using Kind = PlanNode::Kind;
  namespace alg = mix::algebra;

  // Children first.
  std::vector<alg::BindingStream*> inputs;
  for (const PlanPtr& c : node.children) {
    auto child = BuildStream(*c, sources);
    if (!child.ok()) return child.status();
    inputs.push_back(child.value());
  }

  auto keep = [this](std::unique_ptr<alg::BindingStream> op)
      -> alg::BindingStream* {
    streams_.push_back(std::move(op));
    return streams_.back().get();
  };

  switch (node.kind) {
    case Kind::kSource: {
      Navigable* src = nullptr;
      if (!node.source_uri.empty()) {
        // Optimizer override: the plan is only correct against this view
        // (predicates it absorbs were removed from the operator tree), so
        // a missing opener is a hard error, not a fallback.
        SourceRegistry::Opener opener = sources.GetOpener(node.source_name);
        if (opener == nullptr) {
          return Status::NotFound("source " + node.source_name +
                                  " has no view opener for uri override: " +
                                  node.source_uri);
        }
        std::unique_ptr<Navigable> view = opener(node.source_uri);
        if (view == nullptr) {
          return Status::NotFound("source " + node.source_name +
                                  " cannot open view: " + node.source_uri);
        }
        src = view.get();
        navigables_.push_back(std::move(view));
      } else {
        src = sources.Get(node.source_name);
        if (src == nullptr) {
          return Status::NotFound("unknown source: " + node.source_name);
        }
      }
      // Source bindings anchor at a virtual document node so that source
      // path expressions match from the root element inclusive (see
      // core/super_root.h).
      auto adapter = std::make_unique<SuperRootNavigable>(src);
      Navigable* anchored = adapter.get();
      navigables_.push_back(std::move(adapter));
      return keep(std::make_unique<alg::SourceOp>(anchored, node.var));
    }
    case Kind::kGetDescendants: {
      auto path = pathexpr::PathExpr::Parse(node.path);
      if (!path.ok()) return path.status();
      alg::GetDescendantsOp::Options options;
      options.use_select_sibling = node.use_sigma;
      options.filter = node.predicate;
      return keep(std::make_unique<alg::GetDescendantsOp>(
          inputs[0], node.parent_var, std::move(path).ValueOrDie(),
          node.out_var, options));
    }
    case Kind::kSelect:
      return keep(std::make_unique<alg::SelectOp>(inputs[0], *node.predicate));
    case Kind::kJoin: {
      alg::JoinOp::Options options;
      options.cache_inner = node.join_cache_inner;
      options.index_inner = node.join_index_inner;
      return keep(std::make_unique<alg::JoinOp>(inputs[0], inputs[1],
                                                *node.predicate, options));
    }
    case Kind::kGroupBy:
      return keep(std::make_unique<alg::GroupByOp>(
          inputs[0], node.vars, node.grouped_var, node.out_var));
    case Kind::kConcatenate:
      return keep(std::make_unique<alg::ConcatenateOp>(
          inputs[0], node.x_var, node.y_var, node.out_var));
    case Kind::kCreateElement: {
      auto label = node.label_is_constant
                       ? alg::CreateElementOp::LabelSpec::Constant(node.label)
                       : alg::CreateElementOp::LabelSpec::Variable(node.label);
      return keep(std::make_unique<alg::CreateElementOp>(
          inputs[0], std::move(label), node.x_var, node.out_var));
    }
    case Kind::kOrderBy:
      return keep(std::make_unique<alg::OrderByOp>(
          inputs[0], node.vars,
          node.order_by_occurrence ? alg::OrderByOp::Mode::kByOccurrence
                                   : alg::OrderByOp::Mode::kByValue));
    case Kind::kMaterialize:
      return keep(std::make_unique<alg::MaterializeOp>(inputs[0]));
    case Kind::kUnion:
      return keep(std::make_unique<alg::UnionOp>(inputs[0], inputs[1]));
    case Kind::kDifference:
      return keep(std::make_unique<alg::DifferenceOp>(inputs[0], inputs[1]));
    case Kind::kDistinct:
      return keep(std::make_unique<alg::DistinctOp>(inputs[0]));
    case Kind::kProject:
      return keep(std::make_unique<alg::ProjectOp>(inputs[0], node.vars));
    case Kind::kWrapList:
      return keep(std::make_unique<alg::WrapListOp>(inputs[0], node.x_var,
                                                    node.out_var));
    case Kind::kConst:
      return keep(
          std::make_unique<alg::ConstOp>(inputs[0], node.text, node.out_var));
    case Kind::kRename:
      return keep(std::make_unique<alg::RenameOp>(inputs[0], node.x_var,
                                                  node.out_var));
    case Kind::kCachedView: {
      // Answer-view snapshot: the registered navigable's root IS the answer
      // element (no SuperRoot re-anchoring — the plan serves it as-is).
      Navigable* snap = sources.Get(node.source_name);
      if (snap == nullptr) {
        return Status::NotFound("unknown cached view: " + node.source_name);
      }
      auto mode = node.cached_view_children
                      ? alg::CachedViewSourceOp::Mode::kChildren
                      : alg::CachedViewSourceOp::Mode::kDocument;
      return keep(
          std::make_unique<alg::CachedViewSourceOp>(snap, node.var, mode));
    }
    case Kind::kTupleDestroy:
      return Status::Internal("tupleDestroy inside a binding-stream subtree");
  }
  return Status::Internal("unknown plan kind");
}

Result<std::unique_ptr<LazyMediator>> LazyMediator::Build(
    const PlanNode& plan, const SourceRegistry& sources) {
  if (plan.kind != PlanNode::Kind::kTupleDestroy) {
    return Status::InvalidArgument("plan root must be tupleDestroy");
  }
  // Validate the stream schema below the root up front.
  auto schema = ComputeSchema(*plan.children[0]);
  if (!schema.ok()) return schema.status();

  auto mediator = std::unique_ptr<LazyMediator>(new LazyMediator());
  auto stream = mediator->BuildStream(*plan.children[0], sources);
  if (!stream.ok()) return stream.status();
  mediator->root_stream_ = stream.value();

  auto doc = std::make_unique<algebra::TupleDestroyOp>(stream.value(),
                                                       plan.var);
  mediator->document_ = doc.get();
  mediator->navigables_.push_back(std::move(doc));
  return mediator;
}

}  // namespace mix::mediator
