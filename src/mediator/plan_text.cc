#include "mediator/plan_text.h"

#include <vector>

namespace mix::mediator {

namespace {

using algebra::BindingPredicate;
using algebra::CompareOp;
using algebra::VarList;

struct Line {
  int depth = 0;
  std::string op;      ///< operator name
  std::string params;  ///< bracket contents (may be empty)
  int number = 0;      ///< 1-based line number for errors
};

Status Err(const Line& line, const std::string& msg) {
  return Status::ParseError("plan line " + std::to_string(line.number) + ": " +
                            msg);
}

Result<std::vector<Line>> Split(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view raw = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++number;
    // Strip a trailing % comment (quote-aware: a % inside a '...' predicate
    // constant is data). DumpIr's annotated mode relies on this to keep its
    // per-line annotations round-trippable.
    bool quoted = false;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '\'') quoted = !quoted;
      if (raw[i] == '%' && !quoted) {
        raw = raw.substr(0, i);
        break;
      }
    }
    // Trim trailing whitespace.
    while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\r')) {
      raw.remove_suffix(1);
    }
    if (raw.empty()) continue;

    Line line;
    line.number = number;
    size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    if (indent % 2 != 0) {
      line.depth = -1;  // flagged below
    } else {
      line.depth = static_cast<int>(indent / 2);
    }
    std::string_view rest = raw.substr(indent);
    size_t bracket = rest.find('[');
    if (bracket == std::string_view::npos) {
      line.op = std::string(rest);
    } else {
      if (rest.back() != ']') {
        return Status::ParseError("plan line " + std::to_string(number) +
                                  ": missing closing ']'");
      }
      line.op = std::string(rest.substr(0, bracket));
      line.params =
          std::string(rest.substr(bracket + 1, rest.size() - bracket - 2));
    }
    if (line.depth < 0) {
      return Status::ParseError("plan line " + std::to_string(number) +
                                ": odd indentation");
    }
    lines.push_back(std::move(line));
  }
  if (lines.empty()) return Status::ParseError("empty plan text");
  return lines;
}

/// Splits "a,b,c" at top level (no nesting inside params except {}).
std::vector<std::string> SplitParams(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int brace = 0;
  bool quoted = false;
  for (char c : s) {
    if (c == '\'' ) quoted = !quoted;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == ',' && brace == 0 && !quoted) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(std::string s) {
  size_t b = s.find_first_not_of(' ');
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(' ');
  return s.substr(b, e - b + 1);
}

/// "$x" -> "x"; empty on mismatch.
std::string Var(const std::string& s) {
  std::string t = Trim(s);
  if (t.size() < 2 || t[0] != '$') return "";
  return t.substr(1);
}

/// "{$a,$b}" -> {a, b}; ok=false on mismatch.
bool VarSet(const std::string& s, VarList* out) {
  std::string t = Trim(s);
  if (t.size() < 2 || t.front() != '{' || t.back() != '}') return false;
  std::string inner = t.substr(1, t.size() - 2);
  if (Trim(inner).empty()) return true;
  for (const std::string& part : SplitParams(inner)) {
    std::string v = Var(part);
    if (v.empty()) return false;
    out->push_back(v);
  }
  return true;
}

/// Splits "lhs -> $out" and returns (lhs, out); ok=false on mismatch.
bool Arrow(const std::string& s, std::string* lhs, std::string* out_var) {
  size_t arrow = s.rfind(" -> $");
  if (arrow == std::string::npos) return false;
  *lhs = Trim(s.substr(0, arrow));
  *out_var = Trim(s.substr(arrow + 5));
  return !out_var->empty();
}

Result<BindingPredicate> ParsePredicate(const Line& line,
                                        const std::string& s) {
  std::string t = Trim(s);
  if (t.empty() || t[0] != '$') return Err(line, "predicate must start with $");
  size_t i = 1;
  while (i < t.size() && t[i] != '=' && t[i] != '!' && t[i] != '<' &&
         t[i] != '>') {
    ++i;
  }
  std::string left = t.substr(1, i - 1);
  size_t op_len = (i + 1 < t.size() && (t[i + 1] == '=')) ? 2 : 1;
  std::string op_text = t.substr(i, op_len);
  std::string right = t.substr(i + op_len);
  CompareOp op;
  if (op_text == "=") {
    op = CompareOp::kEq;
  } else if (op_text == "!=") {
    op = CompareOp::kNe;
  } else if (op_text == "<") {
    op = CompareOp::kLt;
  } else if (op_text == "<=") {
    op = CompareOp::kLe;
  } else if (op_text == ">") {
    op = CompareOp::kGt;
  } else if (op_text == ">=") {
    op = CompareOp::kGe;
  } else {
    return Err(line, "unknown comparison '" + op_text + "'");
  }
  if (!right.empty() && right[0] == '$') {
    return BindingPredicate::VarVar(left, op, right.substr(1));
  }
  if (right.size() >= 2 && right.front() == '\'' && right.back() == '\'') {
    return BindingPredicate::VarConst(left, op,
                                      right.substr(1, right.size() - 2));
  }
  return Err(line, "predicate right side must be $var or 'const'");
}

class Builder {
 public:
  explicit Builder(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Result<PlanPtr> Run() {
    auto root = Parse(0);
    if (!root.ok()) return root.status();
    if (pos_ < lines_.size()) {
      return Err(lines_[pos_], "unexpected extra subtree");
    }
    return root;
  }

 private:
  Result<PlanPtr> Parse(int depth) {
    if (pos_ >= lines_.size()) {
      return Status::ParseError("plan text ended while expecting an operator");
    }
    const Line line = lines_[pos_];
    if (line.depth != depth) {
      return Err(line, "expected indentation depth " + std::to_string(depth));
    }
    ++pos_;

    int arity = 1;
    if (line.op == "source" || line.op == "cachedView") arity = 0;
    if (line.op == "join" || line.op == "union" || line.op == "difference") {
      arity = 2;
    }
    std::vector<PlanPtr> children;
    for (int i = 0; i < arity; ++i) {
      auto child = Parse(depth + 1);
      if (!child.ok()) return child.status();
      children.push_back(std::move(child).ValueOrDie());
    }
    return Assemble(line, std::move(children));
  }

  Result<PlanPtr> Assemble(const Line& line, std::vector<PlanPtr> children) {
    const std::string& op = line.op;
    std::vector<std::string> parts = SplitParams(line.params);

    if (op == "source") {
      // [name -> $var] with an optional trailing ", uri=<uri>" consuming
      // everything up to the closing bracket verbatim (the uri may contain
      // commas and quotes, so it cannot go through SplitParams).
      std::string params = line.params;
      std::string uri;
      size_t uri_at = params.find(", uri=");
      if (uri_at != std::string::npos) {
        uri = params.substr(uri_at + 6);
        params = params.substr(0, uri_at);
      }
      std::string lhs, out;
      if (!Arrow(params, &lhs, &out)) {
        return Err(line, "source expects [name -> $var]");
      }
      PlanPtr n = PlanNode::Source(lhs, out);
      n->source_uri = uri;
      return n;
    }
    if (op == "cachedView") {
      // [name -> $var] with an optional trailing ", children".
      bool view_children = false;
      if (parts.size() == 2 && Trim(parts[1]) == "children") {
        view_children = true;
        parts.pop_back();
      }
      std::string lhs, out;
      if (parts.size() != 1 || !Arrow(parts[0], &lhs, &out)) {
        return Err(line, "cachedView expects [name -> $var]");
      }
      return PlanNode::CachedView(lhs, out, view_children);
    }
    if (op == "getDescendants") {
      // [$anchor,path -> $out] with optional trailing ", sigma" and
      // ", where <predicate>" (inline filter from select/gd fusion).
      std::optional<BindingPredicate> filter;
      if (!parts.empty() && Trim(parts.back()).rfind("where ", 0) == 0) {
        auto pred = ParsePredicate(line, Trim(parts.back()).substr(6));
        if (!pred.ok()) return pred.status();
        filter = std::move(pred).ValueOrDie();
        parts.pop_back();
      }
      bool sigma = false;
      if (!parts.empty() && Trim(parts.back()) == "sigma") {
        sigma = true;
        parts.pop_back();
      }
      if (parts.size() != 2) return Err(line, "getDescendants expects 2 params");
      std::string anchor = Var(parts[0]);
      std::string path, out;
      if (anchor.empty() || !Arrow(parts[1], &path, &out)) {
        return Err(line, "getDescendants expects [$a,path -> $out]");
      }
      PlanPtr n = PlanNode::GetDescendants(std::move(children[0]), anchor,
                                           path, out);
      n->use_sigma = sigma;
      n->predicate = std::move(filter);
      return n;
    }
    if (op == "select" || op == "join") {
      auto pred = ParsePredicate(line, line.params);
      if (!pred.ok()) return pred.status();
      if (op == "select") {
        return PlanNode::Select(std::move(children[0]),
                                std::move(pred).ValueOrDie());
      }
      return PlanNode::Join(std::move(children[0]), std::move(children[1]),
                            std::move(pred).ValueOrDie());
    }
    if (op == "groupBy") {
      if (parts.size() != 2) return Err(line, "groupBy expects 2 params");
      VarList group_vars;
      if (!VarSet(parts[0], &group_vars)) {
        return Err(line, "groupBy expects a {$...} variable set");
      }
      std::string grouped, out;
      if (!Arrow(parts[1], &grouped, &out) || Var(grouped).empty()) {
        return Err(line, "groupBy expects [$v -> $out]");
      }
      return PlanNode::GroupBy(std::move(children[0]), group_vars,
                               Var(grouped), out);
    }
    if (op == "concatenate") {
      if (parts.size() != 2) return Err(line, "concatenate expects 2 params");
      std::string x = Var(parts[0]);
      std::string y_text, out;
      if (x.empty() || !Arrow(parts[1], &y_text, &out) ||
          Var(y_text).empty()) {
        return Err(line, "concatenate expects [$x,$y -> $out]");
      }
      return PlanNode::Concatenate(std::move(children[0]), x, Var(y_text),
                                   out);
    }
    if (op == "createElement") {
      if (parts.size() != 2) return Err(line, "createElement expects 2 params");
      std::string label = Trim(parts[0]);
      bool constant = label.empty() || label[0] != '$';
      if (!constant) label = label.substr(1);
      std::string ch_text, out;
      if (!Arrow(parts[1], &ch_text, &out) || Var(ch_text).empty()) {
        return Err(line, "createElement expects [label,$ch -> $out]");
      }
      return PlanNode::CreateElement(std::move(children[0]), constant, label,
                                     Var(ch_text), out);
    }
    if (op == "orderBy" || op == "project") {
      bool occurrence = false;
      if (op == "orderBy" && parts.size() == 2 &&
          Trim(parts[1]) == "occurrence") {
        occurrence = true;
        parts.pop_back();
      }
      VarList vars;
      if (parts.size() != 1 || !VarSet(parts[0], &vars)) {
        return Err(line, op + " expects a {$...} variable set");
      }
      if (op == "orderBy") {
        return occurrence
                   ? PlanNode::OrderByOccurrence(std::move(children[0]), vars)
                   : PlanNode::OrderBy(std::move(children[0]), vars);
      }
      return PlanNode::Project(std::move(children[0]), vars);
    }
    if (op == "wrapList" || op == "rename") {
      std::string x_text, out;
      if (!Arrow(line.params, &x_text, &out) || Var(x_text).empty()) {
        return Err(line, op + " expects [$x -> $out]");
      }
      if (op == "wrapList") {
        return PlanNode::WrapList(std::move(children[0]), Var(x_text), out);
      }
      return PlanNode::Rename(std::move(children[0]), Var(x_text), out);
    }
    if (op == "const") {
      std::string lhs, out;
      if (!Arrow(line.params, &lhs, &out) || lhs.size() < 2 ||
          lhs.front() != '\'' || lhs.back() != '\'') {
        return Err(line, "const expects ['text' -> $out]");
      }
      return PlanNode::Const(std::move(children[0]),
                             lhs.substr(1, lhs.size() - 2), out);
    }
    if (op == "materialize") return PlanNode::Materialize(std::move(children[0]));
    if (op == "union") {
      return PlanNode::Union(std::move(children[0]), std::move(children[1]));
    }
    if (op == "difference") {
      return PlanNode::Difference(std::move(children[0]),
                                  std::move(children[1]));
    }
    if (op == "distinct") return PlanNode::Distinct(std::move(children[0]));
    if (op == "tupleDestroy") {
      std::string var = line.params.empty() ? "" : Var(line.params);
      if (!line.params.empty() && var.empty()) {
        return Err(line, "tupleDestroy expects [$var]");
      }
      return PlanNode::TupleDestroy(std::move(children[0]), var);
    }
    return Err(line, "unknown operator '" + op + "'");
  }

  std::vector<Line> lines_;
  size_t pos_ = 0;
};

}  // namespace

Result<PlanPtr> ParsePlanText(std::string_view text) {
  auto lines = Split(text);
  if (!lines.ok()) return lines.status();
  return Builder(std::move(lines).ValueOrDie()).Run();
}

}  // namespace mix::mediator
