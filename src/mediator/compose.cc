#include "mediator/compose.h"

#include <map>
#include <vector>

#include "core/check.h"
#include "pathexpr/path_expr.h"

namespace mix::mediator {

namespace {

using algebra::BindingPredicate;

Status Bail(const std::string& why) {
  return Status::InvalidArgument("not composable: " + why);
}

// ---------------------------------------------------------------------------
// Variable renaming (capture avoidance).
// ---------------------------------------------------------------------------

std::string Prefixed(const std::string& v) { return "#v" + v; }

void PrefixVars(PlanNode* node) {
  using Kind = PlanNode::Kind;
  auto fix = [](std::string* v) {
    if (!v->empty()) *v = Prefixed(*v);
  };
  fix(&node->var);
  fix(&node->parent_var);
  fix(&node->out_var);
  fix(&node->grouped_var);
  fix(&node->x_var);
  fix(&node->y_var);
  if (!node->label_is_constant) fix(&node->label);
  for (std::string& v : node->vars) v = Prefixed(v);
  if (node->predicate.has_value()) {
    const BindingPredicate& p = *node->predicate;
    node->predicate =
        p.is_var_var()
            ? BindingPredicate::VarVar(Prefixed(p.left_var()), p.op(),
                                       Prefixed(p.right_var()))
            : BindingPredicate::VarConst(Prefixed(p.left_var()), p.op(),
                                         p.constant());
  }
  // kConst's text and kSource's source_name are not variables.
  (void)Kind::kConst;
  for (PlanPtr& c : node->children) PrefixVars(c.get());
}

// ---------------------------------------------------------------------------
// Definition lookup within a plan subtree.
// ---------------------------------------------------------------------------

/// The node that introduces `var` (out_var for constructors, var for
/// sources), or nullptr.
PlanNode* FindDef(PlanNode* node, const std::string& var) {
  using Kind = PlanNode::Kind;
  if ((node->kind == Kind::kSource && node->var == var) ||
      (node->kind != Kind::kSource && node->kind != Kind::kTupleDestroy &&
       node->out_var == var)) {
    return node;
  }
  // rename introduces out_var too (handled above via out_var).
  for (PlanPtr& c : node->children) {
    if (PlanNode* hit = FindDef(c.get(), var)) return hit;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Content-item enumeration (static image of the value a variable holds).
// ---------------------------------------------------------------------------

struct Item {
  enum class Kind { kElement, kLeaf, kGroup };
  Kind kind = Kind::kElement;
  std::string label;   ///< element label / leaf text
  std::string var;     ///< the construction variable holding the item
  PlanNode* group = nullptr;  ///< kGroup: the groupBy node
};

/// Enumerates the list items the value of `var` splices into an enclosing
/// construction, resolving through wrapList/concatenate/rename. A value
/// whose label cannot be determined statically fails.
Status ItemsOf(PlanNode* scope, const std::string& var,
               std::vector<Item>* out) {
  using Kind = PlanNode::Kind;
  PlanNode* def = FindDef(scope, var);
  if (def == nullptr) return Bail("no definition for $" + var);
  switch (def->kind) {
    case Kind::kCreateElement: {
      if (!def->label_is_constant) {
        return Bail("variable-labelled element $" + var);
      }
      out->push_back(Item{Item::Kind::kElement, def->label, var, nullptr});
      return Status::OK();
    }
    case Kind::kConst:
      out->push_back(Item{Item::Kind::kLeaf, def->text, var, nullptr});
      return Status::OK();
    case Kind::kWrapList:
      return ItemsOf(def->children[0].get(), def->x_var, out);
    case Kind::kConcatenate: {
      Status s = ItemsOf(def->children[0].get(), def->x_var, out);
      if (!s.ok()) return s;
      return ItemsOf(def->children[0].get(), def->y_var, out);
    }
    case Kind::kGroupBy: {
      // The grouped member must itself be statically labelled.
      std::vector<Item> member;
      Status s = ItemsOf(def->children[0].get(), def->grouped_var, &member);
      if (!s.ok()) return s;
      if (member.size() != 1 || member[0].kind == Item::Kind::kGroup) {
        return Bail("grouped member of $" + var + " is not a single element");
      }
      out->push_back(Item{Item::Kind::kGroup, member[0].label,
                          def->grouped_var, def});
      return Status::OK();
    }
    case Kind::kRename:
      return ItemsOf(def->children[0].get(),
                     var == def->out_var ? def->x_var : var, out);
    default:
      return Bail("content of $" + var + " depends on the sources (" +
                  PlanKindName(def->kind) + ")");
  }
}

// ---------------------------------------------------------------------------
// Query-side checks.
// ---------------------------------------------------------------------------

/// Counts how many times `var` is *used* (not defined) in the subtree.
int CountUses(const PlanNode& node, const std::string& var) {
  using Kind = PlanNode::Kind;
  int n = 0;
  auto use = [&](const std::string& v) {
    if (v == var) ++n;
  };
  switch (node.kind) {
    case Kind::kGetDescendants:
      use(node.parent_var);
      break;
    case Kind::kSelect:
    case Kind::kJoin:
      use(node.predicate->left_var());
      if (node.predicate->is_var_var()) use(node.predicate->right_var());
      break;
    case Kind::kGroupBy:
      for (const auto& v : node.vars) use(v);
      use(node.grouped_var);
      break;
    case Kind::kConcatenate:
      use(node.x_var);
      use(node.y_var);
      break;
    case Kind::kCreateElement:
      use(node.x_var);
      if (!node.label_is_constant) use(node.label);
      break;
    case Kind::kOrderBy:
    case Kind::kProject:
      for (const auto& v : node.vars) use(v);
      break;
    case Kind::kWrapList:
    case Kind::kRename:
      use(node.x_var);
      break;
    case Kind::kTupleDestroy:
      use(node.var);
      break;
    default:
      break;
  }
  for (const PlanPtr& c : node.children) n += CountUses(*c, var);
  return n;
}

/// Finds the unique getDescendants anchored at `var` whose child is the
/// source node itself; returns the owning slot so it can be replaced.
PlanPtr* FindAnchoredGd(PlanPtr* slot, const std::string& var,
                        const std::string& source_name) {
  PlanNode* node = slot->get();
  if (node->kind == PlanNode::Kind::kGetDescendants &&
      node->parent_var == var &&
      node->children[0]->kind == PlanNode::Kind::kSource &&
      node->children[0]->source_name == source_name) {
    return slot;
  }
  for (PlanPtr& c : node->children) {
    if (PlanPtr* hit = FindAnchoredGd(&c, var, source_name)) return hit;
  }
  return nullptr;
}

int CountSources(const PlanNode& node, const std::string& name) {
  int n = node.kind == PlanNode::Kind::kSource && node.source_name == name ? 1
                                                                           : 0;
  for (const PlanPtr& c : node.children) n += CountSources(*c, name);
  return n;
}

}  // namespace

Result<PlanPtr> ComposeQueryOverView(const PlanNode& query_plan,
                                     const std::string& view_source_name,
                                     const PlanNode& view_plan) {
  using Kind = PlanNode::Kind;

  // --- view side ---------------------------------------------------------
  if (view_plan.kind != Kind::kTupleDestroy) {
    return Bail("view root must be tupleDestroy");
  }
  PlanPtr view_stream = view_plan.children[0]->Clone();
  PrefixVars(view_stream.get());
  std::string root_var = view_plan.var.empty() ? "" : Prefixed(view_plan.var);
  if (root_var.empty()) {
    auto schema = ComputeSchema(*view_stream);
    if (!schema.ok()) return schema.status();
    if (schema.value().size() != 1) return Bail("ambiguous view root variable");
    root_var = schema.value()[0];
  }
  PlanNode* root_def = FindDef(view_stream.get(), root_var);
  if (root_def == nullptr || root_def->kind != Kind::kCreateElement ||
      !root_def->label_is_constant) {
    return Bail("view root is not a constant-labelled createElement");
  }

  // --- query side --------------------------------------------------------
  PlanPtr query = query_plan.Clone();
  int sources = CountSources(*query, view_source_name);
  if (sources == 0) return query;  // nothing to do
  if (sources > 1) return Bail("view source referenced more than once");

  // Locate the view source and its anchor variable.
  PlanNode* source_node = nullptr;
  {
    std::vector<PlanNode*> stack{query.get()};
    while (!stack.empty()) {
      PlanNode* n = stack.back();
      stack.pop_back();
      if (n->kind == Kind::kSource && n->source_name == view_source_name) {
        source_node = n;
        break;
      }
      for (PlanPtr& c : n->children) stack.push_back(c.get());
    }
  }
  MIX_CHECK(source_node != nullptr);
  const std::string anchor = source_node->var;
  if (CountUses(*query, anchor) != 1) {
    return Bail("view root variable used more than once");
  }
  PlanPtr* gd_slot = FindAnchoredGd(&query, anchor, view_source_name);
  if (gd_slot == nullptr) {
    return Bail("the single use of the view is not a getDescendants "
                "anchored directly on the source");
  }
  auto path = pathexpr::PathExpr::Parse((*gd_slot)->path);
  if (!path.ok()) return path.status();
  std::vector<std::string> chain;
  if (!path.value().IsLabelChain(&chain)) {
    return Bail("view navigation path is not a literal label chain");
  }
  const std::string out_var = (*gd_slot)->out_var;

  // --- unfold the chain through the view's construction -------------------
  if (chain[0] != root_def->label) {
    return Bail("path root '" + chain[0] + "' does not match the view root");
  }
  if (chain.size() == 1) {
    // Binding the whole view root would need the top stream's cardinality
    // (tupleDestroy takes its first binding only) — not statically known.
    return Bail("path stops at the view root");
  }
  PlanNode* stream_root = view_stream.get();
  PlanNode* matched_def = root_def;  // createElement of the current element
  std::string matched_var = root_var;
  algebra::VarList pending_occurrence;
  bool crossed_nonempty_group = false;

  for (size_t step = 1; step < chain.size(); ++step) {
    if (matched_def == nullptr ||
        matched_def->kind != Kind::kCreateElement) {
      return Bail("cannot descend into non-element content at step " +
                  chain[step]);
    }
    std::vector<Item> items;
    Status s = ItemsOf(matched_def->children[0].get(), matched_def->x_var,
                       &items);
    if (!s.ok()) return s;

    const Item* hit = nullptr;
    for (const Item& item : items) {
      if (item.label != chain[step]) continue;
      if (hit != nullptr) return Bail("label '" + chain[step] +
                                      "' matches more than one content item");
      hit = &item;
    }
    if (hit == nullptr) {
      return Bail("label '" + chain[step] + "' matches no content item");
    }

    if (hit->kind == Item::Kind::kGroup) {
      PlanNode* gb = hit->group;
      if (step == 1 && !gb->vars.empty()) {
        return Bail("the answer collector must be an empty-group groupBy");
      }
      if (!gb->vars.empty()) {
        if (crossed_nonempty_group) {
          return Bail("more than one grouped level crossed");
        }
        crossed_nonempty_group = true;
        pending_occurrence = gb->vars;
      }
      stream_root = gb->children[0].get();
      matched_var = hit->var;
      matched_def = FindDef(stream_root, matched_var);
    } else if (hit->kind == Item::Kind::kElement) {
      if (step == 1) {
        // A scalar item at the top level repeats per top-stream binding,
        // whose cardinality is not statically known.
        return Bail("top-level scalar content has unknown multiplicity");
      }
      matched_var = hit->var;
      matched_def = FindDef(stream_root, matched_var);
    } else {  // kLeaf
      if (step + 1 < chain.size()) {
        return Bail("path descends into literal text");
      }
      if (step == 1) {
        return Bail("top-level scalar content has unknown multiplicity");
      }
      matched_var = hit->var;
      matched_def = nullptr;
    }
  }

  // --- build the replacement subtree --------------------------------------
  PlanPtr unfolded = stream_root->Clone();
  if (!pending_occurrence.empty()) {
    unfolded =
        PlanNode::OrderByOccurrence(std::move(unfolded), pending_occurrence);
  }
  unfolded = PlanNode::Project(std::move(unfolded), {matched_var});
  unfolded = PlanNode::Rename(std::move(unfolded), matched_var, out_var);

  *gd_slot = std::move(unfolded);

  // Final sanity: the composed stream must type-check.
  if (query->kind == Kind::kTupleDestroy) {
    auto schema = ComputeSchema(*query->children[0]);
    if (!schema.ok()) return schema.status();
  }
  return query;
}

}  // namespace mix::mediator
