#include "mediator/translate.h"

#include <algorithm>
#include <map>
#include <set>

#include "xmas/parser.h"

namespace mix::mediator {

namespace {

using algebra::BindingPredicate;
using algebra::VarList;
using xmas::Condition;
using xmas::HeadNode;

bool Contains(const VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// One WHERE-clause operator chain under construction.
struct Stream {
  PlanPtr plan;
  VarList schema;
};

class Translator {
 public:
  Result<PlanPtr> Run(const xmas::Query& q) {
    Status s = ProcessConditions(q.conditions);
    if (!s.ok()) return s;
    if (streams_.empty()) {
      return Status::InvalidArgument("XMAS: WHERE clause binds no variables");
    }
    if (streams_.size() > 1) {
      return Status::Unimplemented(
          "XMAS: sources are not connected by join predicates "
          "(cross products are not supported)");
    }
    if (q.head == nullptr) {
      return Status::InvalidArgument("XMAS: missing CONSTRUCT clause");
    }
    if (!q.head->group.has_value() || !q.head->group->empty()) {
      return Status::InvalidArgument(
          "XMAS: the root template must carry the {} annotation");
    }
    if (q.head->kind != HeadNode::Kind::kElement) {
      return Status::InvalidArgument(
          "XMAS: the root template must be an element");
    }
    bool is_list = false;
    auto root_var = CompileTemplate(*q.head, {}, &is_list);
    if (!root_var.ok()) return root_var.status();
    return PlanNode::TupleDestroy(std::move(streams_[0].plan),
                                  root_var.value());
  }

 private:
  // -------------------------------------------------------------------
  // WHERE clause
  // -------------------------------------------------------------------

  int StreamOf(const std::string& var) const {
    for (size_t i = 0; i < streams_.size(); ++i) {
      if (Contains(streams_[i].schema, var)) return static_cast<int>(i);
    }
    return -1;
  }

  Status BindFresh(const std::string& var) {
    if (bound_.count(var) > 0) {
      return Status::InvalidArgument("XMAS: variable $" + var + " bound twice");
    }
    bound_.insert(var);
    return Status::OK();
  }

  /// Tries to place one condition; returns true on success, false when its
  /// dependencies are not bound yet.
  Result<bool> TryPlace(const Condition& c) {
    switch (c.kind) {
      case Condition::Kind::kSourcePath: {
        Status s = BindFresh(c.out_var);
        if (!s.ok()) return s;
        int idx;
        auto it = source_stream_.find(c.source);
        if (it == source_stream_.end()) {
          std::string root_var = "#root_" + c.source;
          Stream stream;
          stream.plan = PlanNode::Source(c.source, root_var);
          stream.schema = {root_var};
          streams_.push_back(std::move(stream));
          idx = static_cast<int>(streams_.size() - 1);
          source_stream_[c.source] = idx;
          source_root_[c.source] = root_var;
        } else {
          idx = it->second;
        }
        Stream& stream = streams_[static_cast<size_t>(idx)];
        stream.plan = PlanNode::GetDescendants(
            std::move(stream.plan), source_root_[c.source], c.path, c.out_var);
        stream.schema.push_back(c.out_var);
        return true;
      }
      case Condition::Kind::kVarPath: {
        int idx = StreamOf(c.src_var);
        if (idx < 0) return false;  // anchor not bound yet
        Status s = BindFresh(c.out_var);
        if (!s.ok()) return s;
        Stream& stream = streams_[static_cast<size_t>(idx)];
        stream.plan = PlanNode::GetDescendants(std::move(stream.plan),
                                               c.src_var, c.path, c.out_var);
        stream.schema.push_back(c.out_var);
        return true;
      }
      case Condition::Kind::kCompare: {
        int li = StreamOf(c.left_var);
        if (li < 0) return false;
        if (!c.right_is_var) {
          Stream& stream = streams_[static_cast<size_t>(li)];
          stream.plan = PlanNode::Select(
              std::move(stream.plan),
              BindingPredicate::VarConst(c.left_var, c.op, c.right));
          return true;
        }
        int ri = StreamOf(c.right);
        if (ri < 0) return false;
        BindingPredicate pred =
            BindingPredicate::VarVar(c.left_var, c.op, c.right);
        if (li == ri) {
          Stream& stream = streams_[static_cast<size_t>(li)];
          stream.plan =
              PlanNode::Select(std::move(stream.plan), std::move(pred));
          return true;
        }
        // Merge the two streams with a join (left = earlier stream).
        int lo = std::min(li, ri);
        int hi = std::max(li, ri);
        Stream merged;
        merged.plan = PlanNode::Join(std::move(streams_[static_cast<size_t>(lo)].plan),
                                     std::move(streams_[static_cast<size_t>(hi)].plan),
                                     std::move(pred));
        merged.schema = streams_[static_cast<size_t>(lo)].schema;
        for (const std::string& v : streams_[static_cast<size_t>(hi)].schema) {
          merged.schema.push_back(v);
        }
        streams_.erase(streams_.begin() + hi);
        streams_[static_cast<size_t>(lo)] = std::move(merged);
        // Re-point source stream indices.
        for (auto& [name, idx] : source_stream_) {
          if (idx == hi) idx = lo;
          if (idx > hi) --idx;
        }
        return true;
      }
    }
    return Status::Internal("unknown condition kind");
  }

  Status ProcessConditions(const std::vector<Condition>& conditions) {
    std::vector<const Condition*> pending;
    pending.reserve(conditions.size());
    for (const Condition& c : conditions) pending.push_back(&c);

    bool progress = true;
    while (progress && !pending.empty()) {
      progress = false;
      for (auto it = pending.begin(); it != pending.end();) {
        auto placed = TryPlace(**it);
        if (!placed.ok()) return placed.status();
        if (placed.value()) {
          it = pending.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
    if (!pending.empty()) {
      return Status::InvalidArgument(
          "XMAS: condition references unbound variable: " +
          pending.front()->ToString());
    }
    return Status::OK();
  }

  // -------------------------------------------------------------------
  // CONSTRUCT clause
  // -------------------------------------------------------------------

  std::string FreshVar(const std::string& hint) {
    return "#" + std::to_string(fresh_counter_++) + hint;
  }

  Stream& S() { return streams_[0]; }

  /// Counts grouped (annotated) nodes reachable from `node`'s children
  /// without crossing another annotated node.
  static int CountGroupedAtLevel(const HeadNode& node) {
    int count = 0;
    for (const auto& c : node.children) {
      if (c->group.has_value()) {
        ++count;
      } else if (c->kind == HeadNode::Kind::kElement) {
        count += CountGroupedAtLevel(*c);
      }
    }
    return count;
  }

  static bool HasGroupedAtLevel(const HeadNode& node) {
    return CountGroupedAtLevel(node) > 0;
  }

  /// Compiles one template node produced in grouping context `ctx`.
  /// Returns the variable holding the node's content for one binding;
  /// `*is_list` reports whether that variable holds a list value.
  Result<std::string> CompileTemplate(const HeadNode& node, const VarList& ctx,
                                      bool* is_list) {
    *is_list = false;
    switch (node.kind) {
      case HeadNode::Kind::kVar:
        if (!Contains(S().schema, node.var)) {
          return Status::InvalidArgument(
              "XMAS: CONSTRUCT uses $" + node.var +
              " which is not (or no longer) bound — scalar content must be "
              "part of its grouping context");
        }
        return node.var;
      case HeadNode::Kind::kText: {
        std::string v = FreshVar("t");
        S().plan = PlanNode::Const(std::move(S().plan), node.label, v);
        S().schema.push_back(v);
        return v;
      }
      case HeadNode::Kind::kElement:
        return CompileElement(node, ctx, is_list);
    }
    return Status::Internal("unknown template node kind");
  }

  Result<std::string> CompileElement(const HeadNode& node, const VarList& ctx,
                                     bool* is_list) {
    *is_list = false;

    if (CountGroupedAtLevel(node) > 1) {
      return Status::Unimplemented(
          "XMAS: at most one grouped child per grouping level is supported");
    }

    // Context in which this element's children are produced.
    VarList child_ctx = ctx;
    if (node.group.has_value()) {
      for (const std::string& v : *node.group) {
        if (!Contains(child_ctx, v)) child_ctx.push_back(v);
      }
    }

    // Content slots in document order; filled as children compile.
    struct Slot {
      std::string var;
      bool is_list = false;
    };
    std::vector<Slot> slots(node.children.size());

    // Pass 1: the child that performs the grouping for this level — a
    // directly annotated child, or a scalar element containing one — must
    // compile first, because its groupBy narrows the stream schema.
    bool grouped_handled = false;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const HeadNode& c = *node.children[i];
      if (c.group.has_value()) {
        bool content_is_list = false;
        auto vc = CompileTemplate(c, child_ctx, &content_is_list);
        if (!vc.ok()) return vc.status();
        std::string list_var = FreshVar("L");
        S().plan = PlanNode::GroupBy(std::move(S().plan), child_ctx,
                                     vc.value(), list_var);
        S().schema = child_ctx;
        S().schema.push_back(list_var);
        slots[i] = Slot{list_var, true};
        grouped_handled = true;
      } else if (c.kind == HeadNode::Kind::kElement && HasGroupedAtLevel(c)) {
        bool sub_is_list = false;
        auto vc = CompileTemplate(c, child_ctx, &sub_is_list);
        if (!vc.ok()) return vc.status();
        slots[i] = Slot{vc.value(), sub_is_list};
        grouped_handled = true;
      }
    }

    // Collapse: an annotated element with no grouping child still needs one
    // binding per child_ctx group.
    if (node.group.has_value() && !grouped_handled) {
      std::string dummy;
      for (const std::string& v : S().schema) {
        if (!Contains(child_ctx, v)) {
          dummy = v;
          break;
        }
      }
      if (!dummy.empty()) {
        std::string d = FreshVar("D");
        S().plan =
            PlanNode::GroupBy(std::move(S().plan), child_ctx, dummy, d);
        S().schema = child_ctx;
        S().schema.push_back(d);
      }
    }

    // Pass 2: remaining (plain scalar) children.
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (!slots[i].var.empty()) continue;
      bool child_is_list = false;
      auto vc = CompileTemplate(*node.children[i], child_ctx, &child_is_list);
      if (!vc.ok()) return vc.status();
      slots[i] = Slot{vc.value(), child_is_list};
    }

    // Fold content in document order.
    std::string ch_var;
    if (slots.empty()) {
      // Empty element: a fresh leaf has no subtrees.
      ch_var = FreshVar("e");
      S().plan = PlanNode::Const(std::move(S().plan), "", ch_var);
      S().schema.push_back(ch_var);
    } else if (slots.size() == 1) {
      if (slots[0].is_list) {
        ch_var = slots[0].var;
      } else {
        ch_var = FreshVar("W");
        S().plan =
            PlanNode::WrapList(std::move(S().plan), slots[0].var, ch_var);
        S().schema.push_back(ch_var);
      }
    } else {
      ch_var = slots[0].var;
      for (size_t i = 1; i < slots.size(); ++i) {
        std::string z = FreshVar("C");
        S().plan = PlanNode::Concatenate(std::move(S().plan), ch_var,
                                         slots[i].var, z);
        S().schema.push_back(z);
        ch_var = z;
      }
    }

    std::string e_var = FreshVar("E");
    S().plan = PlanNode::CreateElement(std::move(S().plan),
                                       /*label_is_constant=*/true, node.label,
                                       ch_var, e_var);
    S().schema.push_back(e_var);
    return e_var;
  }

  std::vector<Stream> streams_;
  std::map<std::string, int> source_stream_;
  std::map<std::string, std::string> source_root_;
  std::set<std::string> bound_;
  int fresh_counter_ = 0;
};

}  // namespace

Result<PlanPtr> TranslateQuery(const xmas::Query& query) {
  return Translator().Run(query);
}

Result<PlanPtr> CompileXmas(const std::string& xmas_text) {
  Result<xmas::Query> query = xmas::ParseQuery(xmas_text);
  if (!query.ok()) return query.status();
  return TranslateQuery(query.value());
}

}  // namespace mix::mediator
