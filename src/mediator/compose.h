// Static query∘view composition (paper Section 3, "Preprocessing": "the
// preprocessing phase will compose the query and the view and generate the
// initial plan for q0 ∘ q").
//
// Runtime plan stacking (a lower mediator's virtual document registered as
// an upper mediator's source) is always available and fully general. This
// module additionally *unfolds* the view into the query plan when the
// query's navigation into the view can be resolved statically, producing
// one flat plan that the rewriter can then optimize across the former view
// boundary (e.g. pushing the query's selections below the view's join).
//
// Supported shape (conservative; anything else returns InvalidArgument and
// the caller falls back to stacking):
//   * the query references the view source exactly once, through a single
//     getDescendants whose path is a literal label chain anchored directly
//     on the view source;
//   * the chain steps resolve through the view's *constructed* structure
//     (createElement labels, concatenate/wrapList splicing, groupBy lists);
//     a step that would have to match source-dependent content (ANY) bails;
//   * the first step descends through an empty-group groupBy (the
//     translator's answer collector), so multiplicities are exact;
//   * at most one non-empty-group groupBy is crossed; crossing it inserts
//     an occurrence-mode orderBy on its group variables so the unfolded
//     stream reproduces the flattened group order.
//
// The resulting plan is *navigationally equivalent* to the stacked pair:
// same answer tree, same order (differentially tested in compose_test).
#ifndef MIX_MEDIATOR_COMPOSE_H_
#define MIX_MEDIATOR_COMPOSE_H_

#include <string>

#include "core/status.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Unfolds `view_plan` (a tupleDestroy-rooted view) into `query_plan`
/// wherever the query reads source `view_source_name`. Neither input is
/// modified. View-side variables are renamed (prefix "#v") to avoid
/// capture. Returns InvalidArgument with a reason when the shape is not
/// statically composable.
Result<PlanPtr> ComposeQueryOverView(const PlanNode& query_plan,
                                     const std::string& view_source_name,
                                     const PlanNode& view_plan);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_COMPOSE_H_
