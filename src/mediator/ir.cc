#include "mediator/ir.h"

#include <algorithm>
#include <cstdio>

#include "pathexpr/path_expr.h"

namespace mix::mediator {

namespace {

/// Copies every operator parameter of `from` into `to` — children excluded.
void CopyOp(const PlanNode& from, PlanNode* to) {
  to->kind = from.kind;
  to->source_name = from.source_name;
  to->source_uri = from.source_uri;
  to->var = from.var;
  to->parent_var = from.parent_var;
  to->out_var = from.out_var;
  to->path = from.path;
  to->use_sigma = from.use_sigma;
  to->predicate = from.predicate;
  to->join_cache_inner = from.join_cache_inner;
  to->join_index_inner = from.join_index_inner;
  to->order_by_occurrence = from.order_by_occurrence;
  to->vars = from.vars;
  to->grouped_var = from.grouped_var;
  to->x_var = from.x_var;
  to->y_var = from.y_var;
  to->label_is_constant = from.label_is_constant;
  to->label = from.label;
  to->text = from.text;
}

bool IsLabelChain(const std::string& path) {
  auto parsed = pathexpr::PathExpr::Parse(path);
  return parsed.ok() && parsed.value().IsLabelChain();
}

Status Analyze(IrNode* n, const std::map<std::string, SourceCapability>& caps,
               bool assume_all_sigma) {
  using Kind = PlanNode::Kind;
  for (IrPtr& c : n->children) {
    Status s = Analyze(c.get(), caps, assume_all_sigma);
    if (!s.ok()) return s;
  }

  // Schema (kTupleDestroy yields a document, not bindings: empty schema).
  if (n->op.kind == Kind::kTupleDestroy) {
    n->schema.clear();
  } else {
    std::vector<algebra::VarList> child_schemas;
    for (const IrPtr& c : n->children) child_schemas.push_back(c->schema);
    auto s = SchemaTransition(n->op, child_schemas);
    if (!s.ok()) return s.status();
    n->schema = std::move(s).ValueOrDie();
  }

  // Provenance: merge children, apply the operator's own bindings, then
  // restrict to the output schema.
  n->var_source.clear();
  for (const IrPtr& c : n->children) {
    n->var_source.insert(c->var_source.begin(), c->var_source.end());
  }
  switch (n->op.kind) {
    case Kind::kSource:
      n->var_source[n->op.var] = n->op.source_name;
      break;
    case Kind::kGetDescendants: {
      auto it = n->var_source.find(n->op.parent_var);
      n->var_source[n->op.out_var] =
          it == n->var_source.end() ? "" : it->second;
      break;
    }
    case Kind::kGroupBy:
    case Kind::kConcatenate:
    case Kind::kCreateElement:
    case Kind::kWrapList:
    case Kind::kConst:
      // Constructors synthesize their output value.
      n->var_source[n->op.out_var] = "";
      break;
    case Kind::kCachedView:
      // Snapshot values have no live σ-capable source behind them.
      n->var_source[n->op.var] = "";
      break;
    case Kind::kRename: {
      auto it = n->var_source.find(n->op.x_var);
      n->var_source[n->op.out_var] =
          it == n->var_source.end() ? "" : it->second;
      break;
    }
    default:
      break;
  }
  for (auto it = n->var_source.begin(); it != n->var_source.end();) {
    bool in_schema = std::find(n->schema.begin(), n->schema.end(),
                               it->first) != n->schema.end();
    it = in_schema ? std::next(it) : n->var_source.erase(it);
  }

  // Source set.
  n->sources.clear();
  for (const IrPtr& c : n->children) {
    n->sources.insert(n->sources.end(), c->sources.begin(), c->sources.end());
  }
  if (n->op.kind == Kind::kSource) n->sources.push_back(n->op.source_name);
  std::sort(n->sources.begin(), n->sources.end());
  n->sources.erase(std::unique(n->sources.begin(), n->sources.end()),
                   n->sources.end());

  // Browsability, σ-capability resolved per source through provenance.
  bool sigma = assume_all_sigma;
  if (!sigma && n->op.kind == Kind::kGetDescendants && !n->children.empty()) {
    auto v = n->children[0]->var_source.find(n->op.parent_var);
    if (v != n->children[0]->var_source.end()) {
      auto c = caps.find(v->second);
      sigma = c != caps.end() && c->second.sigma;
    }
  }
  n->self_cls = ClassifyOperator(n->op, sigma, nullptr);
  n->cls = n->self_cls;
  for (const IrPtr& c : n->children) {
    n->cls = std::max(n->cls, c->cls,
                      [](Browsability a, Browsability b) {
                        return static_cast<int>(a) < static_cast<int>(b);
                      });
  }

  // Fan-out estimate.
  double in0 = n->children.empty() ? 1.0 : n->children[0]->fanout;
  double in1 = n->children.size() > 1 ? n->children[1]->fanout : 1.0;
  switch (n->op.kind) {
    case Kind::kSource:
      n->fanout = 1.0;
      break;
    case Kind::kGetDescendants:
      n->fanout = in0 * (IsLabelChain(n->op.path) ? 4.0 : 8.0);
      break;
    case Kind::kSelect:
      n->fanout = in0 * (n->op.predicate->is_var_var() ? 0.5 : 0.25);
      break;
    case Kind::kJoin:
      n->fanout = in0 * in1 *
                  (n->op.predicate->op() == algebra::CompareOp::kEq ? 0.1
                                                                    : 0.5);
      break;
    case Kind::kGroupBy:
      n->fanout = in0 * 0.5;
      break;
    case Kind::kDistinct:
      n->fanout = in0 * 0.75;
      break;
    case Kind::kUnion:
      n->fanout = in0 + in1;
      break;
    case Kind::kDifference:
      n->fanout = in0;
      break;
    default:
      n->fanout = in0;
      break;
  }
  return Status::OK();
}

std::string RenderOpLine(const PlanNode& op) {
  PlanNode shallow;
  CopyOp(op, &shallow);
  std::string line = shallow.ToString();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

void Dump(const IrNode& n, int depth, bool annotate, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += RenderOpLine(n.op);
  if (annotate) {
    std::string schema = "{";
    for (size_t i = 0; i < n.schema.size(); ++i) {
      if (i > 0) schema += ",";
      schema += "$" + n.schema[i];
    }
    schema += "}";
    std::string src = "{";
    bool first = true;
    for (const auto& [var, source] : n.var_source) {
      if (!first) src += ",";
      first = false;
      src += var + ":" + (source.empty() ? "-" : source);
    }
    src += "}";
    char fanout[32];
    std::snprintf(fanout, sizeof(fanout), "%.3g", n.fanout);
    *out += " % schema=" + schema + " src=" + src +
            " cls=" + BrowsabilityName(n.cls) + " fanout=" + fanout;
  }
  *out += '\n';
  for (const IrPtr& c : n.children) Dump(*c, depth + 1, annotate, out);
}

}  // namespace

IrPtr IrFromPlan(const PlanNode& plan) {
  auto n = std::make_unique<IrNode>();
  CopyOp(plan, &n->op);
  for (const PlanPtr& c : plan.children) n->children.push_back(IrFromPlan(*c));
  return n;
}

PlanPtr IrToPlan(const IrNode& ir) {
  auto n = std::make_unique<PlanNode>();
  CopyOp(ir.op, n.get());
  for (const IrPtr& c : ir.children) n->children.push_back(IrToPlan(*c));
  return n;
}

Status AnalyzeIr(IrNode* root,
                 const std::map<std::string, SourceCapability>& caps,
                 bool assume_all_sigma) {
  return Analyze(root, caps, assume_all_sigma);
}

std::string DumpIr(const IrNode& ir, bool annotate) {
  std::string out;
  Dump(ir, 0, annotate, &out);
  return out;
}

std::vector<std::string> InputVars(const PlanNode& op) {
  using Kind = PlanNode::Kind;
  std::vector<std::string> vars;
  auto pred_vars = [&vars](const std::optional<algebra::BindingPredicate>& p) {
    if (!p.has_value()) return;
    vars.push_back(p->left_var());
    if (p->is_var_var()) vars.push_back(p->right_var());
  };
  switch (op.kind) {
    case Kind::kSource:
    case Kind::kCachedView:
    case Kind::kMaterialize:
    case Kind::kUnion:
    case Kind::kDifference:
    case Kind::kDistinct:
      break;
    case Kind::kGetDescendants:
      vars.push_back(op.parent_var);
      pred_vars(op.predicate);
      break;
    case Kind::kSelect:
    case Kind::kJoin:
      pred_vars(op.predicate);
      break;
    case Kind::kGroupBy:
      vars = op.vars;
      vars.push_back(op.grouped_var);
      break;
    case Kind::kConcatenate:
      vars.push_back(op.x_var);
      vars.push_back(op.y_var);
      break;
    case Kind::kCreateElement:
      vars.push_back(op.x_var);
      if (!op.label_is_constant) vars.push_back(op.label);
      break;
    case Kind::kOrderBy:
    case Kind::kProject:
      vars = op.vars;
      break;
    case Kind::kWrapList:
    case Kind::kRename:
      vars.push_back(op.x_var);
      break;
    case Kind::kConst:
      break;
    case Kind::kTupleDestroy:
      if (!op.var.empty()) vars.push_back(op.var);
      break;
  }
  return vars;
}

int CountVarUses(const IrNode& root, const std::string& var) {
  int count = 0;
  for (const std::string& v : InputVars(root.op)) {
    if (v == var) ++count;
  }
  for (const IrPtr& c : root.children) count += CountVarUses(*c, var);
  return count;
}

}  // namespace mix::mediator
