// Textual plan format: parse the exact rendering PlanNode::ToString()
// produces (the Fig. 4-style operator tree), so plans can be stored in
// files, diffed, and fed to tools (`mixql --algebra`) without going
// through XMAS.
//
//   tupleDestroy[$E]
//     createElement[answer,$L -> $E]
//       groupBy[{},$X -> $L]
//         getDescendants[$R,homes.home -> $X, sigma]
//           source[homesSrc -> $R]
//
// Children are nested by two-space indentation; binary operators (join,
// union, difference) take two child subtrees.
#ifndef MIX_MEDIATOR_PLAN_TEXT_H_
#define MIX_MEDIATOR_PLAN_TEXT_H_

#include <string_view>

#include "core/status.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Parses a plan rendered by PlanNode::ToString(). Round-trip guarantee:
/// ParsePlanText(p->ToString())->ToString() == p->ToString().
Result<PlanPtr> ParsePlanText(std::string_view text);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_PLAN_TEXT_H_
