#include "mediator/plan.h"

#include <algorithm>

#include "core/check.h"

namespace mix::mediator {

namespace {

PlanPtr Make(PlanNode::Kind kind, std::vector<PlanPtr> children) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

bool Contains(const algebra::VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

Status DupVar(const std::string& v) {
  return Status::InvalidArgument("variable bound twice: $" + v);
}

Status MissingVar(const std::string& v, const char* where) {
  return Status::InvalidArgument("variable $" + v + " not bound below " +
                                 where);
}

}  // namespace

PlanPtr PlanNode::Source(std::string source_name, std::string var) {
  PlanPtr n = Make(Kind::kSource, {});
  n->source_name = std::move(source_name);
  n->var = std::move(var);
  return n;
}

PlanPtr PlanNode::GetDescendants(PlanPtr child, std::string parent_var,
                                 std::string path, std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kGetDescendants, std::move(c));
  n->parent_var = std::move(parent_var);
  n->path = std::move(path);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::Select(PlanPtr child, algebra::BindingPredicate predicate) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kSelect, std::move(c));
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right,
                       algebra::BindingPredicate predicate) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(left));
  c.push_back(std::move(right));
  PlanPtr n = Make(Kind::kJoin, std::move(c));
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr PlanNode::GroupBy(PlanPtr child, algebra::VarList group_vars,
                          std::string grouped_var, std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kGroupBy, std::move(c));
  n->vars = std::move(group_vars);
  n->grouped_var = std::move(grouped_var);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::Concatenate(PlanPtr child, std::string x_var,
                              std::string y_var, std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kConcatenate, std::move(c));
  n->x_var = std::move(x_var);
  n->y_var = std::move(y_var);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::CreateElement(PlanPtr child, bool label_is_constant,
                                std::string label, std::string ch_var,
                                std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kCreateElement, std::move(c));
  n->label_is_constant = label_is_constant;
  n->label = std::move(label);
  n->x_var = std::move(ch_var);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::OrderBy(PlanPtr child, algebra::VarList sort_vars) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kOrderBy, std::move(c));
  n->vars = std::move(sort_vars);
  return n;
}

PlanPtr PlanNode::OrderByOccurrence(PlanPtr child,
                                    algebra::VarList sort_vars) {
  PlanPtr n = OrderBy(std::move(child), std::move(sort_vars));
  n->order_by_occurrence = true;
  return n;
}

PlanPtr PlanNode::Materialize(PlanPtr child) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  return Make(Kind::kMaterialize, std::move(c));
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(left));
  c.push_back(std::move(right));
  return Make(Kind::kUnion, std::move(c));
}

PlanPtr PlanNode::Difference(PlanPtr left, PlanPtr right) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(left));
  c.push_back(std::move(right));
  return Make(Kind::kDifference, std::move(c));
}

PlanPtr PlanNode::Distinct(PlanPtr child) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  return Make(Kind::kDistinct, std::move(c));
}

PlanPtr PlanNode::Project(PlanPtr child, algebra::VarList vars) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kProject, std::move(c));
  n->vars = std::move(vars);
  return n;
}

PlanPtr PlanNode::WrapList(PlanPtr child, std::string x_var,
                           std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kWrapList, std::move(c));
  n->x_var = std::move(x_var);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::Const(PlanPtr child, std::string text, std::string out_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kConst, std::move(c));
  n->text = std::move(text);
  n->out_var = std::move(out_var);
  return n;
}

PlanPtr PlanNode::Rename(PlanPtr child, std::string old_var,
                         std::string new_var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kRename, std::move(c));
  n->x_var = std::move(old_var);
  n->out_var = std::move(new_var);
  return n;
}

PlanPtr PlanNode::TupleDestroy(PlanPtr child, std::string var) {
  std::vector<PlanPtr> c;
  c.push_back(std::move(child));
  PlanPtr n = Make(Kind::kTupleDestroy, std::move(c));
  n->var = std::move(var);
  return n;
}

PlanPtr PlanNode::CachedView(std::string source_name, std::string var,
                             bool children) {
  PlanPtr n = Make(Kind::kCachedView, {});
  n->source_name = std::move(source_name);
  n->var = std::move(var);
  n->cached_view_children = children;
  return n;
}

PlanPtr PlanNode::Clone() const {
  auto n = std::make_unique<PlanNode>();
  n->kind = kind;
  n->source_name = source_name;
  n->source_uri = source_uri;
  n->var = var;
  n->parent_var = parent_var;
  n->out_var = out_var;
  n->path = path;
  n->use_sigma = use_sigma;
  n->predicate = predicate;
  n->join_cache_inner = join_cache_inner;
  n->join_index_inner = join_index_inner;
  n->order_by_occurrence = order_by_occurrence;
  n->vars = vars;
  n->grouped_var = grouped_var;
  n->x_var = x_var;
  n->y_var = y_var;
  n->label_is_constant = label_is_constant;
  n->label = label;
  n->text = text;
  n->cached_view_children = cached_view_children;
  for (const PlanPtr& c : children) n->children.push_back(c->Clone());
  return n;
}

const char* PlanKindName(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kSource:
      return "source";
    case PlanNode::Kind::kGetDescendants:
      return "getDescendants";
    case PlanNode::Kind::kSelect:
      return "select";
    case PlanNode::Kind::kJoin:
      return "join";
    case PlanNode::Kind::kGroupBy:
      return "groupBy";
    case PlanNode::Kind::kConcatenate:
      return "concatenate";
    case PlanNode::Kind::kCreateElement:
      return "createElement";
    case PlanNode::Kind::kOrderBy:
      return "orderBy";
    case PlanNode::Kind::kMaterialize:
      return "materialize";
    case PlanNode::Kind::kUnion:
      return "union";
    case PlanNode::Kind::kDifference:
      return "difference";
    case PlanNode::Kind::kDistinct:
      return "distinct";
    case PlanNode::Kind::kProject:
      return "project";
    case PlanNode::Kind::kWrapList:
      return "wrapList";
    case PlanNode::Kind::kConst:
      return "const";
    case PlanNode::Kind::kRename:
      return "rename";
    case PlanNode::Kind::kCachedView:
      return "cachedView";
    case PlanNode::Kind::kTupleDestroy:
      return "tupleDestroy";
  }
  return "?";
}

namespace {

std::string Params(const PlanNode& n) {
  using Kind = PlanNode::Kind;
  auto vars = [](const algebra::VarList& vs) {
    std::string out = "{";
    for (size_t i = 0; i < vs.size(); ++i) {
      if (i > 0) out += ",";
      out += "$" + vs[i];
    }
    return out + "}";
  };
  switch (n.kind) {
    case Kind::kSource:
      // The uri override is the LAST parameter and runs to the closing
      // bracket verbatim (it may contain commas and quotes; plan_text
      // parses it greedily).
      return "[" + n.source_name + " -> $" + n.var +
             (n.source_uri.empty() ? "" : ", uri=" + n.source_uri) + "]";
    case Kind::kGetDescendants:
      return std::string("[$") + n.parent_var + "," + n.path + " -> $" +
             n.out_var + (n.use_sigma ? ", sigma" : "") +
             (n.predicate.has_value() ? ", where " + n.predicate->ToString()
                                      : "") +
             "]";
    case Kind::kSelect:
    case Kind::kJoin:
      return "[" + n.predicate->ToString() + "]";
    case Kind::kGroupBy:
      return "[" + vars(n.vars) + ",$" + n.grouped_var + " -> $" + n.out_var +
             "]";
    case Kind::kConcatenate:
      return "[$" + n.x_var + ",$" + n.y_var + " -> $" + n.out_var + "]";
    case Kind::kCreateElement:
      return std::string("[") + (n.label_is_constant ? n.label : "$" + n.label) +
             ",$" + n.x_var + " -> $" + n.out_var + "]";
    case Kind::kOrderBy:
      return "[" + vars(n.vars) +
             (n.order_by_occurrence ? ", occurrence" : "") + "]";
    case Kind::kProject:
      return "[" + vars(n.vars) + "]";
    case Kind::kWrapList:
    case Kind::kRename:
      return "[$" + n.x_var + " -> $" + n.out_var + "]";
    case Kind::kConst:
      return "['" + n.text + "' -> $" + n.out_var + "]";
    case Kind::kCachedView:
      return "[" + n.source_name + " -> $" + n.var +
             (n.cached_view_children ? ", children" : "") + "]";
    case Kind::kTupleDestroy:
      return n.var.empty() ? "" : "[$" + n.var + "]";
    default:
      return "";
  }
}

void Render(const PlanNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += PlanKindName(n.kind);
  *out += Params(n);
  *out += '\n';
  for (const PlanPtr& c : n.children) Render(*c, depth + 1, out);
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

Result<algebra::VarList> ComputeSchema(const PlanNode& node) {
  std::vector<algebra::VarList> child_schemas;
  for (const PlanPtr& c : node.children) {
    auto s = ComputeSchema(*c);
    if (!s.ok()) return s.status();
    child_schemas.push_back(std::move(s).ValueOrDie());
  }
  return SchemaTransition(node, child_schemas);
}

Result<algebra::VarList> SchemaTransition(
    const PlanNode& node, const std::vector<algebra::VarList>& child_schemas) {
  using Kind = PlanNode::Kind;
  switch (node.kind) {
    case Kind::kSource:
      return algebra::VarList{node.var};
    case Kind::kGetDescendants: {
      algebra::VarList s = child_schemas[0];
      if (!Contains(s, node.parent_var)) {
        return MissingVar(node.parent_var, "getDescendants");
      }
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      if (node.predicate.has_value()) {
        if (!Contains(s, node.predicate->left_var())) {
          return MissingVar(node.predicate->left_var(), "getDescendants");
        }
        if (node.predicate->is_var_var() &&
            !Contains(s, node.predicate->right_var())) {
          return MissingVar(node.predicate->right_var(), "getDescendants");
        }
      }
      return s;
    }
    case Kind::kSelect: {
      const algebra::VarList& s = child_schemas[0];
      if (!Contains(s, node.predicate->left_var())) {
        return MissingVar(node.predicate->left_var(), "select");
      }
      if (node.predicate->is_var_var() &&
          !Contains(s, node.predicate->right_var())) {
        return MissingVar(node.predicate->right_var(), "select");
      }
      return s;
    }
    case Kind::kJoin: {
      algebra::VarList s = child_schemas[0];
      for (const std::string& v : child_schemas[1]) {
        if (Contains(s, v)) return DupVar(v);
        s.push_back(v);
      }
      if (!Contains(s, node.predicate->left_var()) ||
          !Contains(s, node.predicate->right_var())) {
        return MissingVar(node.predicate->left_var(), "join");
      }
      return s;
    }
    case Kind::kGroupBy: {
      const algebra::VarList& in = child_schemas[0];
      algebra::VarList s;
      for (const std::string& v : node.vars) {
        if (!Contains(in, v)) return MissingVar(v, "groupBy");
        s.push_back(v);
      }
      if (!Contains(in, node.grouped_var)) {
        return MissingVar(node.grouped_var, "groupBy");
      }
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      return s;
    }
    case Kind::kConcatenate: {
      algebra::VarList s = child_schemas[0];
      if (!Contains(s, node.x_var)) return MissingVar(node.x_var, "concatenate");
      if (!Contains(s, node.y_var)) return MissingVar(node.y_var, "concatenate");
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      return s;
    }
    case Kind::kCreateElement: {
      algebra::VarList s = child_schemas[0];
      if (!Contains(s, node.x_var)) {
        return MissingVar(node.x_var, "createElement");
      }
      if (!node.label_is_constant && !Contains(s, node.label)) {
        return MissingVar(node.label, "createElement");
      }
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      return s;
    }
    case Kind::kOrderBy: {
      const algebra::VarList& s = child_schemas[0];
      for (const std::string& v : node.vars) {
        if (!Contains(s, v)) return MissingVar(v, "orderBy");
      }
      return s;
    }
    case Kind::kUnion:
    case Kind::kDifference: {
      if (child_schemas[0] != child_schemas[1]) {
        return Status::InvalidArgument(
            std::string(PlanKindName(node.kind)) +
            " requires identical input schemas");
      }
      return child_schemas[0];
    }
    case Kind::kDistinct:
    case Kind::kMaterialize:
      return child_schemas[0];
    case Kind::kProject: {
      const algebra::VarList& s = child_schemas[0];
      for (const std::string& v : node.vars) {
        if (!Contains(s, v)) return MissingVar(v, "project");
      }
      return node.vars;
    }
    case Kind::kWrapList: {
      algebra::VarList s = child_schemas[0];
      if (!Contains(s, node.x_var)) return MissingVar(node.x_var, "wrapList");
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      return s;
    }
    case Kind::kConst: {
      algebra::VarList s = child_schemas[0];
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      s.push_back(node.out_var);
      return s;
    }
    case Kind::kRename: {
      algebra::VarList s = child_schemas[0];
      if (!Contains(s, node.x_var)) return MissingVar(node.x_var, "rename");
      if (Contains(s, node.out_var)) return DupVar(node.out_var);
      for (std::string& v : s) {
        if (v == node.x_var) v = node.out_var;
      }
      return s;
    }
    case Kind::kCachedView:
      return algebra::VarList{node.var};
    case Kind::kTupleDestroy:
      return Status::InvalidArgument(
          "tupleDestroy produces a document, not a binding stream");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace mix::mediator
