// XMAS → algebra translation (paper Section 3: "a XMAS mediator view q is
// first translated into an equivalent algebra expression Eq").
//
// WHERE clause: one operator chain per source — source → getDescendants*,
// σ-selections for comparisons within one chain, nested-loops joins to
// merge chains on cross-source comparisons. Disconnected sources (a cross
// product with no join predicate) are rejected.
//
// CONSTRUCT clause: compiled bottom-up following the shape of Fig. 4.
// For an element E produced in grouping context A with annotation Ge:
//   * E's children are produced in context A ∪ Ge;
//   * a grouped child (annotation {v..}) compiles its content per-binding,
//     then groupBy_{A∪Ge, content -> L} collects the group's list;
//   * if E is annotated but has no grouped child, a collapse groupBy
//     reduces the stream to one binding per A ∪ Ge group;
//   * children fold left-to-right with concatenate (which itemizes scalars
//     and splices lists); singleton scalar content is wrapped with
//     wrapList; literal text becomes const;
//   * createElement_{label, content -> Ve} builds E.
// The root template must carry the annotation {} and becomes the argument
// of tupleDestroy.
//
// Supported fragment note: at most one grouped child per grouping level
// (multiple sibling groups would require a multi-nest operator the paper
// does not define); grouped-child annotations are treated as markers, as
// in the paper's example plan, which inserts no duplicate elimination.
#ifndef MIX_MEDIATOR_TRANSLATE_H_
#define MIX_MEDIATOR_TRANSLATE_H_

#include "core/status.h"
#include "mediator/plan.h"
#include "xmas/ast.h"

namespace mix::mediator {

/// Translates a parsed XMAS query into the initial plan E_q.
Result<PlanPtr> TranslateQuery(const xmas::Query& query);

/// Parse + translate in one step: XMAS text to the initial plan. This is
/// the session-open path of the service layer (service/session.h) — one
/// call from query text to something LazyMediator::Build accepts.
Result<PlanPtr> CompileXmas(const std::string& xmas_text);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_TRANSLATE_H_
