// Algebraic evaluation plans (paper Section 3, Fig. 4).
//
// A Plan is the logical tree of XMAS algebra operators a query compiles to.
// It is a pure description: the same plan can be
//   * instantiated as a tree of lazy mediators (instantiate.h),
//   * evaluated eagerly by the reference evaluator (reference_eval.h),
//   * analyzed for navigational complexity (browsability.h), and
//   * rewritten by the optimizer (rewrite.h).
#ifndef MIX_MEDIATOR_PLAN_H_
#define MIX_MEDIATOR_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/binding_stream.h"
#include "core/status.h"

namespace mix::mediator {

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  enum class Kind {
    kSource,
    kGetDescendants,
    kSelect,
    kJoin,
    kGroupBy,
    kConcatenate,
    kCreateElement,
    kOrderBy,
    kMaterialize,
    kUnion,
    kDifference,
    kDistinct,
    kProject,
    kWrapList,
    kConst,
    kRename,
    kCachedView,
    kTupleDestroy,
  };

  Kind kind = Kind::kSource;
  std::vector<PlanPtr> children;

  // --- parameters (validity depends on kind) ---
  std::string source_name;                            // kSource
  /// kSource: optimizer-chosen view URI override. Empty = open the source
  /// under its registered URI. Non-empty (set by the wrapper-pushdown
  /// pass) = the instantiator must open THIS view instead — the plan is
  /// only correct against it, because selections it absorbs have been
  /// removed from the operator tree.
  std::string source_uri;
  std::string var;                                    // kSource out / kTupleDestroy
  std::string parent_var;                             // kGetDescendants anchor
  std::string out_var;     // new variable: gd/groupBy/concat/create/wrap/const
  std::string path;        // kGetDescendants path-expression text
  bool use_sigma = false;  // kGetDescendants: σ sibling scans
  /// kSelect/kJoin: the comparison. kGetDescendants: optional inline filter
  /// (select/getDescendants fusion) — a match is emitted only when the
  /// predicate holds on the would-be output binding; may reference out_var.
  std::optional<algebra::BindingPredicate> predicate;
  bool join_cache_inner = true;                        // kJoin
  bool join_index_inner = false;                       // kJoin (eager step)
  bool order_by_occurrence = false;                    // kOrderBy mode
  algebra::VarList vars;       // kGroupBy group / kOrderBy sort / kProject
  std::string grouped_var;     // kGroupBy
  std::string x_var, y_var;    // kConcatenate
  bool label_is_constant = true;
  std::string label;           // kCreateElement (constant or variable name)
  std::string text;            // kConst literal
  /// kCachedView: bind the snapshot root's children (one binding each, in
  /// document order) instead of the root itself.
  bool cached_view_children = false;

  // --- factories ---
  static PlanPtr Source(std::string source_name, std::string var);
  static PlanPtr GetDescendants(PlanPtr child, std::string parent_var,
                                std::string path, std::string out_var);
  static PlanPtr Select(PlanPtr child, algebra::BindingPredicate predicate);
  static PlanPtr Join(PlanPtr left, PlanPtr right,
                      algebra::BindingPredicate predicate);
  static PlanPtr GroupBy(PlanPtr child, algebra::VarList group_vars,
                         std::string grouped_var, std::string out_var);
  static PlanPtr Concatenate(PlanPtr child, std::string x_var,
                             std::string y_var, std::string out_var);
  static PlanPtr CreateElement(PlanPtr child, bool label_is_constant,
                               std::string label, std::string ch_var,
                               std::string out_var);
  static PlanPtr OrderBy(PlanPtr child, algebra::VarList sort_vars);
  /// Occurrence-mode orderBy (cluster by first occurrence of the sort
  /// variables' value identities — the paper's literal orderBy).
  static PlanPtr OrderByOccurrence(PlanPtr child, algebra::VarList sort_vars);
  /// Intermediate eager step (Section 6): drain + replay the child stream.
  static PlanPtr Materialize(PlanPtr child);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  static PlanPtr Distinct(PlanPtr child);
  static PlanPtr Project(PlanPtr child, algebra::VarList vars);
  static PlanPtr WrapList(PlanPtr child, std::string x_var,
                          std::string out_var);
  static PlanPtr Const(PlanPtr child, std::string text, std::string out_var);
  static PlanPtr Rename(PlanPtr child, std::string old_var,
                        std::string new_var);
  static PlanPtr TupleDestroy(PlanPtr child, std::string var = "");
  /// Leaf over a registered answer-view snapshot (answer_view_cache.h).
  /// `source_name` names the snapshot in the session's SourceRegistry.
  static PlanPtr CachedView(std::string source_name, std::string var,
                            bool children);

  PlanPtr Clone() const;

  /// Multi-line rendering in Fig. 4 style (operator_{params} per line,
  /// children indented).
  std::string ToString() const;
};

/// Computes (and validates) the output schema of a binding-stream plan
/// node. kTupleDestroy has no binding schema; passing it is an error.
Result<algebra::VarList> ComputeSchema(const PlanNode& node);

/// The single-operator schema rule: output schema of `node` given its
/// children's schemas (node.children is NOT consulted). This is the
/// transition ComputeSchema folds over the tree; the optimizer IR
/// (mediator/ir.h) uses it to annotate nodes without re-walking subtrees.
Result<algebra::VarList> SchemaTransition(
    const PlanNode& node, const std::vector<algebra::VarList>& child_schemas);

const char* PlanKindName(PlanNode::Kind kind);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_PLAN_H_
