#include "mediator/plan_cache.h"

#include <cctype>

#include "mediator/translate.h"

namespace mix::mediator {

std::string CanonicalXmasKey(const std::string& xmas_text) {
  // Mirrors the lexer's surface rules (xmas/parser.cc): whitespace
  // separates tokens, `%` comments run to end of line, single quotes
  // delimit string literals (no escapes; a quote always toggles).
  std::string out;
  out.reserve(xmas_text.size());
  bool in_quote = false;
  bool pending_space = false;
  for (size_t i = 0; i < xmas_text.size(); ++i) {
    char c = xmas_text[i];
    if (in_quote) {
      out.push_back(c);
      if (c == '\'') in_quote = false;
      continue;
    }
    if (c == '%') {
      while (i + 1 < xmas_text.size() && xmas_text[i + 1] != '\n') ++i;
      pending_space = true;  // the comment ran to a line break
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
    if (c == '\'') in_quote = true;
  }
  return out;
}

PlanCache::PlanCache(Options options) : options_(options) {}

Result<std::shared_ptr<const PlanNode>> PlanCache::GetOrCompile(
    const std::string& xmas_text) {
  const std::string key = CanonicalXmasKey(xmas_text);
  if (options_.capacity > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return it->second->second;
    }
    ++misses_;
  }
  // Compile outside the lock: one slow compile must not stall Opens of
  // other queries (the satellite guarantee the overlap test pins down).
  Result<PlanPtr> plan = CompileXmas(xmas_text);
  if (!plan.ok()) return plan.status();
  std::shared_ptr<const PlanNode> shared(std::move(plan).ValueOrDie());
  if (options_.capacity > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.count(key) == 0) {  // first insert wins
      lru_.emplace_front(key, shared);
      index_.emplace(key, lru_.begin());
      while (static_cast<int64_t>(lru_.size()) > options_.capacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return shared;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<int64_t>(lru_.size());
  return s;
}

}  // namespace mix::mediator
