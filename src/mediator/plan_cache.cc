#include "mediator/plan_cache.h"

#include <cctype>

#include "mediator/translate.h"

namespace mix::mediator {

std::string CanonicalXmasKey(const std::string& xmas_text) {
  // Mirrors the lexer's surface rules (xmas/parser.cc): whitespace
  // separates tokens, `%` comments run to end of line, single quotes
  // delimit string literals (no escapes; a quote always toggles).
  std::string out;
  out.reserve(xmas_text.size());
  bool in_quote = false;
  bool pending_space = false;
  for (size_t i = 0; i < xmas_text.size(); ++i) {
    char c = xmas_text[i];
    if (in_quote) {
      out.push_back(c);
      if (c == '\'') in_quote = false;
      continue;
    }
    if (c == '%') {
      while (i + 1 < xmas_text.size() && xmas_text[i + 1] != '\n') ++i;
      pending_space = true;  // the comment ran to a line break
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      continue;
    }
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
    if (c == '\'') in_quote = true;
  }
  return out;
}

PlanCache::PlanCache(Options options)
    : options_(std::move(options)),
      fingerprint_(passes::OptimizerFingerprint(options_.optimizer)) {}

Result<std::shared_ptr<const PlanNode>> PlanCache::GetOrCompile(
    const std::string& xmas_text) {
  auto entry = GetOrCompileEntry(xmas_text);
  if (!entry.ok()) return entry.status();
  return entry.value()->plan;
}

Result<std::shared_ptr<const PlanCache::Compiled>> PlanCache::GetOrCompileEntry(
    const std::string& xmas_text) {
  // The fingerprint participates in the key so that a cache whose optimizer
  // config changes (level flip, capability registration) can never serve a
  // shape produced under the old config.
  const std::string key = fingerprint_ + '\n' + CanonicalXmasKey(xmas_text);
  if (options_.capacity > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      return it->second->second;
    }
    ++misses_;
  }
  // Compile (and optimize) outside the lock: one slow compile must not
  // stall Opens of other queries (the overlap test pins this down).
  Result<PlanPtr> plan = CompileXmas(xmas_text);
  if (!plan.ok()) return plan.status();
  PlanPtr owned = std::move(plan).ValueOrDie();

  auto compiled = std::make_shared<Compiled>();
  compiled->view_shape = ComputeViewShape(*owned);
  if (options_.optimizer.level > 0) {
    Result<passes::OptimizeReport> report =
        passes::OptimizePlan(&owned, options_.optimizer);
    // An optimizer failure is never a compile failure: serve the correct
    // unoptimized plan (OptimizePlan left `owned` untouched) with an empty
    // report rather than bouncing the query.
    if (report.ok()) compiled->report = std::move(report).ValueOrDie();
  }
  compiled->plan = std::shared_ptr<const PlanNode>(std::move(owned));

  std::shared_ptr<const Compiled> shared = std::move(compiled);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shared->report.total() > 0) {
      ++optimized_;
      rewrites_ += shared->report.total();
      for (const auto& ps : shared->report.passes) {
        if (ps.applied > 0) pass_applied_[ps.name] += ps.applied;
      }
    }
    if (options_.capacity > 0 && index_.count(key) == 0) {
      // First insert wins.
      lru_.emplace_front(key, shared);
      index_.emplace(key, lru_.begin());
      while (static_cast<int64_t>(lru_.size()) > options_.capacity) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return shared;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<int64_t>(lru_.size());
  s.optimized = optimized_;
  s.rewrites = rewrites_;
  s.pass_applied = pass_applied_;
  return s;
}

}  // namespace mix::mediator
