// Eager plan evaluation against materialized sources — the oracle for
// differential testing and the "compute the full result up front" baseline.
#ifndef MIX_MEDIATOR_REFERENCE_EVAL_H_
#define MIX_MEDIATOR_REFERENCE_EVAL_H_

#include <map>
#include <string>

#include "algebra/reference.h"
#include "core/status.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Materialized sources: name → document root.
using ReferenceSources = std::map<std::string, const xml::Node*>;

/// Evaluates a binding-stream plan eagerly. Constructed nodes live in
/// `scratch`.
Result<algebra::reference::Table> EvaluateReferenceTable(
    const PlanNode& node, const ReferenceSources& sources,
    xml::Document* scratch);

/// Evaluates a full (tupleDestroy-rooted) plan to the answer document root.
Result<const xml::Node*> EvaluateReference(const PlanNode& root,
                                           const ReferenceSources& sources,
                                           xml::Document* scratch);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_REFERENCE_EVAL_H_
