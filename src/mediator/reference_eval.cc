#include "mediator/reference_eval.h"

#include "pathexpr/path_expr.h"

namespace mix::mediator {

using algebra::reference::Evaluator;
using algebra::reference::Table;

Result<Table> EvaluateReferenceTable(const PlanNode& node,
                                     const ReferenceSources& sources,
                                     xml::Document* scratch) {
  using Kind = PlanNode::Kind;
  Evaluator eval(scratch);

  std::vector<Table> inputs;
  for (const PlanPtr& c : node.children) {
    auto t = EvaluateReferenceTable(*c, sources, scratch);
    if (!t.ok()) return t.status();
    inputs.push_back(std::move(t).ValueOrDie());
  }

  switch (node.kind) {
    case Kind::kSource: {
      auto it = sources.find(node.source_name);
      if (it == sources.end()) {
        return Status::NotFound("unknown source: " + node.source_name);
      }
      // Mirror the lazy side's document-node anchoring (super_root.h): the
      // source binding is a "#document" node whose child is (a copy of)
      // the root element, so source paths match root-inclusive.
      xml::Node* doc_node = scratch->NewElement("#document");
      scratch->AppendChild(
          doc_node, algebra::reference::CopyInto(scratch, it->second));
      return eval.Source(doc_node, node.var);
    }
    case Kind::kGetDescendants: {
      auto path = pathexpr::PathExpr::Parse(node.path);
      if (!path.ok()) return path.status();
      return eval.GetDescendants(inputs[0], node.parent_var, path.value(),
                                 node.out_var);
    }
    case Kind::kSelect:
      return eval.Select(inputs[0], *node.predicate);
    case Kind::kJoin:
      return eval.Join(inputs[0], inputs[1], *node.predicate);
    case Kind::kGroupBy:
      return eval.GroupBy(inputs[0], node.vars, node.grouped_var, node.out_var);
    case Kind::kConcatenate:
      return eval.Concatenate(inputs[0], node.x_var, node.y_var, node.out_var);
    case Kind::kCreateElement:
      return eval.CreateElement(inputs[0], node.label_is_constant, node.label,
                                node.x_var, node.out_var);
    case Kind::kOrderBy:
      if (node.order_by_occurrence) {
        return eval.OrderByOccurrence(inputs[0], node.vars);
      }
      return eval.OrderBy(inputs[0], node.vars);
    case Kind::kMaterialize:
      return inputs[0];  // semantically the identity
    case Kind::kUnion:
      return eval.Union(inputs[0], inputs[1]);
    case Kind::kDifference:
      return eval.Difference(inputs[0], inputs[1]);
    case Kind::kDistinct:
      return eval.Distinct(inputs[0]);
    case Kind::kProject:
      return eval.Project(inputs[0], node.vars);
    case Kind::kWrapList: {
      // z = list[x]: express via the evaluator's concatenate machinery —
      // list[x] has exactly the items of a single non-list side.
      Table out = inputs[0];
      size_t xi = out.IndexOf(node.x_var);
      out.schema.push_back(node.out_var);
      for (auto& row : out.rows) {
        xml::Node* list = scratch->NewElement(algebra::kListLabel);
        scratch->AppendChild(
            list, algebra::reference::CopyInto(scratch, row[xi]));
        row.push_back(list);
      }
      return out;
    }
    case Kind::kConst: {
      Table out = inputs[0];
      out.schema.push_back(node.out_var);
      for (auto& row : out.rows) {
        row.push_back(scratch->NewText(node.text));
      }
      return out;
    }
    case Kind::kRename: {
      Table out = inputs[0];
      for (std::string& v : out.schema) {
        if (v == node.x_var) v = node.out_var;
      }
      return out;
    }
    case Kind::kCachedView:
      return Status::InvalidArgument(
          "cachedView is not supported by the reference evaluator");
    case Kind::kTupleDestroy:
      return Status::InvalidArgument(
          "tupleDestroy is not a binding-stream node");
  }
  return Status::Internal("unknown plan kind");
}

Result<const xml::Node*> EvaluateReference(const PlanNode& root,
                                           const ReferenceSources& sources,
                                           xml::Document* scratch) {
  if (root.kind != PlanNode::Kind::kTupleDestroy) {
    return Status::InvalidArgument("plan root must be tupleDestroy");
  }
  auto table = EvaluateReferenceTable(*root.children[0], sources, scratch);
  if (!table.ok()) return table.status();
  Evaluator eval(scratch);
  return eval.TupleDestroy(table.value(), root.var);
}

}  // namespace mix::mediator
