// Compiled-plan cache for the mixd session-open path (DESIGN.md §4
// "Shared source-fragment & plan caches").
//
// Opening a session compiles XMAS text to an algebra plan
// (mediator::CompileXmas) before instantiating the lazy mediators. The
// plan is a pure description of the query — no per-session state — so N
// sessions opening the same view can share one immutable PlanNode tree
// instead of re-parsing and re-translating N times. The cache keys on a
// canonical form of the query text (whitespace runs collapsed and `%`
// comments stripped, both only OUTSIDE single-quoted literals), so
// trivially reformatted copies of one query share an entry while queries
// differing inside a string literal never do.
//
// Concurrency: lookups and inserts take a small mutex; compilation runs
// OUTSIDE it, so one slow compile never stalls unrelated Opens. Concurrent
// misses of the same text may compile twice — first insert wins, both get
// equivalent plans. Failures are never cached (the error message should
// come from a fresh compile, and a transiently broken query must not stick).
#ifndef MIX_MEDIATOR_PLAN_CACHE_H_
#define MIX_MEDIATOR_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/status.h"
#include "mediator/answer_view_cache.h"
#include "mediator/passes/pass.h"
#include "mediator/plan.h"

namespace mix::mediator {

/// Canonical plan-cache key for `xmas_text`: whitespace runs become one
/// space and `%` line comments are dropped, except inside single-quoted
/// string literals; leading/trailing space is trimmed.
std::string CanonicalXmasKey(const std::string& xmas_text);

class PlanCache {
 public:
  struct Options {
    /// Max cached plans (LRU beyond that); <= 0 disables caching (every
    /// call compiles).
    int64_t capacity = 64;
    /// Optimizer configuration applied after compilation. `level <= 0`
    /// caches raw translator output (the A/B baseline). The cache key
    /// mixes in OptimizerFingerprint(optimizer), so two caches — or one
    /// cache reconfigured across restarts — never serve a shape produced
    /// under a different config.
    passes::OptimizerOptions optimizer;
  };

  /// A cached compilation: the (possibly optimized) plan plus the pass
  /// report that produced it. `report` is all-zero when the optimizer is
  /// off or declined the plan. `view_shape` is the answer-view descriptor
  /// computed from the RAW translator output — it must be taken before
  /// optimization, because wrapper pushdown absorbs predicates into
  /// source URIs where subsumption matching can no longer see them.
  struct Compiled {
    std::shared_ptr<const PlanNode> plan;
    passes::OptimizeReport report;
    ViewShape view_shape;
  };

  explicit PlanCache(Options options);
  PlanCache() : PlanCache(Options()) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The cached plan for `xmas_text`, compiling (and optimizing, per
  /// Options::optimizer) on miss. The returned plan is shared and
  /// immutable — instantiate it, never mutate it.
  Result<std::shared_ptr<const PlanNode>> GetOrCompile(
      const std::string& xmas_text);

  /// Like GetOrCompile but also exposes the optimizer report — the
  /// session-open path uses it to bump per-pass metrics without recording
  /// cache hits as fresh rewrites (hits carry the original report).
  Result<std::shared_ptr<const Compiled>> GetOrCompileEntry(
      const std::string& xmas_text);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;
    /// Compiles whose plan the optimizer actually changed (total() > 0).
    int64_t optimized = 0;
    /// Total rewrites across those compiles.
    int64_t rewrites = 0;
    /// Per-pass rewrite totals across all fresh compiles.
    std::map<std::string, int64_t> pass_applied;
  };
  Stats stats() const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const Compiled>>>;

  Options options_;
  std::string fingerprint_;  ///< OptimizerFingerprint(options_.optimizer)
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t optimized_ = 0;
  int64_t rewrites_ = 0;
  std::map<std::string, int64_t> pass_applied_;
};

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_PLAN_CACHE_H_
