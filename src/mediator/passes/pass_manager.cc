#include <cstdio>
#include <cstdlib>

#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

int OptimizeReport::applied(const std::string& name) const {
  for (const PassStats& p : passes) {
    if (p.name == name) return p.applied;
  }
  return 0;
}

int OptimizeReport::total() const {
  int t = 0;
  for (const PassStats& p : passes) t += p.applied;
  return t;
}

std::string OptimizeReport::ToString() const {
  std::string out = "rounds=" + std::to_string(rounds);
  for (const PassStats& p : passes) {
    out += " " + p.name + "=" + std::to_string(p.applied);
  }
  out += std::string(" cls=") + BrowsabilityName(before_cls) + "->" +
         BrowsabilityName(after_cls);
  return out;
}

PassManager PassManager::Default() {
  PassManager pm;
  pm.Add(MakeSelectPushdownPass());
  pm.Add(MakeWrapperPushdownPass());
  pm.Add(MakeFusionPass());
  pm.Add(MakeProjectPrunePass());
  pm.Add(MakeBrowsabilityPass());
  pm.Add(MakeJoinReorderPass());
  return pm;
}

void PassManager::Add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

Result<OptimizeReport> PassManager::Run(IrPtr* root,
                                        const OptimizerOptions& options) {
  OptimizeReport report;
  for (const auto& p : passes_) report.passes.push_back({p->name(), 0});

  Status analyzed =
      AnalyzeIr(root->get(), options.sources, options.assume_all_sigma);
  if (!analyzed.ok()) return analyzed;
  report.before_cls = (*root)->cls;

  for (int round = 0; round < 64; ++round) {
    int round_changes = 0;
    for (size_t i = 0; i < passes_.size(); ++i) {
      auto applied = passes_[i]->Run(root, options);
      if (!applied.ok()) return applied.status();
      if (applied.value() == 0) continue;
      round_changes += applied.value();
      report.passes[i].applied += applied.value();
      // Refresh annotations so the next pass sees the new shape.
      analyzed =
          AnalyzeIr(root->get(), options.sources, options.assume_all_sigma);
      if (!analyzed.ok()) {
        return Status::Internal(std::string("pass '") + passes_[i]->name() +
                                "' broke the plan: " + analyzed.ToString());
      }
      if (options.dump_hook) {
        options.dump_hook(passes_[i]->name(), DumpIr(**root, true));
      }
    }
    ++report.rounds;
    if (round_changes == 0) break;
  }
  report.after_cls = (*root)->cls;
  return report;
}

Result<OptimizeReport> OptimizePlan(PlanPtr* plan,
                                    const OptimizerOptions& options) {
  if (options.level <= 0) return OptimizeReport{};
  IrPtr ir = IrFromPlan(**plan);

  OptimizerOptions effective = options;
  if (!effective.dump_hook && std::getenv("MIX_DUMP_PASSES") != nullptr) {
    effective.dump_hook = [](const std::string& pass,
                             const std::string& dump) {
      std::fprintf(stderr, "-- after %s --\n%s", pass.c_str(), dump.c_str());
    };
  }

  PassManager pm = PassManager::Default();
  auto report = pm.Run(&ir, effective);
  if (!report.ok()) return report.status();
  *plan = IrToPlan(*ir);
  return report;
}

std::string OptimizerFingerprint(const OptimizerOptions& options) {
  std::string fp = "v1;L" + std::to_string(options.level);
  if (options.assume_all_sigma) fp += ";allsigma";
  // std::map iterates sources in sorted order: deterministic.
  for (const auto& [name, cap] : options.sources) {
    fp += ";" + name + "=";
    if (cap.sigma) fp += "s";
    if (cap.pushdown) fp += "p";
    if (!cap.database.empty()) fp += ":" + cap.database;
    for (const auto& [table, cols] : cap.tables) {
      fp += "," + table + "(";
      for (size_t i = 0; i < cols.size(); ++i) {
        if (i > 0) fp += " ";
        fp += cols[i].name + ":" + std::to_string(static_cast<int>(cols[i].type));
      }
      fp += ")";
    }
  }
  return fp;
}

}  // namespace mix::mediator::passes
