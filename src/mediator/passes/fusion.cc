// Operator fusion: removes whole transducer layers from the plan.
//
// Rule A — select/getDescendants fusion: a selection directly above a
// getDescendants whose output it tests becomes the gd's inline filter
// (PlanNode::predicate). The operator then skips non-qualifying matches
// during its own scan instead of materializing a binding, handing it up
// a layer, and discarding it there — one fewer operator hop per
// navigation, and no cursors stored for filtered-out matches.
//
// Rule B — dead-constructor elimination: createElement / const / wrapList /
// concatenate nodes whose output variable nothing consumes are spliced
// out. These operators map bindings 1:1 and synthesize their value from
// existing variables, so removal never changes cardinality, ordering,
// grouping, or distinct-ness — only the schema, which is legal exactly
// when the plan still analyzes (tentative splice, re-analyze, revert on
// failure). Stacked mediators hit this constantly: the inner mediator's
// construction layer is dead once the outer plan only navigates part of
// it. Applies only under a tupleDestroy root with an explicit root
// variable — on a bare binding-stream plan every schema variable is
// output.
#include <algorithm>

#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

namespace {

using Kind = PlanNode::Kind;

bool IsConstructor(Kind k) {
  return k == Kind::kCreateElement || k == Kind::kConst ||
         k == Kind::kWrapList || k == Kind::kConcatenate;
}

class FusionPass : public Pass {
 public:
  const char* name() const override { return "fusion"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions& options) override {
    int changes = FuseSelects(root);

    if ((*root)->op.kind == Kind::kTupleDestroy && !(*root)->op.var.empty()) {
      // Splice one candidate at a time (a splice invalidates other slots),
      // remembering nodes whose removal failed to analyze so they are not
      // retried forever.
      std::vector<const IrNode*> failed;
      for (;;) {
        IrPtr* slot = FindDeadConstructor(root, root->get(), failed);
        if (slot == nullptr) break;
        // Tentative splice; revert unless the plan still analyzes.
        IrPtr removed = std::move(*slot);
        *slot = std::move(removed->children[0]);
        Status ok = AnalyzeIr(root->get(), options.sources,
                              options.assume_all_sigma);
        if (!ok.ok()) {
          failed.push_back(removed.get());
          removed->children[0] = std::move(*slot);
          *slot = std::move(removed);
          continue;
        }
        ++changes;
      }
    }
    return changes;
  }

 private:
  int FuseSelects(IrPtr* slot) {
    IrNode* node = slot->get();
    int changes = 0;
    if (node->op.kind == Kind::kSelect) {
      IrNode* child = node->children[0].get();
      std::vector<std::string> vars = InputVars(node->op);
      if (child->op.kind == Kind::kGetDescendants &&
          !child->op.predicate.has_value() &&
          std::find(vars.begin(), vars.end(), child->op.out_var) !=
              vars.end()) {
        child->op.predicate = node->op.predicate;
        IrPtr select = std::move(*slot);
        *slot = std::move(select->children[0]);
        ++changes;
      }
    }
    for (IrPtr& c : slot->get()->children) changes += FuseSelects(&c);
    return changes;
  }

  /// First constructor (pre-order) whose output nothing consumes, skipping
  /// nodes whose removal already failed to analyze.
  IrPtr* FindDeadConstructor(IrPtr* slot, const IrNode* root,
                             const std::vector<const IrNode*>& failed) {
    IrNode* node = slot->get();
    if (IsConstructor(node->op.kind) &&
        CountVarUses(*root, node->op.out_var) == 0 &&
        std::find(failed.begin(), failed.end(), node) == failed.end()) {
      return slot;
    }
    for (IrPtr& c : node->children) {
      IrPtr* found = FindDeadConstructor(&c, root, failed);
      if (found != nullptr) return found;
    }
    return nullptr;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeFusionPass() {
  return std::make_unique<FusionPass>();
}

}  // namespace mix::mediator::passes
