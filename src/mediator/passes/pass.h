// Optimizer pass pipeline over the plan IR (DESIGN.md §6).
//
// Each pass is a self-contained rewrite with explicit legality conditions;
// the PassManager runs the pipeline to fixpoint (a pass may expose
// opportunities for an earlier one), refreshing IR annotations between
// passes so every pass may trust them on entry.
//
// Default pipeline, in order:
//   select_pushdown  — selections sink below join / getDescendants /
//                      groupBy (legacy rule 2);
//   wrapper_pushdown — selections over relational sources compile into the
//                      wrapper's mini-SQL view URI;
//   fusion           — select/getDescendants fusion and dead-constructor
//                      elimination;
//   project_prune    — full-schema projections drop (legacy rule 3);
//   browsability     — σ enablement per σ-capable source (legacy rule 1,
//                      now an analysis-driven rewrite);
//   join_reorder     — fan-out-driven reassociation (leaf order preserved,
//                      so answers stay byte-identical).
#ifndef MIX_MEDIATOR_PASSES_PASS_H_
#define MIX_MEDIATOR_PASSES_PASS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mediator/ir.h"

namespace mix::mediator::passes {

struct OptimizerOptions {
  /// 0 disables optimization entirely (A/B baseline); >= 1 runs the
  /// pipeline. Reserved headroom for level-gated passes later.
  int level = 1;
  /// Per-source capabilities (σ, pushdown, relational catalog).
  std::map<std::string, SourceCapability> sources;
  /// Legacy Rewrite() compatibility: treat every source as σ-capable.
  bool assume_all_sigma = false;
  /// Called after each pass that changed the tree: (pass name, annotated
  /// DumpIr). Unset => MIX_DUMP_PASSES=1 in the environment dumps to stderr.
  std::function<void(const std::string& pass_name, const std::string& dump)>
      dump_hook;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// Applies the pass to *root (which it may re-root); returns the number
  /// of rewrites applied. IR annotations are fresh on entry; a pass that
  /// reshapes the tree must either keep the annotations it later reads
  /// consistent or not read stale ones.
  virtual Result<int> Run(IrPtr* root, const OptimizerOptions& options) = 0;
};

struct PassStats {
  std::string name;
  int applied = 0;  ///< total rewrites across all rounds
};

struct OptimizeReport {
  std::vector<PassStats> passes;  ///< pipeline order
  Browsability before_cls = Browsability::kBoundedBrowsable;
  Browsability after_cls = Browsability::kBoundedBrowsable;
  int rounds = 0;  ///< fixpoint rounds executed

  int applied(const std::string& name) const;
  int total() const;
  std::string ToString() const;
};

class PassManager {
 public:
  /// The full default pipeline in the order documented above.
  static PassManager Default();

  void Add(std::unique_ptr<Pass> pass);

  /// Runs the pipeline to fixpoint (max 64 rounds), re-analyzing between
  /// passes. On failure the tree may be partially rewritten — callers that
  /// need all-or-nothing semantics (OptimizePlan) work on a copy.
  Result<OptimizeReport> Run(IrPtr* root, const OptimizerOptions& options);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

std::unique_ptr<Pass> MakeSelectPushdownPass();
std::unique_ptr<Pass> MakeWrapperPushdownPass();
std::unique_ptr<Pass> MakeFusionPass();
std::unique_ptr<Pass> MakeProjectPrunePass();
std::unique_ptr<Pass> MakeBrowsabilityPass();
std::unique_ptr<Pass> MakeJoinReorderPass();

/// plan -> IR -> Default pipeline -> plan. options.level <= 0 returns an
/// empty report without touching the plan. On any failure `*plan` is left
/// exactly as passed in.
Result<OptimizeReport> OptimizePlan(PlanPtr* plan,
                                    const OptimizerOptions& options);

/// Deterministic digest of everything that can change the optimized shape
/// (level, σ/pushdown capabilities, catalogs). Mixed into the PlanCache key
/// so a config change never serves a stale shape.
std::string OptimizerFingerprint(const OptimizerOptions& options);

}  // namespace mix::mediator::passes

#endif  // MIX_MEDIATOR_PASSES_PASS_H_
