// Browsability classifier pass (legacy rewrite rule 1, promoted to an
// analysis-driven rewrite): a label-chain getDescendants whose anchoring
// value navigates a σ-capable source switches to σ sibling scans, which
// upgrades it from browsable to bounded browsable (paper Section 2, end).
// σ-capability is resolved per source through the IR's variable
// provenance — a plan mixing relational and CSV legs only upgrades the
// legs whose wrapper answers σ.
#include "mediator/passes/pass.h"
#include "pathexpr/path_expr.h"

namespace mix::mediator::passes {

namespace {

class BrowsabilityPass : public Pass {
 public:
  const char* name() const override { return "browsability"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions& options) override {
    return Walk(root->get(), options);
  }

 private:
  int Walk(IrNode* node, const OptimizerOptions& options) {
    int changes = 0;
    if (node->op.kind == PlanNode::Kind::kGetDescendants &&
        !node->op.use_sigma && SigmaAvailable(*node, options)) {
      auto path = pathexpr::PathExpr::Parse(node->op.path);
      if (path.ok() && path.value().IsLabelChain()) {
        node->op.use_sigma = true;
        ++changes;
      }
    }
    for (IrPtr& c : node->children) changes += Walk(c.get(), options);
    return changes;
  }

  bool SigmaAvailable(const IrNode& gd, const OptimizerOptions& options) {
    if (options.assume_all_sigma) return true;
    const auto& child_src = gd.children[0]->var_source;
    auto v = child_src.find(gd.op.parent_var);
    if (v == child_src.end() || v->second.empty()) return false;
    auto cap = options.sources.find(v->second);
    return cap != options.sources.end() && cap->second.sigma;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeBrowsabilityPass() {
  return std::make_unique<BrowsabilityPass>();
}

}  // namespace mix::mediator::passes
