// Selections sink toward the sources (legacy rewrite rule 2): below the
// join side that binds all predicate variables, below getDescendants whose
// output the predicate ignores, and below groupBy when the predicate only
// reads group variables (those pass through unchanged, so filtering groups
// equals filtering bindings). Earlier filtering means lazier scans.
//
// Runs its own internal fixpoint: selections are schema-preserving, so a
// rotation invalidates no annotation this pass reads (the moved select's
// own schema is patched locally).
#include <algorithm>

#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

namespace {

using Kind = PlanNode::Kind;

bool Contains(const algebra::VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

bool AllIn(const std::vector<std::string>& vars,
           const algebra::VarList& schema) {
  for (const std::string& v : vars) {
    if (!Contains(schema, v)) return false;
  }
  return true;
}

class SelectPushdownPass : public Pass {
 public:
  const char* name() const override { return "select_pushdown"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions&) override {
    int total = 0;
    for (int i = 0; i < 64; ++i) {
      int changes = Walk(root);
      if (changes == 0) break;
      total += changes;
    }
    return total;
  }

 private:
  /// One top-down sweep; stops and restarts at each rotation (the reshaped
  /// subtree is revisited by the next sweep).
  int Walk(IrPtr* slot) {
    IrNode* node = slot->get();
    if (node->op.kind == Kind::kSelect) {
      IrNode* child = node->children[0].get();
      std::vector<std::string> vars = InputVars(node->op);

      if (child->op.kind == Kind::kJoin) {
        for (size_t side = 0; side < 2; ++side) {
          if (!AllIn(vars, child->children[side]->schema)) continue;
          // select(join(a, b)) -> join(select(a), b) (or the right side).
          IrPtr select = std::move(*slot);
          IrPtr join = std::move(select->children[0]);
          IrPtr target = std::move(join->children[side]);
          select->schema = target->schema;
          select->children[0] = std::move(target);
          join->children[side] = std::move(select);
          *slot = std::move(join);
          return 1;
        }
      } else if (child->op.kind == Kind::kGetDescendants &&
                 !Contains(vars, child->op.out_var)) {
        // select(getDescendants(c)) -> getDescendants(select(c)).
        IrPtr select = std::move(*slot);
        IrPtr gd = std::move(select->children[0]);
        IrPtr input = std::move(gd->children[0]);
        select->schema = input->schema;
        select->children[0] = std::move(input);
        gd->children[0] = std::move(select);
        *slot = std::move(gd);
        return 1;
      } else if (child->op.kind == Kind::kGroupBy &&
                 AllIn(vars, child->op.vars)) {
        // select(groupBy(c)) -> groupBy(select(c)).
        IrPtr select = std::move(*slot);
        IrPtr gb = std::move(select->children[0]);
        IrPtr input = std::move(gb->children[0]);
        select->schema = input->schema;
        select->children[0] = std::move(input);
        gb->children[0] = std::move(select);
        *slot = std::move(gb);
        return 1;
      }
    }
    int changes = 0;
    for (IrPtr& c : slot->get()->children) changes += Walk(&c);
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeSelectPushdownPass() {
  return std::make_unique<SelectPushdownPass>();
}

}  // namespace mix::mediator::passes
