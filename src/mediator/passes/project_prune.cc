// Projections that keep their input's full schema (same variables, same
// order) are identity maps: drop them (legacy rewrite rule 3).
#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

namespace {

class ProjectPrunePass : public Pass {
 public:
  const char* name() const override { return "project_prune"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions&) override {
    return Walk(root);
  }

 private:
  int Walk(IrPtr* slot) {
    int changes = 0;
    while ((*slot)->op.kind == PlanNode::Kind::kProject &&
           (*slot)->children[0]->schema == (*slot)->op.vars) {
      IrPtr project = std::move(*slot);
      *slot = std::move(project->children[0]);
      ++changes;
    }
    for (IrPtr& c : (*slot)->children) changes += Walk(&c);
    return changes;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeProjectPrunePass() {
  return std::make_unique<ProjectPrunePass>();
}

}  // namespace mix::mediator::passes
