// Wrapper predicate pushdown: a var-const selection whose variable is
// extracted from a relational source's column compiles into the wrapper's
// mini-SQL view URI, so filtered tuples never cross the wire.
//
// Pattern (all nodes in one tree, annotations fresh):
//
//   select[$Z op 'lit']                          -- removed
//     ... getDescendants[$T,<col>._ -> $Z] ...   -- kept (binds the cell)
//           ... getDescendants[$R,<db>.<table>.row -> $T] ...
//                 ... source[name -> $R]         -- gains uri=sql:SELECT...
//
// Legality:
//   * the source's capability has pushdown, database == <db>, and <table>
//     is in its catalog with a column <col>;
//   * type discipline — the XMAS side compares with CompareAtoms (numeric
//     iff both sides parse as numbers) while rdb compares typed values, so
//     only two cases provably agree: an int column with an all-digits
//     constant (both numeric), and a string column with a non-numeric
//     constant (both lexicographic). Double columns never push (text
//     round-tripping is not exact);
//   * $R is consumed exactly once (the db-level getDescendants) — nothing
//     else navigates the raw document we are about to replace;
//   * each variable on the chain has a unique definition (a var bound in
//     both branches of a union is ambiguous) and the source name appears
//     once among the plan's source nodes (a self-joined source shares one
//     buffer component per session, which can serve only one view);
//   * the source has no prior URI override.
//
// The rewrite also repoints the row-level getDescendants at view.row: the
// "sql:" view exports view[row...], not <db>[<table>[...]].
#include <cstdlib>

#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

namespace {

using Kind = PlanNode::Kind;

struct VarDef {
  IrNode* node = nullptr;
  int count = 0;
};

void CollectDefs(IrNode* n, std::map<std::string, VarDef>* defs,
                 std::map<std::string, int>* source_names) {
  const std::string* bound = nullptr;
  switch (n->op.kind) {
    case Kind::kSource:
      bound = &n->op.var;
      (*source_names)[n->op.source_name] += 1;
      break;
    case Kind::kGetDescendants:
    case Kind::kGroupBy:
    case Kind::kConcatenate:
    case Kind::kCreateElement:
    case Kind::kWrapList:
    case Kind::kConst:
    case Kind::kRename:
      bound = &n->op.out_var;
      break;
    default:
      break;
  }
  if (bound != nullptr) {
    VarDef& d = (*defs)[*bound];
    d.node = n;
    d.count += 1;
  }
  for (IrPtr& c : n->children) CollectDefs(c.get(), defs, source_names);
}

void CollectSelectSlots(IrPtr* slot, std::vector<IrPtr*>* out) {
  if ((*slot)->op.kind == Kind::kSelect) out->push_back(slot);
  for (IrPtr& c : (*slot)->children) CollectSelectSlots(&c, out);
}

/// "<col>._" -> col; empty if the path is not a one-column extraction.
std::string ColumnOf(const std::string& path) {
  if (path.size() < 3 || path.substr(path.size() - 2) != "._") return "";
  std::string col = path.substr(0, path.size() - 2);
  return col.find('.') == std::string::npos ? col : "";
}

/// "<db>.<table>.row" -> {db, table}; empty db on mismatch.
void RowPathOf(const std::string& path, std::string* db, std::string* table) {
  db->clear();
  size_t d1 = path.find('.');
  if (d1 == std::string::npos) return;
  size_t d2 = path.find('.', d1 + 1);
  if (d2 == std::string::npos) return;
  if (path.substr(d2 + 1) != "row") return;
  *db = path.substr(0, d1);
  *table = path.substr(d1 + 1, d2 - d1 - 1);
}

bool IsIntLiteral(const std::string& s) {
  size_t i = s.size() && s[0] == '-' ? 1 : 0;
  if (i == s.size() || s.size() - i > 18) return false;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

/// CompareAtoms treats a side as numeric iff strtod consumes it fully.
bool IsNumericAtom(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool TypeLegal(ColumnType type, const std::string& constant) {
  if (constant.find('\'') != std::string::npos ||
      constant.find('\n') != std::string::npos ||
      constant.find('\r') != std::string::npos) {
    return false;
  }
  switch (type) {
    case ColumnType::kInt:
      return IsIntLiteral(constant);
    case ColumnType::kString:
      return !IsNumericAtom(constant);
    case ColumnType::kDouble:
      return false;
  }
  return false;
}

struct Candidate {
  IrPtr* select_slot;
  IrNode* source;     ///< gains the uri override
  IrNode* row_gd;     ///< repointed at view.row
  std::string table;
  std::string sql_term;  ///< "col op lit"
};

class WrapperPushdownPass : public Pass {
 public:
  const char* name() const override { return "wrapper_pushdown"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions& options) override {
    std::map<std::string, VarDef> defs;
    std::map<std::string, int> source_names;
    CollectDefs(root->get(), &defs, &source_names);

    std::vector<IrPtr*> selects;
    CollectSelectSlots(root, &selects);

    std::vector<Candidate> candidates;
    for (IrPtr* slot : selects) {
      Candidate c;
      if (Match(**root, **slot, defs, source_names, options, &c)) {
        c.select_slot = slot;
        candidates.push_back(c);
      }
    }
    if (candidates.empty()) return 0;

    // One SQL view per source node, predicates in plan pre-order.
    std::map<IrNode*, std::string> where;
    for (const Candidate& c : candidates) {
      std::string& w = where[c.source];
      w += w.empty() ? "sql:SELECT * FROM " + c.table + " WHERE " : " AND ";
      w += c.sql_term;
    }
    for (const auto& [source, sql] : where) source->op.source_uri = sql;
    for (const Candidate& c : candidates) c.row_gd->op.path = "view.row";

    // Splice deepest-first so shallower collected slots stay valid.
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      IrPtr select = std::move(*it->select_slot);
      *it->select_slot = std::move(select->children[0]);
    }
    return static_cast<int>(candidates.size());
  }

 private:
  bool Match(const IrNode& root, const IrNode& select,
             const std::map<std::string, VarDef>& defs,
             const std::map<std::string, int>& source_names,
             const OptimizerOptions& options, Candidate* out) {
    const auto& pred = select.op.predicate;
    if (pred->is_var_var()) return false;

    auto unique_def = [&defs](const std::string& var) -> IrNode* {
      auto it = defs.find(var);
      return it != defs.end() && it->second.count == 1 ? it->second.node
                                                       : nullptr;
    };

    IrNode* col_gd = unique_def(pred->left_var());
    if (col_gd == nullptr || col_gd->op.kind != Kind::kGetDescendants ||
        col_gd->op.predicate.has_value()) {
      return false;
    }
    std::string col = ColumnOf(col_gd->op.path);
    if (col.empty()) return false;

    IrNode* row_gd = unique_def(col_gd->op.parent_var);
    if (row_gd == nullptr || row_gd->op.kind != Kind::kGetDescendants ||
        row_gd->op.predicate.has_value()) {
      return false;
    }
    std::string db, table;
    RowPathOf(row_gd->op.path, &db, &table);
    if (db.empty()) return false;

    IrNode* source = unique_def(row_gd->op.parent_var);
    if (source == nullptr || source->op.kind != Kind::kSource ||
        !source->op.source_uri.empty()) {
      return false;
    }
    auto names = source_names.find(source->op.source_name);
    if (names == source_names.end() || names->second != 1) return false;
    if (CountVarUses(root, source->op.var) != 1) return false;

    auto cap = options.sources.find(source->op.source_name);
    if (cap == options.sources.end() || !cap->second.pushdown ||
        cap->second.database != db) {
      return false;
    }
    auto cols = cap->second.tables.find(table);
    if (cols == cap->second.tables.end()) return false;
    const SourceCapability::Column* column = nullptr;
    for (const auto& c : cols->second) {
      if (c.name == col) column = &c;
    }
    if (column == nullptr || !TypeLegal(column->type, pred->constant())) {
      return false;
    }

    out->source = source;
    out->row_gd = row_gd;
    out->table = table;
    out->sql_term =
        col + " " + algebra::CompareOpName(pred->op()) + " " +
        (column->type == ColumnType::kString ? "'" + pred->constant() + "'"
                                             : pred->constant());
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeWrapperPushdownPass() {
  return std::make_unique<WrapperPushdownPass>();
}

}  // namespace mix::mediator::passes
