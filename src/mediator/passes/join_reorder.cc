// Join reordering by estimated fan-out. Nested-loop join output order is
// lexicographic in leaf order, and both reassociation patterns below
// preserve leaf order and output schema order, so the rewritten plan's
// answer is byte-identical — only the intermediate cardinality (and with
// it the scan work per navigation) changes.
//
//   join_p(join_q(A,B), C)  ->  join_q(A, join_p(B,C))
//       legal iff vars(p) subset schema(B)+schema(C)
//   join_p(A, join_q(B,C))  ->  join_q(join_p(A,B), C)
//       legal iff vars(p) subset schema(A)+schema(B)
//
// Applied only when the new intermediate join's estimate beats the old
// one by a strict 25% margin — the margin keeps the two mirrored patterns
// from oscillating. Each predicate travels with its join node (cache /
// index flags stay coherent). One rotation per invocation: annotations go
// stale on reshape, and the PassManager re-analyzes between passes.
#include <algorithm>

#include "mediator/passes/pass.h"

namespace mix::mediator::passes {

namespace {

using Kind = PlanNode::Kind;

bool AllIn(const std::vector<std::string>& vars, const algebra::VarList& a,
           const algebra::VarList& b) {
  for (const std::string& v : vars) {
    if (std::find(a.begin(), a.end(), v) == a.end() &&
        std::find(b.begin(), b.end(), v) == b.end()) {
      return false;
    }
  }
  return true;
}

/// Mirrors AnalyzeIr's join fan-out rule for a hypothetical join.
double JoinEst(const PlanNode& join, double left, double right) {
  return left * right *
         (join.predicate->op() == algebra::CompareOp::kEq ? 0.1 : 0.5);
}

class JoinReorderPass : public Pass {
 public:
  const char* name() const override { return "join_reorder"; }

  Result<int> Run(IrPtr* root, const OptimizerOptions&) override {
    return Walk(root);
  }

 private:
  int Walk(IrPtr* slot) {
    IrNode* p = slot->get();
    if (p->op.kind == Kind::kJoin) {
      std::vector<std::string> pvars = InputVars(p->op);

      IrNode* q = p->children[0].get();
      if (q->op.kind == Kind::kJoin) {
        // join_p(join_q(A,B), C) -> join_q(A, join_p(B,C)).
        IrNode* a = q->children[0].get();
        IrNode* b = q->children[1].get();
        IrNode* c = p->children[1].get();
        if (AllIn(pvars, b->schema, c->schema) &&
            JoinEst(p->op, b->fanout, c->fanout) <
                0.75 * JoinEst(q->op, a->fanout, b->fanout)) {
          IrPtr p_owned = std::move(*slot);
          IrPtr q_owned = std::move(p_owned->children[0]);
          IrPtr a_owned = std::move(q_owned->children[0]);
          IrPtr b_owned = std::move(q_owned->children[1]);
          IrPtr c_owned = std::move(p_owned->children[1]);
          p_owned->children[0] = std::move(b_owned);
          p_owned->children[1] = std::move(c_owned);
          q_owned->children[0] = std::move(a_owned);
          q_owned->children[1] = std::move(p_owned);
          *slot = std::move(q_owned);
          return 1;
        }
      }

      q = p->children[1].get();
      if (q->op.kind == Kind::kJoin) {
        // join_p(A, join_q(B,C)) -> join_q(join_p(A,B), C).
        IrNode* a = p->children[0].get();
        IrNode* b = q->children[0].get();
        IrNode* c = q->children[1].get();
        if (AllIn(pvars, a->schema, b->schema) &&
            JoinEst(p->op, a->fanout, b->fanout) <
                0.75 * JoinEst(q->op, b->fanout, c->fanout)) {
          IrPtr p_owned = std::move(*slot);
          IrPtr q_owned = std::move(p_owned->children[1]);
          IrPtr a_owned = std::move(p_owned->children[0]);
          IrPtr b_owned = std::move(q_owned->children[0]);
          IrPtr c_owned = std::move(q_owned->children[1]);
          p_owned->children[0] = std::move(a_owned);
          p_owned->children[1] = std::move(b_owned);
          q_owned->children[0] = std::move(p_owned);
          q_owned->children[1] = std::move(c_owned);
          *slot = std::move(q_owned);
          return 1;
        }
      }
    }
    for (IrPtr& child : slot->get()->children) {
      int changes = Walk(&child);
      if (changes != 0) return changes;
    }
    return 0;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeJoinReorderPass() {
  return std::make_unique<JoinReorderPass>();
}

}  // namespace mix::mediator::passes
