#include "mediator/browsability.h"

#include "pathexpr/path_expr.h"

namespace mix::mediator {

const char* BrowsabilityName(Browsability b) {
  switch (b) {
    case Browsability::kBoundedBrowsable:
      return "bounded browsable";
    case Browsability::kBrowsable:
      return "browsable";
    case Browsability::kUnbrowsable:
      return "unbrowsable";
  }
  return "?";
}

namespace {

void Worsen(BrowsabilityReport* report, Browsability cls, std::string reason) {
  if (static_cast<int>(cls) > static_cast<int>(report->cls)) {
    report->cls = cls;
  }
  report->reasons.push_back(std::move(reason));
}

void Visit(const PlanNode& node, const BrowsabilityOptions& options,
           BrowsabilityReport* report) {
  std::string reason;
  Browsability cls = ClassifyOperator(node, options.sigma_available, &reason);
  if (cls != Browsability::kBoundedBrowsable) {
    Worsen(report, cls, std::move(reason));
  }
  for (const PlanPtr& c : node.children) Visit(*c, options, report);
}

}  // namespace

Browsability ClassifyOperator(const PlanNode& node, bool sigma_available,
                              std::string* reason) {
  using Kind = PlanNode::Kind;
  std::string why;
  Browsability cls = Browsability::kBoundedBrowsable;
  switch (node.kind) {
    case Kind::kSource:
    case Kind::kConcatenate:
    case Kind::kCreateElement:
    case Kind::kUnion:
    case Kind::kProject:
    case Kind::kWrapList:
    case Kind::kConst:
    case Kind::kRename:
    case Kind::kCachedView:
    case Kind::kTupleDestroy:
      // Structural operators: output navigations map to a bounded number
      // of input navigations (Example 1's q_conc).
      break;
    case Kind::kGetDescendants: {
      auto path = pathexpr::PathExpr::Parse(node.path);
      bool chain = path.ok() && path.value().IsLabelChain();
      if (chain && (node.use_sigma || sigma_available)) {
        // One σ per level retrieves the next match: bounded (Section 2).
        break;
      }
      cls = Browsability::kBrowsable;
      why = "getDescendants[" + node.path +
            "]: sibling scan length depends on the data" +
            (chain ? " (σ would make it bounded)" : "");
      break;
    }
    case Kind::kSelect:
      cls = Browsability::kBrowsable;
      why = "select[" + node.predicate->ToString() +
            "]: scan to the next satisfying binding is unbounded";
      break;
    case Kind::kJoin:
      cls = Browsability::kBrowsable;
      why = "join[" + node.predicate->ToString() +
            "]: inner scans per output binding are unbounded";
      break;
    case Kind::kGroupBy:
      cls = Browsability::kBrowsable;
      why = "groupBy: next_gb/next scans are unbounded";
      break;
    case Kind::kDistinct:
      cls = Browsability::kBrowsable;
      why = "distinct: scan past duplicates is unbounded";
      break;
    case Kind::kOrderBy:
      cls = Browsability::kUnbrowsable;
      why =
          "orderBy: requires the complete input list before the first "
          "result";
      break;
    case Kind::kMaterialize:
      cls = Browsability::kUnbrowsable;
      why = "materialize: intermediate eager step drains its whole input";
      break;
    case Kind::kDifference:
      cls = Browsability::kUnbrowsable;
      why =
          "difference: requires the complete right input before the "
          "first result";
      break;
  }
  if (reason != nullptr) *reason = std::move(why);
  return cls;
}

BrowsabilityReport Classify(const PlanNode& plan,
                            const BrowsabilityOptions& options) {
  BrowsabilityReport report;
  Visit(plan, options, &report);
  return report;
}

}  // namespace mix::mediator
