#include "mediator/view_schema.h"

#include <algorithm>

#include "core/check.h"

namespace mix::mediator {

namespace {

constexpr char kAny[] = "ANY";
constexpr char kText[] = "#text";

/// Shape of a variable's value: a single node, or a list of item nodes
/// (item `repeated` flags already set).
struct Shape {
  bool is_list = false;
  std::unique_ptr<SchemaNode> node;                 ///< !is_list
  std::vector<std::unique_ptr<SchemaNode>> items;   ///< is_list
};

std::unique_ptr<SchemaNode> Leaf(std::string label) {
  auto n = std::make_unique<SchemaNode>();
  n->label = std::move(label);
  return n;
}

/// The list items a value contributes when spliced (concatenate /
/// createElement semantics): a list contributes its items, a single value
/// contributes itself.
std::vector<std::unique_ptr<SchemaNode>> Flatten(Shape shape) {
  if (shape.is_list) return std::move(shape.items);
  std::vector<std::unique_ptr<SchemaNode>> out;
  out.push_back(std::move(shape.node));
  return out;
}

Result<Shape> ShapeOf(const PlanNode& node, const std::string& var);

/// Shape of `var` in the binding stream produced by `node`'s child that
/// binds it.
Result<Shape> ShapeFromInputs(const PlanNode& node, const std::string& var) {
  for (const PlanPtr& c : node.children) {
    auto schema = ComputeSchema(*c);
    if (!schema.ok()) return schema.status();
    if (std::find(schema.value().begin(), schema.value().end(), var) !=
        schema.value().end()) {
      return ShapeOf(*c, var);
    }
  }
  return Status::InvalidArgument("schema inference: variable $" + var +
                                 " not bound below " + PlanKindName(node.kind));
}

Result<Shape> ShapeOf(const PlanNode& node, const std::string& var) {
  using Kind = PlanNode::Kind;
  switch (node.kind) {
    case Kind::kSource:
    case Kind::kGetDescendants:
      if ((node.kind == Kind::kSource && var == node.var) ||
          (node.kind == Kind::kGetDescendants && var == node.out_var)) {
        // Source-dependent content: the wildcard.
        Shape s;
        s.node = Leaf(kAny);
        return s;
      }
      if (node.kind == Kind::kSource) {
        return Status::InvalidArgument("schema inference: unknown variable $" +
                                       var);
      }
      return ShapeFromInputs(node, var);

    case Kind::kConst:
      if (var == node.out_var) {
        Shape s;
        s.node = Leaf(kText);
        return s;
      }
      return ShapeFromInputs(node, var);

    case Kind::kWrapList:
      if (var == node.out_var) {
        auto inner = ShapeOf(*node.children[0], node.x_var);
        if (!inner.ok()) return inner.status();
        Shape s;
        s.is_list = true;
        s.items = Flatten(std::move(inner).ValueOrDie());
        return s;
      }
      return ShapeFromInputs(node, var);

    case Kind::kGroupBy:
      if (var == node.out_var) {
        auto inner = ShapeOf(*node.children[0], node.grouped_var);
        if (!inner.ok()) return inner.status();
        Shape s;
        s.is_list = true;
        for (auto& item : Flatten(std::move(inner).ValueOrDie())) {
          item->repeated = true;
          s.items.push_back(std::move(item));
        }
        return s;
      }
      return ShapeFromInputs(node, var);

    case Kind::kConcatenate:
      if (var == node.out_var) {
        auto x = ShapeOf(*node.children[0], node.x_var);
        if (!x.ok()) return x.status();
        auto y = ShapeOf(*node.children[0], node.y_var);
        if (!y.ok()) return y.status();
        Shape s;
        s.is_list = true;
        for (auto& item : Flatten(std::move(x).ValueOrDie())) {
          s.items.push_back(std::move(item));
        }
        for (auto& item : Flatten(std::move(y).ValueOrDie())) {
          s.items.push_back(std::move(item));
        }
        return s;
      }
      return ShapeFromInputs(node, var);

    case Kind::kCreateElement:
      if (var == node.out_var) {
        auto ch = ShapeOf(*node.children[0], node.x_var);
        if (!ch.ok()) return ch.status();
        Shape s;
        s.node = Leaf(node.label_is_constant ? node.label : kAny);
        s.node->children = Flatten(std::move(ch).ValueOrDie());
        return s;
      }
      return ShapeFromInputs(node, var);

    case Kind::kSelect:
    case Kind::kJoin:
    case Kind::kOrderBy:
    case Kind::kMaterialize:
    case Kind::kDistinct:
    case Kind::kProject:
    case Kind::kDifference:
      return ShapeFromInputs(node, var);

    case Kind::kRename:
      return ShapeOf(*node.children[0],
                     var == node.out_var ? node.x_var : var);

    case Kind::kUnion:
      // Both branches have the same schema; their shapes may differ — a
      // faithful answer would be the disjunction, we approximate with the
      // left branch (documented limitation).
      return ShapeOf(*node.children[0], var);

    case Kind::kCachedView:
      return Status::InvalidArgument(
          "schema inference: cachedView snapshots carry no source schema");
    case Kind::kTupleDestroy:
      return Status::InvalidArgument(
          "schema inference: tupleDestroy is not a binding-stream node");
  }
  return Status::Internal("unknown plan kind");
}

void Render(const SchemaNode& n, std::string* out) {
  *out += n.label;
  if (!n.children.empty()) {
    *out += "(";
    bool first = true;
    for (const auto& c : n.children) {
      if (!first) *out += ",";
      first = false;
      Render(*c, out);
    }
    *out += ")";
  }
  if (n.repeated) *out += "*";
}

}  // namespace

std::string SchemaNode::ToString() const {
  std::string out;
  Render(*this, &out);
  return out;
}

Result<std::unique_ptr<SchemaNode>> InferAnswerSchema(const PlanNode& plan) {
  if (plan.kind != PlanNode::Kind::kTupleDestroy) {
    return Status::InvalidArgument("plan root must be tupleDestroy");
  }
  std::string var = plan.var;
  if (var.empty()) {
    auto schema = ComputeSchema(*plan.children[0]);
    if (!schema.ok()) return schema.status();
    if (schema.value().size() != 1) {
      return Status::InvalidArgument(
          "schema inference: ambiguous tupleDestroy variable");
    }
    var = schema.value()[0];
  }
  auto shape = ShapeOf(*plan.children[0], var);
  if (!shape.ok()) return shape.status();
  Shape s = std::move(shape).ValueOrDie();
  if (s.is_list || s.node == nullptr) {
    return Status::InvalidArgument(
        "schema inference: the answer root is not a single element");
  }
  if (s.node->label == kAny) {
    return Status::InvalidArgument(
        "schema inference: the answer root's shape depends on the sources");
  }
  return std::move(s.node);
}

}  // namespace mix::mediator
