// Navigational-complexity analysis (paper Section 2, Def. 2).
//
// Classifies a plan by the guarantee a lazy mediator for it can give about
// the number of source navigations needed per client navigation:
//
//   * bounded browsable — there is a function f with |source navigation|
//     ≤ f(|client navigation|), independent of the data (Example 1's
//     concatenation view);
//   * (unbounded) browsable — a prefix of the answer may be computable from
//     a prefix of the input, but no data-independent bound exists
//     (label-selection views);
//   * unbrowsable — some client navigation forces access to at least one
//     input list in its entirety (reordering by an arithmetic attribute).
//
// The classification depends on the available command set NC: with the
// sibling-selection command σ, a label-chain getDescendants becomes
// bounded browsable (end of Section 2) — expose that through
// `sigma_available`.
#ifndef MIX_MEDIATOR_BROWSABILITY_H_
#define MIX_MEDIATOR_BROWSABILITY_H_

#include <string>
#include <vector>

#include "mediator/plan.h"

namespace mix::mediator {

enum class Browsability {
  kBoundedBrowsable = 0,
  kBrowsable = 1,
  kUnbrowsable = 2,
};

const char* BrowsabilityName(Browsability b);

struct BrowsabilityReport {
  Browsability cls = Browsability::kBoundedBrowsable;
  /// One line per operator that caused a (de)classification.
  std::vector<std::string> reasons;
};

struct BrowsabilityOptions {
  /// Sources answer σ natively (the extended command set of Section 2).
  bool sigma_available = false;
};

BrowsabilityReport Classify(const PlanNode& plan,
                            const BrowsabilityOptions& options);

/// Single-operator classification: the browsability contribution of `node`
/// alone (children are NOT visited). `sigma_available` says whether the
/// source feeding this operator's navigations answers σ natively — the
/// optimizer IR resolves it per source from wrapper capabilities rather
/// than globally. On a worsening result, `*reason` (if non-null) receives
/// the explanatory line that Classify would have recorded.
Browsability ClassifyOperator(const PlanNode& node, bool sigma_available,
                              std::string* reason);

}  // namespace mix::mediator

#endif  // MIX_MEDIATOR_BROWSABILITY_H_
