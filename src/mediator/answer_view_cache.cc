#include "mediator/answer_view_cache.h"

#include <algorithm>
#include <cstdlib>

#include "xml/materialize.h"

namespace mix::mediator {

namespace {

using Kind = PlanNode::Kind;
using Op = algebra::CompareOp;

/// Label the buffer splices in for holes that exhausted their retries
/// (buffer.h); answers containing it are partial and must not be shared.
constexpr char kUnavailableLabel[] = "#unavailable";

void CollectSources(const PlanNode& n, std::vector<std::string>* out) {
  if (n.kind == Kind::kSource) out->push_back(n.source_name);
  for (const PlanPtr& c : n.children) CollectSources(*c, out);
}

/// The node binding `var` in a binding-stream subtree, or nullptr.
const PlanNode* FindProducer(const PlanNode& n, const std::string& var) {
  switch (n.kind) {
    case Kind::kSource:
    case Kind::kCachedView:
      if (n.var == var) return &n;
      break;
    case Kind::kGetDescendants:
    case Kind::kGroupBy:
    case Kind::kConcatenate:
    case Kind::kCreateElement:
    case Kind::kWrapList:
    case Kind::kConst:
    case Kind::kRename:
      if (n.out_var == var) return &n;
      break;
    default:
      break;
  }
  for (const PlanPtr& c : n.children) {
    if (const PlanNode* p = FindProducer(*c, var)) return p;
  }
  return nullptr;
}

bool Contains(const algebra::VarList& vars, const std::string& v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

/// Same full-literal numeric parse as algebra::CompareAtoms.
bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// (v oi a) ⇒ (v oc b) given cmp = sign(compare(a, b)), for one fixed
/// total order.
bool ImpliesWithOrder(Op oi, Op oc, int cmp) {
  switch (oc) {
    case Op::kEq:
      return oi == Op::kEq && cmp == 0;
    case Op::kNe:
      switch (oi) {
        case Op::kEq:
          return cmp != 0;
        case Op::kNe:
          return cmp == 0;
        case Op::kLt:  // v < a and a <= b  ⇒  v < b  ⇒  v != b
          return cmp <= 0;
        case Op::kLe:
          return cmp < 0;
        case Op::kGt:
          return cmp >= 0;
        case Op::kGe:
          return cmp > 0;
      }
      return false;
    case Op::kLt:
      return (oi == Op::kLt && cmp <= 0) || (oi == Op::kLe && cmp < 0) ||
             (oi == Op::kEq && cmp < 0);
    case Op::kLe:
      return (oi == Op::kLt || oi == Op::kLe || oi == Op::kEq) && cmp <= 0;
    case Op::kGt:
      return (oi == Op::kGt && cmp >= 0) || (oi == Op::kGe && cmp > 0) ||
             (oi == Op::kEq && cmp > 0);
    case Op::kGe:
      return (oi == Op::kGt || oi == Op::kGe || oi == Op::kEq) && cmp >= 0;
  }
  return false;
}

std::vector<ViewPredicate> SortedPreds(std::vector<ViewPredicate> preds) {
  std::sort(preds.begin(), preds.end(),
            [](const ViewPredicate& a, const ViewPredicate& b) {
              if (a.var != b.var) return a.var < b.var;
              if (a.op != b.op) return a.op < b.op;
              return a.constant < b.constant;
            });
  return preds;
}

bool SamePredSet(const std::vector<ViewPredicate>& a,
                 const std::vector<ViewPredicate>& b) {
  return SortedPreds(a) == SortedPreds(b);
}

/// Every cached conjunct implied by some incoming conjunct (Pi ⇒ Pc).
bool AllImplied(const std::vector<ViewPredicate>& cached,
                const std::vector<ViewPredicate>& incoming) {
  for (const ViewPredicate& want : cached) {
    bool ok = false;
    for (const ViewPredicate& have : incoming) {
      if (PredicateImplies(have, want)) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

/// Serving plan for an exact match: replay the snapshot document.
PlanPtr BuildDocServingPlan(const ViewShape& shape) {
  std::string var = shape.create_out.empty() ? "view" : shape.create_out;
  return PlanNode::TupleDestroy(
      PlanNode::CachedView(kAnswerViewSourceName, var, /*children=*/false),
      var);
}

/// Serving plan for a predicate-subsumed match: re-filter the snapshot
/// root's children with the FULL incoming select chain, then rebuild the
/// crown with the incoming plan's own variable names.
PlanPtr BuildChildrenServingPlan(const ViewShape& shape) {
  PlanPtr inner = PlanNode::CachedView(kAnswerViewSourceName,
                                       shape.grouped_var, /*children=*/true);
  for (auto it = shape.preds.rbegin(); it != shape.preds.rend(); ++it) {
    inner = PlanNode::Select(std::move(inner),
                             algebra::BindingPredicate::VarConst(
                                 it->var, it->op, it->constant));
  }
  inner = PlanNode::GroupBy(std::move(inner), {}, shape.grouped_var,
                            shape.group_out);
  inner = PlanNode::CreateElement(std::move(inner), /*label_is_constant=*/true,
                                  shape.root_label, shape.group_out,
                                  shape.create_out);
  return PlanNode::TupleDestroy(std::move(inner), shape.create_out);
}

}  // namespace

bool PredicateImplies(const ViewPredicate& have, const ViewPredicate& want) {
  if (have.var != want.var) return false;
  double na = 0;
  double nb = 0;
  bool have_num = ParseNumber(have.constant, &na);
  bool want_num = ParseNumber(want.constant, &nb);
  // Mixed numeric-ness: a value that parses as a number compares
  // numerically against one constant and lexicographically against the
  // other — no single order covers both, so claim nothing.
  if (have_num != want_num) return false;
  int raw = have.constant.compare(want.constant);
  int lex = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
  if (!have_num) return ImpliesWithOrder(have.op, want.op, lex);
  int num = na < nb ? -1 : (na > nb ? 1 : 0);
  // Numeric values see the numeric order, non-numeric values the
  // lexicographic one; implication must hold under both.
  return ImpliesWithOrder(have.op, want.op, num) &&
         ImpliesWithOrder(have.op, want.op, lex);
}

ViewShape ComputeViewShape(const PlanNode& raw_plan) {
  ViewShape shape;
  if (raw_plan.kind != Kind::kTupleDestroy || raw_plan.children.size() != 1) {
    return shape;
  }
  CollectSources(raw_plan, &shape.sources);
  std::sort(shape.sources.begin(), shape.sources.end());
  shape.sources.erase(
      std::unique(shape.sources.begin(), shape.sources.end()),
      shape.sources.end());

  PlanPtr work = raw_plan.Clone();
  // Strip a transparent project under tupleDestroy: it only narrows the
  // binding schema, and tupleDestroy reads a single variable.
  while (work->children[0]->kind == Kind::kProject) {
    PlanNode* proj = work->children[0].get();
    std::string destroyed = work->var;
    if (destroyed.empty()) {
      if (proj->vars.size() != 1) break;
      destroyed = proj->vars[0];
    }
    if (!Contains(proj->vars, destroyed)) break;
    PlanPtr inner = std::move(proj->children[0]);
    work->children[0] = std::move(inner);
    work->var = destroyed;
  }

  PlanNode* ce = work->children[0].get();
  if (ce->kind == Kind::kCreateElement && ce->label_is_constant &&
      ce->children.size() == 1) {
    PlanNode* gb = ce->children[0].get();
    if (gb->kind == Kind::kGroupBy && gb->vars.empty() &&
        ce->x_var == gb->out_var &&
        (work->var.empty() || work->var == ce->out_var)) {
      // Re-grouping is only sound when the grouped values cannot be list
      // nodes (createElement flattens lists, so a second grouping pass
      // would flatten one level deeper). Accept only plain tree
      // producers; anything else stays exact-match-only.
      const PlanNode* producer =
          FindProducer(*gb->children[0], gb->grouped_var);
      if (producer != nullptr && (producer->kind == Kind::kSource ||
                                  producer->kind == Kind::kGetDescendants ||
                                  producer->kind == Kind::kCreateElement ||
                                  producer->kind == Kind::kConst)) {
        shape.factored = true;
        shape.root_label = ce->label;
        shape.create_out = ce->out_var;
        shape.group_out = gb->out_var;
        shape.grouped_var = gb->grouped_var;
        // Strip the chain of var-constant selects on the grouped var.
        PlanPtr* cur = &gb->children[0];
        while ((*cur)->kind == Kind::kSelect) {
          const algebra::BindingPredicate& p = *(*cur)->predicate;
          if (p.is_var_var() || p.left_var() != gb->grouped_var) break;
          shape.preds.push_back({p.left_var(), p.op(), p.constant()});
          PlanPtr inner = std::move((*cur)->children[0]);
          *cur = std::move(inner);
        }
      }
    }
  }

  shape.base_key = work->ToString();
  shape.valid = true;
  return shape;
}

AnswerViewCache::Match AnswerViewCache::TryMatch(const ViewShape& shape) {
  Match m;
  if (!enabled()) return m;
  std::lock_guard<std::mutex> lock(mu_);
  if (!shape.valid) {
    ++misses_;
    ++rejects_["shape"];
    return m;
  }
  auto range = index_.equal_range(shape.base_key);
  if (range.first == range.second) {
    ++misses_;
    ++rejects_["absent"];
    return m;
  }
  bool saw_pred_mismatch = false;
  for (auto it = range.first; it != range.second; ++it) {
    LruList::iterator entry = it->second;
    const AnswerSnapshot& snap = **entry;
    if (!GenerationsCurrentLocked(snap)) continue;
    if (SamePredSet(snap.shape.preds, shape.preds)) {
      m.snapshot = *entry;
      m.plan = BuildDocServingPlan(shape);
    } else if (shape.factored && snap.shape.factored &&
               AllImplied(snap.shape.preds, shape.preds)) {
      m.snapshot = *entry;
      m.plan = BuildChildrenServingPlan(shape);
    } else {
      saw_pred_mismatch = true;
      continue;
    }
    lru_.splice(lru_.begin(), lru_, entry);
    ++hits_;
    return m;
  }
  ++misses_;
  ++rejects_[saw_pred_mismatch ? "predicate" : "stale"];
  return m;
}

void AnswerViewCache::Publish(
    const ViewShape& shape, const std::vector<SubtreeEntry>& entries,
    const std::map<std::string, int64_t>& pinned_generations) {
  if (!enabled()) return;
  auto reject = [this](const char* reason) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejects_[reason];
  };
  if (!shape.valid) return reject("shape");
  int64_t bytes = 0;
  for (const SubtreeEntry& e : entries) {
    if (e.truncated) return reject("truncated");
    if (e.label.name() == kUnavailableLabel) return reject("degraded");
    bytes += static_cast<int64_t>(e.label.name().size()) + kViewNodeOverheadBytes;
  }
  if (shape.factored && !entries.empty() &&
      entries[0].label.name() != shape.root_label) {
    return reject("shape");
  }
  if (bytes > options_.byte_budget) return reject("budget");

  // Build the snapshot outside the lock; a losing duplicate is dropped.
  auto snap = std::make_shared<AnswerSnapshot>();
  snap->doc = std::make_unique<xml::Document>();
  xml::Node* root = xml::BuildFromSubtreeEntries(entries, snap->doc.get());
  if (root == nullptr) return reject("malformed");
  snap->doc->set_root(root);
  snap->nav = std::make_unique<xml::DocNavigable>(snap->doc.get());
  snap->bytes = bytes;
  snap->shape = shape;
  snap->generations = pinned_generations;

  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& src : shape.sources) {
    auto pinned = pinned_generations.find(src);
    auto current = generations_.find(src);
    int64_t cur = current == generations_.end() ? 0 : current->second;
    if (pinned == pinned_generations.end() || pinned->second != cur) {
      ++rejects_["stale"];
      return;
    }
  }
  auto range = index_.equal_range(shape.base_key);
  for (auto it = range.first; it != range.second; ++it) {
    if (SamePredSet((**it->second).shape.preds, shape.preds)) {
      ++rejects_["duplicate"];
      return;
    }
  }
  while (bytes_ + bytes > options_.byte_budget && !lru_.empty()) {
    DropLocked(std::prev(lru_.end()));
    ++evictions_;
  }
  lru_.push_front(std::move(snap));
  index_.emplace(shape.base_key, lru_.begin());
  bytes_ += bytes;
  ++publishes_;
}

std::map<std::string, int64_t> AnswerViewCache::PinGenerations(
    const std::vector<std::string>& sources) const {
  std::map<std::string, int64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& src : sources) {
    auto it = generations_.find(src);
    out[src] = it == generations_.end() ? 0 : it->second;
  }
  return out;
}

void AnswerViewCache::InvalidateSource(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generations_[source];
  ++invalidations_;
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    const std::vector<std::string>& deps = (**it).shape.sources;
    if (std::find(deps.begin(), deps.end(), source) != deps.end()) {
      DropLocked(it);
    }
    it = next;
  }
}

AnswerViewCache::Stats AnswerViewCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.publishes = publishes_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.bytes = bytes_;
  s.entries = static_cast<int64_t>(lru_.size());
  s.rejects = rejects_;
  return s;
}

bool AnswerViewCache::GenerationsCurrentLocked(
    const AnswerSnapshot& snap) const {
  for (const auto& [src, gen] : snap.generations) {
    auto it = generations_.find(src);
    int64_t cur = it == generations_.end() ? 0 : it->second;
    if (cur != gen) return false;
  }
  return true;
}

void AnswerViewCache::DropLocked(LruList::iterator it) {
  auto range = index_.equal_range((**it).shape.base_key);
  for (auto idx = range.first; idx != range.second; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  bytes_ -= (**it).bytes;
  lru_.erase(it);
}

}  // namespace mix::mediator
