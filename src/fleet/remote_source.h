// Fleet stacking: one mixd instance serving another's virtual view.
//
// The paper's architecture composes: a mediated view is itself an XML
// source, so a mediator can sit on top of other mediators (Fig. 1's
// "mediators of mediators"). Two adapters make that real for the fleet:
//
// * ViewLxpWrapper — the EXPORT side: turns any Navigable (in particular a
//   client::FramedDocument session into another instance's virtual view)
//   into an LxpWrapper, which SessionEnvironment::ExportWrapper then serves
//   over kLxpGetRoot/kLxpFill/kLxpFillMany frames. Hole ids are "v:<n>"
//   handles into an internal table mapping n -> the NodeId whose remaining
//   sibling list the hole stands for (NodeIds are structured terms with no
//   textual parser, so the table — not the id string — carries the
//   position; the table only grows, keeping every handed-out id valid).
//   Fills are deterministic per hole id, so the downstream instance may
//   cache them.
//
// * RemoteLxpSource — the IMPORT side: an owning TcpFrameTransport +
//   FramedLxpWrapper composite. RemoteSourceFactory mints one per session
//   (its own connection, matching the one-stream-per-client transport
//   contract), which is exactly the shape RegisterWrapperFactory wants —
//   registering instance A's exported view as a demand-paged source of
//   instance B is one call:
//
//     env.RegisterWrapperFactory("upstream",
//         fleet::RemoteSourceFactory("127.0.0.1", port_a, "view-uri"),
//         "view-uri");
#ifndef MIX_FLEET_REMOTE_SOURCE_H_
#define MIX_FLEET_REMOTE_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "core/navigable.h"
#include "net/tcp/tcp_transport.h"
#include "service/wire.h"

namespace mix::fleet {

class ViewLxpWrapper : public buffer::LxpWrapper {
 public:
  struct Options {
    /// Sibling elements served per fill. Every element ships as its label
    /// plus (if it has children) one child hole — the restrictive
    /// left-to-right policy, which keeps re-fills of one hole id
    /// byte-deterministic regardless of exploration order.
    int chunk = 8;
  };

  /// `view` is not owned and must outlive the wrapper. The wrapper issues
  /// plain d/r/f navigation against it, so `view` may be a local virtual
  /// answer document or a FramedDocument into a remote one.
  ViewLxpWrapper(Navigable* view, Options options);
  explicit ViewLxpWrapper(Navigable* view) : ViewLxpWrapper(view, Options()) {}

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  int64_t fills_served() const { return fills_served_; }

 protected:
  void SetFillSizeHint(int64_t elements) override {
    fill_size_hint_ = elements;
  }

 private:
  int64_t EffectiveChunk() const;
  /// Registers `node` in the table and returns its "v:<n>" hole id.
  std::string HoleFor(const NodeId& node);

  Navigable* view_;
  Options options_;
  /// Index n of hole "v:<n>" -> first node of the sibling list it refines.
  std::vector<NodeId> pending_;
  int64_t fills_served_ = 0;
  int64_t fill_size_hint_ = 0;
};

/// An upstream instance's exported view as a self-contained LxpWrapper: the
/// composite owns its TCP connection and the framed stub over it. One
/// instance per session (connections are single-stream).
class RemoteLxpSource : public buffer::LxpWrapper {
 public:
  RemoteLxpSource(std::unique_ptr<service::wire::FrameTransport> transport,
                  std::string uri);

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  Status TryGetRoot(const std::string& uri, std::string* out) override;
  Status TryFill(const std::string& hole_id,
                 buffer::FragmentList* out) override;
  Status TryFillMany(const std::vector<std::string>& holes,
                     const buffer::FillBudget& budget,
                     buffer::HoleFillList* out) override;

  const Status& last_status() const { return stub_.last_status(); }

 private:
  std::unique_ptr<service::wire::FrameTransport> transport_;
  service::wire::FramedLxpWrapper stub_;
};

/// Session-wrapper factory dialing `host:port` and serving `uri` — the value
/// to hand SessionEnvironment::RegisterWrapperFactory when the source is
/// another mixd across the network.
std::function<std::unique_ptr<buffer::LxpWrapper>()> RemoteSourceFactory(
    std::string host, uint16_t port, std::string uri);

}  // namespace mix::fleet

#endif  // MIX_FLEET_REMOTE_SOURCE_H_
