#include "fleet/router.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "core/check.h"
#include "mediator/plan_cache.h"

namespace mix::fleet {

namespace wire = service::wire;

// ---------------------------------------------------------------------------
// FleetStats

std::string FleetStats::ToString() const {
  std::string s = "fleet{opens=" + std::to_string(opens_routed) +
                  " spills=" + std::to_string(open_spills) +
                  " sheds=" + std::to_string(sheds) +
                  " failovers=" + std::to_string(failovers) +
                  " reopens=" + std::to_string(reopens) +
                  " commands=" + std::to_string(commands) +
                  " replays=" + std::to_string(path_replays) +
                  " ejections=" + std::to_string(health.ejections) +
                  " probes=" + std::to_string(health.probes) +
                  " readmissions=" + std::to_string(health.readmissions) +
                  " load=[";
  for (size_t i = 0; i < sessions_per_backend.size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(sessions_per_backend[i]);
  }
  s += "]}";
  return s;
}

// ---------------------------------------------------------------------------
// SessionRouter

namespace {
std::vector<std::string> Names(const std::vector<SessionRouter::Backend>& bs) {
  std::vector<std::string> names;
  names.reserve(bs.size());
  for (const auto& b : bs) names.push_back(b.name);
  return names;
}
}  // namespace

SessionRouter::SessionRouter(std::vector<Backend> backends, Options options)
    : backends_(std::move(backends)),
      options_(options),
      ring_(Names(backends_), options.virtual_nodes),
      health_(backends_.size(), options.health) {
  MIX_CHECK_MSG(!backends_.empty(), "SessionRouter needs at least one backend");
  load_.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    load_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

int64_t SessionRouter::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SessionRouter::LoadAdmits(size_t backend) const {
  // Fair share over *healthy* backends: ejecting a peer raises everyone
  // else's cap, so its sessions have somewhere to land.
  size_t alive = health_.healthy_count();
  if (alive == 0) alive = 1;
  int64_t total = total_load_.load(std::memory_order_relaxed);
  double cap = std::ceil(options_.bounded_load_factor *
                         static_cast<double>(total + 1) /
                         static_cast<double>(alive));
  if (cap < static_cast<double>(options_.min_load_cap)) {
    cap = static_cast<double>(options_.min_load_cap);
  }
  if (cap < 1.0) cap = 1.0;
  return static_cast<double>(load_[backend]->load(std::memory_order_relaxed)) <
         cap;
}

void SessionRouter::AddLoad(size_t backend, int64_t delta) {
  load_[backend]->fetch_add(delta, std::memory_order_relaxed);
  total_load_.fetch_add(delta, std::memory_order_relaxed);
}

std::unique_ptr<wire::FrameTransport> SessionRouter::MakeTransport() {
  return std::make_unique<RoutedSessionTransport>(this);
}

Result<std::unique_ptr<client::FramedDocument>> SessionRouter::OpenDocument(
    const std::string& xmas_text, int64_t deadline_ns) {
  return client::FramedDocument::Open(MakeTransport(), xmas_text, deadline_ns);
}

Result<std::unique_ptr<client::FramedDocument>> SessionRouter::OpenDocument(
    const std::string& xmas_text, int64_t deadline_ns,
    const net::RetryOptions& retry) {
  return client::FramedDocument::Open(MakeTransport(), xmas_text, deadline_ns,
                                      retry);
}

FleetStats SessionRouter::stats() const {
  FleetStats s;
  s.opens_routed = opens_routed_.load(std::memory_order_relaxed);
  s.open_spills = open_spills_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.reopens = reopens_.load(std::memory_order_relaxed);
  s.commands = commands_.load(std::memory_order_relaxed);
  s.path_replays = path_replays_.load(std::memory_order_relaxed);
  s.sessions_per_backend.reserve(load_.size());
  for (const auto& l : load_) {
    s.sessions_per_backend.push_back(l->load(std::memory_order_relaxed));
  }
  s.health = health_.stats();
  return s;
}

// ---------------------------------------------------------------------------
// RoutedSessionTransport

RoutedSessionTransport::RoutedSessionTransport(SessionRouter* router)
    : router_(router), conns_(router->backend_count()) {}

RoutedSessionTransport::~RoutedSessionTransport() {
  // A client that drops its document without Close leaves sessions to the
  // backends' TTL sweeps, but the router's load accounting must not leak.
  for (const auto& [id, bind] : sessions_) {
    (void)id;
    router_->AddLoad(bind.backend, -1);
  }
}

wire::FrameTransport* RoutedSessionTransport::Conn(size_t backend) {
  if (!conns_[backend]) conns_[backend] = router_->backends_[backend].connect();
  return conns_[backend].get();
}

Result<std::string> RoutedSessionTransport::RoundTrip(
    const std::string& request_bytes) {
  Result<wire::Frame> decoded = wire::DecodeFrame(request_bytes);
  if (!decoded.ok()) {
    // Mirror a server: protocol garbage is answered, not dropped.
    return wire::EncodeFrame(wire::Frame::Error(decoded.status()));
  }
  wire::Frame& request = decoded.value();
  switch (request.type) {
    case wire::MsgType::kOpen:
      return HandleOpen(std::move(request));
    case wire::MsgType::kLxpGetRoot:
    case wire::MsgType::kLxpFill:
    case wire::MsgType::kLxpFillMany:
      return HandleLxp(request);
    case wire::MsgType::kMetrics:
      return HandleMetrics(request);
    case wire::MsgType::kClose:
    case wire::MsgType::kRoot:
    case wire::MsgType::kDown:
    case wire::MsgType::kRight:
    case wire::MsgType::kFetch:
    case wire::MsgType::kSelectSibling:
    case wire::MsgType::kNthChild:
    case wire::MsgType::kDownAll:
    case wire::MsgType::kNextSiblings:
    case wire::MsgType::kFetchSubtree:
      return HandleSession(std::move(request));
    default:
      return wire::EncodeFrame(wire::Frame::Error(Status::InvalidArgument(
          "router: response-typed frame in request position")));
  }
}

Status RoutedSessionTransport::PlaceOpen(const wire::Frame& open_frame,
                                         const std::vector<size_t>& preference,
                                         bool counting_load, size_t exclude,
                                         size_t* backend,
                                         uint64_t* backend_session) {
  int64_t now = SessionRouter::NowNs();
  Status last = Status::Unavailable("fleet: no admittable backend");
  for (size_t b : preference) {
    if (b == exclude) continue;
    // Load first: the check consumes nothing, while a half-open Admit hands
    // out the probe slot — a backend must never be probed just to be skipped.
    if (counting_load && !router_->LoadAdmits(b)) {
      router_->open_spills_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!router_->health_.Admit(b, now)) {
      router_->open_spills_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    wire::FrameTransport* conn = Conn(b);
    if (conn == nullptr) {
      router_->health_.ReportFailure(b, now);
      last = Status::Unavailable("fleet: backend " +
                                 router_->backend_name(b) + " unreachable");
      continue;
    }
    if (!counting_load) {
      router_->reopens_.fetch_add(1, std::memory_order_relaxed);
    }
    Result<wire::Frame> resp = wire::Call(conn, open_frame);
    if (!resp.ok()) {
      router_->health_.ReportFailure(b, now);
      if (resp.status().code() == Status::Code::kDeadlineExceeded) {
        return resp.status();  // the budget is gone everywhere, not just here
      }
      last = resp.status();
      continue;
    }
    const wire::Frame& frame = resp.value();
    if (frame.type == wire::MsgType::kError) {
      Status st = frame.ToStatus();
      router_->health_.ReportSuccess(b);  // it answered; it is alive
      if (st.code() == Status::Code::kUnavailable) {
        // Alive but full (admission/session-table pressure): spill onward.
        router_->open_spills_.fetch_add(1, std::memory_order_relaxed);
        last = st;
        continue;
      }
      return st;  // a bad query is bad on every backend — surface it
    }
    if (frame.type != wire::MsgType::kOpenOk) {
      router_->health_.ReportFailure(b, now);
      last = Status::Internal("fleet: unexpected open response type");
      continue;
    }
    router_->health_.ReportSuccess(b);
    if (counting_load) router_->AddLoad(b, +1);
    *backend = b;
    *backend_session = frame.session;
    return Status::OK();
  }
  return last;
}

Result<std::string> RoutedSessionTransport::HandleOpen(wire::Frame request) {
  // Place by the canonical query key so textual variants of one view
  // co-locate with its warm caches.
  std::vector<size_t> preference = router_->ring_.PreferenceFor(
      mediator::CanonicalXmasKey(request.text));
  // Attach an idempotency token (unless the client brought its own) so a
  // lost open *response* replays onto the live session instead of leaking
  // one. Router-minted tokens are namespaced per router instance.
  if (request.text2.empty()) {
    request.text2 =
        "fleet-" + std::to_string(router_->next_token_.fetch_add(
                       1, std::memory_order_relaxed));
  }
  size_t backend = 0;
  uint64_t backend_session = 0;
  Status placed = PlaceOpen(request, preference, /*counting_load=*/true,
                            /*exclude=*/static_cast<size_t>(-1), &backend,
                            &backend_session);
  if (!placed.ok()) {
    if (placed.code() == Status::Code::kUnavailable) {
      router_->sheds_.fetch_add(1, std::memory_order_relaxed);
      // Surface as a transport-level Status (not an error frame): the
      // client's RetryOptions treat it as retryable and re-drive the open
      // once a probe readmits a backend.
      return placed;
    }
    return wire::EncodeFrame(wire::Frame::Error(placed));
  }
  uint64_t client_session =
      router_->next_client_session_.fetch_add(1, std::memory_order_relaxed);
  sessions_[client_session] =
      Binding{backend, backend_session, std::move(request)};
  router_->opens_routed_.fetch_add(1, std::memory_order_relaxed);
  wire::Frame ok;
  ok.type = wire::MsgType::kOpenOk;
  ok.session = client_session;
  return wire::EncodeFrame(ok);
}

Result<NodeId> RoutedSessionTransport::DeriveByPath(
    Binding& bind, const std::vector<Step>& path) {
  wire::FrameTransport* conn = Conn(bind.backend);
  if (conn == nullptr) {
    return Status::Unavailable("fleet: backend unreachable during replay");
  }
  wire::Frame req;
  req.type = wire::MsgType::kRoot;
  req.session = bind.backend_session;
  NodeId cur;
  Result<wire::Frame> root = wire::Call(conn, req);
  if (!root.ok()) return root.status();
  if (root.value().type == wire::MsgType::kError) {
    return root.value().ToStatus();
  }
  if (root.value().type != wire::MsgType::kNode || !root.value().flag) {
    return Status::NotFound("fleet: replay found no document root");
  }
  cur = root.value().node;
  for (const Step& step : path) {
    wire::Frame r;
    r.type = step.op;
    r.session = bind.backend_session;
    r.node = cur;
    r.number = step.number;
    r.text2 = step.text2;
    Result<wire::Frame> resp = wire::Call(conn, r);
    if (!resp.ok()) return resp.status();
    const wire::Frame& f = resp.value();
    if (f.type == wire::MsgType::kError) return f.ToStatus();
    if (f.type == wire::MsgType::kNode) {
      if (!f.flag) {
        return Status::NotFound("fleet: replay path no longer resolves");
      }
      cur = f.node;
    } else if (f.type == wire::MsgType::kNodeList) {
      if (step.index >= f.nodes.size()) {
        return Status::NotFound("fleet: replay path no longer resolves");
      }
      cur = f.nodes[step.index];
    } else {
      return Status::Internal("fleet: unexpected replay response type");
    }
  }
  return cur;
}

Result<NodeId> RoutedSessionTransport::TranslateNode(Binding& bind,
                                                     const NodeId& id) {
  if (!id.valid()) return id;
  auto hit = bind.remap.find(id);
  if (hit != bind.remap.end()) return hit->second;
  auto path = bind.paths.find(id);
  if (path == bind.paths.end()) return id;  // not an id this session issued
  Result<NodeId> derived = DeriveByPath(bind, path->second);
  if (!derived.ok()) return derived.status();
  // Memoize both directions of the epoch bridge: the old id now maps here,
  // and the derived id carries the same provenance (so it survives the
  // NEXT failover too).
  bind.remap[id] = derived.value();
  if (derived.value() != id) {
    bind.paths[derived.value()] = path->second;
    bind.remap[derived.value()] = derived.value();
  }
  router_->path_replays_.fetch_add(1, std::memory_order_relaxed);
  return derived.value();
}

void RoutedSessionTransport::RecordProvenance(Binding& bind,
                                              const wire::Frame& request,
                                              const wire::Frame& response) {
  auto remember = [&](const NodeId& id, Step step) {
    std::vector<Step> path;
    if (request.type != wire::MsgType::kRoot) {
      auto base = bind.paths.find(request.node);
      if (base == bind.paths.end()) return;  // untracked base: cannot derive
      path = base->second;
      path.push_back(std::move(step));
    }
    bind.remap[id] = id;
    bind.paths[id] = std::move(path);
  };
  switch (request.type) {
    case wire::MsgType::kRoot:
      if (response.type == wire::MsgType::kNode && response.flag) {
        remember(response.node, Step{});
      }
      break;
    case wire::MsgType::kDown:
    case wire::MsgType::kRight:
    case wire::MsgType::kSelectSibling:
    case wire::MsgType::kNthChild:
      if (response.type == wire::MsgType::kNode && response.flag) {
        remember(response.node,
                 Step{request.type, request.number, request.text2, 0});
      }
      break;
    case wire::MsgType::kDownAll:
    case wire::MsgType::kNextSiblings:
      if (response.type == wire::MsgType::kNodeList) {
        for (size_t i = 0; i < response.nodes.size(); ++i) {
          remember(response.nodes[i],
                   Step{request.type, request.number, request.text2, i});
        }
      }
      break;
    default:
      break;  // kFetch / kFetchSubtree return no node ids
  }
}

Result<std::string> RoutedSessionTransport::HandleSession(wire::Frame request) {
  auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    return wire::EncodeFrame(wire::Frame::Error(Status::NotFound(
        "fleet: unknown session " + std::to_string(request.session))));
  }
  uint64_t client_session = request.session;

  if (request.type == wire::MsgType::kClose) {
    Binding bind = it->second;
    sessions_.erase(it);
    router_->AddLoad(bind.backend, -1);
    wire::FrameTransport* conn = Conn(bind.backend);
    if (conn != nullptr) {
      request.session = bind.backend_session;
      Result<wire::Frame> resp = wire::Call(conn, request);
      if (resp.ok() && resp.value().type != wire::MsgType::kError) {
        router_->health_.ReportSuccess(bind.backend);
      }
    }
    // The client's session is gone either way; a backend that missed the
    // close will TTL-evict it.
    wire::Frame ok;
    ok.type = wire::MsgType::kCloseOk;
    ok.session = client_session;
    return wire::EncodeFrame(ok);
  }

  router_->commands_.fetch_add(1, std::memory_order_relaxed);

  // The failover loop: forward; on a retryable transport failure, report it,
  // rebind the session onto the next admitted candidate (re-Open with a
  // FRESH token — a different backend means a genuinely new session), and
  // let RetryPolicy re-drive the command. Node-ids are self-describing, so
  // the re-issued command answers byte-identically wherever it lands.
  wire::Frame response;
  bool reopened_here = false;  // one transparent same-backend re-open per cmd
  net::RetryPolicy policy(router_->options_.retry, 0x666c656574726f75ull);
  net::RetryPolicy::Outcome outcome = policy.Run(
      [&]() -> Status {
        Binding& bind = sessions_[client_session];
        wire::FrameTransport* conn = Conn(bind.backend);
        int64_t now = SessionRouter::NowNs();
        if (conn == nullptr) {
          router_->health_.ReportFailure(bind.backend, now);
          Rebind(client_session);
          return Status::Unavailable("fleet: backend unreachable");
        }
        wire::Frame forward = request;
        forward.session = bind.backend_session;
        // Bridge epochs: an id minted before the last re-open names nothing
        // on the current session — re-derive it from its recorded path.
        if (forward.node.valid()) {
          Result<NodeId> mapped = TranslateNode(bind, forward.node);
          if (!mapped.ok()) {
            // Replay talks to the current backend, so its failures follow
            // the same failover discipline as the command itself.
            router_->health_.ReportFailure(bind.backend, now);
            if (net::IsRetryableCode(mapped.status().code())) {
              Rebind(client_session);
            }
            return mapped.status();
          }
          forward.node = mapped.value();
        }
        Result<wire::Frame> resp = wire::Call(conn, forward);
        if (!resp.ok()) {
          router_->health_.ReportFailure(bind.backend, now);
          if (net::IsRetryableCode(resp.status().code())) {
            Rebind(client_session);  // best effort; next attempt re-issues
          }
          return resp.status();
        }
        const wire::Frame& frame = resp.value();
        if (frame.type == wire::MsgType::kError &&
            frame.ToStatus().code() == Status::Code::kNotFound &&
            !reopened_here) {
          // The backend is alive but the session is gone (TTL eviction or a
          // restart). Re-open in place — same backend, same saved frame; if
          // the old open's token still maps to a live session this
          // re-attaches, otherwise it opens fresh — and re-issue once.
          reopened_here = true;
          router_->health_.ReportSuccess(bind.backend);
          router_->reopens_.fetch_add(1, std::memory_order_relaxed);
          Result<wire::Frame> reopen = wire::Call(conn, bind.open_frame);
          if (reopen.ok() && reopen.value().type == wire::MsgType::kOpenOk) {
            bind.backend_session = reopen.value().session;
            // New epoch: the revived session minted fresh ids, so cached
            // translations are stale (path replay rebuilds them lazily).
            bind.remap.clear();
            return Status::Unavailable("fleet: session re-opened, re-issue");
          }
          response = frame;  // could not revive: surface the kNotFound
          return Status::OK();
        }
        if (frame.type != wire::MsgType::kError) {
          router_->health_.ReportSuccess(bind.backend);
        }
        response = frame;
        return Status::OK();
      },
      /*clock=*/nullptr, /*deadline_ns=*/-1);
  if (!outcome.status.ok()) {
    return outcome.status;  // transport-level: every candidate exhausted
  }
  if (response.type != wire::MsgType::kError) {
    // Keyed off the ORIGINAL (client-held) base id, whatever epoch the
    // command actually executed in.
    RecordProvenance(sessions_[client_session], request, response);
  }
  response.session = client_session;
  return wire::EncodeFrame(response);
}

void RoutedSessionTransport::Rebind(uint64_t client_session) {
  auto it = sessions_.find(client_session);
  if (it == sessions_.end()) return;
  Binding& bind = it->second;
  size_t failed = bind.backend;
  std::vector<size_t> preference = router_->ring_.PreferenceFor(
      mediator::CanonicalXmasKey(bind.open_frame.text));
  // A new backend is a new session: mint a fresh token so the replayed open
  // cannot collide with the dead backend's (possibly still-live) entry.
  wire::Frame reopen = bind.open_frame;
  reopen.text2 = "fleet-" + std::to_string(router_->next_token_.fetch_add(
                                1, std::memory_order_relaxed));
  size_t backend = 0;
  uint64_t backend_session = 0;
  Status placed = PlaceOpen(reopen, preference, /*counting_load=*/false,
                            /*exclude=*/failed, &backend, &backend_session);
  if (!placed.ok()) return;  // stay bound; the retry loop surfaces the error
  router_->AddLoad(failed, -1);
  router_->AddLoad(backend, +1);
  router_->failovers_.fetch_add(1, std::memory_order_relaxed);
  bind.backend = backend;
  bind.backend_session = backend_session;
  bind.open_frame = std::move(reopen);
  // New epoch: every id the client holds is foreign to the new session.
  // Provenance paths survive; cached translations do not.
  bind.remap.clear();
}

Result<std::string> RoutedSessionTransport::HandleLxp(
    const wire::Frame& request) {
  // LXP serving is stateless per command (holes name their own positions),
  // so URIs route like sessions do — hashed, health-walked — but without a
  // binding: any candidate that answers is correct.
  std::vector<size_t> preference =
      router_->ring_.PreferenceFor(request.text);
  Status last = Status::Unavailable("fleet: no admittable backend");
  int64_t now = SessionRouter::NowNs();
  for (size_t b : preference) {
    if (!router_->health_.Admit(b, now)) continue;
    wire::FrameTransport* conn = Conn(b);
    if (conn == nullptr) {
      router_->health_.ReportFailure(b, now);
      continue;
    }
    Result<std::string> resp = conn->RoundTrip(wire::EncodeFrame(request));
    if (!resp.ok()) {
      router_->health_.ReportFailure(b, now);
      last = resp.status();
      continue;
    }
    router_->health_.ReportSuccess(b);
    return resp;
  }
  router_->sheds_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Result<std::string> RoutedSessionTransport::HandleMetrics(
    const wire::Frame& request) {
  std::string text;
  int64_t now = SessionRouter::NowNs();
  for (size_t b = 0; b < router_->backend_count(); ++b) {
    if (router_->health_.state(b) != BackendState::kHealthy) continue;
    wire::FrameTransport* conn = Conn(b);
    if (conn == nullptr) continue;
    Result<wire::Frame> resp = wire::Call(conn, request);
    if (!resp.ok()) {
      router_->health_.ReportFailure(b, now);
      continue;
    }
    if (resp.value().type == wire::MsgType::kMetricsText) {
      text += resp.value().text;
      if (!text.empty() && text.back() != '\n') text += "\n";
    }
  }
  text += router_->stats().ToString();
  wire::Frame out;
  out.type = wire::MsgType::kMetricsText;
  out.text = std::move(text);
  return wire::EncodeFrame(out);
}

}  // namespace mix::fleet
