#include "fleet/remote_source.h"

#include <algorithm>
#include <utility>

#include "core/status.h"

namespace mix::fleet {

// ---------------------------------------------------------------------------
// ViewLxpWrapper

ViewLxpWrapper::ViewLxpWrapper(Navigable* view, Options options)
    : view_(view), options_(options) {
  if (options_.chunk < 1) options_.chunk = 1;
}

int64_t ViewLxpWrapper::EffectiveChunk() const {
  return fill_size_hint_ > 0
             ? std::max<int64_t>(options_.chunk, fill_size_hint_)
             : options_.chunk;
}

std::string ViewLxpWrapper::HoleFor(const NodeId& node) {
  pending_.push_back(node);
  return "v:" + std::to_string(pending_.size() - 1);
}

std::string ViewLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;  // one view per wrapper; the registration names it
  // Root must not touch the sources (Navigable::Root is preprocessing-only),
  // so the root hole is just a handle — the first fill does the work.
  return HoleFor(view_->Root());
}

buffer::FragmentList ViewLxpWrapper::Fill(const std::string& hole_id) {
  buffer::FragmentList out;
  if (hole_id.size() < 3 || hole_id.compare(0, 2, "v:") != 0) return out;
  size_t index = 0;
  for (size_t i = 2; i < hole_id.size(); ++i) {
    char c = hole_id[i];
    if (c < '0' || c > '9') return out;
    index = index * 10 + static_cast<size_t>(c - '0');
  }
  if (index >= pending_.size()) return out;
  ++fills_served_;
  // Re-resolve from the stored NodeId every time: ids are self-describing,
  // so a repeated fill of the same hole replays identically (cacheable).
  std::optional<NodeId> cur = pending_[index];
  int64_t chunk = EffectiveChunk();
  for (int64_t served = 0; cur && served < chunk; ++served) {
    buffer::Fragment elem = buffer::Fragment::Element(view_->Fetch(*cur));
    std::optional<NodeId> child = view_->Down(*cur);
    if (child) elem.children.push_back(buffer::Fragment::Hole(HoleFor(*child)));
    out.push_back(std::move(elem));
    cur = view_->Right(*cur);
  }
  if (cur) out.push_back(buffer::Fragment::Hole(HoleFor(*cur)));
  return out;
}

buffer::HoleFillList ViewLxpWrapper::FillMany(
    const std::vector<std::string>& holes, const buffer::FillBudget& budget) {
  return ChaseFills(holes, budget);
}

// ---------------------------------------------------------------------------
// RemoteLxpSource

RemoteLxpSource::RemoteLxpSource(
    std::unique_ptr<service::wire::FrameTransport> transport, std::string uri)
    : transport_(std::move(transport)),
      stub_(transport_.get(), std::move(uri)) {}

std::string RemoteLxpSource::GetRoot(const std::string& uri) {
  return stub_.GetRoot(uri);
}

buffer::FragmentList RemoteLxpSource::Fill(const std::string& hole_id) {
  return stub_.Fill(hole_id);
}

buffer::HoleFillList RemoteLxpSource::FillMany(
    const std::vector<std::string>& holes, const buffer::FillBudget& budget) {
  return stub_.FillMany(holes, budget);
}

Status RemoteLxpSource::TryGetRoot(const std::string& uri, std::string* out) {
  return stub_.TryGetRoot(uri, out);
}

Status RemoteLxpSource::TryFill(const std::string& hole_id,
                                buffer::FragmentList* out) {
  return stub_.TryFill(hole_id, out);
}

Status RemoteLxpSource::TryFillMany(const std::vector<std::string>& holes,
                                    const buffer::FillBudget& budget,
                                    buffer::HoleFillList* out) {
  return stub_.TryFillMany(holes, budget, out);
}

std::function<std::unique_ptr<buffer::LxpWrapper>()> RemoteSourceFactory(
    std::string host, uint16_t port, std::string uri) {
  return [host = std::move(host), port, uri = std::move(uri)]() {
    net::tcp::TcpTransportOptions options;
    options.host = host;
    options.port = port;
    return std::make_unique<RemoteLxpSource>(
        std::make_unique<net::tcp::TcpFrameTransport>(options), uri);
  };
}

}  // namespace mix::fleet
