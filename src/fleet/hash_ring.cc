#include "fleet/hash_ring.h"

#include <algorithm>

#include "core/check.h"

namespace mix::fleet {

uint64_t FleetHash(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  // Finalizer (murmur3 fmix64). Plain FNV-1a barely avalanches into the
  // high bits on short keys, and ring placement orders by the FULL 64-bit
  // value — without this, vnode points cluster so badly that a 3-backend
  // ring can leave one backend owning nothing.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(const std::vector<std::string>& backend_names,
                   int virtual_nodes)
    : backend_count_(backend_names.size()) {
  MIX_CHECK_MSG(!backend_names.empty(), "HashRing needs at least one backend");
  if (virtual_nodes < 1) virtual_nodes = 1;
  points_.reserve(backend_names.size() * static_cast<size_t>(virtual_nodes));
  for (size_t b = 0; b < backend_names.size(); ++b) {
    for (int v = 0; v < virtual_nodes; ++v) {
      points_.push_back(
          Point{FleetHash(backend_names[b] + "#" + std::to_string(v)), b});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.backend < b.backend;
  });
}

size_t HashRing::Owner(uint64_t key_hash) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->backend;
}

std::vector<size_t> HashRing::Preference(uint64_t key_hash) const {
  std::vector<size_t> order;
  order.reserve(backend_count_);
  std::vector<bool> seen(backend_count_, false);
  auto start = std::lower_bound(
      points_.begin(), points_.end(), key_hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  size_t offset = static_cast<size_t>(start - points_.begin());
  for (size_t i = 0; i < points_.size() && order.size() < backend_count_;
       ++i) {
    size_t b = points_[(offset + i) % points_.size()].backend;
    if (!seen[b]) {
      seen[b] = true;
      order.push_back(b);
    }
  }
  return order;
}

}  // namespace mix::fleet
