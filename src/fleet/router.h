// Fleet tier: a session router fronting N mixd instances.
//
// The paper's mediator is one process; the ROADMAP's north star is a fleet
// of them. This router is the distribution layer in between — the piece the
// Distributed XML-Query network spec (PAPERS.md, cs/0309022) calls the
// query-routing node, adapted to MIX's session model:
//
// * PLACEMENT — sessions are placed by bounded-load consistent hashing on
//   the canonical XMAS key (hash_ring.h): overlapping queries co-locate, so
//   the second client opening a view lands where the plan cache, the shared
//   source-fragment cache, and the answer-view cache are already warm. The
//   load bound (`bounded_load_factor`) keeps one hot query from pinning its
//   entire traffic to a single backend: once the home backend carries more
//   than factor × the fair share of open sessions, placement spills to the
//   next backend in the key's preference order.
//
// * HEALTH — per-backend circuit breakers (health.h). Failures observed by
//   any routed command eject a backend after `failure_threshold`
//   consecutive failures; ejected backends receive a single half-open probe
//   per interval and are readmitted on success.
//
// * FAILOVER — what makes re-placement *correct* is the paper's
//   navigation-driven evaluation itself: every node the client holds was
//   reached by a deterministic command path from the document root, and the
//   router saw every one of those commands. Node-id VALUES are not portable
//   (operator fw-ids embed a plan-instance owner stamp; a fresh session
//   mints fresh ids, and backends reject foreign ones), so the router
//   records, per session, the derivation path of every id it returned —
//   root, then the exact Down/Right/NthChild/... steps — and on rebind
//   re-derives an old id by replaying its path on the new session. Replay
//   is lazy (first command that touches an id) and memoized, so steady
//   state costs one map lookup per command. Because answers are
//   deterministic functions of the sources, the re-derived node is the
//   same node, and navigation continues byte-identically. The re-issue
//   loop is the PR 4 net::RetryPolicy, so failover inherits its
//   bounded-attempt discipline. Lost `Open` *responses* are deduplicated by
//   the backend via the idempotency token the router attaches (kOpen.text2,
//   session.h) — replaying an Open whose answer was lost re-attaches to the
//   live session instead of leaking one. A re-Open on a *different* backend
//   intentionally mints a fresh token: it is a new session (the caveat:
//   effects private to the dead backend's session, like its answer-view
//   publish credit, do not transfer).
//
// The seam is wire::FrameTransport, one level below FramedDocument: a
// RoutedSessionTransport decodes each request, places/remaps/forwards it,
// and hands back an encoded response. Every existing client facade
// (FramedDocument, FramedLxpWrapper) therefore works against a fleet
// unchanged — exactly how the TCP transport slotted in under them in PR 8.
#ifndef MIX_FLEET_ROUTER_H_
#define MIX_FLEET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/node_id.h"

#include "client/framed_document.h"
#include "core/status.h"
#include "fleet/hash_ring.h"
#include "fleet/health.h"
#include "net/fault.h"
#include "service/wire.h"

namespace mix::fleet {

/// Non-owning FrameTransport view — lets tests and in-process fleets hand
/// `MediatorService*` (itself a FrameTransport) to transport factories that
/// must return owned objects.
class BorrowedFrameTransport : public service::wire::FrameTransport {
 public:
  explicit BorrowedFrameTransport(service::wire::FrameTransport* inner)
      : inner_(inner) {}
  Result<std::string> RoundTrip(const std::string& request_bytes) override {
    return inner_->RoundTrip(request_bytes);
  }

 private:
  service::wire::FrameTransport* inner_;
};

/// Router-wide counters (plain-value snapshot).
struct FleetStats {
  int64_t opens_routed = 0;    ///< sessions successfully placed
  int64_t open_spills = 0;     ///< open candidates skipped (health or load)
  int64_t sheds = 0;           ///< requests refused: no admittable backend
  int64_t failovers = 0;       ///< sessions rebound to another backend
  int64_t reopens = 0;         ///< re-Open frames issued while rebinding
  int64_t commands = 0;        ///< session commands forwarded
  int64_t path_replays = 0;    ///< node ids re-derived by path replay
  std::vector<int64_t> sessions_per_backend;
  HealthTracker::Stats health;

  std::string ToString() const;
};

class SessionRouter {
 public:
  struct Backend {
    /// Stable name — the ring position generator AND the operator-facing
    /// id (metrics attribution), so renaming a backend re-shards it.
    std::string name;
    /// Mints a fresh connection to this backend. Called per routed client
    /// transport (connections are cheap; a shared one would serialize
    /// unrelated clients on its stream mutex).
    std::function<std::unique_ptr<service::wire::FrameTransport>()> connect;
  };

  struct Options {
    /// Ring points per backend (placement smoothness).
    int virtual_nodes = 64;
    /// Bounded-load spill threshold: a backend is placeable while its open
    /// sessions stay below max(min_load_cap, ceil(factor * (total + 1) /
    /// healthy backends)). Factor <= 1.0 degenerates toward least-loaded;
    /// large values toward pure consistent hashing.
    double bounded_load_factor = 1.25;
    /// Floor under the load cap. With few sessions the fair-share cap is so
    /// tight it would spill the SECOND session of a shared query off its
    /// cache-affine home; the floor lets small populations co-locate fully,
    /// and the factor takes over once loads reach it.
    int64_t min_load_cap = 8;
    HealthOptions health;
    /// Attempt bound for the per-command failover loop (max_attempts
    /// includes the first try; backoff waits are skipped — the transport's
    /// own latency paces the loop, matching FramedDocument's client
    /// retries). Defaults to 3 attempts: a failover router that never
    /// re-issues would only ever convert failures into errors. Set
    /// max_attempts = 1 to disable re-issues entirely.
    net::RetryOptions retry = DefaultRetry();

    static net::RetryOptions DefaultRetry() {
      net::RetryOptions r;
      r.max_attempts = 3;
      return r;
    }
  };

  SessionRouter(std::vector<Backend> backends, Options options);

  /// A fresh routed transport: one per client document/thread (the routed
  /// transport itself is single-stream, like the TCP transport under it).
  /// The router must outlive every transport it minted.
  std::unique_ptr<service::wire::FrameTransport> MakeTransport();

  /// Router-aware FramedDocument factory: MakeTransport + owning Open.
  /// `retry` (optional) installs client-side command retry ON TOP of the
  /// router's own failover loop — it re-drives commands the router had to
  /// shed while every backend was ejected.
  Result<std::unique_ptr<client::FramedDocument>> OpenDocument(
      const std::string& xmas_text, int64_t deadline_ns = 0);
  Result<std::unique_ptr<client::FramedDocument>> OpenDocument(
      const std::string& xmas_text, int64_t deadline_ns,
      const net::RetryOptions& retry);

  size_t backend_count() const { return backends_.size(); }
  const std::string& backend_name(size_t i) const { return backends_[i].name; }
  HealthTracker& health() { return health_; }
  const HashRing& ring() const { return ring_; }

  FleetStats stats() const;

 private:
  friend class RoutedSessionTransport;

  static int64_t NowNs();

  /// Bounded-load admission: may `backend` take one more session?
  bool LoadAdmits(size_t backend) const;
  void AddLoad(size_t backend, int64_t delta);

  std::vector<Backend> backends_;
  Options options_;
  HashRing ring_;
  HealthTracker health_;

  std::vector<std::unique_ptr<std::atomic<int64_t>>> load_;
  std::atomic<int64_t> total_load_{0};
  std::atomic<uint64_t> next_client_session_{1};
  std::atomic<uint64_t> next_token_{1};

  std::atomic<int64_t> opens_routed_{0};
  std::atomic<int64_t> open_spills_{0};
  std::atomic<int64_t> sheds_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> reopens_{0};
  std::atomic<int64_t> commands_{0};
  std::atomic<int64_t> path_replays_{0};
};

/// The transport MakeTransport returns. Public only for its documentation:
/// use it through the FrameTransport interface.
///
/// Request handling:
///   kOpen       -> place on the ring (health + load filtered), attach an
///                  idempotency token, latch {client id -> backend, backend
///                  session id, open frame}; the client sees a router-minted
///                  session id, so ids never collide across backends.
///   session cmd -> remap to the backend session id and forward; on a
///                  retryable transport failure, eject-aware failover:
///                  re-Open on the next candidate and re-issue (RetryPolicy
///                  bounds the attempts). A backend-reported "unknown
///                  session" (TTL eviction, restart) is survived the same
///                  way, on the same backend first.
///   kClose      -> forward, then unbind and release the load slot.
///   kLxp*       -> stateless: routed by URI hash with the same
///                  health-aware candidate walk, no binding.
///   kMetrics    -> fan out to every healthy backend; the response text
///                  stacks the per-backend snapshots (each prefixed with
///                  its backend_id) and the router's own fleet{...} line.
///
/// Not thread-safe (single client stream, like TcpFrameTransport); mint one
/// per client thread.
class RoutedSessionTransport : public service::wire::FrameTransport {
 public:
  explicit RoutedSessionTransport(SessionRouter* router);
  ~RoutedSessionTransport() override;

  Result<std::string> RoundTrip(const std::string& request_bytes) override;

 private:
  /// One recorded navigation edge: the command that produced a node from
  /// its base node (`index` selects within a kNodeList response).
  struct Step {
    service::wire::MsgType op;
    int64_t number = 0;
    std::string text2;
    size_t index = 0;
  };

  struct Binding {
    size_t backend;
    uint64_t backend_session;
    service::wire::Frame open_frame;  ///< replayable (token included)
    /// Provenance of every node id this session ever returned: the full
    /// command path from the document root. Node-id values are private to
    /// the backend session that minted them, so this — not the id bytes —
    /// is what survives a failover. Grows with the client's working set of
    /// distinct nodes (one short vector per id).
    std::unordered_map<NodeId, std::vector<Step>, NodeIdHash> paths;
    /// Client-held id -> equivalent id on the CURRENT backend session.
    /// Identity entries for ids minted this epoch; cleared on every
    /// re-open (same-backend revival or cross-backend rebind), then
    /// repopulated lazily by path replay.
    std::unordered_map<NodeId, NodeId, NodeIdHash> remap;
  };

  service::wire::FrameTransport* Conn(size_t backend);
  /// Re-derives a node on the binding's current session by replaying its
  /// recorded path from kRoot.
  Result<NodeId> DeriveByPath(Binding& bind, const std::vector<Step>& path);
  /// Maps a client-held id to the current epoch: memoized remap hit, else
  /// lazy path replay, else (untracked id) pass-through.
  Result<NodeId> TranslateNode(Binding& bind, const NodeId& id);
  /// Records the derivation of every node id in `response` (keyed off the
  /// ORIGINAL client-held base id in `request`).
  void RecordProvenance(Binding& bind, const service::wire::Frame& request,
                        const service::wire::Frame& response);
  /// Walks `preference`, health/load-filtering, and opens `open_frame`
  /// (token already attached) on the first backend that takes it. On
  /// success fills *backend/*backend_session. `counting_load` is false for
  /// rebind re-opens (the session already holds its load slot).
  Status PlaceOpen(const service::wire::Frame& open_frame,
                   const std::vector<size_t>& preference, bool counting_load,
                   size_t exclude, size_t* backend, uint64_t* backend_session);
  /// Moves `client_session` off its (just-failed) backend: re-Open the saved
  /// frame under a fresh token on the next admitted candidate, swap the
  /// binding and the load slot. No-op if no candidate takes it (the caller's
  /// retry loop surfaces the error instead).
  void Rebind(uint64_t client_session);

  Result<std::string> HandleOpen(service::wire::Frame request);
  Result<std::string> HandleSession(service::wire::Frame request);
  Result<std::string> HandleLxp(const service::wire::Frame& request);
  Result<std::string> HandleMetrics(const service::wire::Frame& request);

  SessionRouter* router_;
  std::vector<std::unique_ptr<service::wire::FrameTransport>> conns_;
  std::map<uint64_t, Binding> sessions_;  ///< client session id -> binding
};

}  // namespace mix::fleet

#endif  // MIX_FLEET_ROUTER_H_
