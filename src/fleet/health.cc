#include "fleet/health.h"

#include "core/check.h"

namespace mix::fleet {

HealthTracker::HealthTracker(size_t backend_count, HealthOptions options)
    : options_(options), backends_(backend_count) {
  MIX_CHECK_MSG(backend_count > 0, "HealthTracker needs at least one backend");
  if (options_.failure_threshold < 1) options_.failure_threshold = 1;
}

bool HealthTracker::Admit(size_t backend, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Backend& b = backends_[backend];
  switch (b.state) {
    case BackendState::kHealthy:
      return true;
    case BackendState::kEjected:
      if (now_ns - b.ejected_at_ns < options_.probe_interval_ns) return false;
      b.state = BackendState::kHalfOpen;
      ++stats_.probes;
      return true;  // this request IS the probe
    case BackendState::kHalfOpen:
      return false;  // one probe at a time
  }
  return false;
}

void HealthTracker::ReportSuccess(size_t backend) {
  std::lock_guard<std::mutex> lock(mu_);
  Backend& b = backends_[backend];
  if (b.state == BackendState::kHalfOpen) ++stats_.readmissions;
  b.state = BackendState::kHealthy;
  b.consecutive_failures = 0;
}

void HealthTracker::ReportFailure(size_t backend, int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Backend& b = backends_[backend];
  switch (b.state) {
    case BackendState::kHealthy:
      if (++b.consecutive_failures >= options_.failure_threshold) {
        b.state = BackendState::kEjected;
        b.ejected_at_ns = now_ns;
        ++stats_.ejections;
      }
      return;
    case BackendState::kHalfOpen:
      // The probe failed: back to the bench, interval restarted.
      b.state = BackendState::kEjected;
      b.ejected_at_ns = now_ns;
      ++stats_.ejections;
      return;
    case BackendState::kEjected:
      // Late report from a request admitted before ejection; nothing new.
      return;
  }
}

BackendState HealthTracker::state(size_t backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_[backend].state;
}

size_t HealthTracker::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Backend& b : backends_) {
    if (b.state == BackendState::kHealthy) ++n;
  }
  return n;
}

HealthTracker::Stats HealthTracker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mix::fleet
