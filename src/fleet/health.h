// Per-backend health tracking for the mixd fleet: the circuit-breaker
// state machine that decides which ring candidates a router may use.
//
//               N consecutive failures
//   kHealthy ──────────────────────────▶ kEjected
//      ▲                                    │ probe_interval elapses
//      │  probe succeeds                    ▼
//      └──────────────────────────────  kHalfOpen
//                                           │ probe fails
//                                           ▼
//                                        kEjected  (timer restarts)
//
// * kHealthy — requests flow. Any success resets the consecutive-failure
//   count (a backend must fail `failure_threshold` times IN A ROW to be
//   ejected; interleaved successes prove it is alive, just lossy — that is
//   the RetryPolicy's department, not ours).
// * kEjected — no requests at all until `probe_interval_ns` has elapsed.
//   Ejection is what converts "every command pays a connect timeout to a
//   dead peer" into "one failure per interval".
// * kHalfOpen — exactly ONE in-flight probe is admitted (Admit hands out
//   the slot; concurrent calls are refused until the probe reports). A
//   success readmits the backend; a failure re-ejects it and restarts the
//   interval. One probe, not a thundering herd of them.
//
// Thread-safety: all methods are safe from any thread (one mutex; every
// operation is O(1)). Time is passed in by the caller (steady-clock ns) so
// tests drive the state machine with a fake clock.
#ifndef MIX_FLEET_HEALTH_H_
#define MIX_FLEET_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mix::fleet {

struct HealthOptions {
  /// Consecutive failures that eject a backend.
  int failure_threshold = 3;
  /// How long an ejected backend sits out before one probe is allowed.
  int64_t probe_interval_ns = 200'000'000;  // 200 ms
};

enum class BackendState : uint8_t {
  kHealthy = 0,
  kEjected,
  kHalfOpen,  ///< probe in flight
};

class HealthTracker {
 public:
  HealthTracker(size_t backend_count, HealthOptions options);

  /// May a request be sent to `backend` right now? kHealthy: yes.
  /// kEjected: yes exactly once per interval — that call flips the backend
  /// to kHalfOpen and the request doubles as the probe. kHalfOpen: no (a
  /// probe is already out).
  bool Admit(size_t backend, int64_t now_ns);

  /// Outcome reporting. Every admitted request must report exactly one of
  /// these; the half-open probe's report decides readmission.
  void ReportSuccess(size_t backend);
  void ReportFailure(size_t backend, int64_t now_ns);

  BackendState state(size_t backend) const;
  /// Backends currently in kHealthy (diagnostics; racy by nature).
  size_t healthy_count() const;

  struct Stats {
    int64_t ejections = 0;     ///< kHealthy/kHalfOpen -> kEjected
    int64_t probes = 0;        ///< half-open probe slots handed out
    int64_t readmissions = 0;  ///< probes that restored kHealthy
  };
  Stats stats() const;

 private:
  struct Backend {
    BackendState state = BackendState::kHealthy;
    int consecutive_failures = 0;
    int64_t ejected_at_ns = 0;
  };

  HealthOptions options_;
  mutable std::mutex mu_;
  std::vector<Backend> backends_;
  Stats stats_;
};

}  // namespace mix::fleet

#endif  // MIX_FLEET_HEALTH_H_
