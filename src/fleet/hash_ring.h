// Consistent-hash ring for mixd session placement.
//
// The fleet keys sessions on the *canonical XMAS text* of the query
// (mediator::CanonicalXmasKey), not on the client: two clients browsing the
// same virtual view should land on the same backend, where the second one
// hits the plan cache, the shared source-fragment cache, and — after the
// first full materialization — the answer-view cache. Placement therefore
// decides cache temperature, which is why the ring hashes queries rather
// than round-robining connections.
//
// Classic Karger ring with virtual nodes: every backend contributes
// `virtual_nodes` points hashed from "<name>#<replica>"; a key is served by
// the first point clockwise from its own hash. Virtual nodes smooth the
// per-backend share to ±O(1/sqrt(vnodes)) and — more importantly for a
// fleet — make the re-placement caused by removing one backend spread
// evenly over the survivors instead of dumping onto one neighbor.
//
// Hashing is FNV-1a 64: tiny, dependency-free, and — unlike
// std::hash<std::string> — identical across platforms and standard
// libraries, so placement decisions are reproducible in tests and stable
// across the heterogeneous binaries of one fleet (router, bench, example
// all agree where a key lives).
//
// The ring itself is immutable after construction and holds *indices*, not
// health: liveness is the HealthTracker's job and load bounds are the
// router's, both layered on top via Preference() — the full walk order a
// key would try, healthiest-first filtering applied by the caller. This
// keeps placement deterministic (same key -> same preference list, always)
// while failover state changes by the second.
#ifndef MIX_FLEET_HASH_RING_H_
#define MIX_FLEET_HASH_RING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mix::fleet {

/// FNV-1a 64-bit over `bytes` — the fleet's one hash function.
uint64_t FleetHash(const std::string& bytes);

class HashRing {
 public:
  /// `backend_names` must be non-empty and duplicate-free; `virtual_nodes`
  /// points are placed per backend (>= 1 enforced).
  HashRing(const std::vector<std::string>& backend_names, int virtual_nodes);

  size_t backend_count() const { return backend_count_; }

  /// The backend index owning `key_hash` (first ring point clockwise).
  size_t Owner(uint64_t key_hash) const;

  /// Every backend index in the order `key_hash` would try them: the owner
  /// first, then each *distinct* backend in clockwise ring order. The
  /// caller (router) walks this list skipping unhealthy or over-loaded
  /// entries — element 0 is the cache-affine home, element 1 is where the
  /// key's sessions land if the home is ejected, and so on. Size ==
  /// backend_count(), each index exactly once.
  std::vector<size_t> Preference(uint64_t key_hash) const;

  /// Convenience: Preference over the hashed key string.
  std::vector<size_t> PreferenceFor(const std::string& key) const {
    return Preference(FleetHash(key));
  }

 private:
  struct Point {
    uint64_t hash;
    size_t backend;
  };
  /// Sorted by hash; ties broken by backend index so construction order
  /// cannot change placement.
  std::vector<Point> points_;
  size_t backend_count_;
};

}  // namespace mix::fleet

#endif  // MIX_FLEET_HASH_RING_H_
