// MediatorService ("mixd"): the MIX mediator as a concurrent multi-session
// server.
//
// The service accepts framed requests (service/wire.h), admits them into a
// bounded executor (service/executor.h) keyed by session — commands of one
// session run in order, distinct sessions run in parallel — and answers
// with framed responses. Every path a peer can influence degrades to an
// error *frame*, never a crash: malformed frames, unknown sessions, expired
// deadlines and overload all come back as kError with the corresponding
// Status code, and the session (when one exists) stays usable.
//
// Request lifecycle:
//   bytes in -> decode (Status-based) -> admit (kUnavailable if the queue
//   is full) -> dequeue (kDeadlineExceeded if it waited too long) ->
//   execute against the session's virtual document -> encode -> bytes out.
// Frame traffic is charged to a service-wide net::Channel, so the wire
// accounting of the simulated-network experiments extends to the server
// boundary (frames_in/out, bytes, SendBatch-style cost model).
#ifndef MIX_SERVICE_SERVICE_H_
#define MIX_SERVICE_SERVICE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "net/fault.h"
#include "net/sim_net.h"
#include "service/executor.h"
#include "service/metrics.h"
#include "service/prefetcher.h"
#include "service/session.h"
#include "service/wire.h"

namespace mix::service {

class MediatorService : public wire::FrameTransport {
 public:
  struct Options {
    /// Name this instance reports in its metrics snapshot ("" outside a
    /// fleet) — how a router tells the members of a mixd fleet apart.
    std::string backend_id;
    int workers = 4;
    size_t queue_capacity = 256;
    size_t max_sessions = 1024;
    /// Idle session TTL in ns (< 0: never evict).
    int64_t session_idle_ttl_ns = -1;
    /// Cost model for the client<->service link (frame accounting).
    net::ChannelOptions wire_costs;
    /// Byte budget of the shared source-fragment cache (DESIGN.md §4);
    /// 0 disables it — sessions always exchange with their wrappers.
    int64_t source_cache_bytes = 0;
    /// Lock stripes of the fragment cache.
    int source_cache_shards = 8;
    /// Compiled-plan cache capacity in entries; 0 disables (every Open
    /// compiles). On by default: plans are tiny and pure.
    int64_t plan_cache_entries = 64;
    /// Plan-optimizer level applied to every compiled plan (0 = off, the
    /// A/B baseline). Source capabilities are probed once at construction:
    /// shared sources from their registered SourceCapability, wrapper
    /// sources from a probe instance's LxpWrapper::Capability() — with
    /// pushdown honored only for sources registered on the whole-database
    /// "db" view (a source already registered on a query view keeps plain
    /// LXP: its document shape does not match the relational catalog).
    int optimizer_level = 1;
    /// Byte budget of the answer-view cache (DESIGN.md §4 "Answer-view
    /// cache"); 0 disables it — every Open builds a live session. This is
    /// the E16 A/B knob.
    int64_t answer_view_cache_bytes = 0;
    /// Worker threads of the background fill engine (DESIGN.md §4 "Async
    /// fill engine"); 0 disables it — background_prefetch sources keep the
    /// synchronous prefetch path. Pair with source_cache_bytes > 0 so
    /// background fills warm every session, not just the submitter.
    int prefetch_workers = 0;
    /// Per-job chase budget of a background fill (FillBudget::fills).
    int64_t prefetch_fills_per_job = 8;
  };

  /// `env` is not owned and must outlive the service; it must not be
  /// mutated once serving starts.
  MediatorService(const SessionEnvironment* env, Options options);
  ~MediatorService() override;

  /// Asynchronous entry point: decodes, admits, and eventually invokes
  /// `done` with the encoded response frame — on a worker thread for
  /// admitted requests, inline for requests refused at the door (decode
  /// errors, overload). `done` is invoked exactly once.
  void CallAsync(std::string request_bytes,
                 std::function<void(std::string response_bytes)> done);

  /// Synchronous FrameTransport: CallAsync + wait. Safe to call from many
  /// client threads concurrently.
  Result<std::string> RoundTrip(const std::string& request_bytes) override;

  /// Native async FrameTransport: routes through CallAsync, so `done` fires
  /// on a worker thread once the request executes (inline for requests
  /// refused at the door). The service always answers — server-side errors
  /// arrive as kError frames inside an OK Result.
  void RoundTripAsync(std::string request_bytes,
                      wire::FrameTransport::AsyncDone done) override {
    CallAsync(std::move(request_bytes),
              [done = std::move(done)](std::string response_bytes) {
                done(Result<std::string>(std::move(response_bytes)));
              });
  }

  ServiceMetricsSnapshot Metrics() const;

  /// Direct registry access for tests/tools (eviction sweeps, live ids).
  SessionRegistry& registry() { return registry_; }

  /// The shared source-fragment cache (valid whether or not it is enabled;
  /// disabled caches report zero traffic).
  buffer::SourceCache& source_cache() { return source_cache_; }

  /// The answer-view cache (valid whether or not it is enabled).
  mediator::AnswerViewCache& answer_view_cache() { return answer_view_cache_; }

  /// The compiled-plan cache (valid whether or not it is enabled).
  mediator::PlanCache& plan_cache() { return plan_cache_; }

  /// The background fill engine; nullptr when prefetch_workers == 0.
  BackgroundPrefetcher* prefetcher() { return prefetcher_.get(); }

  /// Installs (or clears, with nullptr) the provider of the snapshot's
  /// net{...} section. A real network transport hosting this service (e.g.
  /// net::tcp::TcpServer) registers itself here so remote peers see
  /// listener/connection counters through the ordinary kMetrics frame; the
  /// transport must clear the hook before it is destroyed.
  void SetNetStatsProvider(std::function<NetStats()> provider) {
    std::lock_guard<std::mutex> lock(net_stats_mu_);
    net_stats_provider_ = std::move(provider);
  }

  /// Declares `source` (an environment source name) changed: bumps its
  /// cache generation so sessions opened from now on re-fetch from the
  /// live wrapper, and drops every cached answer view derived from it.
  /// In-flight sessions keep their pinned generation — the same
  /// per-session consistency the E9 freshness semantics define.
  void InvalidateSource(const std::string& source) {
    source_cache_.BumpGeneration(source);
    answer_view_cache_.InvalidateSource(source);
  }

 private:
  /// Runs a decoded request against its session and produces the response.
  /// `deadline` is the executor deadline; its remaining budget becomes the
  /// session's per-command fill deadline (retry backoff cannot outlive it).
  wire::Frame Execute(const wire::Frame& request,
                      std::chrono::steady_clock::time_point deadline);
  wire::Frame ExecuteOpen(const wire::Frame& request);
  wire::Frame ExecuteLxp(const wire::Frame& request);
  wire::Frame ExecuteNavigation(const wire::Frame& request, Session& session);

  /// Serialization keys must not collide between sessions and exported
  /// wrappers; wrappers use the top bit.
  static constexpr uint64_t kWrapperKeyBase = uint64_t{1} << 63;
  /// Opens are admitted under the id they will receive, so concurrent opens
  /// parallelize while each open still occupies one queue slot.
  uint64_t KeyForRequest(const wire::Frame& request, Status* error) const;

  void FinishRequest(const std::string& response_bytes, bool is_error);

  const SessionEnvironment* env_;
  Options options_;
  /// Declared before registry_: sessions hold a pointer to these counters,
  /// so they must outlive every session the registry can destroy.
  net::FaultCounters fault_counters_;
  /// Also before registry_ (session buffers point into the caches).
  buffer::SourceCache source_cache_;
  mediator::PlanCache plan_cache_;
  /// Before registry_: view-served sessions hold snapshot shared_ptrs, but
  /// the registry's Open path also reads the cache directly.
  mediator::AnswerViewCache answer_view_cache_;
  /// Before registry_ too: sessions call the registry's prefetch_dispatch
  /// (which targets this pool) while they live, so the pool must be built
  /// first and torn down after the last session is gone. nullptr when
  /// prefetch_workers == 0.
  std::unique_ptr<BackgroundPrefetcher> prefetcher_;
  SessionRegistry registry_;

  mutable std::mutex net_stats_mu_;
  std::function<NetStats()> net_stats_provider_;

  mutable std::mutex metrics_mu_;
  net::SimClock wire_clock_;
  net::Channel wire_channel_;
  int64_t frames_in_ = 0;
  int64_t frames_out_ = 0;
  int64_t requests_ok_ = 0;
  int64_t requests_error_ = 0;
  LatencyHistogram latency_;

  /// Exported-wrapper serialization keys (uri -> key). Built once in the
  /// constructor from env; const while serving.
  std::map<std::string, uint64_t> wrapper_keys_;

  /// Executor last: destroyed first, so draining tasks can still touch the
  /// registry and metrics above.
  Executor executor_;
};

}  // namespace mix::service

#endif  // MIX_SERVICE_SERVICE_H_
