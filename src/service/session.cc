#include "service/session.h"

#include <algorithm>

#include "buffer/fault_wrapper.h"
#include "mediator/translate.h"

namespace mix::service {

namespace {

/// Non-owning Navigable pass-through. The mediator's view-opener contract
/// hands ownership of the opened view to the instantiated mediator, but a
/// session must keep its overridden-view BufferComponent in buffers_ (for
/// budget/metrics/status plumbing) — so the opener hands out this borrow
/// instead. Every method forwards, batched ones included, so the buffer's
/// vectored overrides stay on the hot path.
class BorrowedNavigable : public Navigable {
 public:
  explicit BorrowedNavigable(Navigable* inner) : inner_(inner) {}

  NodeId Root() override { return inner_->Root(); }
  std::optional<NodeId> Down(const NodeId& p) override {
    return inner_->Down(p);
  }
  std::optional<NodeId> Right(const NodeId& p) override {
    return inner_->Right(p);
  }
  Label Fetch(const NodeId& p) override { return inner_->Fetch(p); }
  Atom FetchAtom(const NodeId& p) override { return inner_->FetchAtom(p); }
  std::optional<NodeId> SelectSibling(const NodeId& p,
                                      const LabelPredicate& pred) override {
    return inner_->SelectSibling(p, pred);
  }
  std::optional<NodeId> NthChild(const NodeId& p, int64_t index) override {
    return inner_->NthChild(p, index);
  }
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override {
    inner_->DownAll(p, out);
  }
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override {
    inner_->NextSiblings(p, limit, out);
  }
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override {
    inner_->FetchSubtree(p, depth, out);
  }

 private:
  Navigable* inner_;
};

/// Collects the optimizer's per-source view URI overrides from a compiled
/// plan: source name -> URI. The wrapper-pushdown pass only rewrites a
/// source it proved unique in the plan, so one URI per name suffices.
void CollectUriOverrides(const mediator::PlanNode& node,
                         std::map<std::string, std::string>* out) {
  if (node.kind == mediator::PlanNode::Kind::kSource &&
      !node.source_uri.empty()) {
    (*out)[node.source_name] = node.source_uri;
  }
  for (const auto& child : node.children) CollectUriOverrides(*child, out);
}

}  // namespace

void SessionEnvironment::RegisterShared(std::string name, Navigable* nav) {
  shared_.push_back(SharedSource{std::move(name), nav, {}});
}

void SessionEnvironment::RegisterShared(std::string name, Navigable* nav,
                                        mediator::SourceCapability capability) {
  shared_.push_back(
      SharedSource{std::move(name), nav, std::move(capability)});
}

void SessionEnvironment::RegisterWrapperFactory(
    std::string name, std::function<std::unique_ptr<buffer::LxpWrapper>()> factory,
    std::string uri, WrapperOptions options) {
  wrappers_.push_back(WrapperSource{std::move(name), std::move(factory),
                                    std::move(uri), options});
}

void SessionEnvironment::ExportWrapper(std::string uri,
                                       buffer::LxpWrapper* wrapper,
                                       bool concurrent) {
  if (concurrent) exported_concurrent_.insert(uri);
  exported_[std::move(uri)] = wrapper;
}

Result<std::shared_ptr<Session>> Session::Build(
    uint64_t id, const SessionEnvironment& env, const std::string& xmas_text,
    net::FaultCounters* fault_counters, buffer::SourceCache* source_cache) {
  Result<mediator::PlanPtr> plan = mediator::CompileXmas(xmas_text);
  if (!plan.ok()) return plan.status();
  return Build(id, env,
               std::shared_ptr<const mediator::PlanNode>(
                   std::move(plan).ValueOrDie()),
               fault_counters, source_cache);
}

Result<std::shared_ptr<Session>> Session::Build(
    uint64_t id, const SessionEnvironment& env,
    std::shared_ptr<const mediator::PlanNode> plan,
    net::FaultCounters* fault_counters, buffer::SourceCache* source_cache,
    std::shared_ptr<const mediator::AnswerSnapshot> view_snapshot,
    const PrefetchDispatch& prefetch_dispatch) {
  // shared_ptr with private constructor: build through a local subclass.
  struct MakeShared : Session {};
  std::shared_ptr<Session> session = std::make_shared<MakeShared>();
  session->id_ = id;
  session->plan_ = std::move(plan);

  if (view_snapshot != nullptr) {
    // Answer-view serving: the rewritten plan references only the pinned
    // snapshot. No wrappers/buffers/channels are built — the dialogue
    // costs zero wrapper exchanges by construction.
    session->view_snapshot_ = std::move(view_snapshot);
    mediator::SourceRegistry sources;
    sources.Register(mediator::kAnswerViewSourceName,
                     session->view_snapshot_->nav.get());
    Result<std::unique_ptr<mediator::LazyMediator>> instance =
        mediator::LazyMediator::Build(*session->plan_, sources);
    if (!instance.ok()) return instance.status();
    session->mediator_ = std::move(instance).ValueOrDie();
    session->document_ = session->mediator_->document();
    session->metrics_.view_served = 1;
    return session;
  }

  // The optimizer may have retargeted a source to a different view of the
  // same wrapper (wrapper predicate pushdown rewrites `db` into a
  // "sql:SELECT ... WHERE ..." URI). The session honors that by opening
  // the wrapper on the overridden URI and answering the plan's opener
  // lookup with a borrow of that buffer.
  std::map<std::string, std::string> uri_overrides;
  CollectUriOverrides(*session->plan_, &uri_overrides);

  mediator::SourceRegistry sources;
  for (const auto& s : env.shared()) {
    sources.Register(s.name, s.nav);
  }
  size_t source_index = 0;
  for (const auto& w : env.wrappers()) {
    auto clock = std::make_unique<net::SimClock>();
    auto channel =
        std::make_unique<net::Channel>(clock.get(), w.options.channel);
    std::unique_ptr<buffer::LxpWrapper> wrapper = w.factory();
    if (w.options.fault.any()) {
      // Interpose the fault injector between buffer and wrapper. The seed
      // mixes in the session id: deterministic per session, independent
      // across sessions (fault isolation tests depend on both).
      auto faulty = std::make_unique<buffer::FaultyLxpWrapper>(
          std::move(wrapper), w.options.fault,
          w.options.fault_seed ^ (id * 0x9e3779b97f4a7c15ull));
      faulty->AttachClock(clock.get());
      wrapper = std::move(faulty);
    }
    buffer::BufferComponent::Options opts;
    opts.channel = channel.get();
    opts.prefetch_per_command = w.options.prefetch_per_command;
    // Prefetch traffic, when enabled, is charged to the same per-session
    // channel: a multi-session server has no separate "think time" lane.
    opts.prefetch_channel = channel.get();
    opts.retry = w.options.retry;
    opts.retry_seed =
        (id * 0x9e3779b97f4a7c15ull) ^ (source_index + 0x72747279ull);
    opts.clock = clock.get();
    opts.shared_counters = fault_counters;
    auto override_it = uri_overrides.find(w.name);
    bool overridden = override_it != uri_overrides.end();
    const std::string& uri = overridden ? override_it->second : w.uri;
    if (source_cache != nullptr && w.options.cache_fills && !overridden) {
      // Pin the source's generation now: the session keeps one consistent
      // snapshot even if the source is invalidated mid-dialogue (E9
      // freshness is per-session, exactly as without the cache).
      //
      // Overridden views bypass the shared cache entirely: their hole ids
      // ("q:<n>:<row>") denote different fragments per view URI, and
      // InvalidateSource bumps the generation of the plain name only — a
      // keyed-by-name cache would serve one view's rows to another, and a
      // mangled key would dodge invalidation. Pushed-down scans ship less
      // data anyway.
      opts.source_cache = source_cache;
      opts.cache_source = w.name;
      opts.cache_generation = source_cache->Generation(w.name);
    }
    opts.max_in_flight = w.options.max_in_flight;
    if (prefetch_dispatch && w.options.background_prefetch && !overridden) {
      // Background fills: prefetch candidates go to the service's worker
      // pool instead of being filled synchronously between commands, and
      // the results come back through the mailbox (spliced at the next
      // command boundary) and the shared cache. Overridden views are
      // excluded for the same hole-id-per-view reason as the cache above.
      auto mailbox = std::make_shared<buffer::PushMailbox>();
      opts.mailbox = mailbox;
      int64_t generation =
          opts.source_cache != nullptr ? opts.cache_generation : 0;
      opts.prefetch_sink = [dispatch = prefetch_dispatch, source = w.name,
                            generation,
                            mailbox](std::vector<std::string> holes) {
        dispatch(source, generation, std::move(holes), mailbox);
      };
    }
    ++source_index;
    auto buffer = std::make_unique<buffer::BufferComponent>(wrapper.get(),
                                                            uri, opts);
    sources.Register(w.name, buffer.get());
    if (overridden) {
      // The plan's source node carries the override, so instantiation will
      // resolve through the opener; it must hand back exactly this buffer
      // (the session's budget/metrics plumbing walks buffers_).
      sources.RegisterOpener(
          w.name,
          [nav = static_cast<Navigable*>(buffer.get()),
           expected = uri](const std::string& open_uri)
              -> std::unique_ptr<Navigable> {
            if (open_uri != expected) return nullptr;
            return std::make_unique<BorrowedNavigable>(nav);
          });
    }
    session->clocks_.push_back(std::move(clock));
    session->channels_.push_back(std::move(channel));
    session->wrappers_.push_back(std::move(wrapper));
    session->buffers_.push_back(std::move(buffer));
  }

  Result<std::unique_ptr<mediator::LazyMediator>> instance =
      mediator::LazyMediator::Build(*session->plan_, sources);
  if (!instance.ok()) return instance.status();
  session->mediator_ = std::move(instance).ValueOrDie();
  session->document_ = session->mediator_->document();
  return session;
}

void Session::RefreshSourceMetrics() {
  metrics_.fills = 0;
  metrics_.source_faults = 0;
  metrics_.source_retries = 0;
  metrics_.source_backoff_ns = 0;
  metrics_.degraded_holes = 0;
  metrics_.cache_hits = 0;
  metrics_.cache_misses = 0;
  metrics_.readahead_issued = 0;
  metrics_.readahead_hits = 0;
  metrics_.readahead_fallbacks = 0;
  metrics_.pushed_applied = 0;
  metrics_.pushed_dropped = 0;
  metrics_.lxp = net::ChannelStats();
  for (const auto& buffer : buffers_) {
    buffer::BufferComponent::Stats s = buffer->stats();
    metrics_.fills += s.fills;
    metrics_.source_faults += s.faults;
    metrics_.source_retries += s.retries;
    metrics_.source_backoff_ns += s.backoff_ns;
    metrics_.degraded_holes += s.degraded_holes;
    metrics_.cache_hits += s.cache_hits;
    metrics_.cache_misses += s.cache_misses;
    metrics_.readahead_issued += s.readahead_issued;
    metrics_.readahead_hits += s.readahead_hits;
    metrics_.readahead_fallbacks += s.readahead_fallbacks;
    metrics_.pushed_applied += s.pushed_applied;
    metrics_.pushed_dropped += s.pushed_dropped;
  }
  for (const auto& channel : channels_) metrics_.lxp += channel->stats();
}

void Session::BeginCommand(int64_t budget_ns) {
  for (const auto& buffer : buffers_) buffer->SetCommandBudgetNs(budget_ns);
}

void Session::EndCommand() {
  for (const auto& buffer : buffers_) buffer->SetCommandBudgetNs(-1);
}

Status Session::TakeSourceStatus() {
  Status first = Status::OK();
  for (const auto& buffer : buffers_) {
    Status s = buffer->TakeStatus();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Result<uint64_t> SessionRegistry::Open(const std::string& xmas_text,
                                       const std::string& idempotency_token) {
  // Hint-gated sweep: the unconditional EvictIdle here used to cost a full
  // O(open sessions) registry scan on EVERY Open — ruinous for an open
  // storm against a big table. MaybeEvictIdle's early-out skips the scan
  // unless some session could actually have expired.
  MaybeEvictIdle();
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idempotency_token.empty()) {
      // Replay fast path: a live session already opened under this token
      // is THE answer — the first attempt's response was lost in flight,
      // not its effect.
      auto tok = tokens_.find(idempotency_token);
      if (tok != tokens_.end()) {
        auto live = sessions_.find(tok->second);
        if (live != sessions_.end()) {
          live->second->Touch(NowNs());
          ++counters_.open_replays;
          return tok->second;
        }
        tokens_.erase(tok);
      }
    }
    if (sessions_.size() >= options_.max_sessions) {
      return Status::Unavailable(
          "session table full (" + std::to_string(options_.max_sessions) +
          " open)");
    }
    id = next_id_++;
  }
  // Compile/instantiate — and fill the plan cache — outside the registry
  // lock: opens of different sessions proceed in parallel on different
  // workers, and one slow compile cannot stall unrelated Opens
  // (ConcurrentOpensOverlap in service_test pins this down).
  std::shared_ptr<const mediator::PlanNode> plan;
  int64_t plan_rewrites = 0;
  mediator::ViewShape view_shape;
  if (options_.plan_cache != nullptr) {
    Result<std::shared_ptr<const mediator::PlanCache::Compiled>> cached =
        options_.plan_cache->GetOrCompileEntry(xmas_text);
    if (!cached.ok()) return cached.status();
    plan = cached.value()->plan;
    plan_rewrites = cached.value()->report.total();
    view_shape = cached.value()->view_shape;
  } else {
    Result<mediator::PlanPtr> compiled = mediator::CompileXmas(xmas_text);
    if (!compiled.ok()) return compiled.status();
    mediator::PlanPtr owned = std::move(compiled).ValueOrDie();
    // The view descriptor must come from the RAW plan — wrapper pushdown
    // hides predicates inside source URIs below.
    if (options_.answer_view_cache != nullptr) {
      view_shape = mediator::ComputeViewShape(*owned);
    }
    if (options_.optimizer.level > 0) {
      // Optimizer failure is not an Open failure: OptimizePlan leaves the
      // plan untouched on error and the raw plan is always correct.
      Result<mediator::passes::OptimizeReport> report =
          mediator::passes::OptimizePlan(&owned, options_.optimizer);
      if (report.ok()) plan_rewrites = report.value().total();
    }
    plan = std::shared_ptr<const mediator::PlanNode>(std::move(owned));
  }
  // view_match: test the descriptor for subsumption against the cached
  // answer views; on a hit the session is built over the snapshot instead
  // of live wrappers.
  std::shared_ptr<const mediator::AnswerSnapshot> snapshot;
  if (options_.answer_view_cache != nullptr &&
      options_.answer_view_cache->enabled()) {
    mediator::AnswerViewCache::Match match =
        options_.answer_view_cache->TryMatch(view_shape);
    if (match.snapshot != nullptr) {
      snapshot = std::move(match.snapshot);
      plan = std::shared_ptr<const mediator::PlanNode>(std::move(match.plan));
    }
  }
  Result<std::shared_ptr<Session>> session =
      Session::Build(id, *env_, std::move(plan), options_.fault_counters,
                     options_.source_cache, snapshot,
                     options_.prefetch_dispatch);
  if (!session.ok()) return session.status();
  session.value()->metrics().plan_rewrites = plan_rewrites;
  if (snapshot == nullptr && options_.answer_view_cache != nullptr &&
      options_.answer_view_cache->enabled() && view_shape.valid) {
    // This session may later donate its answer: pin the answer-view
    // generations of its sources now, mirroring the source-cache pin.
    std::map<std::string, int64_t> pins =
        options_.answer_view_cache->PinGenerations(view_shape.sources);
    session.value()->SetPublishableShape(std::move(view_shape),
                                         std::move(pins));
  }
  int64_t now = NowNs();
  session.value()->Touch(now);
  session.value()->set_open_token(idempotency_token);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idempotency_token.empty()) {
      // Two replays of one token can race past the fast path above and
      // both build; first insert wins, the loser's session is discarded
      // (destroyed outside the lock when `session` leaves scope).
      auto tok = tokens_.find(idempotency_token);
      if (tok != tokens_.end() && sessions_.count(tok->second) != 0) {
        ++counters_.open_replays;
        return tok->second;
      }
      tokens_[idempotency_token] = id;
    }
    if (sessions_.size() >= options_.max_sessions) {
      if (!idempotency_token.empty()) tokens_.erase(idempotency_token);
      return Status::Unavailable("session table full");
    }
    sessions_.emplace(id, session.value());
    ++counters_.opened;
    counters_.open = static_cast<int64_t>(sessions_.size());
  }
  if (options_.idle_ttl_ns >= 0) {
    // Monotone-min update of the expiry hint: this session can expire at
    // now + ttl; an earlier hint (from an older session) stays.
    int64_t expiry = now + options_.idle_ttl_ns;
    int64_t seen = next_expiry_hint_ns_.load(std::memory_order_relaxed);
    while (expiry < seen &&
           !next_expiry_hint_ns_.compare_exchange_weak(
               seen, expiry, std::memory_order_relaxed)) {
    }
  }
  return id;
}

Status SessionRegistry::Close(uint64_t id) {
  std::shared_ptr<Session> victim;  // destroyed outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(id));
  }
  victim = std::move(it->second);
  sessions_.erase(it);
  if (!victim->open_token().empty()) tokens_.erase(victim->open_token());
  ++counters_.closed;
  counters_.open = static_cast<int64_t>(sessions_.size());
  return Status::OK();
}

std::shared_ptr<Session> SessionRegistry::Find(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->Touch(NowNs());
  return it->second;
}

size_t SessionRegistry::EvictIdle() { return EvictIdleExcept(0); }

size_t SessionRegistry::EvictIdleExcept(uint64_t keep_id) {
  if (options_.idle_ttl_ns < 0) return 0;
  int64_t now = NowNs();
  int64_t cutoff = now - options_.idle_ttl_ns;
  std::vector<std::shared_ptr<Session>> victims;  // destroyed outside lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sweep_scans;
    int64_t min_active = std::numeric_limits<int64_t>::max();
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      int64_t active = it->second->last_active_ns();
      if (active < cutoff && it->first != keep_id) {
        if (!it->second->open_token().empty()) {
          tokens_.erase(it->second->open_token());
        }
        victims.push_back(std::move(it->second));
        it = sessions_.erase(it);
        ++counters_.evicted;
      } else {
        // keep_id is serving a command RIGHT NOW — it is active as of
        // `now` no matter what its (possibly stale) last_active says.
        // Folding the stale value into min_active would store a hint
        // already in the past, and every subsequent command would pay
        // another full no-op scan until the session happened to be
        // touched again.
        if (it->first == keep_id) active = std::max(active, now);
        min_active = std::min(min_active, active);
        ++it;
      }
    }
    counters_.open = static_cast<int64_t>(sessions_.size());
    // Exact recompute of the hint from the survivors (the monotone-min
    // updates elsewhere can only make it conservative, never late).
    next_expiry_hint_ns_.store(
        min_active == std::numeric_limits<int64_t>::max()
            ? min_active
            : net::SaturatingAdd(min_active, options_.idle_ttl_ns),
        std::memory_order_relaxed);
  }
  return victims.size();
}

size_t SessionRegistry::MaybeEvictIdle(uint64_t keep_id) {
  if (options_.idle_ttl_ns < 0) return 0;
  // Lock-free early-out: nothing can have expired before the hint. Touch
  // updates (Find) can only push real expiries later than the hint, so a
  // stale hint causes at most one cheap full sweep, never a missed one.
  if (NowNs() < next_expiry_hint_ns_.load(std::memory_order_relaxed)) {
    return 0;
  }
  return EvictIdleExcept(keep_id);
}

SessionRegistry::Counters SessionRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<uint64_t> SessionRegistry::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

int64_t SessionRegistry::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mix::service
