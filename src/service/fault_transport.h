// Fault-injecting FrameTransport decorator.
//
// The wire-level counterpart of buffer::FaultyLxpWrapper: wraps any
// FrameTransport and injects, per round trip, refusals (fail-with-Status),
// stalls (SimClock delays), and byte-level corruption. Corruption touches
// only the frame header (length prefix, magic, version) — bytes the decoder
// always checks — so an injected fault is guaranteed to surface as a decode
// Status, never as a silently-valid wrong frame. That invariant is what the
// byte-equality fault tests rest on.
#ifndef MIX_SERVICE_FAULT_TRANSPORT_H_
#define MIX_SERVICE_FAULT_TRANSPORT_H_

#include <string>

#include "net/fault.h"
#include "service/wire.h"

namespace mix::service {

class FaultyFrameTransport : public wire::FrameTransport {
 public:
  /// Non-owning: `inner` must outlive this transport.
  FaultyFrameTransport(wire::FrameTransport* inner, const net::FaultSpec& spec,
                       uint64_t seed);

  /// Injected delays advance this clock (optional).
  void AttachClock(net::SimClock* clock) { policy_.AttachClock(clock); }
  net::FaultPolicy& policy() { return policy_; }

  Result<std::string> RoundTrip(const std::string& request_bytes) override;

 private:
  wire::FrameTransport* inner_;
  net::FaultPolicy policy_;
  /// Separate stream for picking corruption offsets, so header-byte choices
  /// do not perturb the fault schedule itself.
  net::FaultRng scramble_;
};

}  // namespace mix::service

#endif  // MIX_SERVICE_FAULT_TRANSPORT_H_
