// Background fill engine: a service-wide worker pool that refines holes
// sessions queued for prefetch but have not navigated into yet (DESIGN.md
// §4 "Async fill engine").
//
// Sessions with `WrapperOptions::background_prefetch` hand their overflow
// prefetch candidates here (via the registry's PrefetchDispatch) instead of
// filling them synchronously between commands. A worker fills on its OWN
// wrapper instance — built from the same factory the sessions use — so
// background exchanges never contend with a session's wrapper, never charge
// a session's channel, and keep the per-session fault/retry schedules
// byte-identical to a prefetcher-less run. Results land in two places:
//
//   1. the shared SourceCache (when the service runs one), so EVERY session
//      of the pinned generation answers the hole cache-side, and
//   2. the submitting session's PushMailbox, drained at its next command
//      boundary through the validated ApplyPushedFill path.
//
// Hole-id contract: the worker's wrapper instance answers the SESSION'S
// hole ids, which is only sound for wrappers whose ids are stateless
// encodings of source positions (`page:<n>`, `t:<table>:<row>`, ...) — the
// same property the SourceCache already requires. That is why
// background_prefetch is opt-in per source; the worker still performs a
// GetRoot(uri) once per source so wrappers that register views on get_root
// (the relational catalog) accept the ids.
//
// Budget: each job is one TryFillMany under FillBudget{-1, fills_per_job} —
// the paper's speculation-depth bound — so a burst of candidates costs one
// exchange per job, never an unbounded chase.
#ifndef MIX_SERVICE_PREFETCHER_H_
#define MIX_SERVICE_PREFETCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "buffer/async_fill.h"
#include "buffer/lxp.h"
#include "buffer/source_cache.h"
#include "service/session.h"

namespace mix::service {

class BackgroundPrefetcher {
 public:
  struct Options {
    /// Worker threads draining the job queue.
    int workers = 2;
    /// Per-job chase budget (FillBudget::fills) — speculation depth.
    int64_t fills_per_job = 8;
    /// Jobs queued beyond this are dropped (prefetch is advisory; shedding
    /// load must never block a session's command path).
    size_t queue_capacity = 256;
  };

  /// Builds one per-source wrapper slot for every `background_prefetch`
  /// source in `env`; `source_cache` (optional) receives validated fills.
  /// Both must outlive the prefetcher.
  BackgroundPrefetcher(const SessionEnvironment* env,
                       buffer::SourceCache* source_cache, Options options);
  ~BackgroundPrefetcher();

  BackgroundPrefetcher(const BackgroundPrefetcher&) = delete;
  BackgroundPrefetcher& operator=(const BackgroundPrefetcher&) = delete;

  /// Enqueues a fill job (non-blocking; drops when the queue is full or the
  /// source is not registered for background prefetch). `generation` is the
  /// submitting session's pinned cache generation; `mailbox` (optional)
  /// receives the fills for splice-on-next-command.
  void Submit(const std::string& source, int64_t generation,
              std::vector<std::string> holes,
              std::shared_ptr<buffer::PushMailbox> mailbox);

  /// Blocks until every job submitted so far has been executed (test/bench
  /// determinism — "the prefetcher went quiet").
  void Drain();

  struct Stats {
    int64_t jobs_submitted = 0;   ///< accepted into the queue
    int64_t jobs_dropped = 0;     ///< shed: queue full or unknown source
    int64_t jobs_run = 0;
    int64_t exchanges = 0;        ///< wrapper FillMany exchanges performed
    int64_t fills = 0;            ///< hole fills obtained (incl. chased)
    int64_t published = 0;        ///< fills published into the SourceCache
    int64_t delivered = 0;        ///< fills accepted by a session mailbox
    int64_t skipped_cached = 0;   ///< candidates already cache-resident
    int64_t failures = 0;         ///< failed exchanges (speculation dropped)
  };
  Stats stats() const;

 private:
  /// Per-source slot: the worker-side wrapper and its dedupe set. `mu`
  /// serializes wrapper use (wrappers are not internally thread-safe).
  struct SourceSlot {
    std::mutex mu;
    std::unique_ptr<buffer::LxpWrapper> wrapper;
    std::string uri;
    bool root_ok = false;
    /// Holes ever requested by this slot (bounded; cleared when large) —
    /// keeps a hot hole from being re-fetched by every session prefetching
    /// the same neighborhood.
    std::unordered_set<std::string> requested;
  };

  struct Job {
    SourceSlot* slot = nullptr;
    std::string source;
    int64_t generation = 0;
    std::vector<std::string> holes;
    std::shared_ptr<buffer::PushMailbox> mailbox;
  };

  void WorkerLoop();
  void RunJob(Job& job);

  buffer::SourceCache* source_cache_;  // may be null
  Options options_;
  std::map<std::string, std::unique_ptr<SourceSlot>> slots_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< workers: queue non-empty or stop
  std::condition_variable idle_cv_;   ///< Drain: queue empty and none running
  std::deque<Job> queue_;
  int running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Counters, guarded by mu_ (bumped at submit/run boundaries only).
  Stats stats_;
};

}  // namespace mix::service

#endif  // MIX_SERVICE_PREFETCHER_H_
