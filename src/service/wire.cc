#include "service/wire.h"

#include <cstring>

namespace mix::service::wire {

namespace {

constexpr uint8_t kMagic0 = 'M';
constexpr uint8_t kMagic1 = 'X';
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 8;  // len(4) + magic(2) + version(1) + type(1)

bool KnownType(uint8_t t) {
  return (t >= static_cast<uint8_t>(MsgType::kOpen) &&
          t <= static_cast<uint8_t>(MsgType::kMetrics)) ||
         (t >= static_cast<uint8_t>(MsgType::kError) &&
          t <= static_cast<uint8_t>(MsgType::kMetricsText));
}

// --- encoding -------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutI64(std::string* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(u >> (8 * i));
  out->append(b, 8);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutNodeId(std::string* out, const NodeId& id) {
  if (!id.valid()) {
    PutU8(out, 0);
    return;
  }
  PutU8(out, 1);
  PutStr(out, id.tag());
  PutU32(out, static_cast<uint32_t>(id.arity()));
  for (size_t i = 0; i < id.arity(); ++i) {
    const NodeIdComponent& c = id.ComponentAt(i);
    if (const auto* v = std::get_if<int64_t>(&c)) {
      PutU8(out, 0);
      PutI64(out, *v);
    } else if (const auto* s = std::get_if<std::string>(&c)) {
      PutU8(out, 1);
      PutStr(out, *s);
    } else {
      PutU8(out, 2);
      PutNodeId(out, std::get<NodeId>(c));
    }
  }
}

void PutFragment(std::string* out, const buffer::Fragment& f) {
  PutU8(out, f.is_hole ? 1 : 0);
  if (f.is_hole) {
    PutStr(out, f.hole_id);
    return;
  }
  PutU8(out, f.is_text ? 1 : 0);
  PutStr(out, f.label);
  PutU32(out, static_cast<uint32_t>(f.children.size()));
  for (const buffer::Fragment& c : f.children) PutFragment(out, c);
}

void PutSubtreeEntry(std::string* out, const SubtreeEntry& e) {
  PutStr(out, e.label.valid() ? e.label.name() : std::string_view());
  PutI64(out, e.depth);
  PutU8(out, e.truncated ? 1 : 0);
  PutNodeId(out, e.id);
}

// --- decoding -------------------------------------------------------------

/// Cursor over the payload bytes; every Read* bounds-checks and latches the
/// first error. Decoders check ok() once at the end (reads after an error
/// are harmless no-ops returning zero values).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  void Fail(std::string msg) {
    if (status_.ok()) status_ = Status::InvalidArgument(std::move(msg));
  }

  uint8_t ReadU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  uint32_t ReadU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  int64_t ReadI64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<int64_t>(v);
  }

  std::string ReadStr() {
    uint32_t len = ReadU32();
    if (!ok()) return {};
    if (len > remaining()) {
      Fail("string length exceeds frame");
      return {};
    }
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// List headers are validated against the bytes actually left: any element
  /// costs at least one byte, so a count beyond `remaining()` is corrupt —
  /// this rejects length-bomb frames before allocating for them.
  uint32_t ReadListLen() {
    uint32_t n = ReadU32();
    if (!ok()) return 0;
    if (n > kMaxListLength || n > remaining()) {
      Fail("list length exceeds frame");
      return 0;
    }
    return n;
  }

 private:
  bool Need(size_t n) {
    if (!status_.ok()) return false;
    if (remaining() < n) {
      Fail("truncated frame payload");
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  Status status_;
};

NodeId ReadNodeId(Reader* r, int depth) {
  if (depth > kMaxTermDepth) {
    r->Fail("node-id nesting too deep");
    return NodeId();
  }
  if (r->ReadU8() == 0) return NodeId();
  std::string tag = r->ReadStr();
  uint32_t arity = r->ReadListLen();
  std::vector<NodeIdComponent> components;
  components.reserve(arity);
  for (uint32_t i = 0; i < arity && r->ok(); ++i) {
    switch (r->ReadU8()) {
      case 0:
        components.emplace_back(r->ReadI64());
        break;
      case 1:
        components.emplace_back(r->ReadStr());
        break;
      case 2:
        components.emplace_back(ReadNodeId(r, depth + 1));
        break;
      default:
        r->Fail("unknown node-id component kind");
        break;
    }
  }
  if (!r->ok()) return NodeId();
  return NodeId(std::move(tag), std::move(components));
}

buffer::Fragment ReadFragment(Reader* r, int depth) {
  buffer::Fragment f;
  if (depth > kMaxTermDepth) {
    r->Fail("fragment nesting too deep");
    return f;
  }
  f.is_hole = r->ReadU8() != 0;
  if (f.is_hole) {
    f.hole_id = r->ReadStr();
    return f;
  }
  f.is_text = r->ReadU8() != 0;
  f.label = r->ReadStr();
  uint32_t n = r->ReadListLen();
  f.children.reserve(n);
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    f.children.push_back(ReadFragment(r, depth + 1));
  }
  return f;
}

SubtreeEntry ReadSubtreeEntry(Reader* r) {
  SubtreeEntry e;
  std::string label = r->ReadStr();
  if (r->ok()) e.label = Atom::Intern(label);
  int64_t depth = r->ReadI64();
  if (depth < 0 || depth > INT32_MAX) {
    r->Fail("subtree entry depth out of range");
    return e;
  }
  e.depth = static_cast<int32_t>(depth);
  e.truncated = r->ReadU8() != 0;
  e.id = ReadNodeId(r, 0);
  return e;
}

}  // namespace

Frame Frame::Error(const Status& status) {
  Frame f;
  f.type = MsgType::kError;
  f.number = static_cast<int64_t>(status.code());
  f.text = status.message();
  return f;
}

Frame Frame::OptionalNode(const std::optional<NodeId>& id) {
  Frame f;
  f.type = MsgType::kNode;
  f.flag = id.has_value();
  if (id.has_value()) f.node = *id;
  return f;
}

Status Frame::ToStatus() const {
  if (type != MsgType::kError) return Status::OK();
  // An out-of-range code in an error frame still has to surface as *some*
  // error; map it to kInternal.
  int64_t code = number;
  if (code <= 0 || code > static_cast<int64_t>(Status::Code::kDataLoss)) {
    return Status::Internal("peer error: " + text);
  }
  return Status::FromCode(static_cast<Status::Code>(code), text);
}

std::string EncodeFrame(const Frame& frame) {
  std::string payload;
  PutI64(&payload, static_cast<int64_t>(frame.session));
  PutI64(&payload, frame.deadline_ns);
  PutI64(&payload, frame.number);
  PutI64(&payload, frame.number2);
  PutU8(&payload, frame.flag ? 1 : 0);
  PutStr(&payload, frame.text);
  PutStr(&payload, frame.text2);
  PutNodeId(&payload, frame.node);
  PutU32(&payload, static_cast<uint32_t>(frame.nodes.size()));
  for (const NodeId& id : frame.nodes) PutNodeId(&payload, id);
  PutU32(&payload, static_cast<uint32_t>(frame.strings.size()));
  for (const std::string& s : frame.strings) PutStr(&payload, s);
  PutU32(&payload, static_cast<uint32_t>(frame.entries.size()));
  for (const SubtreeEntry& e : frame.entries) PutSubtreeEntry(&payload, e);
  PutU32(&payload, static_cast<uint32_t>(frame.fragments.size()));
  for (const buffer::Fragment& f : frame.fragments) PutFragment(&payload, f);
  PutU32(&payload, static_cast<uint32_t>(frame.hole_fills.size()));
  for (const buffer::HoleFill& hf : frame.hole_fills) {
    PutStr(&payload, hf.hole_id);
    PutU32(&payload, static_cast<uint32_t>(hf.fragments.size()));
    for (const buffer::Fragment& f : hf.fragments) PutFragment(&payload, f);
  }

  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU8(&out, kMagic0);
  PutU8(&out, kMagic1);
  PutU8(&out, kVersion);
  PutU8(&out, static_cast<uint8_t>(frame.type));
  out += payload;
  return out;
}

FramePeek PeekFrame(std::string_view bytes, size_t* frame_size,
                    Status* error) {
  auto corrupt = [error](std::string msg) {
    if (error != nullptr) *error = Status::InvalidArgument(std::move(msg));
    return FramePeek::kCorrupt;
  };
  // Validate the fixed header fields as soon as their bytes are present, so
  // a garbled stream is abandoned at the earliest byte that proves it.
  if (bytes.size() > 4 && static_cast<uint8_t>(bytes[4]) != kMagic0) {
    return corrupt("bad frame magic");
  }
  if (bytes.size() > 5 && static_cast<uint8_t>(bytes[5]) != kMagic1) {
    return corrupt("bad frame magic");
  }
  if (bytes.size() > 6 && static_cast<uint8_t>(bytes[6]) != kVersion) {
    return corrupt("unsupported frame version");
  }
  if (bytes.size() > 7 && !KnownType(static_cast<uint8_t>(bytes[7]))) {
    return corrupt("unknown frame type " +
                   std::to_string(static_cast<uint8_t>(bytes[7])));
  }
  if (bytes.size() < 4) return FramePeek::kNeedMore;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
                   << (8 * i);
  }
  if (payload_len > kMaxFrameBytes) {
    return corrupt("frame payload exceeds limit");
  }
  if (bytes.size() < kHeaderBytes) return FramePeek::kNeedMore;
  size_t total = kHeaderBytes + payload_len;
  if (bytes.size() < total) return FramePeek::kNeedMore;
  if (frame_size != nullptr) *frame_size = total;
  return FramePeek::kReady;
}

Result<Frame> DecodeFrame(std::string_view bytes, size_t* consumed) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("truncated frame header");
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[i]))
                   << (8 * i);
  }
  if (static_cast<uint8_t>(bytes[4]) != kMagic0 ||
      static_cast<uint8_t>(bytes[5]) != kMagic1) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (static_cast<uint8_t>(bytes[6]) != kVersion) {
    return Status::InvalidArgument("unsupported frame version");
  }
  uint8_t type = static_cast<uint8_t>(bytes[7]);
  if (!KnownType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (payload_len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  if (bytes.size() - kHeaderBytes < payload_len) {
    return Status::InvalidArgument("truncated frame payload");
  }
  if (consumed == nullptr && bytes.size() - kHeaderBytes > payload_len) {
    return Status::InvalidArgument("trailing bytes after frame");
  }

  Reader r(bytes.substr(kHeaderBytes, payload_len));
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.session = static_cast<uint64_t>(r.ReadI64());
  frame.deadline_ns = r.ReadI64();
  frame.number = r.ReadI64();
  frame.number2 = r.ReadI64();
  frame.flag = r.ReadU8() != 0;
  frame.text = r.ReadStr();
  frame.text2 = r.ReadStr();
  frame.node = ReadNodeId(&r, 0);
  uint32_t n = r.ReadListLen();
  frame.nodes.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    frame.nodes.push_back(ReadNodeId(&r, 0));
  }
  n = r.ReadListLen();
  frame.strings.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    frame.strings.push_back(r.ReadStr());
  }
  n = r.ReadListLen();
  frame.entries.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    frame.entries.push_back(ReadSubtreeEntry(&r));
  }
  n = r.ReadListLen();
  frame.fragments.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    frame.fragments.push_back(ReadFragment(&r, 0));
  }
  n = r.ReadListLen();
  frame.hole_fills.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    buffer::HoleFill hf;
    hf.hole_id = r.ReadStr();
    uint32_t m = r.ReadListLen();
    hf.fragments.reserve(m);
    for (uint32_t j = 0; j < m && r.ok(); ++j) {
      hf.fragments.push_back(ReadFragment(&r, 0));
    }
    frame.hole_fills.push_back(std::move(hf));
  }
  if (!r.ok()) return r.status();
  if (r.remaining() != 0) {
    return Status::InvalidArgument("excess bytes inside frame payload");
  }
  if (consumed != nullptr) *consumed = kHeaderBytes + payload_len;
  return frame;
}

Result<Frame> Call(FrameTransport* transport, const Frame& request) {
  Result<std::string> bytes = transport->RoundTrip(EncodeFrame(request));
  if (!bytes.ok()) return bytes.status();
  Result<Frame> response = DecodeFrame(bytes.value());
  if (!response.ok()) return response.status();
  Status err = response.value().ToStatus();
  if (!err.ok()) return err;
  return response;
}

Status FramedLxpWrapper::TryGetRoot(const std::string& uri, std::string* out) {
  // The buffer passes its own uri through; the frame carries the exported
  // name this stub was bound to (they are typically the same string).
  Frame req;
  req.type = MsgType::kLxpGetRoot;
  req.text = uri.empty() ? uri_ : uri;
  Result<Frame> resp = Call(transport_, req);
  if (!resp.ok()) {
    last_status_ = resp.status();
    return resp.status();
  }
  *out = std::move(resp.value().text);
  return Status::OK();
}

Status FramedLxpWrapper::TryFill(const std::string& hole_id,
                                 buffer::FragmentList* out) {
  Frame req;
  req.type = MsgType::kLxpFill;
  req.text = uri_;
  req.text2 = hole_id;
  Result<Frame> resp = Call(transport_, req);
  if (!resp.ok()) {
    last_status_ = resp.status();
    return resp.status();
  }
  *out = std::move(resp.value().fragments);
  return Status::OK();
}

std::shared_ptr<buffer::FillFuture> FramedLxpWrapper::BeginFillMany(
    const std::vector<std::string>& holes, const buffer::FillBudget& budget) {
  Frame req;
  req.type = MsgType::kLxpFillMany;
  req.text = uri_;
  req.strings = holes;
  req.number = budget.elements;
  req.number2 = budget.fills;
  auto future = std::make_shared<buffer::FillFuture>();
  // The completion owns only the future: decoding is static, so the stub
  // (and its session) may die mid-flight without a dangling capture.
  transport_->RoundTripAsync(
      EncodeFrame(req), [future](Result<std::string> bytes) {
        if (!bytes.ok()) {
          future->Complete(bytes.status(), {});
          return;
        }
        Result<Frame> resp = DecodeFrame(bytes.value());
        if (!resp.ok()) {
          future->Complete(resp.status(), {});
          return;
        }
        Status err = resp.value().ToStatus();
        if (!err.ok()) {
          future->Complete(err, {});
          return;
        }
        future->Complete(Status::OK(), std::move(resp.value().hole_fills));
      });
  return future;
}

Status FramedLxpWrapper::TryFillMany(const std::vector<std::string>& holes,
                                     const buffer::FillBudget& budget,
                                     buffer::HoleFillList* out) {
  Frame req;
  req.type = MsgType::kLxpFillMany;
  req.text = uri_;
  req.strings = holes;
  req.number = budget.elements;
  req.number2 = budget.fills;
  Result<Frame> resp = Call(transport_, req);
  if (!resp.ok()) {
    last_status_ = resp.status();
    return resp.status();
  }
  *out = std::move(resp.value().hole_fills);
  return Status::OK();
}

std::string FramedLxpWrapper::GetRoot(const std::string& uri) {
  std::string out;
  if (!TryGetRoot(uri, &out).ok()) return "";
  return out;
}

buffer::FragmentList FramedLxpWrapper::Fill(const std::string& hole_id) {
  buffer::FragmentList out;
  if (!TryFill(hole_id, &out).ok()) return {};
  return out;
}

buffer::HoleFillList FramedLxpWrapper::FillMany(
    const std::vector<std::string>& holes, const buffer::FillBudget& budget) {
  buffer::HoleFillList out;
  if (!TryFillMany(holes, budget, &out).ok()) {
    // Degrade to the single-fill contract: answer each requested hole with
    // an empty refinement so callers of the infallible face stay consistent.
    buffer::HoleFillList fallback;
    for (const std::string& h : holes) fallback.push_back({h, {}});
    return fallback;
  }
  return out;
}

}  // namespace mix::service::wire
