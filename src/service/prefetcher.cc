#include "service/prefetcher.h"

#include <algorithm>
#include <utility>

namespace mix::service {

namespace {

/// Cap on a slot's dedupe set; past it the set is cleared (re-fetching a
/// hole costs one wasted exchange, unbounded memory costs the server).
constexpr size_t kMaxRequestedPerSlot = 1 << 16;

/// The LXP progress conditions checkable without the session's tree: within
/// every sibling list no two holes are adjacent, and a non-empty top-level
/// list is not all holes. Junk is dropped here so it never reaches the
/// shared cache; the buffer re-validates against its own tree on splice.
bool SiblingListOk(const buffer::FragmentList& list) {
  bool prev_hole = false;
  for (const buffer::Fragment& f : list) {
    if (f.is_hole && prev_hole) return false;
    prev_hole = f.is_hole;
    if (!f.is_hole && !SiblingListOk(f.children)) return false;
  }
  return true;
}

bool ProgressOk(const buffer::FragmentList& list) {
  if (!list.empty()) {
    bool all_holes = true;
    for (const buffer::Fragment& f : list) all_holes &= f.is_hole;
    if (all_holes) return false;
  }
  return SiblingListOk(list);
}

}  // namespace

BackgroundPrefetcher::BackgroundPrefetcher(const SessionEnvironment* env,
                                           buffer::SourceCache* source_cache,
                                           Options options)
    : source_cache_(source_cache), options_(std::move(options)) {
  for (const auto& w : env->wrappers()) {
    if (!w.options.background_prefetch) continue;
    auto slot = std::make_unique<SourceSlot>();
    slot->wrapper = w.factory();
    slot->uri = w.uri;
    slots_.emplace(w.name, std::move(slot));
  }
  if (options_.workers < 1) options_.workers = 1;
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BackgroundPrefetcher::~BackgroundPrefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();  // pending speculation is worthless at teardown
    cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void BackgroundPrefetcher::Submit(
    const std::string& source, int64_t generation,
    std::vector<std::string> holes,
    std::shared_ptr<buffer::PushMailbox> mailbox) {
  if (holes.empty()) return;
  auto it = slots_.find(source);
  std::lock_guard<std::mutex> lock(mu_);
  if (it == slots_.end() || stop_ || queue_.size() >= options_.queue_capacity) {
    ++stats_.jobs_dropped;
    return;
  }
  queue_.push_back(Job{it->second.get(), source, generation, std::move(holes),
                       std::move(mailbox)});
  ++stats_.jobs_submitted;
  cv_.notify_one();
}

void BackgroundPrefetcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return stop_ || (queue_.empty() && running_ == 0); });
}

void BackgroundPrefetcher::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      ++stats_.jobs_run;
    }
    RunJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

void BackgroundPrefetcher::RunJob(Job& job) {
  SourceSlot& slot = *job.slot;
  int64_t skipped = 0;
  int64_t exchanges = 0;
  int64_t filled = 0;
  int64_t published = 0;
  int64_t delivered = 0;
  int64_t failures = 0;
  {
    std::lock_guard<std::mutex> wrapper_lock(slot.mu);
    // Register the view on the worker's wrapper instance once: stateless
    // hole ids survive the instance boundary, but wrappers that bind views
    // at get_root (the relational catalog) need the registration first.
    if (!slot.root_ok) {
      std::string root;
      if (!slot.wrapper->TryGetRoot(slot.uri, &root).ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failures;
        return;
      }
      slot.root_ok = true;
    }
    std::vector<std::string> wanted;
    wanted.reserve(job.holes.size());
    for (std::string& id : job.holes) {
      if (slot.requested.count(id) != 0) continue;
      if (source_cache_ != nullptr &&
          source_cache_->LookupFill(job.source, job.generation, id) !=
              nullptr) {
        ++skipped;
        continue;
      }
      wanted.push_back(std::move(id));
    }
    if (!wanted.empty()) {
      if (slot.requested.size() > kMaxRequestedPerSlot) slot.requested.clear();
      for (const std::string& id : wanted) slot.requested.insert(id);
      buffer::FillBudget budget;
      budget.elements = -1;
      budget.fills = options_.fills_per_job > 0
                         ? std::max<int64_t>(options_.fills_per_job,
                                             static_cast<int64_t>(wanted.size()))
                         : static_cast<int64_t>(wanted.size());
      buffer::HoleFillList fills;
      ++exchanges;
      Status s = slot.wrapper->TryFillMany(wanted, budget, &fills);
      if (!s.ok()) {
        // Speculation failed: drop it (the demand path owns retry and
        // degradation) and let a later job re-try these holes.
        for (const std::string& id : wanted) slot.requested.erase(id);
        ++failures;
      } else {
        for (buffer::HoleFill& f : fills) {
          if (!ProgressOk(f.fragments)) continue;
          ++filled;
          if (source_cache_ != nullptr) {
            source_cache_->PublishFill(job.source, job.generation, f.hole_id,
                                       f.fragments);
            ++published;
          }
          if (job.mailbox != nullptr &&
              job.mailbox->Deliver(buffer::PushedFill{
                  std::move(f.hole_id), std::move(f.fragments)})) {
            ++delivered;
          }
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.skipped_cached += skipped;
  stats_.exchanges += exchanges;
  stats_.fills += filled;
  stats_.published += published;
  stats_.delivered += delivered;
  stats_.failures += failures;
}

BackgroundPrefetcher::Stats BackgroundPrefetcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mix::service
