#include "service/executor.h"

#include "core/check.h"

namespace mix::service {

Executor::Executor(Options options) : options_(options) {
  MIX_CHECK(options_.workers >= 1);
  MIX_CHECK(options_.queue_capacity >= 1);
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  std::vector<Task> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Strip out everything not yet claimed by a worker; their callers are
    // released below with kUnavailable, outside the lock.
    for (auto& [key, q] : queues_) {
      for (Item& item : q.items) orphans.push_back(std::move(item.task));
      q.items.clear();
    }
    queued_total_ = 0;
    ready_.clear();
  }
  cv_.notify_all();
  Status shutdown = Status::Unavailable("executor shutting down");
  for (Task& task : orphans) task(shutdown);
  for (std::thread& t : workers_) t.join();
}

Status Executor::Submit(uint64_t key,
                        std::chrono::steady_clock::time_point deadline,
                        Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++stats_.rejected;
      return Status::Unavailable("executor shutting down");
    }
    if (queued_total_ >= options_.queue_capacity) {
      ++stats_.rejected;
      return Status::Unavailable("admission queue full (" +
                                 std::to_string(options_.queue_capacity) +
                                 " queued)");
    }
    KeyQueue& q = queues_[key];
    q.items.push_back(Item{deadline, std::move(task)});
    ++queued_total_;
    ++stats_.accepted;
    if (!q.scheduled) {
      q.scheduled = true;
      ready_.push_back(key);
    }
  }
  cv_.notify_one();
  return Status::OK();
}

Executor::Stats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.queued = static_cast<int64_t>(queued_total_);
  return s;
}

void Executor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    uint64_t key = ready_.front();
    ready_.pop_front();
    auto it = queues_.find(key);
    MIX_CHECK(it != queues_.end() && !it->second.items.empty());
    Item item = std::move(it->second.items.front());
    it->second.items.pop_front();
    --queued_total_;
    bool expired = item.deadline != std::chrono::steady_clock::time_point::max()
                   && std::chrono::steady_clock::now() > item.deadline;
    if (expired) {
      ++stats_.expired;
    } else {
      ++stats_.executed;
    }
    lock.unlock();
    item.task(expired ? Status::DeadlineExceeded("request expired in queue")
                      : Status::OK());
    item.task = nullptr;  // destroy captured state outside the lock
    lock.lock();
    // Release the key: requeue if new tasks arrived while we ran, drop the
    // (empty) queue entry otherwise so the map stays bounded by live keys.
    auto it2 = queues_.find(key);
    MIX_CHECK(it2 != queues_.end());
    if (it2->second.items.empty()) {
      queues_.erase(it2);
    } else {
      ready_.push_back(key);
      // More than one task may be waiting; this worker alone continues the
      // key, but another may be needed for other ready keys.
      cv_.notify_one();
    }
  }
}

}  // namespace mix::service
