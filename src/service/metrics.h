// Service metrics: per-session and service-wide observability for mixd.
//
// Counters are aggregated under the service's mutexes and exported as
// plain-value snapshots, so readers never hold a lock while formatting and
// a snapshot is internally consistent. Request latencies go into a
// log-scale histogram (power-of-two buckets) — constant space, and good
// enough to quote p50/p99 within a factor of two, which is what a load
// benchmark needs from a server it is saturating.
#ifndef MIX_SERVICE_METRICS_H_
#define MIX_SERVICE_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/navigable.h"
#include "net/sim_net.h"

namespace mix::service {

/// Log2-bucketed latency histogram; bucket i counts samples in
/// [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs 0 ns).
class LatencyHistogram {
 public:
  void Record(int64_t ns);
  int64_t count() const { return count_; }
  /// Upper bound of the bucket containing the p-th percentile (p in [0,1]);
  /// 0 when empty.
  int64_t PercentileNs(double p) const;
  LatencyHistogram& operator+=(const LatencyHistogram& o);

 private:
  static constexpr int kBuckets = 63;
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
};

/// Per-session counters, owned by the session and mutated only while its
/// (executor-serialized) commands run.
struct SessionMetrics {
  int64_t requests = 0;
  int64_t errors = 0;
  LatencyHistogram latency;
  /// LXP traffic of this session's buffered sources (demand channel).
  net::ChannelStats lxp;
  int64_t fills = 0;
  /// Fault handling on this session's sources: failed wrapper exchanges,
  /// retries issued, virtual backoff time spent, holes degraded to
  /// unavailable nodes.
  int64_t source_faults = 0;
  int64_t source_retries = 0;
  int64_t source_backoff_ns = 0;
  int64_t degraded_holes = 0;
  /// Shared-fragment-cache traffic of this session's buffers: fills
  /// answered from the cache vs. lookups that went to the wrapper.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Optimizer rewrites applied to this session's compiled plan (from the
  /// plan-cache entry's report, so a cache hit reports the original
  /// compile's rewrites; 0 when the optimizer is off or changed nothing).
  int64_t plan_rewrites = 0;
  /// 1 when this session is served from a cached answer view (zero
  /// wrapper exchanges by construction).
  int64_t view_served = 0;
  /// Async fill engine (DESIGN.md §4): readahead flights issued / consumed
  /// / fallen back to the demand path, and background-pushed fills applied
  /// / dropped (stale or superseded) at command boundaries.
  int64_t readahead_issued = 0;
  int64_t readahead_hits = 0;
  int64_t readahead_fallbacks = 0;
  int64_t pushed_applied = 0;
  int64_t pushed_dropped = 0;

  std::string ToString() const;
};

/// Listener/connection counters of a real network transport hosting the
/// service (src/net/tcp). Produced as a plain-value snapshot by the
/// transport (its internals are atomics bumped from reactor and worker
/// threads); all zeros when the service runs in-process/sim only.
struct NetStats {
  int64_t accepts = 0;            ///< connections ever accepted
  int64_t conns_active = 0;       ///< currently open connections
  int64_t conns_closed = 0;       ///< closed, any reason
  int64_t rx_bytes = 0;           ///< bytes read off sockets
  int64_t tx_bytes = 0;           ///< bytes written to sockets
  int64_t frames_in = 0;          ///< whole request frames reassembled
  int64_t frames_out = 0;         ///< response frames released to the wire
  int64_t partial_reads = 0;      ///< read events ending in a partial frame
  int64_t backpressure_stalls = 0;  ///< flushes that left bytes queued
  int64_t slow_reader_closes = 0;   ///< disconnects at the write high-water
  int64_t idle_closes = 0;          ///< idle-timeout disconnects
  int64_t decode_closes = 0;        ///< garbled-header disconnects
  int64_t read_pauses = 0;          ///< reads paused at the pipeline bound

  std::string ToString() const;
};

/// Service-wide snapshot; every field is a copy.
struct ServiceMetricsSnapshot {
  /// Which fleet member produced this snapshot ("" outside a fleet). Set
  /// from MediatorService::Options::backend_id so a router aggregating
  /// kMetrics responses can attribute them.
  std::string backend_id;
  // Session registry.
  int64_t sessions_open = 0;
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t sessions_evicted = 0;
  /// Opens answered from a live session via idempotency token (failover
  /// replays re-attaching instead of leaking duplicates).
  int64_t sessions_open_replays = 0;
  /// Full-registry eviction scans the session registry actually paid.
  int64_t registry_sweep_scans = 0;
  // Admission / execution.
  int64_t requests_ok = 0;
  int64_t requests_error = 0;
  int64_t requests_rejected = 0;   ///< kUnavailable at admission.
  int64_t requests_expired = 0;    ///< kDeadlineExceeded before running.
  int64_t queue_depth = 0;
  // Wire accounting (frames crossing the service boundary).
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  net::ChannelStats wire;
  // Latency over completed requests (admission to response).
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  // Fault handling, aggregated across all sessions ever built (survives
  // session close/eviction — these come from the service's FaultCounters,
  // not from per-session sweeps).
  int64_t source_faults = 0;
  int64_t source_retries = 0;
  int64_t source_backoff_ns = 0;
  int64_t degraded_holes = 0;
  // Shared source-fragment cache (process-wide, all sessions).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_bytes = 0;
  int64_t cache_entries = 0;
  /// Byte high-water mark the fragment cache ever reached.
  int64_t cache_peak_bytes = 0;
  /// Per-shard (hits, misses, bytes) of the fragment cache, shard-ordered
  /// — spotting a hot shard or a skewed key distribution at a glance.
  struct CacheShard {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t bytes = 0;
  };
  std::vector<CacheShard> cache_shards;
  // Compiled-plan cache (session-open path).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  // Plan optimizer (runs inside the plan cache on fresh compiles).
  int64_t plans_optimized = 0;   ///< compiles the optimizer changed
  int64_t optimizer_rewrites = 0;  ///< total rewrites across those compiles
  /// Per-pass rewrite totals (pass name, rewrites), name-sorted.
  std::vector<std::pair<std::string, int64_t>> optimizer_passes;
  // Answer-view cache (cross-session materialized answers).
  int64_t view_hits = 0;
  int64_t view_misses = 0;
  int64_t view_publishes = 0;
  int64_t view_evictions = 0;
  int64_t view_invalidations = 0;
  int64_t view_bytes = 0;
  int64_t view_entries = 0;
  /// Subsumption/publish reject counts by reason, name-sorted.
  std::vector<std::pair<std::string, int64_t>> view_rejects;
  // Background prefetcher (service-wide worker pool; all zeros when
  // Options::prefetch_workers == 0).
  int64_t prefetch_jobs = 0;
  int64_t prefetch_jobs_dropped = 0;
  int64_t prefetch_exchanges = 0;
  int64_t prefetch_fills = 0;
  int64_t prefetch_published = 0;
  int64_t prefetch_delivered = 0;
  int64_t prefetch_skipped_cached = 0;
  int64_t prefetch_failures = 0;
  // Real network transport hosting this service (all zeros when the service
  // is reached in-process or through the sim channel only).
  NetStats net;

  std::string ToString() const;
};

}  // namespace mix::service

#endif  // MIX_SERVICE_METRICS_H_
