// Framed wire protocol for the mixd service layer.
//
// The paper's MIX mediator is a server: clients hold handles into virtual
// answer documents and drive DOM-VXD dialogues against it over a network.
// This codec gives those dialogues a concrete wire shape: every DOM-VXD
// command (d/r/f/σ, NthChild, and the vectored DownAll/NextSiblings/
// FetchSubtree forms) and every LXP command (get_root/fill/fill_many) is one
// length-prefixed frame, answered by one response frame.
//
// Because node-ids are self-describing Skolem terms (node_id.h), they
// serialize structurally and the server needs *no* per-client pointer table:
// any id a client echoes back decodes to a term the lazy mediators resolve
// by value — the paper's association-encoding argument (Section 3) is
// exactly what makes the protocol stateless per command.
//
// Robustness contract: EncodeFrame always produces a well-formed frame;
// DecodeFrame never dies on wire input — truncated, oversized, corrupt-tag,
// or depth-bomb payloads all come back as Status errors (no MIX_CHECK on
// any byte a peer controls).
#ifndef MIX_SERVICE_WIRE_H_
#define MIX_SERVICE_WIRE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "buffer/async_fill.h"
#include "buffer/lxp.h"
#include "core/navigable.h"
#include "core/node_id.h"
#include "core/status.h"

namespace mix::service::wire {

/// Frame types. Requests are < 64, responses >= 64; anything else is a
/// corrupt tag and fails decoding.
enum class MsgType : uint8_t {
  // --- session / DOM-VXD requests ---
  kOpen = 1,          ///< text = XMAS query; response kOpenOk.
  kClose = 2,         ///< close `session`; response kCloseOk.
  kRoot = 3,          ///< response kNode (always present).
  kDown = 4,          ///< node = p; response kNode.
  kRight = 5,         ///< node = p; response kNode.
  kFetch = 6,         ///< node = p; response kLabel.
  kSelectSibling = 7, ///< node = p, text2 = equality label; response kNode.
  kNthChild = 8,      ///< node = p, number = index; response kNode.
  kDownAll = 9,       ///< node = p; response kNodeList.
  kNextSiblings = 10, ///< node = p, number = limit; response kNodeList.
  kFetchSubtree = 11, ///< node = p, number = depth; response kSubtree.
  // --- LXP requests (remote wrapper serving) ---
  kLxpGetRoot = 12,   ///< text = uri; response kLxpRoot.
  kLxpFill = 13,      ///< text = uri, text2 = hole id; response kLxpFillResp.
  kLxpFillMany = 14,  ///< text = uri, strings = holes, number/number2 =
                      ///< budget (elements, fills); response kLxpFills.
  kMetrics = 15,      ///< response kMetricsText (service-wide snapshot).

  // --- responses ---
  kError = 64,        ///< number = Status::Code, text = message.
  kOpenOk = 65,       ///< session = new session id.
  kCloseOk = 66,
  kNode = 67,         ///< flag = present, node = id when present.
  kLabel = 68,        ///< text = label.
  kNodeList = 69,     ///< nodes.
  kSubtree = 70,      ///< entries.
  kLxpRoot = 71,      ///< text = root hole id.
  kLxpFillResp = 72,  ///< fragments.
  kLxpFills = 73,     ///< hole_fills.
  kMetricsText = 74,  ///< text = rendered snapshot.
};

/// Decoded frame. One struct covers every message; each type reads the
/// fields its doc comment names and ignores the rest (unused fields encode
/// as empties — the uniform layout keeps the codec small and every decode
/// path bounds-checked).
struct Frame {
  MsgType type = MsgType::kError;
  uint64_t session = 0;
  /// Request budget in nanoseconds, relative to admission (0 = none). The
  /// executor turns it into an absolute deadline at submit time.
  int64_t deadline_ns = 0;
  int64_t number = 0;
  int64_t number2 = 0;
  bool flag = false;
  std::string text;
  std::string text2;
  NodeId node;
  std::vector<NodeId> nodes;
  std::vector<std::string> strings;
  std::vector<SubtreeEntry> entries;
  buffer::FragmentList fragments;
  buffer::HoleFillList hole_fills;

  /// Convenience constructors for the common response shapes.
  static Frame Error(const Status& status);
  static Frame OptionalNode(const std::optional<NodeId>& id);
  /// If this is a kError frame, the Status it carries; OK otherwise.
  Status ToStatus() const;
};

/// Hard limits the decoder enforces (all violations are Status errors).
inline constexpr size_t kMaxFrameBytes = 16u << 20;  ///< 16 MiB payload.
inline constexpr size_t kMaxListLength = 1u << 20;
inline constexpr int kMaxTermDepth = 64;  ///< nested NodeId / Fragment depth.

/// Serializes `frame` as one length-prefixed frame:
///   [u32 payload_len]['M']['X'][u8 version][u8 type][payload]
/// Integers are little-endian; strings and lists are u32-length-prefixed.
std::string EncodeFrame(const Frame& frame);

/// Decodes exactly one frame from `bytes`. Fails (without dying) on short
/// buffers, bad magic/version, unknown type, payload-length mismatch,
/// oversized strings/lists, and over-deep nested terms. When `consumed` is
/// null, trailing bytes after the frame are an error; otherwise it receives
/// the frame's total size.
Result<Frame> DecodeFrame(std::string_view bytes, size_t* consumed = nullptr);

/// Outcome of inspecting the *prefix* of a byte stream for one frame — the
/// primitive a stream transport's reassembly loop needs: DecodeFrame cannot
/// distinguish "wait for more bytes" from "this connection is garbage", but
/// a socket reader must (the former re-arms the read, the latter closes the
/// connection).
enum class FramePeek {
  kNeedMore,  ///< valid prefix, shorter than one frame — keep reading
  kReady,     ///< a whole frame is buffered (`*frame_size` bytes of it)
  kCorrupt,   ///< header can never become a frame — abandon the stream
};

/// Examines the start of `bytes` without decoding the payload. On kReady,
/// `*frame_size` is the frame's total length (header + payload) and
/// `bytes.substr(0, *frame_size)` is ready for DecodeFrame. On kCorrupt,
/// `*error` (optional) names the violation — bad magic/version, unknown
/// type, payload over kMaxFrameBytes.
FramePeek PeekFrame(std::string_view bytes, size_t* frame_size,
                    Status* error = nullptr);

/// A synchronous frame conduit — the client side's view of a mixd server.
/// In-process, MediatorService implements this directly; a socket transport
/// would frame the same bytes onto a connection.
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  /// Delivers one encoded request frame and returns the encoded response
  /// frame. Transport-level failures (not server-reported errors, which
  /// arrive as kError frames) come back as non-OK Results.
  virtual Result<std::string> RoundTrip(const std::string& request_bytes) = 0;

  /// Async submit/complete: delivers the request and invokes `done` with
  /// the response exactly once — possibly on another thread (transport
  /// dispatch thread, service worker). The default shim completes inline
  /// via RoundTrip (deterministic immediate completion — the sim
  /// transport's mode). Implementations guarantee `done` fires even on
  /// failure and on transport teardown (with a non-OK Result), so a caller
  /// blocked on a completion can never hang.
  ///
  /// Lifetime contract: `done` must own everything it touches (capture
  /// shared state by shared_ptr, never a raw `this` that can die first) —
  /// that is what makes dropping the submitting object a safe cancel.
  using AsyncDone = std::function<void(Result<std::string>)>;
  virtual void RoundTripAsync(std::string request_bytes, AsyncDone done) {
    done(RoundTrip(request_bytes));
  }
};

/// Encode + RoundTrip + decode in one step.
Result<Frame> Call(FrameTransport* transport, const Frame& request);

/// Client-side LXP stub: a buffer::LxpWrapper whose fills are frames to a
/// mixd server exporting the wrapper under `uri`. Plugging it under an
/// ordinary BufferComponent demand-pages a *remote* source through the
/// same open-tree machinery as a local one.
class FramedLxpWrapper : public buffer::LxpWrapper {
 public:
  FramedLxpWrapper(FrameTransport* transport, std::string uri)
      : transport_(transport), uri_(std::move(uri)) {}

  std::string GetRoot(const std::string& uri) override;
  buffer::FragmentList Fill(const std::string& hole_id) override;
  buffer::HoleFillList FillMany(const std::vector<std::string>& holes,
                                const buffer::FillBudget& budget) override;

  /// Primary path: frame the exchange and report transport/server failures
  /// as Status — what lets a BufferComponent on top retry or degrade
  /// instead of silently receiving empty results.
  Status TryGetRoot(const std::string& uri, std::string* out) override;
  Status TryFill(const std::string& hole_id,
                 buffer::FragmentList* out) override;
  Status TryFillMany(const std::vector<std::string>& holes,
                     const buffer::FillBudget& budget,
                     buffer::HoleFillList* out) override;

  /// Genuinely async fill: encodes the exchange up front and submits it via
  /// RoundTripAsync. The completion captures only the returned future (no
  /// `this`), so the stub — and the session owning it — may be destroyed
  /// while the exchange is in flight; the transport still completes the
  /// future and the last reference drops it.
  std::shared_ptr<buffer::FillFuture> BeginFillMany(
      const std::vector<std::string>& holes,
      const buffer::FillBudget& budget) override;

  /// The legacy (infallible) LxpWrapper face cannot report failures, so
  /// there errors surface as empty results; the last non-OK status is
  /// retained here either way.
  const Status& last_status() const { return last_status_; }

 private:
  FrameTransport* transport_;
  std::string uri_;
  Status last_status_;
};

}  // namespace mix::service::wire

#endif  // MIX_SERVICE_WIRE_H_
