// Multi-session state for the mixd mediator server.
//
// A *session* is one client's dialogue with one virtual answer document:
// Open(xmas_text) compiles the query (mediator::CompileXmas), instantiates
// the tree of lazy mediators, and — for every wrapper-backed source — gives
// the session its OWN BufferComponent, simulated clock, and LXP channel, so
// concurrent sessions never share mutable navigation state. Shared sources
// registered as plain Navigables must be safe for concurrent reads (a
// DocNavigable over an immutable document is; see DESIGN.md §4 on the Atom
// and node-id thread-safety guarantees that make cross-thread ids work).
//
// Sessions are ref-counted: the registry holds one reference, and each
// in-flight request holds another for the duration of its execution, so an
// eviction or Close racing with a running command (on another session's
// worker) can never destroy state mid-navigation — the session just
// becomes unreachable and is reclaimed when its last command returns.
//
// Eviction: sessions idle longer than the TTL are closed by the sweep that
// runs on every Open (and on demand via EvictIdle) — the paper's mediator
// cannot know when a client drops a handle, so, exactly like the Skolem
// node-ids, lifetime is bounded by policy rather than by client courtesy.
#ifndef MIX_SERVICE_SESSION_H_
#define MIX_SERVICE_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "buffer/buffer.h"
#include "buffer/lxp.h"
#include "buffer/source_cache.h"
#include "core/navigable.h"
#include "core/status.h"
#include "mediator/answer_view_cache.h"
#include "mediator/instantiate.h"
#include "mediator/ir.h"
#include "mediator/passes/pass.h"
#include "mediator/plan_cache.h"
#include "net/fault.h"
#include "net/sim_net.h"
#include "service/metrics.h"

namespace mix::service {

/// The sources a service instance serves its sessions from. Registered
/// once, before the service starts; const thereafter (shared across worker
/// threads without locking).
class SessionEnvironment {
 public:
  /// A source every session navigates directly. `nav` must tolerate
  /// concurrent navigation calls from multiple threads.
  void RegisterShared(std::string name, Navigable* nav);
  /// Same, declaring the source's optimizer capability (e.g. `sigma` for a
  /// source whose SelectSibling answers natively — stacked mediators, doc
  /// navigables). Pushdown is meaningless for a shared navigable and is
  /// ignored; wrapper-backed sources advertise theirs via
  /// LxpWrapper::Capability() instead.
  void RegisterShared(std::string name, Navigable* nav,
                      mediator::SourceCapability capability);

  /// A wrapper-backed source: every session that opens gets its own wrapper
  /// instance (from `factory`), its own BufferComponent and its own
  /// simulated channel/clock — the per-session LXP state of the paper's
  /// Fig. 7, multiplied by the number of clients.
  struct WrapperOptions {
    net::ChannelOptions channel;
    int prefetch_per_command = 0;
    /// Retry discipline for this source's fills (default: no retry).
    net::RetryOptions retry;
    /// Fault injection applied to every session's wrapper instance for this
    /// source (default: none). Each session derives its own injection seed
    /// from `fault_seed` and the session id, so schedules are deterministic
    /// per session yet independent across sessions.
    net::FaultSpec fault;
    uint64_t fault_seed = 0x6d697864'666c7421ull;
    /// Let sessions answer this source's fills from the service's shared
    /// SourceCache (effective only when the service has one). Off for a
    /// source whose wrapper is not deterministic per (uri, hole id).
    bool cache_fills = true;
    /// Capability advertised to the plan optimizer (σ, predicate pushdown,
    /// relational catalog) — typically `wrapper->Capability()` of an
    /// instance the registrant already has. Declared here rather than
    /// probed from `factory` so registration never constructs a wrapper
    /// (factories may count invocations or script per-session behavior).
    /// Default: no capability, optimizer passes that need one stay off.
    buffer::PushdownCapability capability;
    /// Concurrent single-hole readahead flights per session buffer
    /// (BufferComponent::Options::max_in_flight); 0 = demand-only, the
    /// byte-identical baseline.
    int max_in_flight = 0;
    /// Hand this source's prefetch candidates to the service's background
    /// fill engine (effective only when the service runs prefetch workers;
    /// also needs prefetch_per_command > 0 to produce candidates). Opt-in
    /// per source because the workers fill on their OWN wrapper instance:
    /// the source's hole ids must be stateless encodings of positions —
    /// the same property cache_fills already requires.
    bool background_prefetch = false;
  };
  void RegisterWrapperFactory(
      std::string name,
      std::function<std::unique_ptr<buffer::LxpWrapper>()> factory,
      std::string uri, WrapperOptions options);
  void RegisterWrapperFactory(
      std::string name,
      std::function<std::unique_ptr<buffer::LxpWrapper>()> factory,
      std::string uri) {
    RegisterWrapperFactory(std::move(name), std::move(factory), std::move(uri),
                           WrapperOptions());
  }

  /// Exports `wrapper` for remote LXP serving (wire kLxpGetRoot/kLxpFill/
  /// kLxpFillMany frames address it by `uri`). By default the service
  /// serializes access per exported wrapper, so `wrapper` itself needs no
  /// locking. `concurrent = true` opts out of that serialization: pipelined
  /// exchanges for the same uri then run on multiple workers at once (a
  /// client's async readahead window becomes real server-side overlap) —
  /// the wrapper must be internally thread-safe.
  void ExportWrapper(std::string uri, buffer::LxpWrapper* wrapper,
                     bool concurrent = false);
  bool exported_concurrent(const std::string& uri) const {
    return exported_concurrent_.count(uri) > 0;
  }

  struct SharedSource {
    std::string name;
    Navigable* nav;
    mediator::SourceCapability capability;
  };
  struct WrapperSource {
    std::string name;
    std::function<std::unique_ptr<buffer::LxpWrapper>()> factory;
    std::string uri;
    WrapperOptions options;
  };
  const std::vector<SharedSource>& shared() const { return shared_; }
  const std::vector<WrapperSource>& wrappers() const { return wrappers_; }
  const std::map<std::string, buffer::LxpWrapper*>& exported() const {
    return exported_;
  }

 private:
  std::vector<SharedSource> shared_;
  std::vector<WrapperSource> wrappers_;
  std::map<std::string, buffer::LxpWrapper*> exported_;
  std::set<std::string> exported_concurrent_;
};

/// Hands a batch of prefetch candidates to a background fill engine:
/// (source name, the session's pinned cache generation, hole ids, and the
/// session buffer's mailbox for splice-on-next-command delivery). Supplied
/// by the service layer (service/prefetcher.h); empty function = background
/// prefetch off, sources fall back to the synchronous prefetch path.
using PrefetchDispatch = std::function<void(
    const std::string& source, int64_t generation,
    std::vector<std::string> holes,
    std::shared_ptr<buffer::PushMailbox> mailbox)>;

/// One open session. Construction happens on a worker (plan compilation is
/// part of the Open request); navigation state is only touched under the
/// executor's per-session serialization.
class Session {
 public:
  /// `fault_counters` (optional) aggregates every source buffer's fault/
  /// retry/degradation counts service-wide. `plan` is the compiled query —
  /// shared and immutable, typically from a PlanCache; the session keeps a
  /// reference for its lifetime. `source_cache` (optional) is the shared
  /// fragment cache every cache_fills source consults; each source's
  /// generation is pinned here, at build time.
  /// `view_snapshot` (optional) marks an answer-view-served session: `plan`
  /// is then the rewritten serving plan over the snapshot, which is pinned
  /// for the session's lifetime and registered under
  /// mediator::kAnswerViewSourceName. No wrappers, buffers, channels or
  /// clocks are built at all — the whole dialogue navigates the immutable
  /// snapshot, with zero wrapper exchanges.
  static Result<std::shared_ptr<Session>> Build(
      uint64_t id, const SessionEnvironment& env,
      std::shared_ptr<const mediator::PlanNode> plan,
      net::FaultCounters* fault_counters = nullptr,
      buffer::SourceCache* source_cache = nullptr,
      std::shared_ptr<const mediator::AnswerSnapshot> view_snapshot = nullptr,
      const PrefetchDispatch& prefetch_dispatch = {});

  /// Convenience overload: compiles `xmas_text` directly (no plan cache).
  static Result<std::shared_ptr<Session>> Build(
      uint64_t id, const SessionEnvironment& env, const std::string& xmas_text,
      net::FaultCounters* fault_counters = nullptr,
      buffer::SourceCache* source_cache = nullptr);

  uint64_t id() const { return id_; }
  Navigable* document() { return document_; }
  SessionMetrics& metrics() { return metrics_; }

  /// Per-command deadline plumbing: the executor's remaining real budget
  /// (ns; < 0 = none) becomes each source buffer's virtual fill deadline —
  /// 1 real ns = 1 simulated ns — so retry backoff can never outlive the
  /// request that is paying for it.
  void BeginCommand(int64_t budget_ns);
  void EndCommand();

  /// Drains the first error latched by any source buffer during the last
  /// command (OK when navigation was clean) — the typed face of degraded
  /// answers, reported per command by the service layer.
  Status TakeSourceStatus();

  /// Idempotency token of the Open that created this session ("" = none);
  /// the registry indexes live sessions by it so a replayed Open (a
  /// failover re-issue whose response was lost) re-attaches instead of
  /// leaking a duplicate session.
  const std::string& open_token() const { return open_token_; }
  void set_open_token(std::string token) { open_token_ = std::move(token); }

  /// Steady-clock ns of the last dispatched command (atomic: touched by the
  /// dispatcher, read by the evicting sweep).
  int64_t last_active_ns() const {
    return last_active_ns_.load(std::memory_order_relaxed);
  }
  void Touch(int64_t now_ns) {
    last_active_ns_.store(now_ns, std::memory_order_relaxed);
  }

  /// Folds the per-source buffer/channel counters into metrics() — called
  /// under the session's serialization before a metrics read.
  void RefreshSourceMetrics();

  // --- node-id boundary validation (service/service.cc) ---
  //
  // Answer-document node ids embed plan-instance-private state (operator
  // fw-ids wrap a ValueSpace owner stamp and navigable handles), and the
  // navigable layer CHECK-fails on ids it never minted — an internal-bug
  // trap that a remote peer must not be able to spring with a stale or
  // fabricated frame. The service therefore accepts an inbound node id
  // only if this session previously issued it; everything else gets a
  // typed kInvalidArgument frame. Touched only under the executor's
  // per-session serialization.

  /// True when `id` was handed out by a response of this session.
  bool KnowsNode(const NodeId& id) const {
    return issued_nodes_.find(id) != issued_nodes_.end();
  }
  void RememberNode(const NodeId& id) {
    if (id.valid()) issued_nodes_.insert(id);
  }

  // --- answer-view cache plumbing (service/service.cc) ---

  /// True when this session is served from a cached answer snapshot.
  bool served_from_view() const { return view_snapshot_ != nullptr; }

  /// Records the descriptor (and the answer-view generations pinned at
  /// open) under which this session's answer may later be published.
  void SetPublishableShape(mediator::ViewShape shape,
                           std::map<std::string, int64_t> generations) {
    publish_shape_ = std::move(shape);
    publish_generations_ = std::move(generations);
  }

  /// True when a full-depth root export of this session is publishable:
  /// it has a valid descriptor, is not itself view-served (no derived
  /// views of views), and has not published yet. Touched only under the
  /// executor's per-session serialization.
  bool CanPublishView() const {
    return publish_shape_.valid && view_snapshot_ == nullptr && !published_;
  }
  void MarkViewPublished() { published_ = true; }
  const mediator::ViewShape& publish_shape() const { return publish_shape_; }
  const std::map<std::string, int64_t>& publish_generations() const {
    return publish_generations_;
  }

 private:
  Session() = default;

  uint64_t id_ = 0;
  // Order matters for destruction: the mediator navigates buffers, buffers
  // call wrappers and charge channels; members are destroyed bottom-up.
  std::vector<std::unique_ptr<net::SimClock>> clocks_;
  std::vector<std::unique_ptr<net::Channel>> channels_;
  std::vector<std::unique_ptr<buffer::LxpWrapper>> wrappers_;
  std::vector<std::unique_ptr<buffer::BufferComponent>> buffers_;
  /// The (possibly cache-shared) compiled plan; the mediator tree holds
  /// references into it, so it must outlive mediator_ (declared before).
  std::shared_ptr<const mediator::PlanNode> plan_;
  /// Pinned answer snapshot for view-served sessions (the mediator
  /// navigates into it, so it too must outlive mediator_).
  std::shared_ptr<const mediator::AnswerSnapshot> view_snapshot_;
  std::unique_ptr<mediator::LazyMediator> mediator_;
  Navigable* document_ = nullptr;
  SessionMetrics metrics_;
  std::string open_token_;
  std::atomic<int64_t> last_active_ns_{0};
  mediator::ViewShape publish_shape_;
  std::map<std::string, int64_t> publish_generations_;
  bool published_ = false;
  /// Every node id a response of this session has handed out (the client's
  /// working set — bounded by what it actually navigated).
  std::unordered_set<NodeId, NodeIdHash> issued_nodes_;
};

/// Id → session map with TTL eviction. Thread-safe; lookups hand out
/// shared_ptrs (see file comment for the lifetime argument).
class SessionRegistry {
 public:
  struct Options {
    size_t max_sessions = 1024;
    /// Idle TTL in steady-clock ns; < 0 disables eviction.
    int64_t idle_ttl_ns = -1;
    /// Service-wide fault counters handed to every session built.
    net::FaultCounters* fault_counters = nullptr;
    /// Shared source-fragment cache handed to every session built
    /// (nullptr: sessions always go to their wrappers).
    buffer::SourceCache* source_cache = nullptr;
    /// Compiled-plan cache consulted before CompileXmas on Open (nullptr:
    /// every Open compiles). Both caches are used OUTSIDE the registry
    /// lock, so a slow compile or fill never stalls unrelated sessions.
    mediator::PlanCache* plan_cache = nullptr;
    /// Optimizer configuration for the no-plan-cache path. When plan_cache
    /// is set its Options::optimizer governs and this field is ignored.
    mediator::passes::OptimizerOptions optimizer;
    /// Answer-view cache consulted on Open for subsumption-based serving
    /// (nullptr or disabled: every Open builds a live session). Used
    /// OUTSIDE the registry lock, like the other caches.
    mediator::AnswerViewCache* answer_view_cache = nullptr;
    /// Background fill engine hook handed to every session built (empty:
    /// background_prefetch sources keep the synchronous prefetch path).
    PrefetchDispatch prefetch_dispatch;
  };

  SessionRegistry(const SessionEnvironment* env, Options options)
      : env_(env), options_(options) {}

  /// Compiles and instantiates; runs the idle sweep first (hint-gated —
  /// a full-registry scan only happens when some session could actually
  /// have expired) so abandoned sessions make room. kUnavailable when the
  /// session table is full.
  ///
  /// `idempotency_token` ("" = none) makes the Open replay-safe: when a
  /// live session was already opened under the same token, its id is
  /// returned and no new session is built. A router failing over a lost
  /// Open response re-issues the frame with the original token, so the
  /// backend that DID serve the first attempt hands back the same session
  /// instead of leaking a duplicate until TTL eviction.
  Result<uint64_t> Open(const std::string& xmas_text,
                        const std::string& idempotency_token = "");

  /// kNotFound for unknown (or already closed/evicted) ids.
  Status Close(uint64_t id);

  /// nullptr when unknown; touches the session's idle clock.
  std::shared_ptr<Session> Find(uint64_t id);

  /// Evicts sessions idle past the TTL; returns how many.
  size_t EvictIdle();

  /// Cheap sweep hook for the command/execute path: runs EvictIdle only
  /// when some session could actually have expired (lock-free early-out on
  /// the cached next-expiry hint). Without this, a service that stops
  /// seeing Opens never reclaims abandoned sessions. `keep_id` (0 = none)
  /// names the session serving the current command — it was just touched,
  /// but with a TTL shorter than clock granularity even "just touched" can
  /// look expired, and a session must never evict itself mid-dialogue.
  size_t MaybeEvictIdle(uint64_t keep_id = 0);

  struct Counters {
    int64_t open = 0;
    int64_t opened = 0;
    int64_t closed = 0;
    int64_t evicted = 0;
    /// Full-registry eviction scans actually performed (each is O(open
    /// sessions) under the registry lock). The expiry hint exists to keep
    /// this near zero while nothing is expiring — the fleet bench opens
    /// thousands of sessions and must not pay a scan per Open.
    int64_t sweep_scans = 0;
    /// Opens answered from a live session via idempotency token.
    int64_t open_replays = 0;
  };
  Counters counters() const;

  /// Collects a snapshot of every live session's id (diagnostics/tests).
  std::vector<uint64_t> LiveIds() const;

 private:
  static int64_t NowNs();

  size_t EvictIdleExcept(uint64_t keep_id);

  const SessionEnvironment* env_;
  Options options_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  /// Live idempotency tokens -> session id (entries removed on close and
  /// eviction; sessions opened without a token never enter this map).
  std::unordered_map<std::string, uint64_t> tokens_;
  uint64_t next_id_ = 1;
  Counters counters_;
  /// Earliest steady-clock ns at which any session can expire (INT64_MAX
  /// when none can) — the MaybeEvictIdle early-out. Monotone-min updated on
  /// Open; recomputed exactly by each EvictIdle sweep.
  std::atomic<int64_t> next_expiry_hint_ns_{
      std::numeric_limits<int64_t>::max()};
};

}  // namespace mix::service

#endif  // MIX_SERVICE_SESSION_H_
