#include "service/metrics.h"

namespace mix::service {

namespace {

int BucketOf(int64_t ns) {
  if (ns <= 1) return 0;
  int b = 0;
  uint64_t v = static_cast<uint64_t>(ns);
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

std::string PassCounters(
    const std::vector<std::pair<std::string, int64_t>>& passes) {
  std::string out;
  for (const auto& [name, applied] : passes) {
    if (!out.empty()) out += ' ';
    out += name + "=" + std::to_string(applied);
  }
  return out;
}

std::string ShardCounters(
    const std::vector<ServiceMetricsSnapshot::CacheShard>& shards) {
  std::string out;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += std::to_string(i) + "=" + std::to_string(shards[i].hits) + "/" +
           std::to_string(shards[i].misses) + "/" +
           std::to_string(shards[i].bytes);
  }
  return out;
}

}  // namespace

void LatencyHistogram::Record(int64_t ns) {
  int b = BucketOf(ns < 0 ? 0 : ns);
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
  ++count_;
}

int64_t LatencyHistogram::PercentileNs(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count_ - 1));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return int64_t{1} << (i + 1);
  }
  return int64_t{1} << kBuckets;
}

LatencyHistogram& LatencyHistogram::operator+=(const LatencyHistogram& o) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  count_ += o.count_;
  return *this;
}

std::string SessionMetrics::ToString() const {
  return "requests=" + std::to_string(requests) +
         " errors=" + std::to_string(errors) +
         " fills=" + std::to_string(fills) +
         " p50_us=" + std::to_string(latency.PercentileNs(0.5) / 1000) +
         " lxp{" + lxp.ToString() + "}" +
         " faults{seen=" + std::to_string(source_faults) +
         " retries=" + std::to_string(source_retries) +
         " backoff_us=" + std::to_string(source_backoff_ns / 1000) +
         " degraded=" + std::to_string(degraded_holes) + "}" +
         " cache{hits=" + std::to_string(cache_hits) +
         " misses=" + std::to_string(cache_misses) + "}" +
         " plan{rewrites=" + std::to_string(plan_rewrites) + "}" +
         " async{readahead=" + std::to_string(readahead_issued) +
         " hits=" + std::to_string(readahead_hits) +
         " fallbacks=" + std::to_string(readahead_fallbacks) +
         " pushed=" + std::to_string(pushed_applied) +
         " pushed_dropped=" + std::to_string(pushed_dropped) + "}" +
         " view_served=" + std::to_string(view_served);
}

std::string NetStats::ToString() const {
  return "accepts=" + std::to_string(accepts) +
         " conns=" + std::to_string(conns_active) + "/" +
         std::to_string(conns_closed) +
         " rx_bytes=" + std::to_string(rx_bytes) +
         " tx_bytes=" + std::to_string(tx_bytes) +
         " frames_in=" + std::to_string(frames_in) +
         " frames_out=" + std::to_string(frames_out) +
         " partials=" + std::to_string(partial_reads) +
         " stalls=" + std::to_string(backpressure_stalls) +
         " slow_closes=" + std::to_string(slow_reader_closes) +
         " idle_closes=" + std::to_string(idle_closes) +
         " decode_closes=" + std::to_string(decode_closes) +
         " read_pauses=" + std::to_string(read_pauses);
}

std::string ServiceMetricsSnapshot::ToString() const {
  return (backend_id.empty() ? std::string()
                             : "backend=" + backend_id + " ") +
         "sessions{open=" + std::to_string(sessions_open) +
         " opened=" + std::to_string(sessions_opened) +
         " closed=" + std::to_string(sessions_closed) +
         " evicted=" + std::to_string(sessions_evicted) +
         " replays=" + std::to_string(sessions_open_replays) +
         " sweeps=" + std::to_string(registry_sweep_scans) + "}" +
         " requests{ok=" + std::to_string(requests_ok) +
         " error=" + std::to_string(requests_error) +
         " rejected=" + std::to_string(requests_rejected) +
         " expired=" + std::to_string(requests_expired) +
         " queued=" + std::to_string(queue_depth) + "}" +
         " frames{in=" + std::to_string(frames_in) +
         " out=" + std::to_string(frames_out) + "}" +
         " wire{" + wire.ToString() + "}" +
         " latency{p50_us=" + std::to_string(p50_ns / 1000) +
         " p99_us=" + std::to_string(p99_ns / 1000) + "}" +
         " faults{seen=" + std::to_string(source_faults) +
         " retries=" + std::to_string(source_retries) +
         " backoff_us=" + std::to_string(source_backoff_ns / 1000) +
         " degraded=" + std::to_string(degraded_holes) + "}" +
         " cache{hits=" + std::to_string(cache_hits) +
         " misses=" + std::to_string(cache_misses) +
         " evictions=" + std::to_string(cache_evictions) +
         " bytes=" + std::to_string(cache_bytes) +
         " peak_bytes=" + std::to_string(cache_peak_bytes) +
         " entries=" + std::to_string(cache_entries) + "}" +
         " shards{" + ShardCounters(cache_shards) + "}" +
         " plans{hits=" + std::to_string(plan_cache_hits) +
         " misses=" + std::to_string(plan_cache_misses) +
         " optimized=" + std::to_string(plans_optimized) +
         " rewrites=" + std::to_string(optimizer_rewrites) + "}" +
         " passes{" + PassCounters(optimizer_passes) + "}" +
         " views{hits=" + std::to_string(view_hits) +
         " misses=" + std::to_string(view_misses) +
         " publishes=" + std::to_string(view_publishes) +
         " evictions=" + std::to_string(view_evictions) +
         " invalidations=" + std::to_string(view_invalidations) +
         " bytes=" + std::to_string(view_bytes) +
         " entries=" + std::to_string(view_entries) + "}" +
         " view_rejects{" + PassCounters(view_rejects) + "}" +
         " prefetch{jobs=" + std::to_string(prefetch_jobs) +
         " dropped=" + std::to_string(prefetch_jobs_dropped) +
         " exchanges=" + std::to_string(prefetch_exchanges) +
         " fills=" + std::to_string(prefetch_fills) +
         " published=" + std::to_string(prefetch_published) +
         " delivered=" + std::to_string(prefetch_delivered) +
         " skipped=" + std::to_string(prefetch_skipped_cached) +
         " failures=" + std::to_string(prefetch_failures) + "}" +
         " net{" + net.ToString() + "}";
}

}  // namespace mix::service
