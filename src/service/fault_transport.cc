#include "service/fault_transport.h"

#include <algorithm>

#include "core/check.h"

namespace mix::service {

using net::FaultDecision;
using net::FaultKind;

FaultyFrameTransport::FaultyFrameTransport(wire::FrameTransport* inner,
                                           const net::FaultSpec& spec,
                                           uint64_t seed)
    : inner_(inner),
      policy_(spec, seed),
      scramble_(seed ^ 0x9e3779b97f4a7c15ull) {
  MIX_CHECK(inner_ != nullptr);
}

Result<std::string> FaultyFrameTransport::RoundTrip(
    const std::string& request_bytes) {
  FaultDecision d = policy_.Decide("rpc");
  if (d.kind == FaultKind::kFail) return policy_.FailStatus();
  Result<std::string> resp = inner_->RoundTrip(request_bytes);
  if (!resp.ok()) return resp;
  std::string bytes = std::move(resp.value());
  switch (d.kind) {
    case FaultKind::kTruncate:
      // The connection dropped mid-response: the length prefix no longer
      // matches the payload, which DecodeFrame rejects.
      bytes.resize(bytes.size() / 2);
      break;
    case FaultKind::kGarble: {
      // Flip a header byte (length prefix / magic / version) — always
      // validated by the decoder, so garbling is always detected.
      if (!bytes.empty()) {
        size_t at = static_cast<size_t>(scramble_.NextBelow(
            std::min<size_t>(bytes.size(), 7)));
        bytes[at] = static_cast<char>(bytes[at] ^ 0x5a);
      }
      break;
    }
    case FaultKind::kDuplicate:
      // The response arrives twice back-to-back; trailing bytes after one
      // frame are a decode error for a single-frame round trip.
      bytes += bytes;
      break;
    default:
      break;
  }
  return bytes;
}

}  // namespace mix::service
