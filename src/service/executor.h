// Fixed worker pool with per-key FIFO serialization and bounded admission.
//
// The mixd concurrency model: commands of ONE session execute in submission
// order, one at a time (a DOM-VXD dialogue is inherently sequential — lazy
// mediators and buffers mutate per-session state), while DISTINCT sessions
// run in parallel across a fixed pool of workers. The executor realizes
// this with a two-level queue: per-key FIFOs plus a ready-list of keys that
// have runnable work; a worker claims a key, runs exactly one task, and
// requeues the key if more tasks arrived meanwhile.
//
// Overload is handled at admission: when the total number of queued tasks
// reaches the bound, Submit refuses with kUnavailable and the caller turns
// that into an error frame — the queue can never grow without limit and a
// slow session cannot wedge the service.
//
// Deadlines are checked when a task is dequeued: a task that waited past
// its deadline is *cancelled* — its callback runs immediately with
// kDeadlineExceeded and the session's work it would have done is skipped.
// (Tasks already executing are not interrupted; C++ offers no safe
// preemption, and one navigation command is short.)
#ifndef MIX_SERVICE_EXECUTOR_H_
#define MIX_SERVICE_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/status.h"

namespace mix::service {

class Executor {
 public:
  /// A task receives its admission outcome: OK to do the work, or
  /// kDeadlineExceeded / kUnavailable to report and bail. The task MUST
  /// complete its request either way (it owns the response path).
  using Task = std::function<void(const Status& admission)>;

  struct Options {
    int workers = 4;
    size_t queue_capacity = 256;
  };

  struct Stats {
    int64_t accepted = 0;
    int64_t rejected = 0;   ///< refused at admission (queue full / stopping).
    int64_t expired = 0;    ///< dequeued past their deadline.
    int64_t executed = 0;   ///< ran with an OK admission status.
    int64_t queued = 0;     ///< tasks currently waiting.
  };

  explicit Executor(Options options);
  /// Drains: queued tasks run with a kUnavailable admission status (so
  /// blocked callers are released), then workers are joined.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues `task` under `key`. `deadline` of time_point::max() means
  /// none. Returns kUnavailable — WITHOUT enqueuing or running the task —
  /// when the admission queue is full or the executor is stopping.
  Status Submit(uint64_t key, std::chrono::steady_clock::time_point deadline,
                Task task);

  Stats stats() const;

 private:
  struct Item {
    std::chrono::steady_clock::time_point deadline;
    Task task;
  };
  struct KeyQueue {
    std::deque<Item> items;
    /// True while the key is in ready_ or a worker is running its task —
    /// the invariant that makes per-key execution serial.
    bool scheduled = false;
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options options_;
  std::unordered_map<uint64_t, KeyQueue> queues_;
  std::deque<uint64_t> ready_;
  size_t queued_total_ = 0;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace mix::service

#endif  // MIX_SERVICE_EXECUTOR_H_
