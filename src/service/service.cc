#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <future>

namespace mix::service {

namespace {

using wire::Frame;
using wire::MsgType;

std::chrono::steady_clock::time_point DeadlineFor(const Frame& request) {
  if (request.deadline_ns <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  return std::chrono::steady_clock::now() +
         std::chrono::nanoseconds(request.deadline_ns);
}

bool IsLxp(MsgType t) {
  return t == MsgType::kLxpGetRoot || t == MsgType::kLxpFill ||
         t == MsgType::kLxpFillMany;
}

mediator::ColumnType ConvertColumnType(
    buffer::PushdownCapability::ColumnType t) {
  switch (t) {
    case buffer::PushdownCapability::ColumnType::kInt:
      return mediator::ColumnType::kInt;
    case buffer::PushdownCapability::ColumnType::kDouble:
      return mediator::ColumnType::kDouble;
    case buffer::PushdownCapability::ColumnType::kString:
      return mediator::ColumnType::kString;
  }
  return mediator::ColumnType::kString;
}

/// Builds the optimizer's source-capability map from the environment:
/// shared sources contribute their declared σ capability; wrapper sources
/// the capability declared at registration (WrapperOptions::capability).
/// Pushdown is honored only for wrappers registered on the whole-database
/// "db" view — against any other view the plan's paths do not match the
/// relational catalog.
mediator::passes::OptimizerOptions BuildOptimizerOptions(
    const SessionEnvironment& env, int level) {
  mediator::passes::OptimizerOptions opts;
  opts.level = level;
  if (level <= 0) return opts;
  for (const auto& s : env.shared()) {
    if (s.capability.sigma) {
      mediator::SourceCapability cap;
      cap.sigma = true;
      opts.sources[s.name] = cap;
    }
  }
  for (const auto& w : env.wrappers()) {
    const buffer::PushdownCapability& probed = w.options.capability;
    mediator::SourceCapability cap;
    cap.sigma = probed.sigma;
    if (probed.pushdown && w.uri == "db") {
      cap.pushdown = true;
      cap.database = probed.database;
      for (const auto& [table, cols] : probed.tables) {
        std::vector<mediator::SourceCapability::Column> converted;
        converted.reserve(cols.size());
        for (const auto& c : cols) {
          converted.push_back({c.name, ConvertColumnType(c.type)});
        }
        cap.tables[table] = std::move(converted);
      }
    }
    if (cap.sigma || cap.pushdown) opts.sources[w.name] = cap;
  }
  return opts;
}

mediator::PlanCache::Options PlanCacheOptions(
    const SessionEnvironment& env, const MediatorService::Options& options) {
  mediator::PlanCache::Options o;
  o.capacity = options.plan_cache_entries;
  o.optimizer = BuildOptimizerOptions(env, options.optimizer_level);
  return o;
}

/// Registry hook -> prefetcher pool; empty when the pool is off.
PrefetchDispatch MakePrefetchDispatch(BackgroundPrefetcher* pool) {
  if (pool == nullptr) return {};
  return [pool](const std::string& source, int64_t generation,
                std::vector<std::string> holes,
                std::shared_ptr<buffer::PushMailbox> mailbox) {
    pool->Submit(source, generation, std::move(holes), std::move(mailbox));
  };
}

}  // namespace

MediatorService::MediatorService(const SessionEnvironment* env, Options options)
    : env_(env),
      options_(options),
      source_cache_(buffer::SourceCache::Options{options.source_cache_bytes,
                                                 options.source_cache_shards}),
      plan_cache_(PlanCacheOptions(*env, options)),
      answer_view_cache_(mediator::AnswerViewCache::Options{
          options.answer_view_cache_bytes}),
      prefetcher_(options.prefetch_workers > 0
                      ? std::make_unique<BackgroundPrefetcher>(
                            env,
                            options.source_cache_bytes > 0 ? &source_cache_
                                                           : nullptr,
                            BackgroundPrefetcher::Options{
                                options.prefetch_workers,
                                options.prefetch_fills_per_job})
                      : nullptr),
      registry_(env,
                SessionRegistry::Options{
                    options.max_sessions, options.session_idle_ttl_ns,
                    &fault_counters_,
                    options.source_cache_bytes > 0 ? &source_cache_ : nullptr,
                    options.plan_cache_entries > 0 ? &plan_cache_ : nullptr,
                    // The no-plan-cache path optimizes with the same config.
                    BuildOptimizerOptions(*env, options.optimizer_level),
                    options.answer_view_cache_bytes > 0 ? &answer_view_cache_
                                                        : nullptr,
                    MakePrefetchDispatch(prefetcher_.get())}),
      wire_channel_(&wire_clock_, options.wire_costs),
      executor_(Executor::Options{options.workers, options.queue_capacity}) {
  uint64_t key = kWrapperKeyBase;
  for (const auto& [uri, wrapper] : env_->exported()) {
    (void)wrapper;
    // Key 0 marks a concurrent export: KeyForRequest hands those ops a
    // fresh lane each so pipelined exchanges overlap across the pool.
    wrapper_keys_[uri] = env_->exported_concurrent(uri) ? 0 : key++;
  }
}

MediatorService::~MediatorService() = default;

uint64_t MediatorService::KeyForRequest(const Frame& request,
                                        Status* error) const {
  switch (request.type) {
    case MsgType::kOpen: {
      // Opens have no session yet; give each a fresh key so concurrent
      // opens spread over the pool instead of serializing on one lane.
      static std::atomic<uint64_t> open_key{uint64_t{1} << 62};
      return open_key.fetch_add(1, std::memory_order_relaxed);
    }
    case MsgType::kLxpGetRoot:
    case MsgType::kLxpFill:
    case MsgType::kLxpFillMany: {
      auto it = wrapper_keys_.find(request.text);
      if (it == wrapper_keys_.end()) {
        *error = Status::NotFound("no exported wrapper '" + request.text + "'");
        return 0;
      }
      if (it->second == 0) {
        // Concurrent export: the wrapper locks itself, each exchange gets
        // its own lane (same spread trick as kOpen, distinct key range).
        static std::atomic<uint64_t> lxp_key{uint64_t{1} << 61};
        return lxp_key.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second;
    }
    default:
      if (request.session == 0) {
        *error = Status::InvalidArgument("request carries no session id");
        return 0;
      }
      return request.session;
  }
}

void MediatorService::CallAsync(
    std::string request_bytes,
    std::function<void(std::string response_bytes)> done) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++frames_in_;
    wire_channel_.Send(static_cast<int64_t>(request_bytes.size()));
  }
  auto respond = [this, done = std::move(done)](const Frame& response) {
    std::string bytes = wire::EncodeFrame(response);
    FinishRequest(bytes, response.type == MsgType::kError);
    done(std::move(bytes));
  };

  Result<Frame> decoded = wire::DecodeFrame(request_bytes);
  if (!decoded.ok()) {
    respond(Frame::Error(decoded.status()));
    return;
  }
  Frame request = std::move(decoded).ValueOrDie();

  // Metrics requests read shared state only; answer without a queue trip.
  if (request.type == MsgType::kMetrics) {
    Frame f;
    f.type = MsgType::kMetricsText;
    f.text = Metrics().ToString();
    respond(f);
    return;
  }

  Status key_error;
  uint64_t key = KeyForRequest(request, &key_error);
  if (!key_error.ok()) {
    respond(Frame::Error(key_error));
    return;
  }

  auto started = std::chrono::steady_clock::now();
  auto deadline = DeadlineFor(request);
  Status admitted = executor_.Submit(
      key, deadline,
      [this, request = std::move(request), respond, started,
       deadline](const Status& admission) {
        Frame response = admission.ok() ? Execute(request, deadline)
                                        : Frame::Error(admission);
        auto elapsed = std::chrono::steady_clock::now() - started;
        {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          latency_.Record(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count());
        }
        respond(response);
      });
  if (!admitted.ok()) {
    respond(Frame::Error(admitted));
  }
}

Result<std::string> MediatorService::RoundTrip(const std::string& request_bytes) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  CallAsync(request_bytes,
            [&promise](std::string bytes) { promise.set_value(std::move(bytes)); });
  return future.get();
}

void MediatorService::FinishRequest(const std::string& response_bytes,
                                    bool is_error) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  ++frames_out_;
  if (is_error) {
    ++requests_error_;
  } else {
    ++requests_ok_;
  }
  wire_channel_.Send(static_cast<int64_t>(response_bytes.size()));
}

Frame MediatorService::Execute(
    const Frame& request, std::chrono::steady_clock::time_point deadline) {
  switch (request.type) {
    case MsgType::kOpen:
      return ExecuteOpen(request);
    case MsgType::kClose: {
      Status s = registry_.Close(request.session);
      if (!s.ok()) return Frame::Error(s);
      Frame f;
      f.type = MsgType::kCloseOk;
      f.session = request.session;
      return f;
    }
    default:
      break;
  }
  if (IsLxp(request.type)) return ExecuteLxp(request);

  std::shared_ptr<Session> session = registry_.Find(request.session);
  // TTL sweep from the command path too — a service no longer seeing Opens
  // must still reclaim abandoned sessions. The serving session is excluded
  // (a session must never evict itself mid-dialogue); MaybeEvictIdle
  // early-outs for free while nothing is near expiry.
  registry_.MaybeEvictIdle(request.session);
  if (session == nullptr) {
    return Frame::Error(Status::NotFound("unknown session " +
                                         std::to_string(request.session)));
  }
  // Propagate the executor deadline's remaining budget into the session's
  // source buffers as a virtual fill deadline (1 real ns = 1 simulated ns).
  int64_t budget_ns = -1;
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    auto remaining = deadline - std::chrono::steady_clock::now();
    budget_ns = std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::nanoseconds>(remaining)
               .count());
  }
  session->BeginCommand(budget_ns);
  Frame response = ExecuteNavigation(request, *session);
  session->EndCommand();
  // A degraded or deadline-cut fill surfaces as a typed error frame even
  // when navigation produced a partial answer shape.
  Status source = session->TakeSourceStatus();
  if (!source.ok() && response.type != MsgType::kError) {
    response = Frame::Error(source);
  }
  // Publish hook for the answer-view cache: a full-depth FetchSubtree of
  // the document root that completed with no source fault is a
  // navigation-complete snapshot of this session's answer. Publish runs
  // here (not inside the session) because only this path knows the
  // exchange succeeded end-to-end; Publish itself re-rejects truncated or
  // degraded entries, so a partial snapshot can never enter the cache.
  if (source.ok() && response.type == MsgType::kSubtree &&
      request.number < 0 && session->CanPublishView() &&
      request.node == session->document()->Root()) {
    answer_view_cache_.Publish(session->publish_shape(), response.entries,
                               session->publish_generations());
    session->MarkViewPublished();
  }
  session->metrics().requests += 1;
  if (response.type == MsgType::kError) session->metrics().errors += 1;
  return response;
}

Frame MediatorService::ExecuteOpen(const Frame& request) {
  // text2 carries the optional idempotency token (kOpen never used it, so
  // older clients — which always send it empty — are unaffected).
  Result<uint64_t> id = registry_.Open(request.text, request.text2);
  if (!id.ok()) return Frame::Error(id.status());
  Frame f;
  f.type = MsgType::kOpenOk;
  f.session = id.value();
  return f;
}

Frame MediatorService::ExecuteLxp(const Frame& request) {
  auto it = env_->exported().find(request.text);
  if (it == env_->exported().end()) {
    return Frame::Error(
        Status::NotFound("no exported wrapper '" + request.text + "'"));
  }
  buffer::LxpWrapper* wrapper = it->second;
  Frame f;
  switch (request.type) {
    case MsgType::kLxpGetRoot:
      f.type = MsgType::kLxpRoot;
      f.text = wrapper->GetRoot(request.text);
      return f;
    case MsgType::kLxpFill:
      f.type = MsgType::kLxpFillResp;
      f.fragments = wrapper->Fill(request.text2);
      return f;
    case MsgType::kLxpFillMany: {
      f.type = MsgType::kLxpFills;
      buffer::FillBudget budget;
      budget.elements = request.number;
      budget.fills = request.number2;
      f.hole_fills = wrapper->FillMany(request.strings, budget);
      return f;
    }
    default:
      return Frame::Error(Status::Internal("non-LXP frame in LXP path"));
  }
}

Frame MediatorService::ExecuteNavigation(const Frame& request,
                                         Session& session) {
  Navigable* doc = session.document();
  // Boundary validation: every command except kRoot navigates FROM an id the
  // client holds, and ids are only meaningful to the session that minted
  // them (operator fw-ids carry a plan-instance owner stamp — the navigable
  // layer CHECK-fails on foreign ones). Reject anything this session never
  // issued with a typed frame instead of letting a stale handle — a
  // restarted peer, a failed-over client, a fuzzer — abort the process.
  if (request.type != MsgType::kRoot && !session.KnowsNode(request.node)) {
    return Frame::Error(Status::InvalidArgument(
        "node id was not issued by this session (stale or foreign handle)"));
  }
  Frame f;
  switch (request.type) {
    case MsgType::kRoot:
      f = Frame::OptionalNode(doc->Root());
      break;
    case MsgType::kDown:
      f = Frame::OptionalNode(doc->Down(request.node));
      break;
    case MsgType::kRight:
      f = Frame::OptionalNode(doc->Right(request.node));
      break;
    case MsgType::kFetch:
      f.type = MsgType::kLabel;
      f.text = doc->Fetch(request.node);
      return f;
    case MsgType::kSelectSibling:
      f = Frame::OptionalNode(doc->SelectSibling(
          request.node, LabelPredicate::Equals(request.text2)));
      break;
    case MsgType::kNthChild:
      f = Frame::OptionalNode(doc->NthChild(request.node, request.number));
      break;
    case MsgType::kDownAll:
      f.type = MsgType::kNodeList;
      doc->DownAll(request.node, &f.nodes);
      break;
    case MsgType::kNextSiblings:
      f.type = MsgType::kNodeList;
      doc->NextSiblings(request.node, request.number, &f.nodes);
      break;
    case MsgType::kFetchSubtree:
      f.type = MsgType::kSubtree;
      doc->FetchSubtree(request.node, request.number, &f.entries);
      return f;
    default:
      return Frame::Error(Status::InvalidArgument(
          "frame type is not a request: " +
          std::to_string(static_cast<int>(request.type))));
  }
  // Remember what we handed out so the next inbound id can be validated.
  if (f.type == MsgType::kNode && f.flag) session.RememberNode(f.node);
  if (f.type == MsgType::kNodeList) {
    for (const NodeId& n : f.nodes) session.RememberNode(n);
  }
  return f;
}

ServiceMetricsSnapshot MediatorService::Metrics() const {
  ServiceMetricsSnapshot snap;
  snap.backend_id = options_.backend_id;
  SessionRegistry::Counters sessions = registry_.counters();
  snap.sessions_open = sessions.open;
  snap.sessions_opened = sessions.opened;
  snap.sessions_closed = sessions.closed;
  snap.sessions_evicted = sessions.evicted;
  snap.sessions_open_replays = sessions.open_replays;
  snap.registry_sweep_scans = sessions.sweep_scans;
  Executor::Stats exec = executor_.stats();
  snap.requests_rejected = exec.rejected;
  snap.requests_expired = exec.expired;
  snap.queue_depth = exec.queued;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    snap.requests_ok = requests_ok_;
    snap.requests_error = requests_error_;
    snap.frames_in = frames_in_;
    snap.frames_out = frames_out_;
    snap.wire = wire_channel_.stats();
    snap.p50_ns = latency_.PercentileNs(0.5);
    snap.p99_ns = latency_.PercentileNs(0.99);
  }
  snap.source_faults = fault_counters_.faults.load(std::memory_order_relaxed);
  snap.source_retries =
      fault_counters_.retries.load(std::memory_order_relaxed);
  snap.source_backoff_ns =
      fault_counters_.backoff_ns.load(std::memory_order_relaxed);
  snap.degraded_holes =
      fault_counters_.degraded_holes.load(std::memory_order_relaxed);
  buffer::SourceCache::Stats cache = source_cache_.stats();
  snap.cache_hits = cache.hits;
  snap.cache_misses = cache.misses;
  snap.cache_evictions = cache.evictions;
  snap.cache_bytes = cache.bytes;
  snap.cache_entries = cache.entries;
  snap.cache_peak_bytes = cache.peak_bytes;
  snap.cache_shards.reserve(cache.shards.size());
  for (const auto& sh : cache.shards) {
    snap.cache_shards.push_back({sh.hits, sh.misses, sh.bytes});
  }
  mediator::PlanCache::Stats plans = plan_cache_.stats();
  snap.plan_cache_hits = plans.hits;
  snap.plan_cache_misses = plans.misses;
  snap.plans_optimized = plans.optimized;
  snap.optimizer_rewrites = plans.rewrites;
  snap.optimizer_passes.assign(plans.pass_applied.begin(),
                               plans.pass_applied.end());
  mediator::AnswerViewCache::Stats views = answer_view_cache_.stats();
  snap.view_hits = views.hits;
  snap.view_misses = views.misses;
  snap.view_publishes = views.publishes;
  snap.view_evictions = views.evictions;
  snap.view_invalidations = views.invalidations;
  snap.view_bytes = views.bytes;
  snap.view_entries = views.entries;
  snap.view_rejects.assign(views.rejects.begin(), views.rejects.end());
  if (prefetcher_ != nullptr) {
    BackgroundPrefetcher::Stats pf = prefetcher_->stats();
    snap.prefetch_jobs = pf.jobs_submitted;
    snap.prefetch_jobs_dropped = pf.jobs_dropped;
    snap.prefetch_exchanges = pf.exchanges;
    snap.prefetch_fills = pf.fills;
    snap.prefetch_published = pf.published;
    snap.prefetch_delivered = pf.delivered;
    snap.prefetch_skipped_cached = pf.skipped_cached;
    snap.prefetch_failures = pf.failures;
  }
  {
    std::lock_guard<std::mutex> lock(net_stats_mu_);
    if (net_stats_provider_) snap.net = net_stats_provider_();
  }
  return snap;
}

}  // namespace mix::service
