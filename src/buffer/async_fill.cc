#include "buffer/async_fill.h"

namespace mix::buffer {

void FillFuture::Complete(Status status, HoleFillList fills) {
  Callback cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return;  // first writer wins
    done_ = true;
    status_ = std::move(status);
    fills_ = std::move(fills);
    cb = std::move(callback_);
    callback_ = nullptr;
  }
  cv_.notify_all();
  if (cb) cb(status_, fills_);
}

Status FillFuture::Wait(HoleFillList* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  if (out != nullptr) *out = std::move(fills_);
  return status_;
}

bool FillFuture::Ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void FillFuture::OnComplete(Callback cb) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!done_) {
      callback_ = std::move(cb);
      return;
    }
  }
  // Already complete: fire on the caller's thread. fills_ stays readable —
  // only Wait() moves it out.
  cb(status_, fills_);
}

std::shared_ptr<FillFuture> FillFuture::Resolved(Status status,
                                                 HoleFillList fills) {
  auto f = std::make_shared<FillFuture>();
  f->Complete(std::move(status), std::move(fills));
  return f;
}

bool PushMailbox::Deliver(PushedFill fill) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || pending_.size() >= kMaxPending) {
    ++dropped_;
    return false;
  }
  pending_.push_back(std::move(fill));
  ++delivered_;
  return true;
}

std::vector<PushedFill> PushMailbox::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PushedFill> out(std::make_move_iterator(pending_.begin()),
                              std::make_move_iterator(pending_.end()));
  pending_.clear();
  return out;
}

void PushMailbox::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  pending_.clear();
}

bool PushMailbox::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t PushMailbox::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

int64_t PushMailbox::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace mix::buffer
