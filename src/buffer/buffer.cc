#include "buffer/buffer.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/check.h"

namespace mix::buffer {

namespace {
int64_t NextInstanceId() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

const Atom kBufTag = Atom::Intern("buf");
const char kUnavailableLabel[] = "#unavailable";
}  // namespace

BufferComponent::BufferComponent(LxpWrapper* wrapper, std::string uri,
                                 Options options)
    : wrapper_(wrapper),
      uri_(std::move(uri)),
      options_(options),
      instance_(NextInstanceId()),
      retry_(options.retry, options.retry_seed) {
  MIX_CHECK(wrapper_ != nullptr);
}

BufferComponent::~BufferComponent() {
  // Cancellation on close: flip the mailbox so background prefetch workers
  // drop further deliveries, and abandon in-flight readahead futures —
  // their completions own their shared state, so the exchanges finish (or
  // fail at transport teardown) without touching this buffer.
  if (options_.mailbox != nullptr) options_.mailbox->Close();
  inflight_.clear();
}

BufferComponent::BNode* BufferComponent::NewNode() {
  arena_.emplace_back();
  BNode* n = &arena_.back();
  n->index = static_cast<int64_t>(by_index_.size());
  by_index_.push_back(n);
  return n;
}

BufferComponent::BNode* BufferComponent::Graft(const Fragment& fragment) {
  BNode* n = NewNode();
  if (fragment.is_hole) {
    n->is_hole = true;
    n->hole_id = fragment.hole_id;
    ++holes_outstanding_;
    hole_queue_.push_back(n->index);
    // Freshness was validated before any mutation; this is an invariant.
    MIX_CHECK_MSG(hole_by_id_.emplace(n->hole_id, n->index).second,
                  "wrapper reused a hole id");
  } else {
    n->label = fragment.label;
    n->label_atom = Atom::Intern(n->label);
    ++nodes_buffered_;
    for (const Fragment& c : fragment.children) {
      BNode* child = Graft(c);
      child->parent = n;
      child->pos = static_cast<int32_t>(n->children.size());
      n->children.push_back(child);
    }
  }
  return n;
}

void BufferComponent::Charge(int64_t request_bytes, int64_t response_bytes,
                             bool background) {
  net::Channel* channel =
      background ? options_.prefetch_channel : options_.channel;
  if (channel == nullptr) return;
  channel->Send(request_bytes);
  channel->Send(response_bytes);
}

Status BufferComponent::ValidateFragments(
    const FragmentList& list, bool top_level, std::set<std::string>* fresh,
    const std::set<std::string>* consumed) const {
  // Progress condition 1 (top-level only): a non-empty fill may not consist
  // only of holes — that would merely rename the hole, no progress. A
  // *nested* [hole] list simply means "children unexplored".
  if (top_level && !list.empty()) {
    bool any_element = false;
    for (const Fragment& f : list) {
      if (!f.is_hole) any_element = true;
    }
    if (!any_element) {
      return Status::InvalidArgument(
          "LXP fill violation: non-empty fill consists only of holes");
    }
  }
  bool prev_hole = false;
  for (const Fragment& f : list) {
    if (f.is_hole) {
      // Progress condition 2 (everywhere): no two adjacent holes.
      if (prev_hole) {
        return Status::InvalidArgument(
            "LXP fill violation: two adjacent holes");
      }
      prev_hole = true;
      // Freshness: a fill may only *introduce* hole ids — one that is still
      // outstanding, was already introduced in this response, or was
      // consumed by this response is a duplicate.
      if (hole_by_id_.count(f.hole_id) != 0 || fresh->count(f.hole_id) != 0 ||
          (consumed != nullptr && consumed->count(f.hole_id) != 0)) {
        return Status::InvalidArgument(
            "LXP fill violation: reused hole id '" + f.hole_id + "'");
      }
      fresh->insert(f.hole_id);
    } else {
      prev_hole = false;
      Status s =
          ValidateFragments(f.children, /*top_level=*/false, fresh, consumed);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status BufferComponent::ValidateFill(const FragmentList& fragments) const {
  std::set<std::string> fresh;
  return ValidateFragments(fragments, /*top_level=*/true, &fresh,
                           /*consumed=*/nullptr);
}

Status BufferComponent::ValidateBatch(const std::vector<std::string>& requested,
                                      const HoleFillList& fills) const {
  // Two-phase discipline: the WHOLE response validates before ANY entry is
  // spliced, so a bad batch can never leave the open tree half-updated (a
  // half-applied batch would be unrecoverable under retry).
  std::set<std::string> fresh;     // hole ids introduced by this response
  std::set<std::string> consumed;  // entry ids already refined by it
  for (const HoleFill& f : fills) {
    if (consumed.count(f.hole_id) != 0) {
      return Status::InvalidArgument(
          "LXP batch violation: hole '" + f.hole_id + "' refined twice");
    }
    if (hole_by_id_.count(f.hole_id) != 0) {
      // An outstanding hole of the open tree.
    } else if (fresh.count(f.hole_id) != 0) {
      // A continuation hole introduced by an earlier entry of this response;
      // by the FillMany ordering contract it exists once that entry splices.
      fresh.erase(f.hole_id);
    } else {
      return Status::InvalidArgument(
          "LXP batch violation: entry refines unknown or already-filled "
          "hole '" +
          f.hole_id + "'");
    }
    consumed.insert(f.hole_id);
    Status s =
        ValidateFragments(f.fragments, /*top_level=*/true, &fresh, &consumed);
    if (!s.ok()) return s;
  }
  for (const std::string& id : requested) {
    if (consumed.count(id) == 0) {
      return Status::InvalidArgument(
          "LXP batch violation: requested hole '" + id + "' not answered");
    }
  }
  return Status::OK();
}

Status BufferComponent::RunWithRetry(bool background,
                                     const std::function<Status()>& op) {
  // Background (prefetch/push) exchanges never consume the command budget:
  // they retry without charging a clock and without a deadline, so a flaky
  // source can only degrade speculative holes, never stall the client.
  net::SimClock* clock = background ? nullptr : options_.clock;
  int64_t deadline_ns = background ? -1 : fill_deadline_ns_;
  net::RetryPolicy::Outcome out = retry_.Run(op, clock, deadline_ns);
  faults_ += out.failures;
  retries_ += out.retries;
  backoff_ns_ += out.backoff_ns;
  if (options_.shared_counters != nullptr) {
    options_.shared_counters->Add(out.failures, out.retries, out.backoff_ns);
  }
  return out.status;
}

void BufferComponent::MarkUnavailable(BNode* hole) {
  MIX_CHECK(hole->is_hole);
  hole_by_id_.erase(hole->hole_id);
  inflight_.erase(hole->hole_id);  // orphan any readahead flight
  hole->is_hole = false;
  hole->unavailable = true;
  hole->label = kUnavailableLabel;
  hole->label_atom = Atom::Intern(hole->label);
  // parent/pos are kept: the node stays addressable in its sibling list, so
  // navigation around it keeps working.
  --holes_outstanding_;
  ++degraded_holes_;
  if (options_.shared_counters != nullptr) {
    options_.shared_counters->AddDegraded(1);
  }
}

BufferComponent::BNode* BufferComponent::SynthesizeUnavailable(BNode* parent) {
  BNode* n = NewNode();
  n->unavailable = true;
  n->label = kUnavailableLabel;
  n->label_atom = Atom::Intern(n->label);
  n->parent = parent;
  n->pos = static_cast<int32_t>(parent->children.size());
  parent->children.push_back(n);
  ++degraded_holes_;
  if (options_.shared_counters != nullptr) {
    options_.shared_counters->AddDegraded(1);
  }
  return n;
}

void BufferComponent::Latch(const Status& status) {
  if (!status.ok() && last_status_.ok()) last_status_ = status;
}

Status BufferComponent::TakeStatus() {
  Status s = std::move(last_status_);
  last_status_ = Status::OK();
  return s;
}

void BufferComponent::SetCommandBudgetNs(int64_t budget_ns) {
  fill_deadline_ns_ = (budget_ns < 0 || options_.clock == nullptr)
                          ? -1
                          : net::SaturatingAdd(options_.clock->now_ns(),
                                               budget_ns);
}

bool BufferComponent::TrySpliceFromCache(BNode* hole) {
  if (options_.source_cache == nullptr) return false;
  std::shared_ptr<const FragmentList> cached =
      options_.source_cache->LookupFill(options_.cache_source,
                                        options_.cache_generation,
                                        hole->hole_id);
  if (cached == nullptr) {
    ++cache_misses_;
    return false;
  }
  // Re-validate against THIS buffer's hole set: the progress conditions
  // held where the entry was published, but hole-id freshness is
  // per-buffer (a non-deterministic wrapper could collide). Treat a
  // failure as a miss and fall through to the wire.
  if (!ValidateFill(*cached).ok()) {
    ++cache_misses_;
    return false;
  }
  ++fill_count_;
  ++cache_hits_;
  Splice(hole, *cached);
  return true;
}

void BufferComponent::PublishFill(const std::string& hole_id,
                                  FragmentList fragments) {
  if (options_.source_cache == nullptr) return;
  options_.source_cache->PublishFill(options_.cache_source,
                                     options_.cache_generation, hole_id,
                                     std::move(fragments));
}

Status BufferComponent::FillHole(BNode* hole, bool background) {
  MIX_CHECK(hole->is_hole);
  if (!background && ConsumeInflight(hole)) return Status::OK();
  if (TrySpliceFromCache(hole)) return Status::OK();
  const std::string hole_id = hole->hole_id;
  Status s = RunWithRetry(background, [&]() {
    FragmentList fragments;
    Status st = wrapper_->TryFill(hole_id, &fragments);
    // Every attempt crosses the link: request plus a (possibly tiny error)
    // response. Recovery cost is visible in the channel accounting.
    Charge(16 + static_cast<int64_t>(hole_id.size()),
           st.ok() ? FragmentListByteSize(fragments) : 16, background);
    if (!st.ok()) return st;
    st = ValidateFill(fragments);
    if (!st.ok()) return st;
    ++fill_count_;
    Splice(hole, fragments);
    // Publish only after the fill validated and spliced — a degraded
    // (#unavailable) answer can never reach the shared cache.
    PublishFill(hole_id, std::move(fragments));
    return Status::OK();
  });
  if (!background) demand_fill_in_command_ = true;
  // Exhausted retries or a permanent refusal degrade the hole; a deadline
  // leaves it intact for a later, better-funded command.
  if (!s.ok() && hole->is_hole &&
      s.code() != Status::Code::kDeadlineExceeded) {
    MarkUnavailable(hole);
  }
  if (s.ok() && !background) MaybeIssueReadahead();
  return s;
}

Status BufferComponent::FillHolesBatch(const std::vector<BNode*>& holes,
                                       const FillBudget& budget,
                                       bool background) {
  if (holes.empty()) return Status::OK();
  std::vector<BNode*> wire_holes;
  wire_holes.reserve(holes.size());
  if (options_.source_cache != nullptr || !inflight_.empty()) {
    // Serve what a completed readahead flight or the shared cache already
    // has; only the remainder crosses the wire. Splicing a hit can only
    // ADD holes elsewhere in the tree, never invalidate the other
    // requested BNodes (arena pointers are stable and each hole splices in
    // place).
    for (BNode* h : holes) {
      MIX_CHECK(h->is_hole);
      if (!background && ConsumeInflight(h)) continue;
      if (!TrySpliceFromCache(h)) wire_holes.push_back(h);
    }
    if (wire_holes.empty()) return Status::OK();
  } else {
    wire_holes = holes;
  }
  std::vector<std::string> ids;
  ids.reserve(wire_holes.size());
  int64_t request_bytes = 16;
  for (BNode* h : wire_holes) {
    MIX_CHECK(h->is_hole);
    request_bytes += static_cast<int64_t>(h->hole_id.size());
    ids.push_back(h->hole_id);
  }
  net::Channel* channel =
      background ? options_.prefetch_channel : options_.channel;
  Status s = RunWithRetry(background, [&]() {
    HoleFillList fills;
    // Demand fills ride the async submit/complete seam too: over a sync
    // shim this IS TryFillMany inline (deterministic immediate
    // completion); over a native-async transport the exchange goes through
    // the same dispatch machinery as readahead flights.
    Status st = wrapper_->BeginFillMany(ids, budget)->Wait(&fills);
    if (channel != nullptr) {
      channel->SendBatch(request_bytes, static_cast<int64_t>(ids.size()));
      if (st.ok()) {
        channel->SendBatch(HoleFillListByteSize(fills),
                           static_cast<int64_t>(fills.size()));
      } else {
        channel->Send(16);  // error response
      }
    }
    if (!st.ok()) return st;
    st = ValidateBatch(ids, fills);
    if (!st.ok()) return st;
    // The response validated as a whole; application cannot fail.
    fill_count_ += static_cast<int64_t>(fills.size());
    for (HoleFill& f : fills) {
      auto it = hole_by_id_.find(f.hole_id);
      MIX_CHECK(it != hole_by_id_.end());
      BNode* hole = by_index_[static_cast<size_t>(it->second)];
      MIX_CHECK(hole->is_hole);
      Splice(hole, f.fragments);
      // Every entry — requested holes AND chased continuations — is a
      // validated fill other sessions can reuse.
      PublishFill(f.hole_id, std::move(f.fragments));
    }
    return Status::OK();
  });
  if (!background) demand_fill_in_command_ = true;
  if (!s.ok() && s.code() != Status::Code::kDeadlineExceeded) {
    for (BNode* h : wire_holes) {
      if (h->is_hole) MarkUnavailable(h);
    }
  }
  // Overlap continuation chasing with splicing: the batch landed; put the
  // next holes (often the continuations it just introduced) in flight
  // while the caller consumes the spliced data.
  if (s.ok() && !background) MaybeIssueReadahead();
  return s;
}

Status BufferComponent::CompleteChildList(BNode* parent) {
  // One round for the chasing wrappers; non-chasing (default FillMany)
  // wrappers converge by the progress conditions, one level per round.
  Status first_error = Status::OK();
  for (;;) {
    std::vector<BNode*> holes;
    for (BNode* c : parent->children) {
      if (c->is_hole) holes.push_back(c);
    }
    if (holes.empty()) return first_error;
    Status s = FillHolesBatch(holes, FillBudget{}, /*background=*/false);
    if (!s.ok()) {
      if (first_error.ok()) first_error = s;
      // A deadline leaves the holes intact — looping cannot progress. Any
      // other failure degraded them, so the next round sees fewer holes.
      if (s.code() == Status::Code::kDeadlineExceeded) return first_error;
    }
  }
}

void BufferComponent::Splice(BNode* hole, const FragmentList& fragments) {
  // Callers validated `fragments` (progress conditions + freshness) before
  // getting here; Splice itself only maintains structural invariants.
  BNode* parent = hole->parent;
  MIX_CHECK(parent != nullptr);
  size_t at = static_cast<size_t>(hole->pos);
  MIX_CHECK(parent->children[at] == hole);

  std::vector<BNode*> grafted;
  grafted.reserve(fragments.size());
  for (const Fragment& f : fragments) grafted.push_back(Graft(f));

  auto& siblings = parent->children;
  siblings.erase(siblings.begin() + static_cast<std::ptrdiff_t>(at));
  siblings.insert(siblings.begin() + static_cast<std::ptrdiff_t>(at),
                  grafted.begin(), grafted.end());
  for (size_t i = at; i < siblings.size(); ++i) {
    siblings[i]->parent = parent;
    siblings[i]->pos = static_cast<int32_t>(i);
  }
  // The filled hole is gone; mark it so queued prefetches skip it. A
  // readahead flight for it (filled via cache or push instead) is
  // orphaned — its completion owns its own shared state.
  hole_by_id_.erase(hole->hole_id);
  inflight_.erase(hole->hole_id);
  hole->is_hole = false;
  hole->parent = nullptr;
  --holes_outstanding_;
}

bool BufferComponent::ApplyPushedFill(const std::string& hole_id,
                                      const FragmentList& fragments) {
  EnsureRoot();  // a degraded bootstrap simply leaves no hole to find
  auto it = hole_by_id_.find(hole_id);
  if (it == hole_by_id_.end()) return false;
  BNode* hole = by_index_[static_cast<size_t>(it->second)];
  if (!hole->is_hole) return false;
  // A malformed push is dropped like a corrupt datagram would be — it must
  // not poison the open tree (and there is no requester to report to).
  if (!ValidateFill(fragments).ok()) return false;
  if (options_.prefetch_channel != nullptr) {
    options_.prefetch_channel->Send(FragmentListByteSize(fragments));
  }
  Splice(hole, fragments);
  // A validated push is as publishable as a validated demand fill.
  PublishFill(hole_id, fragments);
  return true;
}

Status BufferComponent::ChaseFirst(BNode* parent, size_t pos, BNode** out) {
  *out = nullptr;
  while (pos < parent->children.size()) {
    BNode* n = parent->children[pos];
    if (!n->is_hole) {
      if (n->unavailable) {
        Latch(Status::Unavailable(
            "subtree unavailable: fill retries exhausted"));
      }
      *out = n;
      return Status::OK();
    }
    Status s = FillHole(n, /*background=*/false);
    if (!s.ok()) {
      // Still a hole: the deadline cut the fill short and the position
      // cannot be resolved this command. Degraded: the hole became an
      // unavailable node, re-examined (and returned) by the next iteration.
      if (n->is_hole) return s;
      Latch(s);
    }
    // The list changed in place; re-examine the same position.
  }
  return Status::OK();
}

void BufferComponent::Prefetch(bool had_demand_fill) {
  if (options_.prefetch_on_miss_only && !had_demand_fill) return;
  if (options_.prefetch_per_command <= 0) return;
  if (options_.prefetch_sink) {
    // Real asynchrony: hand the run-ahead to the service prefetch pool and
    // return immediately. Results land in the mailbox (drained at the next
    // command start) and in the shared SourceCache; a dropped job merely
    // leaves its holes for the demand path.
    std::vector<std::string> ids;
    while (static_cast<int64_t>(ids.size()) < options_.prefetch_per_command &&
           !hole_queue_.empty()) {
      BNode* candidate = by_index_[static_cast<size_t>(hole_queue_.front())];
      hole_queue_.pop_front();
      if (candidate->is_hole) ids.push_back(candidate->hole_id);
    }
    if (!ids.empty()) options_.prefetch_sink(std::move(ids));
    return;
  }
  // Deterministic-sim model (no sink): fill synchronously, charging the
  // prefetch channel to pretend the time overlapped — kept as the
  // reproducible single-thread harness (bench_prefetch / E7).
  // Coalesce the run-ahead: draw up to prefetch_per_command outstanding
  // holes from the FIFO and fill them in one exchange, letting the wrapper
  // spend the remaining fill budget chasing continuation holes — the same
  // fills the one-at-a-time loop performed, in 2 messages instead of 2k.
  // Wrappers that do not chase (default FillMany) converge over rounds.
  // Failed speculative batches degrade their holes (never retry forever,
  // never charge the demand clock), so this loop always terminates.
  int64_t fills_done = 0;
  while (fills_done < options_.prefetch_per_command) {
    std::vector<BNode*> holes;
    while (static_cast<int64_t>(holes.size()) <
               options_.prefetch_per_command - fills_done &&
           !hole_queue_.empty()) {
      BNode* candidate = by_index_[static_cast<size_t>(hole_queue_.front())];
      hole_queue_.pop_front();
      if (candidate->is_hole) holes.push_back(candidate);
    }
    if (holes.empty()) return;
    const int64_t before = fill_count_;
    FillHolesBatch(holes,
                   FillBudget{-1, options_.prefetch_per_command - fills_done},
                   /*background=*/true);
    const int64_t done = fill_count_ - before;
    if (done == 0) return;  // speculative batch failed; stop running ahead
    fills_done += done;
  }
}

void BufferComponent::MaybeIssueReadahead() {
  if (options_.max_in_flight <= 0) return;
  if (fill_deadline_ns_ >= 0 && options_.clock != nullptr &&
      options_.clock->now_ns() >= fill_deadline_ns_) {
    return;  // command budget gone — don't speculate on its behalf
  }
  while (static_cast<int64_t>(inflight_.size()) < options_.max_in_flight &&
         !hole_queue_.empty()) {
    BNode* candidate = by_index_[static_cast<size_t>(hole_queue_.front())];
    hole_queue_.pop_front();
    if (!candidate->is_hole) continue;  // filled or degraded meanwhile
    ++readahead_issued_;
    inflight_.emplace(
        candidate->hole_id,
        wrapper_->BeginFillMany({candidate->hole_id},
                                FillBudget{/*elements=*/-1, /*fills=*/1}));
  }
}

bool BufferComponent::ConsumeInflight(BNode* hole) {
  if (inflight_.empty()) return false;
  auto it = inflight_.find(hole->hole_id);
  if (it == inflight_.end()) return false;
  std::shared_ptr<FillFuture> flight = std::move(it->second);
  inflight_.erase(it);
  if (!flight->Ready() && fill_deadline_ns_ >= 0 &&
      options_.clock != nullptr &&
      options_.clock->now_ns() >= fill_deadline_ns_) {
    // Deadline propagation: the command budget is already gone, so don't
    // block on the wire. The sync path fails with kDeadlineExceeded and
    // leaves the hole intact for a better-funded command.
    ++readahead_fallbacks_;
    return false;
  }
  HoleFillList fills;
  Status s = flight->Wait(&fills);
  if (s.ok()) s = ValidateBatch({hole->hole_id}, fills);
  if (!s.ok()) {
    // Failed or stale flight: fall back to the sync demand path, which
    // owns retry/degradation semantics — answers stay byte-identical to a
    // readahead-off run.
    ++readahead_fallbacks_;
    return false;
  }
  // Same charging shape as a one-hole demand FillHolesBatch: the consumed
  // flight substitutes for the demand exchange it saved.
  if (options_.channel != nullptr) {
    options_.channel->SendBatch(
        16 + static_cast<int64_t>(hole->hole_id.size()), 1);
    options_.channel->SendBatch(HoleFillListByteSize(fills),
                                static_cast<int64_t>(fills.size()));
  }
  fill_count_ += static_cast<int64_t>(fills.size());
  for (HoleFill& f : fills) {
    auto hit = hole_by_id_.find(f.hole_id);
    MIX_CHECK(hit != hole_by_id_.end());
    BNode* target = by_index_[static_cast<size_t>(hit->second)];
    MIX_CHECK(target->is_hole);
    Splice(target, f.fragments);
    PublishFill(f.hole_id, std::move(f.fragments));
  }
  ++readahead_hits_;
  demand_fill_in_command_ = true;
  MaybeIssueReadahead();
  return true;
}

void BufferComponent::DrainPushed() {
  if (options_.mailbox == nullptr) return;
  std::vector<PushedFill> pushed = options_.mailbox->Drain();
  for (PushedFill& p : pushed) {
    if (ApplyPushedFill(p.hole_id, p.fragments)) {
      ++pushed_applied_;
    } else {
      ++pushed_dropped_;
    }
  }
}

Status BufferComponent::EnsureRoot() {
  if (initialized_) return Status::OK();
  initialized_ = true;
  std::string root_id;
  bool cached_root = false;
  if (options_.source_cache != nullptr) {
    // get_root is deterministic per (source, generation); the first session
    // to bootstrap pays the exchange, every later one starts warm.
    if (options_.source_cache->LookupRoot(options_.cache_source,
                                          options_.cache_generation, uri_,
                                          &root_id) &&
        !root_id.empty()) {
      cached_root = true;
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
  }
  Status s = Status::OK();
  if (!cached_root) s = RunWithRetry(/*background=*/false, [&]() {
    root_id.clear();
    Status st = wrapper_->TryGetRoot(uri_, &root_id);
    // get_root is one small request/response exchange.
    Charge(16 + static_cast<int64_t>(uri_.size()),
           16 + static_cast<int64_t>(root_id.size()), /*background=*/false);
    if (!st.ok()) return st;
    if (root_id.empty()) {
      return Status::InvalidArgument("get_root returned an empty hole id");
    }
    return Status::OK();
  });
  if (!cached_root && s.ok() && options_.source_cache != nullptr) {
    options_.source_cache->PublishRoot(options_.cache_source,
                                       options_.cache_generation, uri_,
                                       root_id);
  }
  super_root_ = NewNode();
  super_root_->label = "#super-root";
  super_root_->label_atom = Atom::Intern(super_root_->label);
  if (!s.ok()) {
    // Bootstrap failure degrades the whole view — without a root hole id
    // there is nothing to retry against later, so even a deadline cannot
    // leave the view "pending". The cause is the returned status.
    SynthesizeUnavailable(super_root_);
    return s;
  }
  BNode* hole = NewNode();
  hole->is_hole = true;
  hole->hole_id = std::move(root_id);
  hole->parent = super_root_;
  hole->pos = 0;
  super_root_->children.push_back(hole);
  ++holes_outstanding_;
  hole_queue_.push_back(hole->index);
  hole_by_id_.emplace(hole->hole_id, hole->index);
  return Status::OK();
}

NodeId BufferComponent::MakeId(const BNode* n) const {
  return NodeId(kBufTag, instance_, n->index);
}

BufferComponent::BNode* BufferComponent::Resolve(const NodeId& p) const {
  // Invalid, foreign, and stale ids resolve to nullptr (the caller answers
  // ⊥ and latches) instead of aborting: ids reach the buffer from the
  // mediator — which may legitimately hold the invalid NodeId a
  // deadline-cut Root() returned — and, through it, from remote clients,
  // neither of which may be able to kill the process with a bad handle.
  if (!p.valid() || p.tag_atom() != kBufTag || p.IntAt(0) != instance_) {
    return nullptr;
  }
  int64_t index = p.IntAt(1);
  if (index < 0 || index >= static_cast<int64_t>(by_index_.size())) {
    return nullptr;
  }
  BNode* n = by_index_[static_cast<size_t>(index)];
  // Hole indices are internal bookkeeping, never handed out via MakeId.
  if (n->is_hole) return nullptr;
  return n;
}

Status BufferComponent::BadIdStatus() {
  return Status::InvalidArgument(
      "foreign or stale node id passed to BufferComponent");
}

NodeId BufferComponent::Root() {
  demand_fill_in_command_ = false;
  DrainPushed();
  Status s = EnsureRoot();
  if (!s.ok()) Latch(s);
  BNode* root = nullptr;
  Status cs = ChaseFirst(super_root_, 0, &root);
  if (!cs.ok()) {
    // Deadline with the root hole intact: nothing to hand out yet; the
    // invalid NodeId plus the latched status is the one unavoidable ⊥.
    Latch(cs);
    Prefetch(demand_fill_in_command_);
    return NodeId();
  }
  if (root == nullptr) {
    // Protocol violation (fill emptied the root list) — degrade, don't die.
    Latch(Status::InvalidArgument("LXP source exported an empty view"));
    root = SynthesizeUnavailable(super_root_);
  }
  Prefetch(demand_fill_in_command_);
  return MakeId(root);
}

std::optional<NodeId> BufferComponent::Down(const NodeId& p) {
  demand_fill_in_command_ = false;
  DrainPushed();
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return std::nullopt;
  }
  if (n->unavailable) {
    Latch(Status::Unavailable("subtree unavailable: fill retries exhausted"));
    return std::nullopt;
  }
  BNode* child = nullptr;
  Status s = ChaseFirst(n, 0, &child);
  if (!s.ok()) Latch(s);
  Prefetch(demand_fill_in_command_);
  if (child == nullptr) return std::nullopt;
  return MakeId(child);
}

std::optional<NodeId> BufferComponent::Right(const NodeId& p) {
  demand_fill_in_command_ = false;
  DrainPushed();
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return std::nullopt;
  }
  MIX_CHECK(n->parent != nullptr);
  BNode* sibling = nullptr;
  Status s = ChaseFirst(n->parent, static_cast<size_t>(n->pos) + 1, &sibling);
  if (!s.ok()) Latch(s);
  Prefetch(demand_fill_in_command_);
  if (sibling == nullptr) return std::nullopt;
  return MakeId(sibling);
}

Label BufferComponent::Fetch(const NodeId& p) {
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return Label();
  }
  if (n->unavailable) {
    Latch(Status::Unavailable("node unavailable: fill retries exhausted"));
  }
  return n->label;
}

Atom BufferComponent::FetchAtom(const NodeId& p) {
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return Atom();
  }
  if (n->unavailable) {
    Latch(Status::Unavailable("node unavailable: fill retries exhausted"));
  }
  return n->label_atom;
}

void BufferComponent::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  demand_fill_in_command_ = false;
  DrainPushed();
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return;
  }
  if (n->unavailable) {
    Latch(Status::Unavailable("subtree unavailable: fill retries exhausted"));
    return;
  }
  Status s = CompleteChildList(n);
  if (!s.ok()) Latch(s);
  out->reserve(out->size() + n->children.size());
  for (BNode* c : n->children) {
    if (c->is_hole) continue;  // deadline remnant; latched above
    if (c->unavailable) {
      Latch(Status::Unavailable("child unavailable: fill retries exhausted"));
    }
    out->push_back(MakeId(c));
  }
  Prefetch(demand_fill_in_command_);
}

void BufferComponent::NextSiblings(const NodeId& p, int64_t limit,
                                   std::vector<NodeId>* out) {
  if (limit == 0) return;
  demand_fill_in_command_ = false;
  DrainPushed();
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return;
  }
  MIX_CHECK(n->parent != nullptr);
  BNode* parent = n->parent;
  size_t pos = static_cast<size_t>(n->pos) + 1;
  int64_t taken = 0;
  while (pos < parent->children.size() && (limit < 0 || taken < limit)) {
    BNode* sib = parent->children[pos];
    if (sib->is_hole) {
      FillBudget budget;  // default: refine completely
      if (limit >= 0) {
        // Ask only for the elements still missing: siblings already
        // buffered beyond the hole count against the limit too, so the
        // batched page ships no more bytes than the one-fill-at-a-time
        // walk would have.
        int64_t buffered_after = 0;
        for (size_t i = pos + 1; i < parent->children.size(); ++i) {
          if (!parent->children[i]->is_hole) ++buffered_after;
        }
        budget.elements = std::max<int64_t>(limit - taken - buffered_after, 0);
      }
      Status s = FillHolesBatch({sib}, budget, /*background=*/false);
      if (!s.ok()) {
        Latch(s);
        if (sib->is_hole) break;  // deadline: cannot advance past the hole
      }
      continue;  // the list changed in place; re-examine the same position
    }
    if (sib->unavailable) {
      Latch(
          Status::Unavailable("sibling unavailable: fill retries exhausted"));
    }
    out->push_back(MakeId(sib));
    ++taken;
    ++pos;
  }
  Prefetch(demand_fill_in_command_);
}

void BufferComponent::FetchSubtreeOf(BNode* n, int32_t depth_here,
                                     int64_t depth_limit,
                                     std::vector<SubtreeEntry>* out) {
  const size_t slot = out->size();
  out->push_back(SubtreeEntry{n->label_atom, depth_here, false, NodeId()});
  if (n->unavailable) {
    // Emitted as a leaf marker; nothing below it can be fetched.
    Latch(Status::Unavailable("subtree unavailable: fill retries exhausted"));
    return;
  }
  if (depth_limit >= 0 && depth_here >= depth_limit) {
    // Probe exactly like a node-at-a-time d at the cutoff would: resolve
    // leading holes until the first element (or an empty list) is known.
    BNode* first = nullptr;
    Status s = ChaseFirst(n, 0, &first);
    if (!s.ok()) Latch(s);
    if (first != nullptr) {
      (*out)[slot].truncated = true;
      (*out)[slot].id = MakeId(n);
    }
    return;
  }
  Status s = CompleteChildList(n);
  if (!s.ok()) Latch(s);
  // Snapshot: CompleteChildList on a descendant cannot reallocate this
  // vector (the list is already hole-free), but keep indices, not
  // iterators, for clarity.
  for (size_t i = 0; i < n->children.size(); ++i) {
    if (n->children[i]->is_hole) continue;  // deadline remnant
    FetchSubtreeOf(n->children[i], depth_here + 1, depth_limit, out);
  }
}

void BufferComponent::FetchSubtree(const NodeId& p, int64_t depth,
                                   std::vector<SubtreeEntry>* out) {
  demand_fill_in_command_ = false;
  DrainPushed();
  BNode* n = Resolve(p);
  if (n == nullptr) {
    Latch(BadIdStatus());
    return;
  }
  FetchSubtreeOf(n, 0, depth, out);
  Prefetch(demand_fill_in_command_);
}

std::string BufferComponent::TermOf(const BNode* n) const {
  if (n->is_hole) return "hole[" + n->hole_id + "]";
  if (n->children.empty()) return n->label;
  std::string out = n->label + "[";
  bool first = true;
  for (const BNode* c : n->children) {
    if (!first) out += ",";
    first = false;
    out += TermOf(c);
  }
  out += "]";
  return out;
}

std::string BufferComponent::OpenTreeTerm() {
  EnsureRoot();
  std::string out = "[";
  bool first = true;
  for (const BNode* c : super_root_->children) {
    if (!first) out += ",";
    first = false;
    out += TermOf(c);
  }
  out += "]";
  return out;
}

}  // namespace mix::buffer
