#include "buffer/buffer.h"

#include <algorithm>
#include <atomic>

#include "core/check.h"

namespace mix::buffer {

namespace {
int64_t NextInstanceId() {
  static std::atomic<int64_t> counter{1};
  return counter.fetch_add(1);
}

const Atom kBufTag = Atom::Intern("buf");

/// "No two adjacent holes" applies to every (nested) child list.
void CheckNoAdjacentHoles(const FragmentList& list) {
  bool prev_hole = false;
  for (const Fragment& f : list) {
    if (f.is_hole) {
      MIX_CHECK_MSG(!prev_hole, "LXP fill contains two adjacent holes");
      prev_hole = true;
    } else {
      prev_hole = false;
      CheckNoAdjacentHoles(f.children);
    }
  }
}

/// Progress conditions the paper imposes on fills: a non-empty result may
/// not consist only of holes (top-level — a nested [hole] list simply
/// means "children unexplored"), and no two holes may be adjacent anywhere.
void CheckProgress(const FragmentList& list) {
  bool any_element = list.empty();
  for (const Fragment& f : list) {
    if (!f.is_hole) any_element = true;
  }
  MIX_CHECK_MSG(any_element, "non-empty LXP fill consists only of holes");
  CheckNoAdjacentHoles(list);
}
}  // namespace

BufferComponent::BufferComponent(LxpWrapper* wrapper, std::string uri,
                                 Options options)
    : wrapper_(wrapper),
      uri_(std::move(uri)),
      options_(options),
      instance_(NextInstanceId()) {
  MIX_CHECK(wrapper_ != nullptr);
}

BufferComponent::BNode* BufferComponent::NewNode() {
  arena_.emplace_back();
  BNode* n = &arena_.back();
  n->index = static_cast<int64_t>(by_index_.size());
  by_index_.push_back(n);
  return n;
}

BufferComponent::BNode* BufferComponent::Graft(const Fragment& fragment) {
  BNode* n = NewNode();
  if (fragment.is_hole) {
    n->is_hole = true;
    n->hole_id = fragment.hole_id;
    ++holes_outstanding_;
    hole_queue_.push_back(n->index);
    MIX_CHECK_MSG(hole_by_id_.emplace(n->hole_id, n->index).second,
                  "wrapper reused a hole id");
  } else {
    n->label = fragment.label;
    n->label_atom = Atom::Intern(n->label);
    ++nodes_buffered_;
    for (const Fragment& c : fragment.children) {
      BNode* child = Graft(c);
      child->parent = n;
      child->pos = static_cast<int32_t>(n->children.size());
      n->children.push_back(child);
    }
  }
  return n;
}

void BufferComponent::Charge(int64_t request_bytes, int64_t response_bytes,
                             bool background) {
  net::Channel* channel =
      background ? options_.prefetch_channel : options_.channel;
  if (channel == nullptr) return;
  channel->Send(request_bytes);
  channel->Send(response_bytes);
}

void BufferComponent::FillHole(BNode* hole, bool background) {
  MIX_CHECK(hole->is_hole);
  FragmentList fragments = wrapper_->Fill(hole->hole_id);
  ++fill_count_;
  if (!background) demand_fill_in_command_ = true;
  Charge(16 + static_cast<int64_t>(hole->hole_id.size()),
         FragmentListByteSize(fragments), background);
  Splice(hole, fragments);
}

void BufferComponent::FillHolesBatch(const std::vector<BNode*>& holes,
                                     const FillBudget& budget,
                                     bool background) {
  if (holes.empty()) return;
  std::vector<std::string> ids;
  ids.reserve(holes.size());
  int64_t request_bytes = 16;
  for (BNode* h : holes) {
    MIX_CHECK(h->is_hole);
    request_bytes += static_cast<int64_t>(h->hole_id.size());
    ids.push_back(h->hole_id);
  }
  HoleFillList fills = wrapper_->FillMany(ids, budget);
  MIX_CHECK_MSG(fills.size() >= ids.size(),
                "FillMany returned fewer entries than requested holes");
  fill_count_ += static_cast<int64_t>(fills.size());
  if (!background) demand_fill_in_command_ = true;
  net::Channel* channel =
      background ? options_.prefetch_channel : options_.channel;
  if (channel != nullptr) {
    channel->SendBatch(request_bytes, static_cast<int64_t>(ids.size()));
    channel->SendBatch(HoleFillListByteSize(fills),
                       static_cast<int64_t>(fills.size()));
  }
  for (const HoleFill& f : fills) {
    // Continuation entries refer to holes introduced by earlier splices in
    // this same batch, so resolving in response order always succeeds.
    auto it = hole_by_id_.find(f.hole_id);
    MIX_CHECK_MSG(it != hole_by_id_.end(),
                  "FillMany filled an unknown or already-filled hole");
    BNode* hole = by_index_[static_cast<size_t>(it->second)];
    MIX_CHECK(hole->is_hole);
    Splice(hole, f.fragments);
  }
}

void BufferComponent::CompleteChildList(BNode* parent) {
  // One round for the chasing wrappers; non-chasing (default FillMany)
  // wrappers converge by the progress conditions, one level per round.
  for (;;) {
    std::vector<BNode*> holes;
    for (BNode* c : parent->children) {
      if (c->is_hole) holes.push_back(c);
    }
    if (holes.empty()) return;
    FillHolesBatch(holes, FillBudget{}, /*background=*/false);
  }
}

void BufferComponent::Splice(BNode* hole, const FragmentList& fragments) {
  CheckProgress(fragments);
  BNode* parent = hole->parent;
  MIX_CHECK(parent != nullptr);
  size_t at = static_cast<size_t>(hole->pos);
  MIX_CHECK(parent->children[at] == hole);

  std::vector<BNode*> grafted;
  grafted.reserve(fragments.size());
  for (const Fragment& f : fragments) grafted.push_back(Graft(f));

  auto& siblings = parent->children;
  siblings.erase(siblings.begin() + static_cast<std::ptrdiff_t>(at));
  siblings.insert(siblings.begin() + static_cast<std::ptrdiff_t>(at),
                  grafted.begin(), grafted.end());
  for (size_t i = at; i < siblings.size(); ++i) {
    siblings[i]->parent = parent;
    siblings[i]->pos = static_cast<int32_t>(i);
  }
  // The filled hole is gone; mark it so queued prefetches skip it.
  hole_by_id_.erase(hole->hole_id);
  hole->is_hole = false;
  hole->parent = nullptr;
  --holes_outstanding_;
}

bool BufferComponent::ApplyPushedFill(const std::string& hole_id,
                                      const FragmentList& fragments) {
  EnsureRoot();
  auto it = hole_by_id_.find(hole_id);
  if (it == hole_by_id_.end()) return false;
  BNode* hole = by_index_[static_cast<size_t>(it->second)];
  if (!hole->is_hole) return false;
  if (options_.prefetch_channel != nullptr) {
    options_.prefetch_channel->Send(FragmentListByteSize(fragments));
  }
  Splice(hole, fragments);
  return true;
}

BufferComponent::BNode* BufferComponent::ChaseFirst(BNode* parent, size_t pos) {
  while (pos < parent->children.size()) {
    BNode* n = parent->children[pos];
    if (!n->is_hole) return n;
    FillHole(n, /*background=*/false);
    // The list changed in place; re-examine the same position.
  }
  return nullptr;
}

void BufferComponent::Prefetch(bool had_demand_fill) {
  if (options_.prefetch_on_miss_only && !had_demand_fill) return;
  if (options_.prefetch_per_command <= 0) return;
  // Coalesce the run-ahead: draw up to prefetch_per_command outstanding
  // holes from the FIFO and fill them in one exchange, letting the wrapper
  // spend the remaining fill budget chasing continuation holes — the same
  // fills the one-at-a-time loop performed, in 2 messages instead of 2k.
  // Wrappers that do not chase (default FillMany) converge over rounds.
  int64_t fills_done = 0;
  while (fills_done < options_.prefetch_per_command) {
    std::vector<BNode*> holes;
    while (static_cast<int64_t>(holes.size()) <
               options_.prefetch_per_command - fills_done &&
           !hole_queue_.empty()) {
      BNode* candidate = by_index_[static_cast<size_t>(hole_queue_.front())];
      hole_queue_.pop_front();
      if (candidate->is_hole) holes.push_back(candidate);
    }
    if (holes.empty()) return;
    const int64_t before = fill_count_;
    FillHolesBatch(holes,
                   FillBudget{-1, options_.prefetch_per_command - fills_done},
                   /*background=*/true);
    fills_done += fill_count_ - before;
  }
}

void BufferComponent::EnsureRoot() {
  if (initialized_) return;
  initialized_ = true;
  std::string root_id = wrapper_->GetRoot(uri_);
  // get_root is one small request/response exchange.
  Charge(16 + static_cast<int64_t>(uri_.size()),
         16 + static_cast<int64_t>(root_id.size()), /*background=*/false);
  super_root_ = NewNode();
  super_root_->label = "#super-root";
  super_root_->label_atom = Atom::Intern(super_root_->label);
  BNode* hole = NewNode();
  hole->is_hole = true;
  hole->hole_id = std::move(root_id);
  hole->parent = super_root_;
  hole->pos = 0;
  super_root_->children.push_back(hole);
  ++holes_outstanding_;
  hole_queue_.push_back(hole->index);
  hole_by_id_.emplace(hole->hole_id, hole->index);
}

NodeId BufferComponent::MakeId(const BNode* n) const {
  return NodeId(kBufTag, instance_, n->index);
}

BufferComponent::BNode* BufferComponent::Resolve(const NodeId& p) const {
  MIX_CHECK_MSG(p.valid() && p.tag_atom() == kBufTag && p.IntAt(0) == instance_,
                "foreign node-id passed to BufferComponent");
  int64_t index = p.IntAt(1);
  MIX_CHECK(index >= 0 && index < static_cast<int64_t>(by_index_.size()));
  return by_index_[static_cast<size_t>(index)];
}

NodeId BufferComponent::Root() {
  demand_fill_in_command_ = false;
  EnsureRoot();
  BNode* root = ChaseFirst(super_root_, 0);
  MIX_CHECK_MSG(root != nullptr, "LXP source exported an empty view");
  Prefetch(demand_fill_in_command_);
  return MakeId(root);
}

std::optional<NodeId> BufferComponent::Down(const NodeId& p) {
  demand_fill_in_command_ = false;
  BNode* n = Resolve(p);
  MIX_CHECK(!n->is_hole);
  BNode* child = ChaseFirst(n, 0);
  Prefetch(demand_fill_in_command_);
  if (child == nullptr) return std::nullopt;
  return MakeId(child);
}

std::optional<NodeId> BufferComponent::Right(const NodeId& p) {
  demand_fill_in_command_ = false;
  BNode* n = Resolve(p);
  MIX_CHECK(n->parent != nullptr);
  BNode* sibling = ChaseFirst(n->parent, static_cast<size_t>(n->pos) + 1);
  Prefetch(demand_fill_in_command_);
  if (sibling == nullptr) return std::nullopt;
  return MakeId(sibling);
}

Label BufferComponent::Fetch(const NodeId& p) {
  BNode* n = Resolve(p);
  MIX_CHECK(!n->is_hole);
  return n->label;
}

Atom BufferComponent::FetchAtom(const NodeId& p) {
  BNode* n = Resolve(p);
  MIX_CHECK(!n->is_hole);
  return n->label_atom;
}

void BufferComponent::DownAll(const NodeId& p, std::vector<NodeId>* out) {
  demand_fill_in_command_ = false;
  BNode* n = Resolve(p);
  MIX_CHECK(!n->is_hole);
  CompleteChildList(n);
  out->reserve(out->size() + n->children.size());
  for (const BNode* c : n->children) out->push_back(MakeId(c));
  Prefetch(demand_fill_in_command_);
}

void BufferComponent::NextSiblings(const NodeId& p, int64_t limit,
                                   std::vector<NodeId>* out) {
  if (limit == 0) return;
  demand_fill_in_command_ = false;
  BNode* n = Resolve(p);
  MIX_CHECK(n->parent != nullptr);
  BNode* parent = n->parent;
  size_t pos = static_cast<size_t>(n->pos) + 1;
  int64_t taken = 0;
  while (pos < parent->children.size() && (limit < 0 || taken < limit)) {
    BNode* s = parent->children[pos];
    if (s->is_hole) {
      FillBudget budget;  // default: refine completely
      if (limit >= 0) {
        // Ask only for the elements still missing: siblings already
        // buffered beyond the hole count against the limit too, so the
        // batched page ships no more bytes than the one-fill-at-a-time
        // walk would have.
        int64_t buffered_after = 0;
        for (size_t i = pos + 1; i < parent->children.size(); ++i) {
          if (!parent->children[i]->is_hole) ++buffered_after;
        }
        budget.elements = std::max<int64_t>(limit - taken - buffered_after, 0);
      }
      FillHolesBatch({s}, budget, /*background=*/false);
      continue;  // the list changed in place; re-examine the same position
    }
    out->push_back(MakeId(s));
    ++taken;
    ++pos;
  }
  Prefetch(demand_fill_in_command_);
}

void BufferComponent::FetchSubtreeOf(BNode* n, int32_t depth_here,
                                     int64_t depth_limit,
                                     std::vector<SubtreeEntry>* out) {
  const size_t slot = out->size();
  out->push_back(SubtreeEntry{n->label_atom, depth_here, false, NodeId()});
  if (depth_limit >= 0 && depth_here >= depth_limit) {
    // Probe exactly like a node-at-a-time d at the cutoff would: resolve
    // leading holes until the first element (or an empty list) is known.
    if (ChaseFirst(n, 0) != nullptr) {
      (*out)[slot].truncated = true;
      (*out)[slot].id = MakeId(n);
    }
    return;
  }
  CompleteChildList(n);
  // Snapshot: CompleteChildList on a descendant cannot reallocate this
  // vector (the list is already hole-free), but keep indices, not
  // iterators, for clarity.
  for (size_t i = 0; i < n->children.size(); ++i) {
    FetchSubtreeOf(n->children[i], depth_here + 1, depth_limit, out);
  }
}

void BufferComponent::FetchSubtree(const NodeId& p, int64_t depth,
                                   std::vector<SubtreeEntry>* out) {
  demand_fill_in_command_ = false;
  BNode* n = Resolve(p);
  MIX_CHECK(!n->is_hole);
  FetchSubtreeOf(n, 0, depth, out);
  Prefetch(demand_fill_in_command_);
}

std::string BufferComponent::TermOf(const BNode* n) const {
  if (n->is_hole) return "hole[" + n->hole_id + "]";
  if (n->children.empty()) return n->label;
  std::string out = n->label + "[";
  bool first = true;
  for (const BNode* c : n->children) {
    if (!first) out += ",";
    first = false;
    out += TermOf(c);
  }
  out += "]";
  return out;
}

std::string BufferComponent::OpenTreeTerm() {
  EnsureRoot();
  std::string out = "[";
  bool first = true;
  for (const BNode* c : super_root_->children) {
    if (!first) out += ",";
    first = false;
    out += TermOf(c);
  }
  out += "]";
  return out;
}

}  // namespace mix::buffer
