// Async fill primitives for the LXP wrapper boundary.
//
// The paper's Section 6 names asynchronous prefetching as the planned
// optimization for navigation-driven evaluation; until this layer existed
// the repo only *modeled* overlap (a second channel charged to a null
// clock). These types make the overlap real:
//
//  - `FillFuture` is the completion handle for one in-flight FillMany
//    exchange. A wrapper's BeginFillMany returns it immediately; the
//    transport (or a sync shim) completes it exactly once with the Status
//    and response list. Waiters block on a condvar; completion callbacks
//    fire inline on the completing thread.
//
//  - `PushMailbox` is the cancellation-safe landing channel for background
//    prefetch results. The service-level prefetcher holds only a
//    shared_ptr to the mailbox — never to the session or buffer — so a
//    session can close while fills are in flight: Close() flips the box
//    and later deliveries are dropped on the floor instead of touching
//    freed buffers. The owning BufferComponent drains the box at command
//    boundaries through the validated-splice path (ApplyPushedFill).
//
// Both types are self-contained shared state (no back-pointers), which is
// the whole cancellation story: dropping your reference *is* cancelling.
#ifndef MIX_BUFFER_ASYNC_FILL_H_
#define MIX_BUFFER_ASYNC_FILL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "buffer/lxp.h"
#include "core/status.h"

namespace mix::buffer {

/// Completion handle for one in-flight fill exchange. Created by
/// LxpWrapper::BeginFill/BeginFillMany; completed exactly once by whoever
/// owns the exchange (sync shim, transport dispatch thread, worker pool).
///
/// Thread-safe. `Complete` is idempotent-hostile by contract: a second call
/// is ignored (first writer wins) so a transport failing all pending
/// futures in its destructor cannot double-complete one that raced a
/// response.
class FillFuture {
 public:
  using Callback = std::function<void(const Status&, const HoleFillList&)>;

  /// Completes the future with `status` and `fills`, wakes all waiters and
  /// fires any registered callback inline. Calls after the first are no-ops.
  void Complete(Status status, HoleFillList fills);

  /// Blocks until completed; returns the status. `out` (optional) receives
  /// the response list by move on first Wait — a second Wait returns the
  /// same status but an empty list.
  Status Wait(HoleFillList* out);

  /// True once completed (non-blocking).
  bool Ready() const;

  /// Registers a callback fired on completion (inline, on the completing
  /// thread). If the future is already complete, fires immediately on the
  /// calling thread. At most one callback; later registrations replace an
  /// unfired one.
  void OnComplete(Callback cb);

  /// Convenience: a future already completed with `status`/`fills` — the
  /// sync shim's return value.
  static std::shared_ptr<FillFuture> Resolved(Status status,
                                              HoleFillList fills);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
  HoleFillList fills_;
  Callback callback_;
};

/// One background-prefetch delivery: the hole it refines plus the validated
/// candidate fragments (validation still happens again at splice time, on
/// the owning buffer's thread — the mailbox trusts nothing).
struct PushedFill {
  std::string hole_id;
  FragmentList fragments;
};

/// Thread-safe queue of background fill results with a closed latch.
/// Producers (prefetch workers) Deliver; the single consumer (the owning
/// BufferComponent, on its session thread) drains at command boundaries.
/// Close() is the cancellation point: post-close deliveries are dropped.
class PushMailbox {
 public:
  /// Enqueues a delivery; returns false (dropping it) once closed or when
  /// the box already holds `kMaxPending` undrained fills — a slow consumer
  /// must bound producer memory, not grow without limit.
  bool Deliver(PushedFill fill);

  /// Moves out every pending delivery (empty once closed).
  std::vector<PushedFill> Drain();

  /// Closes the box and discards pending deliveries. Idempotent.
  void Close();

  bool closed() const;
  int64_t delivered() const;
  int64_t dropped() const;

  static constexpr size_t kMaxPending = 256;

 private:
  mutable std::mutex mu_;
  bool closed_ = false;
  std::deque<PushedFill> pending_;
  int64_t delivered_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_ASYNC_FILL_H_
