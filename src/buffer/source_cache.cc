#include "buffer/source_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/check.h"

namespace mix::buffer {

namespace {
/// Fixed accounting overhead per entry: key copy in the index, list node,
/// map node, Entry struct. An estimate — what matters is that it is charged
/// consistently so the budget bounds real growth.
constexpr int64_t kEntryOverheadBytes = 96;
}  // namespace

SourceCache::SourceCache(Options options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string SourceCache::Key(const std::string& source, int64_t generation,
                             char kind, const std::string& id) {
  // 0x1f (unit separator) cannot appear in source names or hole ids, so the
  // concatenation is injective.
  std::string key;
  key.reserve(source.size() + id.size() + 24);
  key += source;
  key += '\x1f';
  key += std::to_string(generation);
  key += '\x1f';
  key += kind;
  key += '\x1f';
  key += id;
  return key;
}

SourceCache::Shard& SourceCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

int64_t SourceCache::Generation(const std::string& source) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  auto it = generations_.find(source);
  return it == generations_.end() ? 0 : it->second;
}

int64_t SourceCache::BumpGeneration(const std::string& source) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return ++generations_[source];
}

std::shared_ptr<const FragmentList> SourceCache::LookupFill(
    const std::string& source, int64_t generation, const std::string& hole_id) {
  const std::string key = Key(source, generation, 'f', hole_id);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->second.fragments == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++shard.hits;
  return it->second->second.fragments;
}

void SourceCache::PublishFill(const std::string& source, int64_t generation,
                              const std::string& hole_id,
                              FragmentList fragments) {
  if (options_.byte_budget <= 0) return;
  const std::string key = Key(source, generation, 'f', hole_id);
  Entry entry;
  entry.bytes = kEntryOverheadBytes + static_cast<int64_t>(key.size()) +
                FragmentListByteSize(fragments);
  entry.fragments =
      std::make_shared<const FragmentList>(std::move(fragments));
  Insert(key, std::move(entry));
}

bool SourceCache::LookupRoot(const std::string& source, int64_t generation,
                             const std::string& uri, std::string* root_id) {
  const std::string key = Key(source, generation, 'r', uri);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end() || it->second->second.fragments != nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++shard.hits;
  *root_id = it->second->second.root_id;
  return true;
}

void SourceCache::PublishRoot(const std::string& source, int64_t generation,
                              const std::string& uri,
                              const std::string& root_id) {
  if (options_.byte_budget <= 0) return;
  const std::string key = Key(source, generation, 'r', uri);
  Entry entry;
  entry.root_id = root_id;
  entry.bytes = kEntryOverheadBytes + static_cast<int64_t>(key.size()) +
                static_cast<int64_t>(root_id.size());
  Insert(key, std::move(entry));
}

bool SourceCache::EvictOne() {
  for (int k = 0; k < options_.shards; ++k) {
    size_t idx = static_cast<size_t>(
        evict_cursor_.fetch_add(1, std::memory_order_relaxed) %
        shards_.size());
    Shard& shard = *shards_[idx];
    int64_t freed = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.lru.empty()) continue;
      auto& back = shard.lru.back();
      freed = back.second.bytes;
      shard.index.erase(back.first);
      shard.lru.pop_back();
      shard.bytes -= freed;
    }
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void SourceCache::Insert(const std::string& key, Entry entry) {
  if (entry.bytes > options_.byte_budget) {
    // Admitting it would force the cache to evict everything and still sit
    // over budget; a fragment this large is cheaper to re-fetch.
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int64_t added = entry.bytes;
  // Reserve the bytes before the entry becomes reachable: CAS the account
  // up only when the result stays within budget, evicting LRU tails to
  // make room. Only one shard lock is ever held at a time.
  int64_t cur = bytes_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + added <= options_.byte_budget) {
      if (bytes_.compare_exchange_weak(cur, cur + added,
                                       std::memory_order_relaxed)) {
        // Track the high-water mark of the reservation account (CAS-max:
        // concurrent reservations race, the largest observed value sticks).
        int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
        while (cur + added > peak &&
               !peak_bytes_.compare_exchange_weak(peak, cur + added,
                                                  std::memory_order_relaxed)) {
        }
        break;  // reserved
      }
      continue;  // account moved; `cur` was reloaded by the failed CAS
    }
    if (!EvictOne()) {
      // Every shard is empty yet the budget is fully reserved by inserts
      // still in flight on other threads. Publishing is best-effort — drop.
      rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    cur = bytes_.load(std::memory_order_relaxed);
  }
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.count(key) == 0) {
      shard.bytes += entry.bytes;
      shard.lru.emplace_front(key, std::move(entry));
      shard.index.emplace(key, shard.lru.begin());
      entries_.fetch_add(1, std::memory_order_relaxed);
      insertions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // First publish won; release the loser's reservation.
  bytes_.fetch_sub(added, std::memory_order_relaxed);
}

SourceCache::Stats SourceCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ShardStats ss;
    ss.hits = shard->hits;
    ss.misses = shard->misses;
    ss.entries = static_cast<int64_t>(shard->lru.size());
    ss.bytes = shard->bytes;
    s.shards.push_back(ss);
  }
  return s;
}

}  // namespace mix::buffer
