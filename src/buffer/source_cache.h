// Cross-session shared source-fragment cache (DESIGN.md §4 "Shared
// source-fragment & plan caches").
//
// The mediator is a shared server over slow autonomous sources (paper §3,
// §6 "intermediate eager steps"): N concurrent sessions browsing the same
// view re-issue N identical get_root/fill exchanges against the same
// wrapper. LXP makes the answers reusable across sessions — hole ids are
// stateless encodings of source positions (`t:<table>:<row>`,
// `x:<node>:<lo>:<hi>`, ...), so the fragment list refining a hole id is a
// pure function of (source, source version, hole id). This cache memoizes
// exactly that function:
//
//   (source id, generation, hole/root key)  ->  immutable fragment list
//
// Concurrency: lock-striped shards (key-hashed), each a small LRU map under
// its own mutex; the global byte account is an atomic. No lock is ever held
// while touching another shard's lock, so the striping cannot deadlock and
// scales with readers (TSan-clean by construction).
//
// Memory: every entry is charged its serialized-size estimate plus fixed
// overhead against a process-wide byte budget. An insert reserves its bytes
// (CAS) before the entry becomes reachable, evicting least-recently-used
// entries round-robin across shards to make room; an entry larger than the
// whole budget is not admitted at all. The account — and therefore peak
// cache bytes — never exceeds the budget at any instant.
//
// Freshness (E9 churn semantics): virtual views re-derive from live sources
// per session. Each source carries a generation counter; sessions pin the
// generation at build time, and `BumpGeneration` makes every older entry
// unreachable to new sessions — stale generations are not scrubbed in
// place (in-flight sessions of the old generation keep their consistent
// snapshot), they age out through LRU eviction.
//
// What never enters the cache: degraded `#unavailable` splices. The buffer
// publishes a fill only after it validated and spliced successfully, so a
// flaky source can cost one session retries but can never poison the
// answers of another.
#ifndef MIX_BUFFER_SOURCE_CACHE_H_
#define MIX_BUFFER_SOURCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/lxp.h"

namespace mix::buffer {

class SourceCache {
 public:
  struct Options {
    /// Global byte budget across all shards; <= 0 disables the cache
    /// (lookups miss, publishes are dropped).
    int64_t byte_budget = int64_t{64} << 20;
    /// Lock stripes. More shards = less contention, slightly laxer LRU.
    int shards = 8;
  };

  explicit SourceCache(Options options);
  SourceCache() : SourceCache(Options()) {}

  SourceCache(const SourceCache&) = delete;
  SourceCache& operator=(const SourceCache&) = delete;

  /// Current generation of `source` (0 until first bumped).
  int64_t Generation(const std::string& source);

  /// Invalidates every cached fragment of `source`: the new generation is
  /// returned, and entries of older generations become unreachable to
  /// sessions built afterwards.
  int64_t BumpGeneration(const std::string& source);

  /// Cached fill for `hole_id`, or nullptr. Hits refresh LRU position.
  std::shared_ptr<const FragmentList> LookupFill(const std::string& source,
                                                 int64_t generation,
                                                 const std::string& hole_id);

  /// Publishes a validated fill. First publish wins (concurrent sessions
  /// racing to publish the same hole produce identical lists — the fills
  /// are deterministic — so dropping the loser is free).
  void PublishFill(const std::string& source, int64_t generation,
                   const std::string& hole_id, FragmentList fragments);

  /// Cached get_root answer for `uri`, or false.
  bool LookupRoot(const std::string& source, int64_t generation,
                  const std::string& uri, std::string* root_id);
  void PublishRoot(const std::string& source, int64_t generation,
                   const std::string& uri, const std::string& root_id);

  /// Per-shard traffic, for spotting hot shards or skewed key hashing.
  struct ShardStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;
    int64_t bytes = 0;
  };
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    /// Publishes dropped without insertion: a single entry exceeded the
    /// whole budget, or concurrent inserts had the budget fully reserved.
    int64_t rejects = 0;
    int64_t bytes = 0;
    int64_t entries = 0;
    /// Byte high-water mark of the reservation account. Never exceeds the
    /// budget (reservations are bounded by construction).
    int64_t peak_bytes = 0;
    std::vector<ShardStats> shards;  ///< one per stripe, shard-ordered
  };
  Stats stats() const;

  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t byte_budget() const { return options_.byte_budget; }

 private:
  struct Entry {
    /// Non-null for fill entries; root entries carry `root_id` instead.
    std::shared_ptr<const FragmentList> fragments;
    std::string root_id;
    int64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, Entry>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Entry>>::iterator>
        index;
    // Per-shard accounting, guarded by `mu` (plain ints, not atomics).
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t bytes = 0;
  };

  static std::string Key(const std::string& source, int64_t generation,
                         char kind, const std::string& id);
  Shard& ShardFor(const std::string& key);
  /// Inserts `entry` under `key` into its shard (first publish wins). The
  /// entry's bytes are reserved against the budget BEFORE the entry becomes
  /// reachable, evicting LRU tails round-robin across shards to make room —
  /// the byte account, and therefore peak cache memory, never exceeds the
  /// budget at any instant.
  void Insert(const std::string& key, Entry entry);
  /// Drops one LRU tail entry from the next non-empty shard (round-robin);
  /// false when every shard is empty.
  bool EvictOne();

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> bytes_{0};
  /// High-water mark of `bytes_` (CAS-max on every reservation).
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> rejects_{0};
  /// Round-robin eviction cursor (relieves pressure fairly across shards).
  std::atomic<uint64_t> evict_cursor_{0};

  std::mutex gen_mu_;
  std::unordered_map<std::string, int64_t> generations_;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_SOURCE_CACHE_H_
