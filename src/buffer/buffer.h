// The generic buffer component (paper Section 4, Figs. 7–8).
//
// The buffer sits between a lazy mediator (which speaks fine-grained
// DOM-VXD navigations) and a wrapper (which speaks coarse-grained LXP
// fills). It maintains an *open tree* — a partial image of the wrapper's
// XML view whose unexplored parts are holes — and answers navigation
// commands from the buffered tree when possible. When a navigation "hits a
// hole", the buffer issues fill(hole[id]) and grafts the returned fragment
// list in place of the hole (Fig. 8's d(p)/chase_first, generalized to the
// most liberal LXP policy, where fills may contain holes at arbitrary
// positions).
//
// One generic implementation serves every wrapper — the modularity argument
// of Section 4 against "fat" wrappers with ad-hoc buffering.
//
// Fault handling (DESIGN.md §4 "Fault handling & degradation"): every
// wrapper exchange goes through the Status-returning Try* face of
// LxpWrapper, is validated BEFORE any mutation (progress conditions,
// hole-id freshness, batch completeness), and runs under a RetryPolicy —
// bounded attempts, exponential backoff charged to the session's SimClock,
// capped by the per-command virtual deadline (SetCommandBudgetNs). A
// malformed or failed response can therefore never abort the process or
// corrupt the open tree:
//   * transient failures are retried and, on success, the answer is
//     byte-identical to a fault-free run;
//   * a fill that exhausts its attempts (or fails non-retryably) degrades
//     the hole into an *unavailable* node — a real tree node labeled
//     "#unavailable" with no children — and the rest of the tree stays
//     navigable;
//   * a fill abandoned because its backoff would overrun the command
//     deadline leaves the hole intact (retryable by a later command).
// Navigable has no Status channel (the paper's d/r/f return node-or-⊥), so
// the triggering error is latched in last_status()/TakeStatus() — the
// service layer drains it per command into a typed error frame. The only
// navigation that cannot produce a node at all (Root() with the bootstrap
// fill still pending at a deadline) returns an invalid NodeId plus a
// latched kDeadlineExceeded; every other degraded path yields real,
// resolvable ids.
#ifndef MIX_BUFFER_BUFFER_H_
#define MIX_BUFFER_BUFFER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "buffer/async_fill.h"
#include "buffer/lxp.h"
#include "buffer/source_cache.h"
#include "core/navigable.h"
#include "core/status.h"
#include "net/fault.h"
#include "net/sim_net.h"

namespace mix::buffer {

class BufferComponent : public Navigable {
 public:
  struct Options {
    /// Mediator↔wrapper link; fills are charged here (request + response).
    /// nullptr disables accounting.
    net::Channel* channel = nullptr;

    /// Asynchronous prefetching (Section 4 / future work in Section 6):
    /// opportunistically fill up to this many outstanding holes after a
    /// client command. Two modes:
    ///   * `prefetch_sink` set — REAL asynchrony: the hole ids are handed
    ///     to the service-layer BackgroundPrefetcher, which fills them on
    ///     its own worker pool and delivers through `mailbox`; overlap is
    ///     measured, not modeled.
    ///   * `prefetch_sink` null — deterministic-sim knob (the pre-async
    ///     model): fills run synchronously and their traffic is charged to
    ///     `prefetch_channel` (a null-clock channel) to *pretend* the time
    ///     overlapped. Kept for reproducible single-thread benchmarks
    ///     (bench_prefetch / E7).
    int prefetch_per_command = 0;
    net::Channel* prefetch_channel = nullptr;
    /// Readahead-on-miss (default): prefetch only after commands that had
    /// to issue a demand fill, bounding the run-ahead to
    /// prefetch_per_command fills per frontier hit. When false, every
    /// client command prefetches — unthrottled speculation that can stream
    /// the entire source (measured in bench_prefetch).
    bool prefetch_on_miss_only = true;

    /// Retry discipline for failed wrapper exchanges (default: 1 attempt —
    /// no retry, matching the pre-fault-layer behavior cost-wise).
    net::RetryOptions retry;
    /// Seed for the retry jitter (deterministic per buffer).
    uint64_t retry_seed = 0x6d69782d72747279ull;
    /// Clock that funds retry backoff and the per-command deadline; null
    /// disables both (attempts are still bounded by `retry.max_attempts`).
    /// Typically the same SimClock behind `channel`.
    net::SimClock* clock = nullptr;
    /// Optional service-wide fault counters (atomics) this buffer also
    /// bumps — how per-session recovery aggregates into mixd metrics.
    net::FaultCounters* shared_counters = nullptr;

    /// Cross-session shared fragment cache (DESIGN.md §4 "Shared
    /// source-fragment & plan caches"); nullptr disables. When set, fills
    /// are looked up under (cache_source, cache_generation, hole id) before
    /// any wrapper exchange, and validated fills are published after
    /// splicing. Degraded `#unavailable` splices are never published.
    SourceCache* source_cache = nullptr;
    /// Cache key namespace — the service environment's source name.
    std::string cache_source;
    /// Generation pinned at session build: entries of other generations
    /// are unreachable, preserving the E9 freshness/churn semantics
    /// (SourceCache::BumpGeneration invalidates without scrubbing).
    int64_t cache_generation = 0;

    /// Async readahead window (the tentpole of the async fill engine):
    /// after a demand fill, keep up to this many single-hole fill
    /// exchanges in flight via LxpWrapper::BeginFillMany. A later command
    /// that hits one of those holes consumes the completed future instead
    /// of issuing a blocking exchange — continuation chasing overlaps
    /// splicing and, across sources, one buffer's flights overlap the
    /// other's demand fills. 0 disables (the default: message-count
    /// assertions in existing tests stay exact). Failed or stale flights
    /// fall back to the ordinary retry/degradation demand path, so answers
    /// are byte-identical with the window on or off.
    int max_in_flight = 0;

    /// Landing mailbox for service-pool background prefetch results; the
    /// buffer drains it at each command start through the validated
    /// ApplyPushedFill path and closes it on destruction (cancellation:
    /// post-close deliveries are dropped by the mailbox, never touching
    /// freed memory).
    std::shared_ptr<PushMailbox> mailbox;

    /// Real-prefetch handoff: when set, Prefetch() forwards up to
    /// prefetch_per_command outstanding hole ids here (the service-layer
    /// BackgroundPrefetcher) instead of filling synchronously.
    std::function<void(std::vector<std::string>)> prefetch_sink;
  };

  /// `wrapper` is not owned and must outlive the buffer.
  BufferComponent(LxpWrapper* wrapper, std::string uri, Options options);
  BufferComponent(LxpWrapper* wrapper, std::string uri)
      : BufferComponent(wrapper, std::move(uri), Options()) {}

  /// Closes the mailbox (dropping in-flight background deliveries) and
  /// abandons outstanding readahead futures — their completions hold their
  /// own shared state, so no exchange dangles into freed memory.
  ~BufferComponent() override;

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  /// O(1): returns the atom interned when the fragment was grafted.
  Atom FetchAtom(const NodeId& p) override;

  /// Vectored commands: outstanding holes on the traversed lists are
  /// coalesced into FillMany batches, so completing a child list (or a
  /// sibling page, or a whole subtree) costs one request/response exchange
  /// on the demand channel instead of one per hole.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

  /// Wrapper-initiated (push) fill — the asynchronous LXP variant of
  /// Section 4: "the wrapper can prefetch data from the source and fill
  /// in previously left open holes at the buffer". Splices `fragments`
  /// into the outstanding hole `hole_id`; returns false when that hole is
  /// unknown or was already filled, or when the fragments violate the fill
  /// validity conditions (a malformed push is simply dropped, as a corrupt
  /// network message would be). Traffic is charged to the prefetch
  /// channel (it overlaps client think time), never to the demand path.
  bool ApplyPushedFill(const std::string& hole_id,
                       const FragmentList& fragments);

  /// Number of fills successfully applied so far (demand + prefetch).
  int64_t fill_count() const { return fill_count_; }
  /// Elements currently materialized in the open tree.
  int64_t nodes_buffered() const { return nodes_buffered_; }
  /// Unfilled holes currently present.
  int64_t holes_outstanding() const { return holes_outstanding_; }
  /// Holes degraded into unavailable nodes after exhausted/permanent fill
  /// failures.
  int64_t degraded_holes() const { return degraded_holes_; }

  /// First error latched by navigation since the last TakeStatus() — the
  /// typed face of ⊥/"#unavailable" answers. OK when navigation has been
  /// clean.
  const Status& last_status() const { return last_status_; }
  /// Returns and clears the latch (one typed error per service command).
  Status TakeStatus();

  /// Arms the per-command fill deadline: demand fills issued by subsequent
  /// commands may spend at most `budget_ns` of virtual time (clock +
  /// backoff) before failing with kDeadlineExceeded; < 0 (or a null
  /// Options::clock) disarms. The service layer calls this with the
  /// executor deadline's remaining budget, 1 real ns = 1 virtual ns.
  void SetCommandBudgetNs(int64_t budget_ns);

  /// One-call snapshot of the counters above — what a per-session metrics
  /// sweep (service layer) reads per buffered source.
  struct Stats {
    int64_t fills = 0;
    int64_t nodes_buffered = 0;
    int64_t holes_outstanding = 0;
    /// Fault/recovery counters: failed wrapper exchanges observed, retries
    /// issued, virtual backoff time spent, holes degraded to unavailable.
    int64_t faults = 0;
    int64_t retries = 0;
    int64_t backoff_ns = 0;
    int64_t degraded_holes = 0;
    /// Shared-cache traffic: fills (and roots) answered from the shared
    /// cache instead of a wrapper exchange, and lookups that went to the
    /// wire. Zero when Options::source_cache is null.
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    /// Async engine: readahead exchanges put in flight, holes answered
    /// from a completed flight, flights that had to fall back to the sync
    /// demand path (failure/staleness/deadline), and background-prefetch
    /// deliveries applied/dropped from the mailbox.
    int64_t readahead_issued = 0;
    int64_t readahead_hits = 0;
    int64_t readahead_fallbacks = 0;
    int64_t pushed_applied = 0;
    int64_t pushed_dropped = 0;
  };
  Stats stats() const {
    return {fill_count_,        nodes_buffered_,  holes_outstanding_,
            faults_,            retries_,         backoff_ns_,
            degraded_holes_,    cache_hits_,      cache_misses_,
            readahead_issued_,  readahead_hits_,  readahead_fallbacks_,
            pushed_applied_,    pushed_dropped_};
  }

  /// Term rendering of the current open tree (root list), holes included —
  /// lets tests assert the refinement sequence of Ex. 7.
  std::string OpenTreeTerm();

 private:
  struct BNode {
    bool is_hole = false;
    /// A hole whose fill budget is exhausted: a real (navigable) node
    /// labeled "#unavailable" with no children.
    bool unavailable = false;
    std::string hole_id;
    std::string label;
    /// `label`, interned at graft time — answers f without re-hashing.
    Atom label_atom;
    std::vector<BNode*> children;
    BNode* parent = nullptr;
    int32_t pos = 0;
    int64_t index = 0;
  };

  BNode* NewNode();
  BNode* Graft(const Fragment& fragment);
  /// Splices `fragments` in place of `hole` and renumbers positions. The
  /// fragments must already have passed validation.
  void Splice(BNode* hole, const FragmentList& fragments);

  // --- fill-path validation (before ANY mutation) ---
  /// Progress conditions + hole-id freshness for one fragment list.
  /// `fresh` accumulates new hole ids across a response; `consumed` (may be
  /// null) holds batch-entry ids already refined in the same response.
  Status ValidateFragments(const FragmentList& list, bool top_level,
                           std::set<std::string>* fresh,
                           const std::set<std::string>* consumed) const;
  /// One complete fill response for a single hole.
  Status ValidateFill(const FragmentList& fragments) const;
  /// One complete FillMany response: every entry refines a known hole at
  /// most once, every requested hole is answered, every fragment list is
  /// valid. Rejecting here is what keeps a malicious remote source from
  /// aborting mixd (the old MIX_CHECKs) — the batch is applied only after
  /// it validated as a whole.
  Status ValidateBatch(const std::vector<std::string>& requested,
                       const HoleFillList& fills) const;

  // --- Status-returning fill internals ---
  /// Runs one wrapper exchange under the retry policy; demand exchanges
  /// (background=false) charge backoff to Options::clock and respect the
  /// command deadline. Folds the outcome into the fault counters.
  Status RunWithRetry(bool background, const std::function<Status()>& op);
  Status FillHole(BNode* hole, bool background);
  Status FillHolesBatch(const std::vector<BNode*>& holes,
                        const FillBudget& budget, bool background);
  /// Batch-fills until `parent`'s child list contains no holes (degraded
  /// holes count as done). Returns the first error; stops early only on
  /// kDeadlineExceeded (nothing was degraded, so looping cannot progress).
  Status CompleteChildList(BNode* parent);
  /// Pre-order emit of `n`'s subtree, completing child lists as it goes.
  void FetchSubtreeOf(BNode* n, int32_t depth_here, int64_t depth_limit,
                      std::vector<SubtreeEntry>* out);
  /// First element at or after `pos` in `parent`'s list, filling holes as
  /// needed (Fig. 8 chase_first). *out = nullptr if the list is exhausted
  /// (OK) or the blocking fill failed without degrading (error returned).
  Status ChaseFirst(BNode* parent, size_t pos, BNode** out);
  /// Tries to answer `hole` from the shared cache: on a hit the cached
  /// list is re-validated against THIS tree's hole set (freshness is
  /// per-buffer), spliced, and counted as a fill — no wrapper exchange, no
  /// channel charge. False on miss/no cache/validation failure.
  bool TrySpliceFromCache(BNode* hole);
  /// Publishes a validated+spliced fill to the shared cache (no-op without
  /// one). Never called for degraded splices.
  void PublishFill(const std::string& hole_id, FragmentList fragments);
  void Prefetch(bool had_demand_fill);
  /// Tops the readahead window up: draws outstanding holes from the FIFO
  /// and puts single-hole BeginFillMany exchanges in flight until
  /// Options::max_in_flight are pending. Single-hole flights maximize
  /// overlap granularity; a transport with a dispatch thread coalesces the
  /// queued submits into one pipelined batch on the wire.
  void MaybeIssueReadahead();
  /// Answers `hole` from a completed (or completing) readahead flight:
  /// waits (unless the command deadline already passed), validates the
  /// response against the CURRENT hole set and splices through the same
  /// path as a demand batch. False → caller falls back to the sync demand
  /// path (which owns retry/degradation semantics).
  bool ConsumeInflight(BNode* hole);
  /// Applies every pending mailbox delivery (validated push splices);
  /// called at each command start, before navigation resolves.
  void DrainPushed();
  /// Bootstraps the root hole. Never fails hard: a get_root that exhausts
  /// its retries degrades the whole view to one unavailable root node (the
  /// returned Status carries the cause for latching).
  Status EnsureRoot();
  /// Turns an exhausted hole into an unavailable node in place.
  void MarkUnavailable(BNode* hole);
  /// Appends a synthetic unavailable node to `parent`'s child list (root
  /// bootstrap failure / empty-view protocol violation).
  BNode* SynthesizeUnavailable(BNode* parent);
  /// First-error latch (kept until TakeStatus).
  void Latch(const Status& status);

  /// nullptr for invalid, foreign, stale, or hole-internal ids — the public
  /// navigation methods answer ⊥ and latch BadIdStatus() instead of
  /// aborting (ids arrive from the mediator and, through it, from remote
  /// clients; neither may be able to kill the process with a bad handle).
  BNode* Resolve(const NodeId& p) const;
  static Status BadIdStatus();
  NodeId MakeId(const BNode* n) const;
  void Charge(int64_t request_bytes, int64_t response_bytes, bool background);
  std::string TermOf(const BNode* n) const;

  LxpWrapper* wrapper_;
  std::string uri_;
  Options options_;
  int64_t instance_;
  net::RetryPolicy retry_;

  std::deque<BNode> arena_;
  std::vector<BNode*> by_index_;
  BNode* super_root_ = nullptr;  ///< sentinel; its children are the root list.
  bool initialized_ = false;

  /// FIFO of outstanding hole indices for the prefetcher.
  std::deque<int64_t> hole_queue_;
  /// Outstanding holes by wrapper id (for push fills).
  std::map<std::string, int64_t> hole_by_id_;
  /// In-flight readahead exchanges by requested hole id. Entries are
  /// erased when consumed, or when the hole is filled/degraded by another
  /// path (the orphaned future completes into its own shared state).
  std::map<std::string, std::shared_ptr<FillFuture>> inflight_;

  int64_t fill_count_ = 0;
  int64_t nodes_buffered_ = 0;
  int64_t holes_outstanding_ = 0;
  int64_t faults_ = 0;
  int64_t retries_ = 0;
  int64_t backoff_ns_ = 0;
  int64_t degraded_holes_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t readahead_issued_ = 0;
  int64_t readahead_hits_ = 0;
  int64_t readahead_fallbacks_ = 0;
  int64_t pushed_applied_ = 0;
  int64_t pushed_dropped_ = 0;
  /// Absolute virtual deadline for demand fills (-1: none).
  int64_t fill_deadline_ns_ = -1;
  Status last_status_;
  /// True while the current client command has triggered a demand fill.
  bool demand_fill_in_command_ = false;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_BUFFER_H_
