// The generic buffer component (paper Section 4, Figs. 7–8).
//
// The buffer sits between a lazy mediator (which speaks fine-grained
// DOM-VXD navigations) and a wrapper (which speaks coarse-grained LXP
// fills). It maintains an *open tree* — a partial image of the wrapper's
// XML view whose unexplored parts are holes — and answers navigation
// commands from the buffered tree when possible. When a navigation "hits a
// hole", the buffer issues fill(hole[id]) and grafts the returned fragment
// list in place of the hole (Fig. 8's d(p)/chase_first, generalized to the
// most liberal LXP policy, where fills may contain holes at arbitrary
// positions).
//
// One generic implementation serves every wrapper — the modularity argument
// of Section 4 against "fat" wrappers with ad-hoc buffering.
#ifndef MIX_BUFFER_BUFFER_H_
#define MIX_BUFFER_BUFFER_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "core/navigable.h"
#include "net/sim_net.h"

namespace mix::buffer {

class BufferComponent : public Navigable {
 public:
  struct Options {
    /// Mediator↔wrapper link; fills are charged here (request + response).
    /// nullptr disables accounting.
    net::Channel* channel = nullptr;

    /// Asynchronous prefetching (Section 4 / future work in Section 6):
    /// opportunistically fill up to this many outstanding holes after a
    /// client command. Modeling the asynchrony: prefetch traffic is
    /// charged to `prefetch_channel` (background time that overlaps client
    /// think time), not to `channel`.
    int prefetch_per_command = 0;
    net::Channel* prefetch_channel = nullptr;
    /// Readahead-on-miss (default): prefetch only after commands that had
    /// to issue a demand fill, bounding the run-ahead to
    /// prefetch_per_command fills per frontier hit. When false, every
    /// client command prefetches — unthrottled speculation that can stream
    /// the entire source (measured in bench_prefetch).
    bool prefetch_on_miss_only = true;
  };

  /// `wrapper` is not owned and must outlive the buffer.
  BufferComponent(LxpWrapper* wrapper, std::string uri, Options options);
  BufferComponent(LxpWrapper* wrapper, std::string uri)
      : BufferComponent(wrapper, std::move(uri), Options()) {}

  NodeId Root() override;
  std::optional<NodeId> Down(const NodeId& p) override;
  std::optional<NodeId> Right(const NodeId& p) override;
  Label Fetch(const NodeId& p) override;
  /// O(1): returns the atom interned when the fragment was grafted.
  Atom FetchAtom(const NodeId& p) override;

  /// Vectored commands: outstanding holes on the traversed lists are
  /// coalesced into FillMany batches, so completing a child list (or a
  /// sibling page, or a whole subtree) costs one request/response exchange
  /// on the demand channel instead of one per hole.
  void DownAll(const NodeId& p, std::vector<NodeId>* out) override;
  void NextSiblings(const NodeId& p, int64_t limit,
                    std::vector<NodeId>* out) override;
  void FetchSubtree(const NodeId& p, int64_t depth,
                    std::vector<SubtreeEntry>* out) override;

  /// Wrapper-initiated (push) fill — the asynchronous LXP variant of
  /// Section 4: "the wrapper can prefetch data from the source and fill
  /// in previously left open holes at the buffer". Splices `fragments`
  /// into the outstanding hole `hole_id`; returns false when that hole is
  /// unknown or was already filled (the push is simply dropped, as a late
  /// network message would be). Traffic is charged to the prefetch
  /// channel (it overlaps client think time), never to the demand path.
  bool ApplyPushedFill(const std::string& hole_id,
                       const FragmentList& fragments);

  /// Number of fill requests issued so far (demand + prefetch).
  int64_t fill_count() const { return fill_count_; }
  /// Elements currently materialized in the open tree.
  int64_t nodes_buffered() const { return nodes_buffered_; }
  /// Unfilled holes currently present.
  int64_t holes_outstanding() const { return holes_outstanding_; }

  /// One-call snapshot of the counters above — what a per-session metrics
  /// sweep (service layer) reads per buffered source.
  struct Stats {
    int64_t fills = 0;
    int64_t nodes_buffered = 0;
    int64_t holes_outstanding = 0;
  };
  Stats stats() const { return {fill_count_, nodes_buffered_, holes_outstanding_}; }

  /// Term rendering of the current open tree (root list), holes included —
  /// lets tests assert the refinement sequence of Ex. 7.
  std::string OpenTreeTerm();

 private:
  struct BNode {
    bool is_hole = false;
    std::string hole_id;
    std::string label;
    /// `label`, interned at graft time — answers f without re-hashing.
    Atom label_atom;
    std::vector<BNode*> children;
    BNode* parent = nullptr;
    int32_t pos = 0;
    int64_t index = 0;
  };

  BNode* NewNode();
  BNode* Graft(const Fragment& fragment);
  /// Splices `fragments` in place of `hole` and renumbers positions.
  void Splice(BNode* hole, const FragmentList& fragments);
  /// Issues fill() for `hole`, splices the result into the parent list, and
  /// renumbers sibling positions. `background` selects the charge channel.
  void FillHole(BNode* hole, bool background);
  /// Issues one FillMany exchange for `holes` (all outstanding) under
  /// `budget` and splices every returned entry. Charged as ONE request and
  /// ONE response message, whatever the batch size.
  void FillHolesBatch(const std::vector<BNode*>& holes,
                      const FillBudget& budget, bool background);
  /// Batch-fills until `parent`'s child list contains no holes.
  void CompleteChildList(BNode* parent);
  /// Pre-order emit of `n`'s subtree, completing child lists as it goes.
  void FetchSubtreeOf(BNode* n, int32_t depth_here, int64_t depth_limit,
                      std::vector<SubtreeEntry>* out);
  /// First element at or after `pos` in `parent`'s list, filling holes as
  /// needed (Fig. 8 chase_first). nullptr if the list is exhausted.
  BNode* ChaseFirst(BNode* parent, size_t pos);
  void Prefetch(bool had_demand_fill);
  void EnsureRoot();
  BNode* Resolve(const NodeId& p) const;
  NodeId MakeId(const BNode* n) const;
  void Charge(int64_t request_bytes, int64_t response_bytes, bool background);
  std::string TermOf(const BNode* n) const;

  LxpWrapper* wrapper_;
  std::string uri_;
  Options options_;
  int64_t instance_;

  std::deque<BNode> arena_;
  std::vector<BNode*> by_index_;
  BNode* super_root_ = nullptr;  ///< sentinel; its children are the root list.
  bool initialized_ = false;

  /// FIFO of outstanding hole indices for the prefetcher.
  std::deque<int64_t> hole_queue_;
  /// Outstanding holes by wrapper id (for push fills).
  std::map<std::string, int64_t> hole_by_id_;

  int64_t fill_count_ = 0;
  int64_t nodes_buffered_ = 0;
  int64_t holes_outstanding_ = 0;
  /// True while the current client command has triggered a demand fill.
  bool demand_fill_in_command_ = false;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_BUFFER_H_
