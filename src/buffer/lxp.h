// The Lean XML fragment Protocol (LXP), paper Section 4.
//
// LXP has exactly two commands:
//
//   get_root(URI)    -> hole[id]     — handle for the root of a source view;
//   fill(hole[id])   -> [T*]         — a fragment list refining that hole.
//
// Holes (Def. 3) are reserved elements `hole[id]` representing zero or more
// unexplored sibling elements (Def. 4). A fill may be *liberal* (Ex. 7):
// holes may appear at arbitrary positions, subject to the progress
// conditions the paper imposes for termination: a non-empty fill cannot
// consist only of holes, and no two holes may be adjacent.
//
// `Fragment` is the value exchanged by fills — an open tree. Wrappers decide
// the granularity: a relational wrapper ships n tuples per fill, a Web
// wrapper ships a page, etc. The generic buffer (buffer.h) grafts fragments
// into its open tree and never needs wrapper-specific code.
#ifndef MIX_BUFFER_LXP_H_
#define MIX_BUFFER_LXP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "xml/tree.h"

namespace mix::buffer {

class FillFuture;  // async_fill.h — completion handle for in-flight fills.

/// One node of an open tree fragment: an element/leaf or a hole.
struct Fragment {
  bool is_hole = false;
  std::string hole_id;              ///< valid when is_hole.
  std::string label;                ///< valid when !is_hole.
  bool is_text = false;             ///< cosmetic (serialization only).
  std::vector<Fragment> children;   ///< valid when !is_hole.

  static Fragment Hole(std::string id);
  static Fragment Element(std::string label, std::vector<Fragment> children = {});
  static Fragment Text(std::string content);

  /// Deep-copies an in-memory subtree (no holes) into a fragment.
  static Fragment FromXmlSubtree(const xml::Node* node);

  /// Serialized-size estimate in bytes, used for channel accounting.
  int64_t ByteSize() const;

  /// Term rendering, holes as `hole[id]` — for tests against Ex. 6/7.
  std::string ToTerm() const;
};

using FragmentList = std::vector<Fragment>;

int64_t FragmentListByteSize(const FragmentList& list);

/// One element of a batched fill response (`LxpWrapper::FillMany`): the
/// refined hole and its fragment list. Each list obeys the same progress
/// conditions as a single fill.
struct HoleFill {
  std::string hole_id;
  FragmentList fragments;
};

using HoleFillList = std::vector<HoleFill>;

int64_t HoleFillListByteSize(const HoleFillList& fills);

/// Bounds on how far a batched fill may run ahead of the requested holes.
/// Negative values mean unbounded. `{}` (both unbounded) asks the wrapper to
/// refine the requested holes *completely* — chase every continuation hole
/// its own responses introduce at the top level, leaving the affected
/// sibling lists hole-free.
struct FillBudget {
  /// Stop chasing once this many top-level (non-hole) fragments have been
  /// emitted across the whole batch — demand paging: "I need k more
  /// siblings, stop as soon as you have shipped them".
  int64_t elements = -1;
  /// Stop chasing once this many fills have been performed (the requested
  /// holes always count, and are always all served) — speculation depth:
  /// "run at most k fills ahead", the prefetcher's budget.
  int64_t fills = -1;
};

/// What a wrapper can absorb beyond plain LXP, advertised to the plan
/// optimizer. Mirrors mediator::SourceCapability (mix_mediator does not
/// link mix_buffer; the service layer converts between the two).
struct PushdownCapability {
  enum class ColumnType { kInt, kDouble, kString };
  struct Column {
    std::string name;
    ColumnType type = ColumnType::kString;
  };

  /// The wrapper's views answer σ (sibling label selection) in one
  /// exchange — label-chain getDescendants over them is bounded browsable.
  bool sigma = false;
  /// The wrapper accepts "sql:SELECT ..." view URIs whose WHERE clause it
  /// evaluates server-side, so filtered tuples never cross the wire.
  bool pushdown = false;
  /// Root label of the exported database document; only set with
  /// `pushdown`.
  std::string database;
  /// table -> columns, for the optimizer's type-legality checks.
  std::map<std::string, std::vector<Column>> tables;
};

/// The LXP server role, implemented by every wrapper.
///
/// Contract (paper Section 4): all ids handed out via GetRoot/embedded holes
/// remain valid; Fill must satisfy the progress conditions (a non-empty
/// result is not all holes; no two adjacent holes) and the sequence of
/// refinements must be extendable to the complete source tree.
class LxpWrapper {
 public:
  virtual ~LxpWrapper() = default;

  /// Capability advertisement for the plan optimizer. The default is the
  /// empty capability: no σ, no pushdown (correct for CSV/XML/scripted
  /// wrappers, which serve exactly one fixed view).
  virtual PushdownCapability Capability() const { return {}; }

  /// get_root: establishes the connection and returns the root hole id.
  virtual std::string GetRoot(const std::string& uri) = 0;

  /// fill: refines the hole into a fragment list.
  virtual FragmentList Fill(const std::string& hole_id) = 0;

  /// fill_many: coalesced fills — one request/response exchange refining
  /// several holes. Returns one entry per requested hole (in request
  /// order), each satisfying the single-fill contract; within `budget` the
  /// wrapper may append further entries for *top-level* continuation holes
  /// its own responses introduced, so a k-step hole chase costs one
  /// exchange instead of k. Entries are ordered so that each filled hole
  /// already exists once the entries before it are spliced.
  ///
  /// The default implementation loops Fill() over the requested holes and
  /// never chases (safe for any wrapper, including scripted ones).
  virtual HoleFillList FillMany(const std::vector<std::string>& holes,
                                const FillBudget& budget);

  /// Status-returning variants — the fallible face of the same protocol.
  /// The buffer calls ONLY these: a wrapper backed by a real network (the
  /// framed stub, a fault-injecting decorator) overrides them to report
  /// transport failures as Status instead of fabricating empty results,
  /// which is what lets the buffer retry, back off, or degrade instead of
  /// aborting. The defaults delegate to the legacy methods and always
  /// succeed, so existing in-process wrappers need no changes.
  virtual Status TryGetRoot(const std::string& uri, std::string* out);
  virtual Status TryFill(const std::string& hole_id, FragmentList* out);
  virtual Status TryFillMany(const std::vector<std::string>& holes,
                             const FillBudget& budget, HoleFillList* out);

  /// Async submit/complete seam. BeginFillMany submits one batched fill
  /// exchange and returns a completion handle immediately; the caller
  /// overlaps other work and later Wait()s (or registers OnComplete).
  ///
  /// The default is a *sync shim*: it runs TryFillMany inline and returns
  /// an already-completed future — deterministic immediate completion, so
  /// every existing wrapper (scripted, XML, CSV, relational, the
  /// fault-injecting decorator) participates in the async engine unchanged
  /// and byte-identically. Only wrappers backed by a real async transport
  /// (FramedLxpWrapper over TcpFrameTransport) override this to put the
  /// exchange genuinely in flight.
  ///
  /// Thread-safety contract: unless a wrapper documents otherwise, callers
  /// must not invoke Begin*/Try*/Fill concurrently on one wrapper — the
  /// concurrency lives *between* wrappers (one per source) and inside the
  /// transport, not inside a wrapper instance.
  virtual std::shared_ptr<FillFuture> BeginFillMany(
      const std::vector<std::string>& holes, const FillBudget& budget);

  /// Single-hole convenience over BeginFillMany.
  std::shared_ptr<FillFuture> BeginFill(const std::string& hole_id);

 protected:
  /// Budgeted chasing loop shared by the concrete wrappers: serves each
  /// requested hole via Fill(), then keeps filling top-level holes
  /// introduced by its own responses (FIFO) while the budget allows.
  /// Nested holes (unexplored children) are never chased — they do not
  /// block the sibling lists the caller is completing, and filling them
  /// would ship bytes the client never asked for.
  ///
  /// Adaptive fill sizing: a chase that keeps producing full chunks with a
  /// continuation hole is a scan, and per-chunk cursor re-seeks dominate at
  /// small chunks (the PR 2 batched-full-scan regression). ChaseFills
  /// therefore grows a fill-size hint geometrically (2x per consecutive
  /// continued fill, capped by the remaining element budget and
  /// kMaxFillSizeHint) and offers it to the wrapper via SetFillSizeHint
  /// before each continuation fill. Demand chases only: a fill-bounded
  /// (speculative/prefetch) chase keeps the wrapper's configured chunk, so
  /// a speculation budget of k fills cannot balloon into k oversized ones.
  HoleFillList ChaseFills(const std::vector<std::string>& holes,
                          const FillBudget& budget);

  /// Ceiling for the adaptive hint. Deliberately modest: inside a chase the
  /// exchange is already coalesced (messages don't shrink with bigger
  /// fills), so the hint only amortizes per-fill overhead — and oversized
  /// fragment lists lose on allocator/cache locality (the E3 chunk sweep
  /// puts the per-fill sweet spot near a few hundred elements).
  static constexpr int64_t kMaxFillSizeHint = 512;

  /// Suggested element count for the NEXT Fill() call; 0 resets to the
  /// wrapper's configured chunk. Honoring it is optional (default no-op) —
  /// wrappers with stateless cursor encodings simply serve
  /// max(configured chunk, hint) elements.
  virtual void SetFillSizeHint(int64_t elements) { (void)elements; }
};

/// Scripted wrapper for tests: replays a fixed hole-id → fragment-list map
/// (e.g. the Ex. 7 trace verbatim).
class ScriptedLxpWrapper : public LxpWrapper {
 public:
  ScriptedLxpWrapper(std::string root_hole_id,
                     std::map<std::string, FragmentList> fills)
      : root_(std::move(root_hole_id)), fills_(std::move(fills)) {}

  std::string GetRoot(const std::string& uri) override;
  FragmentList Fill(const std::string& hole_id) override;

  /// Fill requests received, in order (for asserting minimality).
  const std::vector<std::string>& fill_log() const { return fill_log_; }

 private:
  std::string root_;
  std::map<std::string, FragmentList> fills_;
  std::vector<std::string> fill_log_;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_LXP_H_
