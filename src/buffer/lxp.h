// The Lean XML fragment Protocol (LXP), paper Section 4.
//
// LXP has exactly two commands:
//
//   get_root(URI)    -> hole[id]     — handle for the root of a source view;
//   fill(hole[id])   -> [T*]         — a fragment list refining that hole.
//
// Holes (Def. 3) are reserved elements `hole[id]` representing zero or more
// unexplored sibling elements (Def. 4). A fill may be *liberal* (Ex. 7):
// holes may appear at arbitrary positions, subject to the progress
// conditions the paper imposes for termination: a non-empty fill cannot
// consist only of holes, and no two holes may be adjacent.
//
// `Fragment` is the value exchanged by fills — an open tree. Wrappers decide
// the granularity: a relational wrapper ships n tuples per fill, a Web
// wrapper ships a page, etc. The generic buffer (buffer.h) grafts fragments
// into its open tree and never needs wrapper-specific code.
#ifndef MIX_BUFFER_LXP_H_
#define MIX_BUFFER_LXP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "xml/tree.h"

namespace mix::buffer {

/// One node of an open tree fragment: an element/leaf or a hole.
struct Fragment {
  bool is_hole = false;
  std::string hole_id;              ///< valid when is_hole.
  std::string label;                ///< valid when !is_hole.
  bool is_text = false;             ///< cosmetic (serialization only).
  std::vector<Fragment> children;   ///< valid when !is_hole.

  static Fragment Hole(std::string id);
  static Fragment Element(std::string label, std::vector<Fragment> children = {});
  static Fragment Text(std::string content);

  /// Deep-copies an in-memory subtree (no holes) into a fragment.
  static Fragment FromXmlSubtree(const xml::Node* node);

  /// Serialized-size estimate in bytes, used for channel accounting.
  int64_t ByteSize() const;

  /// Term rendering, holes as `hole[id]` — for tests against Ex. 6/7.
  std::string ToTerm() const;
};

using FragmentList = std::vector<Fragment>;

int64_t FragmentListByteSize(const FragmentList& list);

/// The LXP server role, implemented by every wrapper.
///
/// Contract (paper Section 4): all ids handed out via GetRoot/embedded holes
/// remain valid; Fill must satisfy the progress conditions (a non-empty
/// result is not all holes; no two adjacent holes) and the sequence of
/// refinements must be extendable to the complete source tree.
class LxpWrapper {
 public:
  virtual ~LxpWrapper() = default;

  /// get_root: establishes the connection and returns the root hole id.
  virtual std::string GetRoot(const std::string& uri) = 0;

  /// fill: refines the hole into a fragment list.
  virtual FragmentList Fill(const std::string& hole_id) = 0;
};

/// Scripted wrapper for tests: replays a fixed hole-id → fragment-list map
/// (e.g. the Ex. 7 trace verbatim).
class ScriptedLxpWrapper : public LxpWrapper {
 public:
  ScriptedLxpWrapper(std::string root_hole_id,
                     std::map<std::string, FragmentList> fills)
      : root_(std::move(root_hole_id)), fills_(std::move(fills)) {}

  std::string GetRoot(const std::string& uri) override;
  FragmentList Fill(const std::string& hole_id) override;

  /// Fill requests received, in order (for asserting minimality).
  const std::vector<std::string>& fill_log() const { return fill_log_; }

 private:
  std::string root_;
  std::map<std::string, FragmentList> fills_;
  std::vector<std::string> fill_log_;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_LXP_H_
