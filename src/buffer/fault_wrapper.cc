#include "buffer/fault_wrapper.h"

#include <utility>

#include "core/check.h"

namespace mix::buffer {

using net::FaultDecision;
using net::FaultKind;

FaultyLxpWrapper::FaultyLxpWrapper(LxpWrapper* inner, const net::FaultSpec& spec,
                                   uint64_t seed)
    : inner_(inner), policy_(spec, seed) {
  MIX_CHECK(inner_ != nullptr);
}

FaultyLxpWrapper::FaultyLxpWrapper(std::unique_ptr<LxpWrapper> inner,
                                   const net::FaultSpec& spec, uint64_t seed)
    : owned_(std::move(inner)), inner_(owned_.get()), policy_(spec, seed) {
  MIX_CHECK(inner_ != nullptr);
}

std::string FaultyLxpWrapper::GetRoot(const std::string& uri) {
  return inner_->GetRoot(uri);
}

FragmentList FaultyLxpWrapper::Fill(const std::string& hole_id) {
  return inner_->Fill(hole_id);
}

HoleFillList FaultyLxpWrapper::FillMany(const std::vector<std::string>& holes,
                                        const FillBudget& budget) {
  return inner_->FillMany(holes, budget);
}

Status FaultyLxpWrapper::TryGetRoot(const std::string& uri, std::string* out) {
  FaultDecision d = policy_.Decide("get_root");
  // A corrupted root id is indistinguishable from a refusal to the buffer
  // (there is no structure to validate yet), so every corruption kind on
  // get_root degenerates to a failed exchange.
  if (d.kind != FaultKind::kNone) return policy_.FailStatus();
  return inner_->TryGetRoot(uri, out);
}

Status FaultyLxpWrapper::TryFill(const std::string& hole_id, FragmentList* out) {
  FaultDecision d = policy_.Decide(hole_id);
  if (d.kind == FaultKind::kFail) return policy_.FailStatus();
  Status s = inner_->TryFill(hole_id, out);
  if (!s.ok()) return s;
  switch (d.kind) {
    case FaultKind::kTruncate:
      // The payload was lost in transit; what arrives is detectably
      // incomplete (an all-hole fill violates the progress conditions).
      *out = FragmentList{Fragment::Hole(hole_id + "#trunc")};
      break;
    case FaultKind::kGarble:
      // Two adjacent holes — illegal anywhere in a fill.
      out->push_back(Fragment::Hole(hole_id + "#g1"));
      out->push_back(Fragment::Hole(hole_id + "#g2"));
      break;
    case FaultKind::kDuplicate:
      // Reuse the very hole id being refined — the buffer's freshness
      // check must reject it.
      out->push_back(Fragment::Element("#dup"));
      out->push_back(Fragment::Hole(hole_id));
      break;
    default:
      break;
  }
  return s;
}

Status FaultyLxpWrapper::TryFillMany(const std::vector<std::string>& holes,
                                     const FillBudget& budget,
                                     HoleFillList* out) {
  FaultDecision d =
      policy_.Decide(holes.empty() ? std::string("fill_many") : holes.front());
  if (d.kind == FaultKind::kFail) return policy_.FailStatus();
  Status s = inner_->TryFillMany(holes, budget, out);
  if (!s.ok()) return s;
  switch (d.kind) {
    case FaultKind::kTruncate:
      // Drop the first entry — a *requested* hole goes unanswered, which
      // the batch validation must flag as an incomplete response.
      if (!out->empty()) out->erase(out->begin());
      break;
    case FaultKind::kGarble:
      if (!out->empty()) {
        HoleFill& first = out->front();
        first.fragments.push_back(Fragment::Hole(first.hole_id + "#g1"));
        first.fragments.push_back(Fragment::Hole(first.hole_id + "#g2"));
      }
      break;
    case FaultKind::kDuplicate:
      // The same hole refined twice in one response.
      if (!out->empty()) out->push_back(out->front());
      break;
    default:
      break;
  }
  return s;
}

}  // namespace mix::buffer
