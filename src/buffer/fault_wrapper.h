// Fault-injecting LxpWrapper decorator.
//
// Wraps any wrapper and, per exchange, injects the failure modes a live
// source exhibits: refusals (fail-with-Status / fail-N-then-succeed),
// stalls (SimClock delays), and corrupt responses. Corruption is always
// *protocol-detectable* — an all-hole list, adjacent holes, a reused or
// re-refined hole id, a dropped batch entry — never a plausible wrong
// answer, so a buffer that validates fills either recovers byte-exactly or
// reports a typed error; it can never silently serve injected garbage.
//
// Determinism: decisions come from a seeded FaultPolicy, so a test that
// fixes the seed replays the exact same fault schedule every run.
#ifndef MIX_BUFFER_FAULT_WRAPPER_H_
#define MIX_BUFFER_FAULT_WRAPPER_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/lxp.h"
#include "net/fault.h"

namespace mix::buffer {

class FaultyLxpWrapper : public LxpWrapper {
 public:
  /// Non-owning: `inner` must outlive this wrapper.
  FaultyLxpWrapper(LxpWrapper* inner, const net::FaultSpec& spec, uint64_t seed);
  /// Owning variant (what per-session wrapper factories hand over).
  FaultyLxpWrapper(std::unique_ptr<LxpWrapper> inner, const net::FaultSpec& spec,
                   uint64_t seed);

  /// Injected delays advance this clock (optional; typically the session's
  /// demand-channel clock, so stalls cost simulated time like traffic does).
  void AttachClock(net::SimClock* clock) { policy_.AttachClock(clock); }
  net::FaultPolicy& policy() { return policy_; }

  // Legacy (infallible) path: fault-free passthrough. The buffer talks to
  // wrappers exclusively through Try*, which is where injection lives.
  std::string GetRoot(const std::string& uri) override;
  FragmentList Fill(const std::string& hole_id) override;
  HoleFillList FillMany(const std::vector<std::string>& holes,
                        const FillBudget& budget) override;

  Status TryGetRoot(const std::string& uri, std::string* out) override;
  Status TryFill(const std::string& hole_id, FragmentList* out) override;
  Status TryFillMany(const std::vector<std::string>& holes,
                     const FillBudget& budget, HoleFillList* out) override;

 private:
  std::unique_ptr<LxpWrapper> owned_;
  LxpWrapper* inner_;
  net::FaultPolicy policy_;
};

}  // namespace mix::buffer

#endif  // MIX_BUFFER_FAULT_WRAPPER_H_
