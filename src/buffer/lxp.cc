#include "buffer/lxp.h"

#include <deque>
#include <utility>

#include "buffer/async_fill.h"
#include "core/check.h"

namespace mix::buffer {

Fragment Fragment::Hole(std::string id) {
  Fragment f;
  f.is_hole = true;
  f.hole_id = std::move(id);
  return f;
}

Fragment Fragment::Element(std::string label, std::vector<Fragment> children) {
  Fragment f;
  f.label = std::move(label);
  f.children = std::move(children);
  return f;
}

Fragment Fragment::Text(std::string content) {
  Fragment f;
  f.label = std::move(content);
  f.is_text = true;
  return f;
}

Fragment Fragment::FromXmlSubtree(const xml::Node* node) {
  MIX_CHECK(node != nullptr);
  if (node->kind == xml::NodeKind::kText) return Text(node->label);
  Fragment f = Element(node->label);
  f.children.reserve(node->children.size());
  for (const xml::Node* c : node->children) {
    f.children.push_back(FromXmlSubtree(c));
  }
  return f;
}

int64_t Fragment::ByteSize() const {
  if (is_hole) {
    // <hole id="..."/>
    return 12 + static_cast<int64_t>(hole_id.size());
  }
  // Open+close tag overhead plus label bytes.
  int64_t n = 5 + 2 * static_cast<int64_t>(label.size());
  for (const Fragment& c : children) n += c.ByteSize();
  return n;
}

std::string Fragment::ToTerm() const {
  if (is_hole) return "hole[" + hole_id + "]";
  if (children.empty()) return label;
  std::string out = label + "[";
  bool first = true;
  for (const Fragment& c : children) {
    if (!first) out += ",";
    first = false;
    out += c.ToTerm();
  }
  out += "]";
  return out;
}

int64_t FragmentListByteSize(const FragmentList& list) {
  int64_t n = 0;
  for (const Fragment& f : list) n += f.ByteSize();
  return n;
}

int64_t HoleFillListByteSize(const HoleFillList& fills) {
  int64_t n = 0;
  for (const HoleFill& f : fills) {
    // Per-entry framing: the echoed hole id plus its fragment list.
    n += 8 + static_cast<int64_t>(f.hole_id.size()) +
         FragmentListByteSize(f.fragments);
  }
  return n;
}

HoleFillList LxpWrapper::FillMany(const std::vector<std::string>& holes,
                                  const FillBudget& budget) {
  (void)budget;
  HoleFillList out;
  out.reserve(holes.size());
  for (const std::string& id : holes) out.push_back(HoleFill{id, Fill(id)});
  return out;
}

Status LxpWrapper::TryGetRoot(const std::string& uri, std::string* out) {
  *out = GetRoot(uri);
  return Status::OK();
}

Status LxpWrapper::TryFill(const std::string& hole_id, FragmentList* out) {
  *out = Fill(hole_id);
  return Status::OK();
}

Status LxpWrapper::TryFillMany(const std::vector<std::string>& holes,
                               const FillBudget& budget, HoleFillList* out) {
  *out = FillMany(holes, budget);
  return Status::OK();
}

std::shared_ptr<FillFuture> LxpWrapper::BeginFillMany(
    const std::vector<std::string>& holes, const FillBudget& budget) {
  // Sync shim: run the exchange inline and hand back a resolved future.
  // Deterministic immediate completion — the async engine degenerates to
  // the exact synchronous call sequence over wrappers that don't override.
  HoleFillList fills;
  Status status = TryFillMany(holes, budget, &fills);
  return FillFuture::Resolved(std::move(status), std::move(fills));
}

std::shared_ptr<FillFuture> LxpWrapper::BeginFill(const std::string& hole_id) {
  // fills=1: serve exactly the requested hole, no chasing — single-Fill
  // semantics behind the async seam.
  return BeginFillMany({hole_id}, FillBudget{/*elements=*/-1, /*fills=*/1});
}

HoleFillList LxpWrapper::ChaseFills(const std::vector<std::string>& holes,
                                    const FillBudget& budget) {
  HoleFillList out;
  std::deque<std::string> pending;
  int64_t elements = 0;
  int64_t fills = 0;
  int64_t last_elements = 0;
  bool last_continued = false;
  auto serve = [&](std::string id) {
    FragmentList list = Fill(id);
    ++fills;
    last_elements = 0;
    last_continued = false;
    for (const Fragment& f : list) {
      if (f.is_hole) {
        pending.push_back(f.hole_id);
        last_continued = true;
      } else {
        ++elements;
        ++last_elements;
      }
    }
    out.push_back(HoleFill{std::move(id), std::move(list)});
  };
  for (const std::string& id : holes) serve(id);
  // Grow fill sizes only on demand chases: a fill-bounded chase is the
  // prefetcher speculating, and its budget is counted in fills.
  const bool adaptive = budget.fills < 0;
  int64_t hint = 0;
  while (!pending.empty() &&
         (budget.elements < 0 || elements < budget.elements) &&
         (budget.fills < 0 || fills < budget.fills)) {
    if (adaptive) {
      if (last_continued) {
        // The previous fill ran to its size limit and left a continuation:
        // double down. Never ask for more than the caller still wants.
        hint = std::min(std::max(hint * 2, last_elements * 2),
                        kMaxFillSizeHint);
        int64_t offer = hint;
        if (budget.elements >= 0) {
          offer = std::min(offer, budget.elements - elements);
        }
        SetFillSizeHint(offer);
      } else {
        hint = 0;
        SetFillSizeHint(0);
      }
    }
    std::string next = std::move(pending.front());
    pending.pop_front();
    serve(next);
  }
  if (adaptive) SetFillSizeHint(0);
  return out;
}

std::string ScriptedLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;
  return root_;
}

FragmentList ScriptedLxpWrapper::Fill(const std::string& hole_id) {
  fill_log_.push_back(hole_id);
  auto it = fills_.find(hole_id);
  MIX_CHECK_MSG(it != fills_.end(), ("no scripted fill for " + hole_id).c_str());
  return it->second;
}

}  // namespace mix::buffer
