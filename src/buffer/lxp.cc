#include "buffer/lxp.h"

#include "core/check.h"

namespace mix::buffer {

Fragment Fragment::Hole(std::string id) {
  Fragment f;
  f.is_hole = true;
  f.hole_id = std::move(id);
  return f;
}

Fragment Fragment::Element(std::string label, std::vector<Fragment> children) {
  Fragment f;
  f.label = std::move(label);
  f.children = std::move(children);
  return f;
}

Fragment Fragment::Text(std::string content) {
  Fragment f;
  f.label = std::move(content);
  f.is_text = true;
  return f;
}

Fragment Fragment::FromXmlSubtree(const xml::Node* node) {
  MIX_CHECK(node != nullptr);
  if (node->kind == xml::NodeKind::kText) return Text(node->label);
  Fragment f = Element(node->label);
  f.children.reserve(node->children.size());
  for (const xml::Node* c : node->children) {
    f.children.push_back(FromXmlSubtree(c));
  }
  return f;
}

int64_t Fragment::ByteSize() const {
  if (is_hole) {
    // <hole id="..."/>
    return 12 + static_cast<int64_t>(hole_id.size());
  }
  // Open+close tag overhead plus label bytes.
  int64_t n = 5 + 2 * static_cast<int64_t>(label.size());
  for (const Fragment& c : children) n += c.ByteSize();
  return n;
}

std::string Fragment::ToTerm() const {
  if (is_hole) return "hole[" + hole_id + "]";
  if (children.empty()) return label;
  std::string out = label + "[";
  bool first = true;
  for (const Fragment& c : children) {
    if (!first) out += ",";
    first = false;
    out += c.ToTerm();
  }
  out += "]";
  return out;
}

int64_t FragmentListByteSize(const FragmentList& list) {
  int64_t n = 0;
  for (const Fragment& f : list) n += f.ByteSize();
  return n;
}

std::string ScriptedLxpWrapper::GetRoot(const std::string& uri) {
  (void)uri;
  return root_;
}

FragmentList ScriptedLxpWrapper::Fill(const std::string& hole_id) {
  fill_log_.push_back(hole_id);
  auto it = fills_.find(hole_id);
  MIX_CHECK_MSG(it != fills_.end(), ("no scripted fill for " + hole_id).c_str());
  return it->second;
}

}  // namespace mix::buffer
