#include "net/fault.h"

#include <algorithm>

#include "core/check.h"

namespace mix::net {

FaultRng::FaultRng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

uint64_t FaultRng::Next() {
  // xorshift64*.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dull;
}

double FaultRng::NextUnit() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t FaultRng::NextBelow(uint64_t bound) {
  MIX_CHECK(bound > 0);
  return Next() % bound;
}

FaultPolicy::FaultPolicy(const FaultSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed) {}

FaultDecision FaultPolicy::Decide(const std::string& op_key) {
  ++counters_.decisions;
  FaultDecision d;

  // Orthogonal delay draw first, so the kind draw below consumes the same
  // number of PRNG values whether or not a delay fires (keeps seeded runs
  // comparable across delay settings).
  if (spec_.p_delay > 0 && rng_.NextUnit() < spec_.p_delay) {
    d.delay_ns = spec_.delay_ns;
    ++counters_.delays;
    if (clock_ != nullptr) clock_->Advance(spec_.delay_ns);
  }

  if (spec_.fail_first_n > 0) {
    auto [it, fresh] = fails_left_.try_emplace(op_key, spec_.fail_first_n);
    if (it->second > 0) {
      --it->second;
      ++counters_.fails;
      d.kind = FaultKind::kFail;
      return d;
    }
  }

  double u = rng_.NextUnit();
  if (u < spec_.p_fail) {
    ++counters_.fails;
    d.kind = FaultKind::kFail;
  } else if (u < spec_.p_fail + spec_.p_truncate) {
    ++counters_.truncates;
    d.kind = FaultKind::kTruncate;
  } else if (u < spec_.p_fail + spec_.p_truncate + spec_.p_garble) {
    ++counters_.garbles;
    d.kind = FaultKind::kGarble;
  } else if (u <
             spec_.p_fail + spec_.p_truncate + spec_.p_garble + spec_.p_duplicate) {
    ++counters_.duplicates;
    d.kind = FaultKind::kDuplicate;
  }
  return d;
}

Status FaultPolicy::FailStatus() const {
  return Status::FromCode(spec_.fail_code, "injected fault");
}

bool IsRetryableCode(Status::Code code) {
  switch (code) {
    case Status::Code::kUnavailable:
    case Status::Code::kInternal:
    case Status::Code::kInvalidArgument:
    case Status::Code::kParseError:
      return true;
    default:
      return false;
  }
}

RetryPolicy::RetryPolicy(const RetryOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {}

RetryPolicy::Outcome RetryPolicy::Run(const std::function<Status()>& op,
                                      SimClock* clock, int64_t deadline_ns) {
  Outcome out;
  const bool deadlined = clock != nullptr && deadline_ns >= 0;
  int64_t backoff = std::max<int64_t>(options_.initial_backoff_ns, 0);
  const int max_attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    if (deadlined && clock->now_ns() > deadline_ns) {
      out.status = Status::DeadlineExceeded(
          "request budget exhausted before attempt " + std::to_string(attempt));
      return out;
    }
    out.status = op();
    ++out.attempts;
    if (out.status.ok()) return out;
    ++out.failures;
    if (!IsRetryableCode(out.status.code())) return out;
    if (attempt >= max_attempts) return out;

    int64_t wait = backoff;
    if (options_.jitter > 0 && wait > 0) {
      double scale = 1.0 + options_.jitter * (2.0 * rng_.NextUnit() - 1.0);
      wait = static_cast<int64_t>(static_cast<double>(wait) * scale);
      if (wait < 0) wait = 0;
    }
    if (deadlined && SaturatingAdd(clock->now_ns(), wait) > deadline_ns) {
      // Never start a wait the budget cannot fund; the caller's state stays
      // retryable for a later request.
      out.status = Status::DeadlineExceeded(
          "retry backoff of " + std::to_string(wait) +
          "ns would exceed the request deadline (" + out.status.ToString() +
          ")");
      return out;
    }
    if (clock != nullptr) clock->Advance(wait);
    out.backoff_ns = SaturatingAdd(out.backoff_ns, wait);
    ++out.retries;
    double next = static_cast<double>(backoff) * options_.backoff_multiplier;
    backoff = (next >= static_cast<double>(options_.max_backoff_ns))
                  ? options_.max_backoff_ns
                  : static_cast<int64_t>(next);
  }
}

}  // namespace mix::net
