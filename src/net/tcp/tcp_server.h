// Real network transport for mixd: an edge-triggered epoll reactor hosting
// a MediatorService behind the existing framed wire protocol.
//
// Shape (DESIGN.md §4 "Real TCP transport"):
//
//   * One nonblocking listener + N event-loop threads. The acceptor (event
//     loop 0 owns the listening fd) distributes accepted connections
//     round-robin across loops via per-loop adoption queues + eventfd
//     wakeups, so connection counts balance deterministically without
//     SO_REUSEPORT kernel support.
//   * Per-connection read buffer with incremental frame reassembly: bytes
//     accumulate until wire::PeekFrame reports a whole frame, which is
//     handed to MediatorService::CallAsync — the same decoder and typed
//     rejections as the in-process/sim paths (a truncated or garbled
//     PAYLOAD is an error frame; a garbled HEADER loses frame sync and
//     closes only that connection).
//   * Pipelining with in-order responses: requests dispatched from one
//     connection may complete on different workers in any order (distinct
//     sessions run in parallel), but responses are released to the wire in
//     request order, so a pipelined client needs no correlation ids — the
//     protocol stays exactly the PR 3 codec.
//   * Backpressure, both directions: reads pause (EPOLLIN disarmed) while
//     a connection has max_pipeline commands in flight, and a write queue
//     exceeding write_high_water bytes disconnects the slow reader rather
//     than buffering without bound. Kernel-full writes re-arm EPOLLOUT.
//   * Graceful shutdown: Stop() stops accepting, lets in-flight commands
//     complete and their responses flush (up to drain_timeout_ns), then
//     closes. Idle connections are reaped by a per-loop sweep.
//
// Thread-safety: sockets are registered EPOLLET; the owning loop performs
// all reads, while completions (worker threads) append to the connection's
// mutex-guarded write queue and flush opportunistically — send() on a
// nonblocking fd never blocks the worker. MSG_NOSIGNAL everywhere: a dead
// peer is an errno, never SIGPIPE. The whole reactor runs under TSan in CI.
//
// Lifetime: the server must be destroyed (or Stop()ped) before the
// MediatorService it serves.
#ifndef MIX_NET_TCP_TCP_SERVER_H_
#define MIX_NET_TCP_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "net/tcp/socket_util.h"
#include "service/metrics.h"
#include "service/service.h"

namespace mix::net::tcp {

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is `port()` after Start().
  uint16_t port = 0;
  /// Reactor threads (>= 1). Loop 0 also owns the acceptor.
  int event_loops = 2;
  int listen_backlog = 128;
  /// Accepts beyond this are closed immediately (load shedding).
  size_t max_connections = 1024;
  /// Queued-but-unsent response bytes per connection before the peer is
  /// declared a slow reader and disconnected.
  size_t write_high_water = 8u << 20;
  /// In-flight (dispatched, response not yet released) commands per
  /// connection before reads pause — the pipelining bound.
  size_t max_pipeline = 128;
  /// Close connections idle longer than this (< 0: never).
  int64_t idle_timeout_ns = -1;
  /// How long Stop() waits for in-flight commands to drain.
  int64_t drain_timeout_ns = 5'000'000'000;
  /// > 0: SO_SNDBUF for accepted sockets (tests shrink it to make
  /// slow-reader backpressure trip deterministically).
  int so_sndbuf = 0;
};

class TcpServer {
 public:
  /// `service` is not owned and must outlive this server.
  TcpServer(service::MediatorService* service, TcpServerOptions options);
  ~TcpServer();

  /// Binds, registers the listener, spawns the event loops, and installs
  /// this server as the service's net-stats provider. Fails (without
  /// side effects) if the address cannot be bound.
  Status Start();

  /// Graceful shutdown; idempotent. Safe to call while clients are mid
  /// round-trip: their in-flight commands drain first.
  void Stop();

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  service::NetStats stats() const;

 private:
  struct Conn;
  struct Loop;
  struct Counters;

  void RunLoop(Loop* loop);
  void AcceptNew(Loop* loop);
  void AdoptPending(Loop* loop);
  void HandleReadable(Loop* loop, const std::shared_ptr<Conn>& conn);
  /// Parses whole frames out of conn->in_buf and dispatches them; returns
  /// false when the connection was closed (corrupt header).
  bool ParseFrames(Loop* loop, const std::shared_ptr<Conn>& conn);
  void DispatchFrame(const std::shared_ptr<Conn>& conn, std::string frame);
  /// Completion path (any worker thread): queue in order, flush, police
  /// the high-water mark. Static on purpose — a late completion may run
  /// after the server object is gone, so it may only touch the Conn (which
  /// the callback keeps alive) and the counters it holds.
  static void CompleteResponse(const std::shared_ptr<Conn>& conn, uint64_t seq,
                               std::string response);
  void CloseConn(Loop* loop, const std::shared_ptr<Conn>& conn);
  void ServiceAttention(Loop* loop);
  void SweepIdle(Loop* loop);
  void DrainForShutdown(Loop* loop);

  service::MediatorService* service_;
  TcpServerOptions options_;
  std::shared_ptr<Counters> counters_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::atomic<int64_t> drain_deadline_ns_{-1};
  std::atomic<size_t> next_loop_{0};
};

}  // namespace mix::net::tcp

#endif  // MIX_NET_TCP_TCP_SERVER_H_
