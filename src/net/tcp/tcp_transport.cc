#include "net/tcp/tcp_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mix::net::tcp {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

int64_t DeadlineFrom(int64_t budget_ns) {
  return budget_ns < 0 ? -1 : NowNs() + budget_ns;
}

/// The earlier of two absolute deadlines (-1 = none).
int64_t MinDeadline(int64_t a, int64_t b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return a < b ? a : b;
}
}  // namespace

TcpFrameTransport::TcpFrameTransport(TcpTransportOptions options)
    : options_(std::move(options)) {}

TcpFrameTransport::~TcpFrameTransport() {
  StopDispatch();
  Disconnect();
}

int64_t TcpFrameTransport::OpDeadline() const {
  return DeadlineFrom(options_.op_timeout_ns);
}

Status TcpFrameTransport::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return EnsureConnectedLocked(DeadlineFrom(options_.connect_timeout_ns));
}

void TcpFrameTransport::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  DisconnectLocked();
}

void TcpFrameTransport::DisconnectLocked() {
  fd_.reset();
  in_buf_.clear();
  in_off_ = 0;
}

bool TcpFrameTransport::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_.valid();
}

Status TcpFrameTransport::EnsureConnectedLocked(int64_t deadline_ns) {
  if (fd_.valid()) return Status::OK();
  if (ever_connected_ && !options_.auto_reconnect) {
    return Status::Unavailable("connection dropped (auto_reconnect off)");
  }
  int64_t connect_deadline =
      MinDeadline(deadline_ns, DeadlineFrom(options_.connect_timeout_ns));
  Result<int> fd = ConnectTcp(options_.host, options_.port, connect_deadline);
  if (!fd.ok()) return fd.status();
  (void)SetNoDelay(fd.value());
  fd_.reset(fd.value());
  ever_connected_ = true;
  return Status::OK();
}

Status TcpFrameTransport::SendAllLocked(const std::string& bytes,
                                        int64_t deadline_ns) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::send(fd_.get(), bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = WaitFd(fd_.get(), POLLOUT, deadline_ns);
      if (!ready.ok()) return ready;
      continue;
    }
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> TcpFrameTransport::ReadFrameLocked(int64_t deadline_ns) {
  char buf[kReadChunk];
  for (;;) {
    std::string_view rest(in_buf_.data() + in_off_, in_buf_.size() - in_off_);
    size_t frame_size = 0;
    Status peek_error;
    service::wire::FramePeek peek =
        service::wire::PeekFrame(rest, &frame_size, &peek_error);
    if (peek == service::wire::FramePeek::kCorrupt) {
      return Status::Unavailable("response stream corrupt: " +
                                 peek_error.message());
    }
    if (peek == service::wire::FramePeek::kReady) {
      std::string frame(rest.substr(0, frame_size));
      in_off_ += frame_size;
      if (in_off_ == in_buf_.size()) {
        in_buf_.clear();
        in_off_ = 0;
      }
      return frame;
    }
    Status ready = WaitFd(fd_.get(), POLLIN, deadline_ns);
    if (!ready.ok()) return ready;
    ssize_t r = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      in_buf_.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      return Status::Unavailable("server closed connection");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Result<std::string> TcpFrameTransport::RoundTrip(
    const std::string& request_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t deadline = OpDeadline();
  Status conn = EnsureConnectedLocked(deadline);
  if (!conn.ok()) return conn;
  Status sent = SendAllLocked(request_bytes, deadline);
  if (!sent.ok()) {
    // A partial request desyncs the stream — drop the connection so a
    // retry starts clean.
    DisconnectLocked();
    return sent;
  }
  Result<std::string> response = ReadFrameLocked(deadline);
  if (!response.ok()) {
    DisconnectLocked();
    return response.status();
  }
  return response;
}

Result<std::vector<std::string>> TcpFrameTransport::RoundTripMany(
    const std::vector<std::string>& requests) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t deadline = OpDeadline();
  Status conn = EnsureConnectedLocked(deadline);
  if (!conn.ok()) return conn;
  std::string batch;
  size_t total = 0;
  for (const std::string& r : requests) total += r.size();
  batch.reserve(total);
  for (const std::string& r : requests) batch += r;
  Status sent = SendAllLocked(batch, deadline);
  if (!sent.ok()) {
    DisconnectLocked();
    if (requests.size() > 1 &&
        sent.code() != Status::Code::kDeadlineExceeded) {
      // Part of the batch may be on the wire already; see the read-side
      // desync conversion below.
      return Status::DataLoss("pipelined batch partially written: " +
                              sent.message());
    }
    return sent;
  }
  std::vector<std::string> responses;
  responses.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<std::string> response = ReadFrameLocked(deadline);
    if (!response.ok()) {
      // The whole batch hit the wire, so commands past the last response
      // received are in unknown state: some may have executed, some not.
      // A single command can be re-asked wholesale (RoundTrip's contract),
      // but blindly replaying a multi-command batch could double-execute
      // the prefix — so for batches the retryable transport codes are
      // converted to non-retryable kDataLoss, mirroring the partial-write
      // desync above. kDeadlineExceeded stays as-is (already
      // non-retryable: the caller's budget is gone either way).
      DisconnectLocked();
      Status s = response.status();
      if (requests.size() > 1 &&
          s.code() != Status::Code::kDeadlineExceeded) {
        return Status::DataLoss(
            "pipelined batch desynced after " + std::to_string(i) + "/" +
            std::to_string(requests.size()) + " responses: " + s.message());
      }
      return s;
    }
    responses.push_back(std::move(response.value()));
  }
  return responses;
}

void TcpFrameTransport::RoundTripAsync(
    std::string request_bytes, service::wire::FrameTransport::AsyncDone done) {
  std::lock_guard<std::mutex> lock(async_mu_);
  if (async_stop_) {
    // Teardown raced the submit; fail inline rather than silently dropping.
    done(Status::Unavailable("transport shutting down"));
    return;
  }
  if (!dispatch_started_) {
    dispatch_started_ = true;
    dispatch_ = std::thread([this] { DispatchLoop(); });
  }
  async_queue_.push_back(AsyncOp{std::move(request_bytes), std::move(done)});
  ++async_ops_;
  async_cv_.notify_one();
}

void TcpFrameTransport::DispatchLoop() {
  for (;;) {
    std::vector<AsyncOp> batch;
    {
      std::unique_lock<std::mutex> lock(async_mu_);
      async_cv_.wait(lock,
                     [this] { return async_stop_ || !async_queue_.empty(); });
      if (async_queue_.empty()) return;  // stop requested, nothing pending
      // Take everything queued: ops that accumulated while the previous
      // exchange held the wire become one pipelined batch.
      batch.assign(std::make_move_iterator(async_queue_.begin()),
                   std::make_move_iterator(async_queue_.end()));
      async_queue_.clear();
      ++async_batches_;
    }
    if (batch.size() == 1) {
      batch[0].done(RoundTrip(batch[0].request));
      continue;
    }
    std::vector<std::string> requests;
    requests.reserve(batch.size());
    for (AsyncOp& op : batch) requests.push_back(std::move(op.request));
    Result<std::vector<std::string>> responses = RoundTripMany(requests);
    if (responses.ok()) {
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].done(std::move(responses.value()[i]));
      }
    } else {
      for (AsyncOp& op : batch) op.done(responses.status());
    }
  }
}

void TcpFrameTransport::StopDispatch() {
  std::deque<AsyncOp> orphans;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_stop_ = true;
    orphans.swap(async_queue_);
    async_cv_.notify_all();
  }
  // Fail undispatched ops outside the lock (completions may run arbitrary
  // callbacks). Ops already claimed by the dispatch thread complete there.
  for (AsyncOp& op : orphans) {
    op.done(Status::Unavailable("transport destroyed with ops pending"));
  }
  if (dispatch_.joinable()) dispatch_.join();
}

int64_t TcpFrameTransport::async_ops() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_ops_;
}

int64_t TcpFrameTransport::async_batches() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_batches_;
}

}  // namespace mix::net::tcp
