#include "net/tcp/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mix::net::tcp {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Remaining poll timeout in ms for an absolute deadline (-1 = forever).
/// Clamped to >= 0 so an already-expired deadline polls nonblockingly once.
int TimeoutMs(int64_t deadline_ns) {
  if (deadline_ns < 0) return -1;
  int64_t left = deadline_ns - NowNs();
  if (left <= 0) return 0;
  int64_t ms = left / 1'000'000;
  if (ms > 1'000'000) ms = 1'000'000;
  return static_cast<int>(ms) + 1;  // round up: never poll(0) while funded
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int64_t NowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return int64_t{ts.tv_sec} * 1'000'000'000 + ts.tv_nsec;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Status::Internal(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

Status WaitFd(int fd, short events, int64_t deadline_ns) {
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    int n = ::poll(&p, 1, TimeoutMs(deadline_ns));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("poll"));
    }
    if (n == 0) {
      if (deadline_ns >= 0 && NowNs() >= deadline_ns) {
        return Status::DeadlineExceeded("socket wait deadline");
      }
      continue;
    }
    // Readable-or-hup both count as "ready": the next read/write reports
    // the precise condition (EOF, ECONNRESET, ...).
    if (p.revents & (events | POLLHUP | POLLERR | POLLRDHUP)) {
      return Status::OK();
    }
  }
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port) {
  Result<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  int one = 1;
  (void)setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = addr.value();
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    return Status::Unavailable(Errno("bind"));
  }
  if (listen(fd.get(), backlog) < 0) {
    return Status::Unavailable(Errno("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) < 0) {
      return Status::Internal(Errno("getsockname"));
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd.release();
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int64_t deadline_ns) {
  Result<sockaddr_in> addr =
      ResolveV4(host.empty() ? "127.0.0.1" : host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  sockaddr_in sa = addr.value();
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::Unavailable(Errno("connect"));
  }
  if (rc < 0) {
    Status ready = WaitFd(fd.get(), POLLOUT, deadline_ns);
    if (!ready.ok()) {
      if (ready.code() == Status::Code::kDeadlineExceeded) {
        return Status::DeadlineExceeded("connect deadline to " + host + ":" +
                                        std::to_string(port));
      }
      return ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Status::Unavailable(Errno("connect"));
    }
  }
  return fd.release();
}

}  // namespace mix::net::tcp
