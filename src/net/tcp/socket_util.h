// Small POSIX socket toolkit shared by the real TCP transport (tcp_server,
// tcp_transport). Everything returns Status/Result — the TCP layer follows
// the same no-abort discipline as the wire codec: nothing a peer or the
// kernel does is allowed to crash the process.
//
// All deadlines are absolute CLOCK_MONOTONIC nanoseconds (NowNs()), -1 for
// "no deadline" — the same convention the PR 4 retry machinery uses for its
// virtual budgets, so a transport deadline slots directly into a
// RetryPolicy::Run budget.
#ifndef MIX_NET_TCP_SOCKET_UTIL_H_
#define MIX_NET_TCP_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace mix::net::tcp {

/// Owning file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) reset(o.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// CLOCK_MONOTONIC now, in nanoseconds.
int64_t NowNs();

Status SetNonBlocking(int fd);
/// Disables Nagle: one frame = one request, and request/response lockstep
/// under Nagle+delayed-ACK is the classic 40 ms stall.
Status SetNoDelay(int fd);

/// poll()s `fd` for `events` (POLLIN/POLLOUT) until the absolute deadline.
/// OK when ready; kDeadlineExceeded on timeout; kUnavailable on poll error
/// or a hangup-only revent.
Status WaitFd(int fd, short events, int64_t deadline_ns);

/// Creates a nonblocking listening TCP socket bound to host:port
/// (SO_REUSEADDR; port 0 picks an ephemeral port). `bound_port` (optional)
/// receives the actual port. Returns the listening fd.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog,
                      uint16_t* bound_port);

/// Nonblocking connect with an absolute deadline; the returned fd is
/// nonblocking. kDeadlineExceeded when the deadline cuts the handshake,
/// kUnavailable when the peer refuses.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int64_t deadline_ns);

}  // namespace mix::net::tcp

#endif  // MIX_NET_TCP_SOCKET_UTIL_H_
