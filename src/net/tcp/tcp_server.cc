#include "net/tcp/tcp_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

#include "service/wire.h"

namespace mix::net::tcp {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
/// Compact the read buffer once the consumed prefix crosses this.
constexpr size_t kCompactThreshold = 64 * 1024;
}  // namespace

/// Listener/connection counters. Lives in a shared_ptr so completion
/// callbacks that outlive a force-closed connection (drain-deadline
/// shutdown) can still account without touching the (possibly destroyed)
/// server.
struct TcpServer::Counters {
  std::atomic<int64_t> accepts{0};
  std::atomic<int64_t> conns_active{0};
  std::atomic<int64_t> conns_closed{0};
  std::atomic<int64_t> rx_bytes{0};
  std::atomic<int64_t> tx_bytes{0};
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> frames_out{0};
  std::atomic<int64_t> partial_reads{0};
  std::atomic<int64_t> backpressure_stalls{0};
  std::atomic<int64_t> slow_reader_closes{0};
  std::atomic<int64_t> idle_closes{0};
  std::atomic<int64_t> decode_closes{0};
  std::atomic<int64_t> read_pauses{0};

  service::NetStats Snapshot() const {
    service::NetStats s;
    s.accepts = accepts.load(std::memory_order_relaxed);
    s.conns_active = conns_active.load(std::memory_order_relaxed);
    s.conns_closed = conns_closed.load(std::memory_order_relaxed);
    s.rx_bytes = rx_bytes.load(std::memory_order_relaxed);
    s.tx_bytes = tx_bytes.load(std::memory_order_relaxed);
    s.frames_in = frames_in.load(std::memory_order_relaxed);
    s.frames_out = frames_out.load(std::memory_order_relaxed);
    s.partial_reads = partial_reads.load(std::memory_order_relaxed);
    s.backpressure_stalls = backpressure_stalls.load(std::memory_order_relaxed);
    s.slow_reader_closes = slow_reader_closes.load(std::memory_order_relaxed);
    s.idle_closes = idle_closes.load(std::memory_order_relaxed);
    s.decode_closes = decode_closes.load(std::memory_order_relaxed);
    s.read_pauses = read_pauses.load(std::memory_order_relaxed);
    return s;
  }
};

/// One accepted connection.
///
/// Locking discipline (what keeps the reactor TSan-clean):
///   * in_buf / in_off / next_dispatch_seq are touched only by the owning
///     event loop thread.
///   * Everything the completion path needs — fd validity, the write queue,
///     the in-order release machinery, in_flight, epoll arming state — is
///     guarded by `mu`.
///   * The fd is *closed* only by the owning loop (under mu); workers use
///     it only under mu after checking `closed`, so close/send can never
///     race and a recycled descriptor can never be written.
///   * Loop resources (epoll fd, wake fd) are only touched under mu with
///     `closed == false`; the loop cannot exit while such a section runs
///     (its own close needs mu), so those fds are provably still open.
struct TcpServer::Conn : std::enable_shared_from_this<TcpServer::Conn> {
  // Immutable after adoption.
  Loop* loop = nullptr;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::shared_ptr<Counters> counters;
  size_t write_high_water = 0;
  size_t max_pipeline = 0;

  // Owning-loop-thread only.
  std::string in_buf;
  size_t in_off = 0;
  uint64_t next_dispatch_seq = 0;

  std::atomic<int64_t> last_active_ns{0};

  std::mutex mu;
  int fd = -1;
  bool closed = false;
  bool want_write = false;
  bool read_paused = false;
  bool draining_close = false;  ///< close as soon as the queue flushes
  bool doomed = false;          ///< owning loop should close asap
  bool resume_parse = false;    ///< owning loop should re-run the parser
  uint64_t next_release_seq = 0;
  std::map<uint64_t, std::string> pending;  ///< out-of-order completions
  std::string out_buf;
  size_t out_off = 0;
  size_t in_flight = 0;

  uint32_t EventMaskLocked() const {
    return EPOLLET | EPOLLRDHUP | (read_paused ? 0u : uint32_t{EPOLLIN}) |
           (want_write ? uint32_t{EPOLLOUT} : 0u);
  }
  /// Re-registers the epoll interest set. EPOLL_CTL_MOD re-arms the edge,
  /// so enabling EPOLLIN with bytes already buffered in the kernel WILL
  /// deliver a fresh event.
  void UpdateEventsLocked() {
    if (closed) return;
    epoll_event ev{};
    ev.events = EventMaskLocked();
    ev.data.ptr = this;
    (void)epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }
  /// Asks the owning loop to close this connection (callable from any
  /// thread under mu while !closed).
  void DoomLocked() {
    if (closed || doomed) return;
    doomed = true;
    WakeLoopLocked();
  }
  void WakeLoopLocked();

  /// Drains the write queue into the socket; arms EPOLLOUT when the kernel
  /// is full, dooms the connection on a hard error, and — once empty —
  /// completes a pending draining close. mu held, !closed.
  void FlushLocked() {
    while (out_off < out_buf.size()) {
      ssize_t w = ::send(fd, out_buf.data() + out_off, out_buf.size() - out_off,
                         MSG_NOSIGNAL);
      if (w > 0) {
        out_off += static_cast<size_t>(w);
        counters->tx_bytes.fetch_add(w, std::memory_order_relaxed);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        counters->backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
        if (!want_write) {
          want_write = true;
          UpdateEventsLocked();
        }
        return;
      }
      DoomLocked();  // EPIPE / ECONNRESET: peer is gone
      return;
    }
    out_buf.clear();
    out_off = 0;
    if (want_write) {
      want_write = false;
      UpdateEventsLocked();
    }
    if (draining_close) DoomLocked();
  }
};

/// One reactor thread: an epoll instance, an eventfd for cross-thread
/// wakeups, and the connections it owns. `conns` is touched only by the
/// loop thread; adoption goes through the mutex-guarded pending queue.
struct TcpServer::Loop {
  int index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  std::mutex pending_mu;
  std::vector<int> pending_fds;

  std::unordered_map<Conn*, std::shared_ptr<Conn>> conns;
  /// Keeps conns closed mid-batch alive until the batch's stale epoll
  /// events can no longer reference them.
  std::vector<std::shared_ptr<Conn>> graveyard;
  std::atomic<bool> attention{false};
  bool listener_registered = false;

  /// epoll data.ptr sentinels (distinct stable addresses).
  int wake_marker = 0;
  int listen_marker = 0;

  ~Loop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void Wake() {
    uint64_t one = 1;
    ssize_t rc = ::write(wake_fd, &one, sizeof(one));
    (void)rc;
  }
};

void TcpServer::Conn::WakeLoopLocked() {
  loop->attention.store(true, std::memory_order_release);
  uint64_t one = 1;
  ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  (void)rc;
}

TcpServer::TcpServer(service::MediatorService* service, TcpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      counters_(std::make_shared<Counters>()) {
  if (options_.event_loops < 1) options_.event_loops = 1;
  if (options_.max_pipeline < 1) options_.max_pipeline = 1;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_.load()) return Status::Internal("TcpServer already started");
  uint16_t bound = 0;
  Result<int> lfd = ListenTcp(options_.bind_address, options_.port,
                              options_.listen_backlog, &bound);
  if (!lfd.ok()) return lfd.status();
  listen_fd_.reset(lfd.value());
  port_ = bound;

  for (int i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      listen_fd_.reset();
      loops_.clear();
      return Status::Internal("epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &loop->wake_marker;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;  // level-triggered: accept backlog can't starve
      lev.data.ptr = &loop->listen_marker;
      epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_.get(), &lev);
      loop->listener_registered = true;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { RunLoop(raw); });
  }
  service_->SetNetStatsProvider(
      [c = counters_] { return c->Snapshot(); });
  started_.store(true);
  return Status::OK();
}

void TcpServer::Stop() {
  if (!started_.load() || stopped_) return;
  service_->SetNetStatsProvider(nullptr);
  drain_deadline_ns_.store(NowNs() + std::max<int64_t>(0, options_.drain_timeout_ns));
  stopping_.store(true);
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  loops_.clear();
  listen_fd_.reset();
  stopped_ = true;
}

service::NetStats TcpServer::stats() const { return counters_->Snapshot(); }

void TcpServer::RunLoop(Loop* loop) {
  std::vector<epoll_event> events(128);
  for (;;) {
    bool stopping = stopping_.load(std::memory_order_acquire);
    int timeout_ms = 500;
    if (stopping) {
      timeout_ms = 10;
    } else if (options_.idle_timeout_ns >= 0) {
      int64_t half = options_.idle_timeout_ns / 2'000'000;
      timeout_ms = static_cast<int>(std::max<int64_t>(1, std::min<int64_t>(100, half)));
    }
    int n = epoll_wait(loop->epoll_fd, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == &loop->wake_marker) {
        uint64_t buf;
        while (::read(loop->wake_fd, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (tag == &loop->listen_marker) {
        if (!stopping) AcceptNew(loop);
        continue;
      }
      auto it = loop->conns.find(static_cast<Conn*>(tag));
      if (it == loop->conns.end()) continue;  // stale event from this batch
      std::shared_ptr<Conn> conn = it->second;
      uint32_t ev = events[i].events;
      if (ev & EPOLLOUT) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->closed) conn->FlushLocked();
      }
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(loop, conn);
      }
    }
    AdoptPending(loop);
    if (loop->attention.exchange(false, std::memory_order_acq_rel)) {
      ServiceAttention(loop);
    }
    SweepIdle(loop);
    loop->graveyard.clear();
    if (stopping) {
      if (loop->listener_registered) {
        epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
        loop->listener_registered = false;
      }
      DrainForShutdown(loop);
      if (loop->conns.empty()) break;
    }
  }
}

void TcpServer::AcceptNew(Loop* loop) {
  for (;;) {
    int fd = accept4(listen_fd_.get(), nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: the next event retries
    }
    if (counters_->conns_active.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(options_.max_connections)) {
      ::close(fd);  // shed load: beyond the connection budget
      continue;
    }
    (void)SetNoDelay(fd);
    if (options_.so_sndbuf > 0) {
      (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                       sizeof(options_.so_sndbuf));
    }
    counters_->accepts.fetch_add(1, std::memory_order_relaxed);
    counters_->conns_active.fetch_add(1, std::memory_order_relaxed);
    size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    Loop* dest = loops_[target].get();
    if (dest == loop) {
      // Adopt directly: no queue hop for connections this loop owns.
      std::lock_guard<std::mutex> lock(dest->pending_mu);
      dest->pending_fds.push_back(fd);
      dest->attention.store(true, std::memory_order_release);
    } else {
      {
        std::lock_guard<std::mutex> lock(dest->pending_mu);
        dest->pending_fds.push_back(fd);
      }
      dest->Wake();
    }
  }
  // (unreachable)
}

void TcpServer::AdoptPending(Loop* loop) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop->pending_mu);
    fds.swap(loop->pending_fds);
  }
  for (int fd : fds) {
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      counters_->conns_active.fetch_sub(1, std::memory_order_relaxed);
      counters_->conns_closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->loop = loop;
    conn->epoll_fd = loop->epoll_fd;
    conn->wake_fd = loop->wake_fd;
    conn->counters = counters_;
    conn->write_high_water = options_.write_high_water;
    conn->max_pipeline = options_.max_pipeline;
    conn->fd = fd;
    conn->last_active_ns.store(NowNs(), std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = conn->EventMaskLocked();
    ev.data.ptr = conn.get();
    if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      counters_->conns_active.fetch_sub(1, std::memory_order_relaxed);
      counters_->conns_closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    loop->conns.emplace(conn.get(), conn);
  }
}

void TcpServer::HandleReadable(Loop* loop, const std::shared_ptr<Conn>& conn) {
  if (stopping_.load(std::memory_order_acquire)) return;
  char buf[kReadChunk];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed || conn->read_paused) return;
    }
    ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      counters_->rx_bytes.fetch_add(r, std::memory_order_relaxed);
      conn->last_active_ns.store(NowNs(), std::memory_order_relaxed);
      conn->in_buf.append(buf, static_cast<size_t>(r));
      if (!ParseFrames(loop, conn)) return;  // connection closed
      continue;
    }
    if (r == 0) {  // peer closed its half: nothing more can arrive
      CloseConn(loop, conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(loop, conn);
    return;
  }
  if (conn->in_buf.size() > conn->in_off) {
    counters_->partial_reads.fetch_add(1, std::memory_order_relaxed);
  }
}

bool TcpServer::ParseFrames(Loop* loop, const std::shared_ptr<Conn>& conn) {
  for (;;) {
    std::string_view rest(conn->in_buf.data() + conn->in_off,
                          conn->in_buf.size() - conn->in_off);
    if (rest.empty()) break;
    size_t frame_size = 0;
    service::wire::FramePeek peek =
        service::wire::PeekFrame(rest, &frame_size);
    if (peek == service::wire::FramePeek::kNeedMore) break;
    if (peek == service::wire::FramePeek::kCorrupt) {
      // Frame sync is unrecoverable: there is no way to locate the next
      // frame boundary in a stream whose header lies. Drop only this
      // connection; siblings are untouched.
      counters_->decode_closes.fetch_add(1, std::memory_order_relaxed);
      CloseConn(loop, conn);
      return false;
    }
    std::string frame = conn->in_buf.substr(conn->in_off, frame_size);
    conn->in_off += frame_size;
    DispatchFrame(conn, std::move(frame));
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->read_paused) break;
    }
  }
  if (conn->in_off == conn->in_buf.size()) {
    conn->in_buf.clear();
    conn->in_off = 0;
  } else if (conn->in_off > kCompactThreshold) {
    conn->in_buf.erase(0, conn->in_off);
    conn->in_off = 0;
  }
  return true;
}

void TcpServer::DispatchFrame(const std::shared_ptr<Conn>& conn,
                              std::string frame) {
  uint64_t seq = conn->next_dispatch_seq++;
  counters_->frames_in.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->in_flight += 1;
  }
  // CallAsync may answer inline (decode errors, admission rejection), and
  // CompleteResponse re-locks conn->mu — so no lock may be held here.
  service_->CallAsync(
      std::move(frame),
      [self = conn->shared_from_this(), seq](std::string response) {
        CompleteResponse(self, seq, std::move(response));
      });
  std::lock_guard<std::mutex> lock(conn->mu);
  if (!conn->closed && !conn->read_paused &&
      conn->in_flight >= conn->max_pipeline) {
    conn->read_paused = true;
    conn->counters->read_pauses.fetch_add(1, std::memory_order_relaxed);
    conn->UpdateEventsLocked();
  }
}

void TcpServer::CompleteResponse(const std::shared_ptr<Conn>& conn,
                                 uint64_t seq, std::string response) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->in_flight > 0) conn->in_flight -= 1;
  if (conn->closed) return;  // late completion of a force-closed connection
  conn->pending.emplace(seq, std::move(response));
  // Release every response whose turn has come — responses leave in
  // request order no matter which worker finished first.
  for (auto it = conn->pending.find(conn->next_release_seq);
       it != conn->pending.end();
       it = conn->pending.find(conn->next_release_seq)) {
    conn->out_buf += it->second;
    conn->pending.erase(it);
    conn->next_release_seq += 1;
    conn->counters->frames_out.fetch_add(1, std::memory_order_relaxed);
  }
  conn->last_active_ns.store(NowNs(), std::memory_order_relaxed);
  conn->FlushLocked();
  if (conn->closed || conn->doomed) return;
  if (conn->out_buf.size() - conn->out_off > conn->write_high_water) {
    // Slow reader: the peer is not draining its responses. Cutting the
    // connection bounds server memory; the client sees a reset and its
    // retry policy decides what to do.
    conn->counters->slow_reader_closes.fetch_add(1, std::memory_order_relaxed);
    conn->DoomLocked();
    return;
  }
  if (conn->read_paused && conn->in_flight <= conn->max_pipeline / 2) {
    conn->read_paused = false;
    conn->UpdateEventsLocked();  // MOD re-arms: buffered bytes re-fire
    conn->resume_parse = true;   // and already-read bytes re-parse
    conn->WakeLoopLocked();
  }
}

void TcpServer::CloseConn(Loop* loop, const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->closed) {
      conn->closed = true;
      epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
      ::close(conn->fd);
      conn->fd = -1;
      conn->pending.clear();
      conn->out_buf.clear();
      conn->out_off = 0;
      counters_->conns_active.fetch_sub(1, std::memory_order_relaxed);
      counters_->conns_closed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  loop->graveyard.push_back(conn);
  loop->conns.erase(conn.get());
}

void TcpServer::ServiceAttention(Loop* loop) {
  std::vector<std::shared_ptr<Conn>> snapshot;
  snapshot.reserve(loop->conns.size());
  for (auto& [ptr, conn] : loop->conns) {
    (void)ptr;
    snapshot.push_back(conn);
  }
  for (auto& conn : snapshot) {
    bool doom = false;
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      doom = conn->doomed;
      resume = conn->resume_parse;
      conn->resume_parse = false;
    }
    if (doom) {
      CloseConn(loop, conn);
    } else if (resume) {
      if (!ParseFrames(loop, conn)) continue;
      HandleReadable(loop, conn);
    }
  }
}

void TcpServer::SweepIdle(Loop* loop) {
  if (options_.idle_timeout_ns < 0) return;
  int64_t now = NowNs();
  std::vector<std::shared_ptr<Conn>> idle;
  for (auto& [ptr, conn] : loop->conns) {
    (void)ptr;
    if (now - conn->last_active_ns.load(std::memory_order_relaxed) <
        options_.idle_timeout_ns) {
      continue;
    }
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->in_flight == 0 && conn->out_off == conn->out_buf.size()) {
      idle.push_back(conn);
    }
  }
  for (auto& conn : idle) {
    counters_->idle_closes.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, conn);
  }
}

void TcpServer::DrainForShutdown(Loop* loop) {
  bool force = NowNs() >= drain_deadline_ns_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<Conn>> closable;
  for (auto& [ptr, conn] : loop->conns) {
    (void)ptr;
    std::lock_guard<std::mutex> lock(conn->mu);
    if (force ||
        (conn->in_flight == 0 && conn->pending.empty() &&
         conn->out_off == conn->out_buf.size())) {
      closable.push_back(conn);
    } else {
      conn->draining_close = true;  // FlushLocked dooms it once empty
    }
  }
  for (auto& conn : closable) CloseConn(loop, conn);
}

}  // namespace mix::net::tcp
