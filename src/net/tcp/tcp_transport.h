// Client side of the real network transport: a service::wire::FrameTransport
// over a nonblocking TCP connection.
//
// Because the transport seam is one virtual RoundTrip(bytes) -> bytes, every
// client-side façade built for the in-process service — FramedDocument's
// DOM-VXD navigation, FramedLxpWrapper's remote demand-paging — works over a
// real socket *unchanged*: same frames, same typed errors, same retry
// classification. That parity is tested byte-for-byte (tcp_transport_test).
//
// Deadlines and retries: each RoundTrip gets a budget (op_timeout_ns) that
// covers connect + send + receive. A blown budget returns kDeadlineExceeded
// (NOT retryable — the caller's deadline is gone either way); a refused or
// dropped connection returns kUnavailable (retryable), so the PR 4
// RetryPolicy machinery can drive reconnect-and-retry loops without knowing
// the transport is real. After a deadline or any mid-frame failure the
// connection is dropped: a byte stream with half a frame in flight has no
// recoverable sync point.
//
// Thread-safety: calls are serialized on an internal mutex (one connection,
// one request/response stream). Use one transport per client thread for
// parallelism — connections are cheap, shared streams are not.
#ifndef MIX_NET_TCP_TCP_TRANSPORT_H_
#define MIX_NET_TCP_TCP_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/status.h"
#include "net/tcp/socket_util.h"
#include "service/wire.h"

namespace mix::net::tcp {

struct TcpTransportOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Budget for establishing a connection (lazy, on first use and after a
  /// drop). -1: wait forever.
  int64_t connect_timeout_ns = 2'000'000'000;
  /// Budget for one RoundTrip (connect-if-needed + send + receive whole
  /// response frame). -1: no deadline.
  int64_t op_timeout_ns = -1;
  /// Reconnect transparently on the next call after a dropped connection.
  /// Off, a dropped transport fails every subsequent call with kUnavailable
  /// (deterministic for tests).
  bool auto_reconnect = true;
};

class TcpFrameTransport : public service::wire::FrameTransport {
 public:
  explicit TcpFrameTransport(TcpTransportOptions options);
  ~TcpFrameTransport() override;

  /// Connects eagerly (RoundTrip also connects lazily). kUnavailable when
  /// the server refuses, kDeadlineExceeded when the handshake blows the
  /// connect budget.
  Status Connect();
  void Disconnect();
  bool connected() const;

  Result<std::string> RoundTrip(const std::string& request_bytes) override;

  /// Pipelined round-trip: writes every request back-to-back, then reads
  /// the responses (the server releases them in request order). One TCP
  /// window holds many frames in flight — this is the depth axis of
  /// bench_tcp. The whole batch shares one op_timeout_ns budget.
  ///
  /// Failure semantics differ from RoundTrip: once a multi-command batch
  /// has (partially) hit the wire, a dropped connection leaves the
  /// already-written commands in unknown state, so the failure surfaces as
  /// non-retryable kDataLoss instead of retryable kUnavailable — a blind
  /// replay of the whole batch could double-execute its prefix. Callers
  /// that want automatic re-issue must fall back to per-command RoundTrip.
  /// (Deadline overruns stay kDeadlineExceeded; a 1-element batch keeps
  /// RoundTrip's retryable classification.)
  Result<std::vector<std::string>> RoundTripMany(
      const std::vector<std::string>& requests);

  /// Native async: enqueues the request for a lazily-started dispatch
  /// thread and returns immediately; `done` fires on that thread. Ops
  /// queued while an exchange is on the wire are coalesced into one
  /// pipelined RoundTripMany — the async window turns into real on-wire
  /// pipelining. Destruction fails every pending op with kUnavailable
  /// before joining the thread, so no completion is ever dropped.
  ///
  /// Failure classification follows RoundTripMany: a single in-flight op
  /// keeps RoundTrip's retryable kUnavailable; a coalesced batch that
  /// desyncs mid-read surfaces non-retryable kDataLoss to every op in it.
  void RoundTripAsync(std::string request_bytes,
                      service::wire::FrameTransport::AsyncDone done) override;

  /// Ops submitted / coalesced batches dispatched (observability for tests
  /// and the E19 bench).
  int64_t async_ops() const;
  int64_t async_batches() const;

 private:
  struct AsyncOp {
    std::string request;
    service::wire::FrameTransport::AsyncDone done;
  };

  void DispatchLoop();
  void StopDispatch();
  Status EnsureConnectedLocked(int64_t deadline_ns);
  Status SendAllLocked(const std::string& bytes, int64_t deadline_ns);
  Result<std::string> ReadFrameLocked(int64_t deadline_ns);
  void DisconnectLocked();
  int64_t OpDeadline() const;

  mutable std::mutex mu_;
  TcpTransportOptions options_;
  UniqueFd fd_;
  bool ever_connected_ = false;
  std::string in_buf_;  ///< bytes read past the previous response frame
  size_t in_off_ = 0;

  // Async dispatch state (its own mutex: the dispatch thread holds mu_ for
  // the duration of a wire exchange, and submitters must not block on that).
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::deque<AsyncOp> async_queue_;
  bool async_stop_ = false;
  bool dispatch_started_ = false;
  std::thread dispatch_;
  int64_t async_ops_ = 0;
  int64_t async_batches_ = 0;
};

}  // namespace mix::net::tcp

#endif  // MIX_NET_TCP_TCP_TRANSPORT_H_
