// Deterministic fault injection and bounded-retry recovery.
//
// The paper's lazy-mediator pipeline (Section 4) presumes live network
// sources; the ROADMAP's production north-star demands the mediator survive
// flaky ones. These primitives make that *testable deterministically*:
//
//   * FaultPolicy — a seeded PRNG deciding, per wrapper/transport exchange,
//     whether to refuse (fail-with-Status), stall (delay on the SimClock),
//     or corrupt the response in a protocol-detectable way (truncated,
//     garbled, duplicate). A fail-first-N schedule per operation key covers
//     the "flaky then fine" shape retries exist for.
//   * RetryPolicy — the standard remote-service discipline: bounded
//     attempts, exponential backoff with jitter, every wait charged to the
//     virtual SimClock and bounded by an absolute virtual deadline, so a
//     retry loop can never outlive the request budget that spawned it.
//
// Nothing here sleeps for real: recovery cost is simulated time, which is
// what lets the fault-matrix tests assert byte-identical answers AND exact
// retry/backoff accounting under injected failure rates.
#ifndef MIX_NET_FAULT_H_
#define MIX_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/status.h"
#include "net/sim_net.h"

namespace mix::net {

/// xorshift64* — tiny and reproducible across platforms/compilers (the
/// standard distributions over std::mt19937 are not), which the seeded
/// fault-matrix tests depend on.
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed);
  uint64_t Next();
  /// Uniform in [0, 1).
  double NextUnit();
  /// Uniform in [0, bound); bound > 0.
  uint64_t NextBelow(uint64_t bound);

 private:
  uint64_t state_;
};

/// What one exchange suffers. The corruption kinds mirror what the LXP
/// progress conditions / wire codec can detect — injection never produces a
/// *plausible* wrong answer, only failures the receiver must survive.
enum class FaultKind : uint8_t {
  kNone = 0,
  kFail,       ///< exchange fails outright with FaultSpec::fail_code
  kTruncate,   ///< response cut short (detectably incomplete)
  kGarble,     ///< response violates protocol validity (e.g. adjacent holes)
  kDuplicate,  ///< response repeats an entry / reuses an id
};

struct FaultSpec {
  double p_fail = 0;
  double p_truncate = 0;
  double p_garble = 0;
  double p_duplicate = 0;
  /// Orthogonal to the kinds above: probability that the exchange is also
  /// delayed by delay_ns on the injector's SimClock.
  double p_delay = 0;
  int64_t delay_ns = 2'000'000;  // 2 ms
  /// Deterministic fail-N-then-succeed: the first fail_first_n exchanges
  /// *per operation key* fail with fail_code before the probabilistic kinds
  /// apply (0 disables).
  int fail_first_n = 0;
  Status::Code fail_code = Status::Code::kUnavailable;

  /// True when any injection can ever happen — what gates interposing a
  /// fault decorator at all.
  bool any() const {
    return p_fail > 0 || p_truncate > 0 || p_garble > 0 || p_duplicate > 0 ||
           p_delay > 0 || fail_first_n > 0;
  }
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Delay already charged to the attached clock (0 when none).
  int64_t delay_ns = 0;
};

/// Per-exchange injection decisions plus counters of what was injected.
/// Not thread-safe: use one policy per session wrapper / client transport,
/// matching how the service builds per-session state.
class FaultPolicy {
 public:
  FaultPolicy() : FaultPolicy(FaultSpec{}, 1) {}
  FaultPolicy(const FaultSpec& spec, uint64_t seed);

  /// Decides the fate of the exchange identified by `op_key` (the key only
  /// scopes the fail-first-N schedule). Decided delays are charged to the
  /// attached clock immediately.
  FaultDecision Decide(const std::string& op_key);

  /// Status for a kFail decision.
  Status FailStatus() const;

  void AttachClock(SimClock* clock) { clock_ = clock; }

  struct Counters {
    int64_t decisions = 0;
    int64_t fails = 0;
    int64_t truncates = 0;
    int64_t garbles = 0;
    int64_t duplicates = 0;
    int64_t delays = 0;
    int64_t injected() const { return fails + truncates + garbles + duplicates; }
  };
  const Counters& counters() const { return counters_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  FaultRng rng_;
  SimClock* clock_ = nullptr;
  /// Remaining forced failures per operation key (fail-first-N state).
  std::map<std::string, int> fails_left_;
  Counters counters_;
};

/// Which failure codes are worth re-asking about: transient refusals
/// (kUnavailable), wrapper hiccups (kInternal), and corrupt responses
/// (kInvalidArgument, kParseError — a re-ask may come back clean).
/// kNotFound is a permanent answer; kDeadlineExceeded means the budget is
/// already gone.
bool IsRetryableCode(Status::Code code);

struct RetryOptions {
  /// Total tries including the first; 1 = no retry.
  int max_attempts = 1;
  int64_t initial_backoff_ns = 1'000'000;  // 1 ms
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ns = 64'000'000;  // 64 ms
  /// Each wait is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.25;
};

/// Bounded retry with exponential backoff, charged to simulated time.
class RetryPolicy {
 public:
  RetryPolicy() : RetryPolicy(RetryOptions{}, 0x5aadbeefcafef00dull) {}
  RetryPolicy(const RetryOptions& options, uint64_t seed);

  struct Outcome {
    Status status;
    int attempts = 0;        ///< operations actually issued
    int retries = 0;         ///< re-issues after a retryable failure
    int failures = 0;        ///< non-OK results observed (faults seen)
    int64_t backoff_ns = 0;  ///< total backoff wait incurred
  };

  /// Runs `op` until it succeeds, fails non-retryably, exhausts
  /// max_attempts, or hits the absolute virtual deadline `deadline_ns` on
  /// `clock` (-1 = no deadline; a null clock disables both charging and the
  /// deadline). A backoff wait that would overrun the deadline is never
  /// started: the outcome is kDeadlineExceeded and the caller's state stays
  /// retryable for a later, better-funded request.
  Outcome Run(const std::function<Status()>& op, SimClock* clock,
              int64_t deadline_ns);

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  FaultRng rng_;
};

/// Service-wide fault/recovery counters, bumped from many worker threads.
struct FaultCounters {
  std::atomic<int64_t> faults{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> backoff_ns{0};
  std::atomic<int64_t> degraded_holes{0};

  void Add(int64_t f, int64_t r, int64_t b) {
    if (f != 0) faults.fetch_add(f, std::memory_order_relaxed);
    if (r != 0) retries.fetch_add(r, std::memory_order_relaxed);
    if (b != 0) backoff_ns.fetch_add(b, std::memory_order_relaxed);
  }
  void AddDegraded(int64_t n) {
    if (n != 0) degraded_holes.fetch_add(n, std::memory_order_relaxed);
  }
};

}  // namespace mix::net

#endif  // MIX_NET_FAULT_H_
