// Deterministic simulated transport.
//
// Section 4 argues that node-at-a-time navigation over a network incurs a
// packet per command, and that bulk transfers (chunked LXP fills) cut the
// overhead. The paper's testbed is real sockets; we substitute a virtual
// clock with per-message and per-byte costs so that the benchmark harness
// reproduces the *shape* of those claims deterministically (DESIGN.md,
// substitution table).
#ifndef MIX_NET_SIM_NET_H_
#define MIX_NET_SIM_NET_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

namespace mix::net {

/// Saturating virtual-time arithmetic: adversarial payload sizes (or a
/// saturated clock advanced again) must pin at the int64 extremes, not wrap
/// — signed overflow is UB and a wrapped virtual clock runs backwards.
inline int64_t SaturatingAdd(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return a < 0 ? std::numeric_limits<int64_t>::min()
                 : std::numeric_limits<int64_t>::max();
  }
  return out;
}

inline int64_t SaturatingMul(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return ((a < 0) != (b < 0)) ? std::numeric_limits<int64_t>::min()
                                : std::numeric_limits<int64_t>::max();
  }
  return out;
}

/// Monotonic virtual clock, advanced by simulated activity. Saturates at
/// INT64_MAX instead of wrapping (negative advances are clamped to 0).
///
/// Thread-safe: background prefetch workers charge their own channels (and
/// through them, clocks) concurrently with the demand path, so the counter
/// is atomic and Advance is a CAS loop (plain fetch_add could wrap past the
/// saturation point).
class SimClock {
 public:
  int64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  void Advance(int64_t ns) {
    if (ns < 0) ns = 0;
    int64_t cur = now_ns_.load(std::memory_order_relaxed);
    while (!now_ns_.compare_exchange_weak(cur, SaturatingAdd(cur, ns),
                                          std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> now_ns_{0};
};

/// Cost model of one mediator↔wrapper link.
struct ChannelOptions {
  /// Fixed cost per message (request or response) — models RTT/packet cost.
  int64_t latency_per_message_ns = 500'000;  // 0.5 ms
  /// Marginal cost per payload byte — models bandwidth (~100 MB/s default).
  int64_t ns_per_byte = 10;
};

struct ChannelStats {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t busy_ns = 0;
  /// Coalesced sends (SendBatch calls) and the logical parts they carried.
  /// Messages saved by batching = batched_parts - batches.
  int64_t batches = 0;
  int64_t batched_parts = 0;

  /// Counter-wise accumulation — aggregating per-session link stats into a
  /// service-wide snapshot.
  ChannelStats& operator+=(const ChannelStats& o);

  std::string ToString() const;
};

/// A half-duplex message channel with accounting. `Send` models one message
/// of `payload_bytes` crossing the link: it advances the clock and updates
/// the stats. A request/response exchange is two Sends.
///
/// A null SimClock is explicitly supported: the channel still counts
/// messages/bytes/busy time, it just cannot advance a shared clock. This is
/// how background (prefetch) channels model traffic that overlaps client
/// think time instead of adding latency to the demand path.
///
/// Thread-safe: counters are atomics so the real background prefetcher can
/// charge a channel concurrently with the demand path; `stats()` therefore
/// returns a snapshot by value (individual counters are each consistent;
/// cross-counter invariants may be mid-update under concurrent senders).
class Channel {
 public:
  Channel(SimClock* clock, ChannelOptions options)
      : clock_(clock), options_(options) {}

  void Send(int64_t payload_bytes);

  /// Coalesced send: `parts` logical payloads crossing the link as ONE
  /// message — pays the per-message latency once plus the byte cost of the
  /// combined payload. This is the wire-level shape of a FillMany exchange.
  void SendBatch(int64_t payload_bytes, int64_t parts);

  ChannelStats stats() const {
    ChannelStats out;
    out.messages = messages_.load(std::memory_order_relaxed);
    out.bytes = bytes_.load(std::memory_order_relaxed);
    out.busy_ns = busy_ns_.load(std::memory_order_relaxed);
    out.batches = batches_.load(std::memory_order_relaxed);
    out.batched_parts = batched_parts_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() {
    messages_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    busy_ns_.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
    batched_parts_.store(0, std::memory_order_relaxed);
  }

 private:
  static void SaturatingFetchAdd(std::atomic<int64_t>* counter, int64_t v);

  SimClock* clock_;
  ChannelOptions options_;
  std::atomic<int64_t> messages_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batched_parts_{0};
};

}  // namespace mix::net

#endif  // MIX_NET_SIM_NET_H_
