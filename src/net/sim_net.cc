#include "net/sim_net.h"

#include "core/check.h"

namespace mix::net {

std::string ChannelStats::ToString() const {
  return "messages=" + std::to_string(messages) +
         " bytes=" + std::to_string(bytes) +
         " busy_ms=" + std::to_string(busy_ns / 1'000'000.0);
}

void Channel::Send(int64_t payload_bytes) {
  MIX_CHECK(payload_bytes >= 0);
  int64_t cost =
      options_.latency_per_message_ns + payload_bytes * options_.ns_per_byte;
  if (clock_ != nullptr) clock_->Advance(cost);
  ++stats_.messages;
  stats_.bytes += payload_bytes;
  stats_.busy_ns += cost;
}

}  // namespace mix::net
