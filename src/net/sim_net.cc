#include "net/sim_net.h"

#include "core/check.h"

namespace mix::net {

ChannelStats& ChannelStats::operator+=(const ChannelStats& o) {
  messages += o.messages;
  bytes += o.bytes;
  busy_ns += o.busy_ns;
  batches += o.batches;
  batched_parts += o.batched_parts;
  return *this;
}

std::string ChannelStats::ToString() const {
  return "messages=" + std::to_string(messages) +
         " bytes=" + std::to_string(bytes) +
         " busy_ms=" + std::to_string(busy_ns / 1'000'000.0) +
         " batches=" + std::to_string(batches) +
         " batched_parts=" + std::to_string(batched_parts);
}

void Channel::SaturatingFetchAdd(std::atomic<int64_t>* counter, int64_t v) {
  int64_t cur = counter->load(std::memory_order_relaxed);
  while (!counter->compare_exchange_weak(cur, SaturatingAdd(cur, v),
                                         std::memory_order_relaxed)) {
  }
}

void Channel::Send(int64_t payload_bytes) {
  MIX_CHECK(payload_bytes >= 0);
  // Saturate: a peer-controlled payload size must pin the virtual clock at
  // the end of time, not overflow it (UB) into running backwards.
  int64_t cost =
      SaturatingAdd(options_.latency_per_message_ns,
                    SaturatingMul(payload_bytes, options_.ns_per_byte));
  // A detached channel (null clock) still accounts traffic; it only skips
  // advancing simulated time.
  if (clock_ != nullptr) clock_->Advance(cost);
  messages_.fetch_add(1, std::memory_order_relaxed);
  SaturatingFetchAdd(&bytes_, payload_bytes);
  SaturatingFetchAdd(&busy_ns_, cost);
}

void Channel::SendBatch(int64_t payload_bytes, int64_t parts) {
  MIX_CHECK(parts >= 1);
  Send(payload_bytes);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_parts_.fetch_add(parts, std::memory_order_relaxed);
}

}  // namespace mix::net
