#!/usr/bin/env bash
# Regenerates every experiment (E1-E9) into results/, one CSV per bench.
# Usage: scripts/run_experiments.sh [build-dir] (default: build)
set -euo pipefail
BUILD="${1:-build}"
OUT=results
mkdir -p "$OUT"
for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name"
  "$bench" --benchmark_format=csv --benchmark_min_time=0.05 \
    > "$OUT/$name.csv" 2> "$OUT/$name.log"
done
echo "results written to $OUT/"
