#!/usr/bin/env bash
# Records the perf trajectory of the navigation hot path across PRs.
#
# Runs the tracked microbenchmark suites and writes their JSON next to
# the sources as BENCH_<name>.json; commit the refreshed files alongside any
# change that moves them. Compare two revisions by checking out each and
# diffing the emitted JSON (real_time per benchmark; for batch navigation
# also the `messages` counter of the batched=0 vs batched=1 rows in
# BENCH_batch_nav.json / BENCH_lxp_chunking.json / BENCH_prefetch.json —
# the before/after message counts of the vectored fill path). For
# BENCH_service.json the numbers that matter are items_per_second across the
# BM_ServiceThroughput workers:1..8 rows (worker-pool scaling on the
# 64-session workload), the mismatches counter (framed answers must equal
# in-process evaluation), and BM_ServiceOverload's ok/rejected/dropped split.
# For BENCH_source_cache.json (E14) compare the cache_kb:0 vs cache_kb:4096
# rows of BM_SharedCacheSessions: wrapper_exchanges (>= 50% reduction warm),
# items_per_second (>= 2x), mismatches (= 0), and BM_CacheBudgetPressure's
# evictions (> 0) / over_budget (= 0). For BENCH_plan_opt.json (E15) compare
# the level:0 vs level:1 rows of BM_RelationalScanPushdown and
# BM_RelationalJoinPushdown: wrapper_exchanges (>= 25% reduction with the
# optimizer on), mismatches (= 0); BM_XmlFig3Levels must show exchange
# parity (the XML workload has no pushdown target) and BM_OptimizeCost is
# the per-compile price of the pass pipeline.
#
# Usage: scripts/run_bench.sh [suite] [build-dir]
#   With no arguments, runs every tracked suite against ./build. A first
#   argument naming a suite (e.g. `plan_opt`) runs just that one; any other
#   first argument is taken as the build dir.
set -euo pipefail
cd "$(dirname "$0")/.."
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

SUITES=(node_id plan_pipeline batch_nav lxp_chunking prefetch service faults source_cache plan_opt)
BUILD="${1:-build}"
for name in "${SUITES[@]}"; do
  if [ "${1:-}" = "$name" ]; then
    SUITES=("$name")
    BUILD="${2:-build}"
    break
  fi
done
for name in "${SUITES[@]}"; do
  bin="$BUILD/bench/bench_$name"
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build first: cmake -B $BUILD -S . && cmake --build $BUILD" >&2
    exit 1
  fi
  echo "== bench_$name"
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "BENCH_$name.json"
done
echo "wrote: $(printf 'BENCH_%s.json ' "${SUITES[@]}")"
