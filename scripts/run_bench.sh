#!/usr/bin/env bash
# Records the perf trajectory of the navigation hot path across PRs.
#
# Runs the tracked microbenchmark suites and writes their JSON next to
# the sources as BENCH_<name>.json; commit the refreshed files alongside any
# change that moves them. Compare two revisions by checking out each and
# diffing the emitted JSON (real_time per benchmark; for batch navigation
# also the `messages` counter of the batched=0 vs batched=1 rows in
# BENCH_batch_nav.json / BENCH_lxp_chunking.json / BENCH_prefetch.json —
# the before/after message counts of the vectored fill path). For
# BENCH_service.json the numbers that matter are items_per_second across the
# BM_ServiceThroughput workers:1..8 rows (worker-pool scaling on the
# 64-session workload), the mismatches counter (framed answers must equal
# in-process evaluation), and BM_ServiceOverload's ok/rejected/dropped split.
# For BENCH_source_cache.json (E14) compare the cache_kb:0 vs cache_kb:4096
# rows of BM_SharedCacheSessions: wrapper_exchanges (>= 50% reduction warm),
# items_per_second (>= 2x), mismatches (= 0), and BM_CacheBudgetPressure's
# evictions (> 0) / over_budget (= 0). For BENCH_plan_opt.json (E15) compare
# the level:0 vs level:1 rows of BM_RelationalScanPushdown and
# BM_RelationalJoinPushdown: wrapper_exchanges (>= 25% reduction with the
# optimizer on), mismatches (= 0); BM_XmlFig3Levels must show exchange
# parity (the XML workload has no pushdown target) and BM_OptimizeCost is
# the per-compile price of the pass pipeline.
#
# For BENCH_answer_views.json (E16) compare the views_kb:0 vs views_kb:1024
# rows of BM_AnswerViewSessions: warm wrapper_exchanges (= 0 with views on),
# items_per_second (>= 2x), mismatches (= 0), view_hits (> 0).
#
# For BENCH_tcp.json (E17, real loopback sockets) the numbers that matter
# are BM_TcpPipeline's items_per_second across depth:1/4/16 at each conns
# level (pipelining must beat request/response lockstep), and mismatches
# (= 0) in both BM_TcpPipeline and BM_TcpSessionThroughput — framed answers
# over a real wire must equal in-process evaluation.
#
# For BENCH_fleet.json (E18, the session router over 3 real TCP backends)
# the numbers that matter are BM_FleetPlacement's open_p50_us/open_p99_us and
# items_per_second at conns:16/per_thread:64 (1024 concurrent sessions),
# mismatches (= 0 — placement must never change answers), sheds (= 0 while
# every backend is healthy), and BM_FleetFailover's mismatches (= 0: a
# backend killed mid-navigation must not change a single answer byte) with
# failovers/replays > 0 proving the kill actually exercised the rebind and
# path-replay machinery.
#
# For BENCH_async_fill.json (E19, the async fill engine) the numbers that
# matter are BM_AsyncFillJoinOverTcp's real_time at window:0 vs window:8 —
# the concurrent readahead window over 250us-latency TCP wrappers must cut
# the two-source-join wall clock by >= 1.5x — with mismatches (= 0),
# async_batches > 0 (real pipelined RoundTripMany on the wire) and
# readahead_hits > 0; and BM_BackgroundPrefetchWarm's real_time at
# workers:0 vs workers:2 (background pool vs inline sync prefetch) with
# pushed_or_cached > 0 (fills landed via mailbox/SourceCache, not demand).
#
# Usage: scripts/run_bench.sh [suite] [build-dir]
#   With no arguments, runs every tracked suite against ./build. A first
#   argument naming a suite (e.g. `plan_opt`) runs just that one, with an
#   optional build dir after it; a first argument naming an existing
#   directory is taken as the build dir. Anything else is an error.
set -euo pipefail
cd "$(dirname "$0")/.."
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

SUITES=(node_id plan_pipeline batch_nav lxp_chunking prefetch service faults source_cache plan_opt answer_views tcp fleet async_fill)
BUILD=build
if [ $# -gt 0 ]; then
  matched=0
  for name in "${SUITES[@]}"; do
    if [ "$1" = "$name" ]; then
      SUITES=("$name")
      BUILD="${2:-build}"
      matched=1
      break
    fi
  done
  if [ "$matched" = 0 ]; then
    if [ -d "$1" ]; then
      BUILD="$1"
    else
      echo "unknown suite or build dir '$1' — valid suites: node_id plan_pipeline batch_nav lxp_chunking prefetch service faults source_cache plan_opt answer_views tcp fleet async_fill" >&2
      echo "usage: scripts/run_bench.sh [suite] [build-dir]" >&2
      exit 1
    fi
  fi
fi
for name in "${SUITES[@]}"; do
  bin="$BUILD/bench/bench_$name"
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build first: cmake -B $BUILD -S . && cmake --build $BUILD" >&2
    exit 1
  fi
  echo "== bench_$name"
  "$bin" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    > "BENCH_$name.json"
done
echo "wrote: $(printf 'BENCH_%s.json ' "${SUITES[@]}")"
