# Empty dependencies file for mix_mediator.
# This may be replaced when dependencies are built.
