
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mediator/browsability.cc" "src/mediator/CMakeFiles/mix_mediator.dir/browsability.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/browsability.cc.o.d"
  "/root/repo/src/mediator/compose.cc" "src/mediator/CMakeFiles/mix_mediator.dir/compose.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/compose.cc.o.d"
  "/root/repo/src/mediator/instantiate.cc" "src/mediator/CMakeFiles/mix_mediator.dir/instantiate.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/instantiate.cc.o.d"
  "/root/repo/src/mediator/plan.cc" "src/mediator/CMakeFiles/mix_mediator.dir/plan.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/plan.cc.o.d"
  "/root/repo/src/mediator/plan_text.cc" "src/mediator/CMakeFiles/mix_mediator.dir/plan_text.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/plan_text.cc.o.d"
  "/root/repo/src/mediator/reference_eval.cc" "src/mediator/CMakeFiles/mix_mediator.dir/reference_eval.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/reference_eval.cc.o.d"
  "/root/repo/src/mediator/rewrite.cc" "src/mediator/CMakeFiles/mix_mediator.dir/rewrite.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/rewrite.cc.o.d"
  "/root/repo/src/mediator/translate.cc" "src/mediator/CMakeFiles/mix_mediator.dir/translate.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/translate.cc.o.d"
  "/root/repo/src/mediator/view_schema.cc" "src/mediator/CMakeFiles/mix_mediator.dir/view_schema.cc.o" "gcc" "src/mediator/CMakeFiles/mix_mediator.dir/view_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/mix_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xmas/CMakeFiles/mix_xmas.dir/DependInfo.cmake"
  "/root/repo/build/src/pathexpr/CMakeFiles/mix_pathexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mix_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
