file(REMOVE_RECURSE
  "libmix_mediator.a"
)
