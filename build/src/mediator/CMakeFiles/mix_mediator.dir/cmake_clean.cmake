file(REMOVE_RECURSE
  "CMakeFiles/mix_mediator.dir/browsability.cc.o"
  "CMakeFiles/mix_mediator.dir/browsability.cc.o.d"
  "CMakeFiles/mix_mediator.dir/compose.cc.o"
  "CMakeFiles/mix_mediator.dir/compose.cc.o.d"
  "CMakeFiles/mix_mediator.dir/instantiate.cc.o"
  "CMakeFiles/mix_mediator.dir/instantiate.cc.o.d"
  "CMakeFiles/mix_mediator.dir/plan.cc.o"
  "CMakeFiles/mix_mediator.dir/plan.cc.o.d"
  "CMakeFiles/mix_mediator.dir/plan_text.cc.o"
  "CMakeFiles/mix_mediator.dir/plan_text.cc.o.d"
  "CMakeFiles/mix_mediator.dir/reference_eval.cc.o"
  "CMakeFiles/mix_mediator.dir/reference_eval.cc.o.d"
  "CMakeFiles/mix_mediator.dir/rewrite.cc.o"
  "CMakeFiles/mix_mediator.dir/rewrite.cc.o.d"
  "CMakeFiles/mix_mediator.dir/translate.cc.o"
  "CMakeFiles/mix_mediator.dir/translate.cc.o.d"
  "CMakeFiles/mix_mediator.dir/view_schema.cc.o"
  "CMakeFiles/mix_mediator.dir/view_schema.cc.o.d"
  "libmix_mediator.a"
  "libmix_mediator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_mediator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
