file(REMOVE_RECURSE
  "CMakeFiles/mix_client.dir/client.cc.o"
  "CMakeFiles/mix_client.dir/client.cc.o.d"
  "libmix_client.a"
  "libmix_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
