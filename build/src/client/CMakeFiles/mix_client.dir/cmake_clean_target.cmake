file(REMOVE_RECURSE
  "libmix_client.a"
)
