# Empty compiler generated dependencies file for mix_client.
# This may be replaced when dependencies are built.
