file(REMOVE_RECURSE
  "libmix_algebra.a"
)
