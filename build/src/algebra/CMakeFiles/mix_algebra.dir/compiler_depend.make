# Empty compiler generated dependencies file for mix_algebra.
# This may be replaced when dependencies are built.
