
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/binding_stream.cc" "src/algebra/CMakeFiles/mix_algebra.dir/binding_stream.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/binding_stream.cc.o.d"
  "/root/repo/src/algebra/bindings_navigable.cc" "src/algebra/CMakeFiles/mix_algebra.dir/bindings_navigable.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/bindings_navigable.cc.o.d"
  "/root/repo/src/algebra/concatenate_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/concatenate_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/concatenate_op.cc.o.d"
  "/root/repo/src/algebra/create_element_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/create_element_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/create_element_op.cc.o.d"
  "/root/repo/src/algebra/extra_ops.cc" "src/algebra/CMakeFiles/mix_algebra.dir/extra_ops.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/extra_ops.cc.o.d"
  "/root/repo/src/algebra/get_descendants_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/get_descendants_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/get_descendants_op.cc.o.d"
  "/root/repo/src/algebra/group_by_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/group_by_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/group_by_op.cc.o.d"
  "/root/repo/src/algebra/join_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/join_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/join_op.cc.o.d"
  "/root/repo/src/algebra/materialize_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/materialize_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/materialize_op.cc.o.d"
  "/root/repo/src/algebra/order_by_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/order_by_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/order_by_op.cc.o.d"
  "/root/repo/src/algebra/reference.cc" "src/algebra/CMakeFiles/mix_algebra.dir/reference.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/reference.cc.o.d"
  "/root/repo/src/algebra/select_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/select_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/select_op.cc.o.d"
  "/root/repo/src/algebra/set_ops.cc" "src/algebra/CMakeFiles/mix_algebra.dir/set_ops.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/set_ops.cc.o.d"
  "/root/repo/src/algebra/source_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/source_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/source_op.cc.o.d"
  "/root/repo/src/algebra/tuple_destroy_op.cc" "src/algebra/CMakeFiles/mix_algebra.dir/tuple_destroy_op.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/tuple_destroy_op.cc.o.d"
  "/root/repo/src/algebra/value_space.cc" "src/algebra/CMakeFiles/mix_algebra.dir/value_space.cc.o" "gcc" "src/algebra/CMakeFiles/mix_algebra.dir/value_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pathexpr/CMakeFiles/mix_pathexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
