file(REMOVE_RECURSE
  "CMakeFiles/mix_core.dir/nav_stats.cc.o"
  "CMakeFiles/mix_core.dir/nav_stats.cc.o.d"
  "CMakeFiles/mix_core.dir/navigable.cc.o"
  "CMakeFiles/mix_core.dir/navigable.cc.o.d"
  "CMakeFiles/mix_core.dir/node_id.cc.o"
  "CMakeFiles/mix_core.dir/node_id.cc.o.d"
  "CMakeFiles/mix_core.dir/status.cc.o"
  "CMakeFiles/mix_core.dir/status.cc.o.d"
  "CMakeFiles/mix_core.dir/super_root.cc.o"
  "CMakeFiles/mix_core.dir/super_root.cc.o.d"
  "libmix_core.a"
  "libmix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
