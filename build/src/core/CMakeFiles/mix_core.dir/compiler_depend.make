# Empty compiler generated dependencies file for mix_core.
# This may be replaced when dependencies are built.
