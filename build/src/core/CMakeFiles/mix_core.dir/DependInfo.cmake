
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/nav_stats.cc" "src/core/CMakeFiles/mix_core.dir/nav_stats.cc.o" "gcc" "src/core/CMakeFiles/mix_core.dir/nav_stats.cc.o.d"
  "/root/repo/src/core/navigable.cc" "src/core/CMakeFiles/mix_core.dir/navigable.cc.o" "gcc" "src/core/CMakeFiles/mix_core.dir/navigable.cc.o.d"
  "/root/repo/src/core/node_id.cc" "src/core/CMakeFiles/mix_core.dir/node_id.cc.o" "gcc" "src/core/CMakeFiles/mix_core.dir/node_id.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/mix_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/mix_core.dir/status.cc.o.d"
  "/root/repo/src/core/super_root.cc" "src/core/CMakeFiles/mix_core.dir/super_root.cc.o" "gcc" "src/core/CMakeFiles/mix_core.dir/super_root.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
