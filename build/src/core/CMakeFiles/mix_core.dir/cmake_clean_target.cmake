file(REMOVE_RECURSE
  "libmix_core.a"
)
