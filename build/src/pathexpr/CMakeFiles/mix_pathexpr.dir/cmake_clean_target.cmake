file(REMOVE_RECURSE
  "libmix_pathexpr.a"
)
