file(REMOVE_RECURSE
  "CMakeFiles/mix_pathexpr.dir/path_expr.cc.o"
  "CMakeFiles/mix_pathexpr.dir/path_expr.cc.o.d"
  "libmix_pathexpr.a"
  "libmix_pathexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_pathexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
