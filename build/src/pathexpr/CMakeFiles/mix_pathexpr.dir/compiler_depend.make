# Empty compiler generated dependencies file for mix_pathexpr.
# This may be replaced when dependencies are built.
