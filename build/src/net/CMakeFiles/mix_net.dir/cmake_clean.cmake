file(REMOVE_RECURSE
  "CMakeFiles/mix_net.dir/sim_net.cc.o"
  "CMakeFiles/mix_net.dir/sim_net.cc.o.d"
  "libmix_net.a"
  "libmix_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
