file(REMOVE_RECURSE
  "libmix_net.a"
)
