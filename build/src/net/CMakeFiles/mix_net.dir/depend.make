# Empty dependencies file for mix_net.
# This may be replaced when dependencies are built.
