file(REMOVE_RECURSE
  "libmix_buffer.a"
)
