# Empty dependencies file for mix_buffer.
# This may be replaced when dependencies are built.
