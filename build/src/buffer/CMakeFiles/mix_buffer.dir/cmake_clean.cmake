file(REMOVE_RECURSE
  "CMakeFiles/mix_buffer.dir/buffer.cc.o"
  "CMakeFiles/mix_buffer.dir/buffer.cc.o.d"
  "CMakeFiles/mix_buffer.dir/lxp.cc.o"
  "CMakeFiles/mix_buffer.dir/lxp.cc.o.d"
  "libmix_buffer.a"
  "libmix_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
