file(REMOVE_RECURSE
  "CMakeFiles/mix_xml.dir/doc_navigable.cc.o"
  "CMakeFiles/mix_xml.dir/doc_navigable.cc.o.d"
  "CMakeFiles/mix_xml.dir/materialize.cc.o"
  "CMakeFiles/mix_xml.dir/materialize.cc.o.d"
  "CMakeFiles/mix_xml.dir/parser.cc.o"
  "CMakeFiles/mix_xml.dir/parser.cc.o.d"
  "CMakeFiles/mix_xml.dir/random_tree.cc.o"
  "CMakeFiles/mix_xml.dir/random_tree.cc.o.d"
  "CMakeFiles/mix_xml.dir/tree.cc.o"
  "CMakeFiles/mix_xml.dir/tree.cc.o.d"
  "libmix_xml.a"
  "libmix_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
