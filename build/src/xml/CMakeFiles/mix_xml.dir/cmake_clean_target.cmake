file(REMOVE_RECURSE
  "libmix_xml.a"
)
