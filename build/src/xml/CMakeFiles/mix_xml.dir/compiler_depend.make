# Empty compiler generated dependencies file for mix_xml.
# This may be replaced when dependencies are built.
