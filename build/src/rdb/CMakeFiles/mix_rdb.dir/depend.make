# Empty dependencies file for mix_rdb.
# This may be replaced when dependencies are built.
