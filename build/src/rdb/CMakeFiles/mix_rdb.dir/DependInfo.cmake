
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdb/database.cc" "src/rdb/CMakeFiles/mix_rdb.dir/database.cc.o" "gcc" "src/rdb/CMakeFiles/mix_rdb.dir/database.cc.o.d"
  "/root/repo/src/rdb/sql.cc" "src/rdb/CMakeFiles/mix_rdb.dir/sql.cc.o" "gcc" "src/rdb/CMakeFiles/mix_rdb.dir/sql.cc.o.d"
  "/root/repo/src/rdb/table.cc" "src/rdb/CMakeFiles/mix_rdb.dir/table.cc.o" "gcc" "src/rdb/CMakeFiles/mix_rdb.dir/table.cc.o.d"
  "/root/repo/src/rdb/value.cc" "src/rdb/CMakeFiles/mix_rdb.dir/value.cc.o" "gcc" "src/rdb/CMakeFiles/mix_rdb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
