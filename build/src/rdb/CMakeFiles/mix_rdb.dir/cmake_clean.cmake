file(REMOVE_RECURSE
  "CMakeFiles/mix_rdb.dir/database.cc.o"
  "CMakeFiles/mix_rdb.dir/database.cc.o.d"
  "CMakeFiles/mix_rdb.dir/sql.cc.o"
  "CMakeFiles/mix_rdb.dir/sql.cc.o.d"
  "CMakeFiles/mix_rdb.dir/table.cc.o"
  "CMakeFiles/mix_rdb.dir/table.cc.o.d"
  "CMakeFiles/mix_rdb.dir/value.cc.o"
  "CMakeFiles/mix_rdb.dir/value.cc.o.d"
  "libmix_rdb.a"
  "libmix_rdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_rdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
