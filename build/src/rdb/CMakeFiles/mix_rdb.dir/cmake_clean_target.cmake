file(REMOVE_RECURSE
  "libmix_rdb.a"
)
