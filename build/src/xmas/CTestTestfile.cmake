# CMake generated Testfile for 
# Source directory: /root/repo/src/xmas
# Build directory: /root/repo/build/src/xmas
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
