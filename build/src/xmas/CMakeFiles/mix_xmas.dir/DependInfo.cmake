
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmas/ast.cc" "src/xmas/CMakeFiles/mix_xmas.dir/ast.cc.o" "gcc" "src/xmas/CMakeFiles/mix_xmas.dir/ast.cc.o.d"
  "/root/repo/src/xmas/parser.cc" "src/xmas/CMakeFiles/mix_xmas.dir/parser.cc.o" "gcc" "src/xmas/CMakeFiles/mix_xmas.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/mix_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/pathexpr/CMakeFiles/mix_pathexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
