file(REMOVE_RECURSE
  "libmix_xmas.a"
)
