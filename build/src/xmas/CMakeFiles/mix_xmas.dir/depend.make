# Empty dependencies file for mix_xmas.
# This may be replaced when dependencies are built.
