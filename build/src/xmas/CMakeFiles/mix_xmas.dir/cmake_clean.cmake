file(REMOVE_RECURSE
  "CMakeFiles/mix_xmas.dir/ast.cc.o"
  "CMakeFiles/mix_xmas.dir/ast.cc.o.d"
  "CMakeFiles/mix_xmas.dir/parser.cc.o"
  "CMakeFiles/mix_xmas.dir/parser.cc.o.d"
  "libmix_xmas.a"
  "libmix_xmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_xmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
