file(REMOVE_RECURSE
  "CMakeFiles/mix_wrappers.dir/bookstore.cc.o"
  "CMakeFiles/mix_wrappers.dir/bookstore.cc.o.d"
  "CMakeFiles/mix_wrappers.dir/csv_wrapper.cc.o"
  "CMakeFiles/mix_wrappers.dir/csv_wrapper.cc.o.d"
  "CMakeFiles/mix_wrappers.dir/relational_wrapper.cc.o"
  "CMakeFiles/mix_wrappers.dir/relational_wrapper.cc.o.d"
  "CMakeFiles/mix_wrappers.dir/xml_lxp_wrapper.cc.o"
  "CMakeFiles/mix_wrappers.dir/xml_lxp_wrapper.cc.o.d"
  "libmix_wrappers.a"
  "libmix_wrappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
