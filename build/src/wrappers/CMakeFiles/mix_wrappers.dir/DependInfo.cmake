
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wrappers/bookstore.cc" "src/wrappers/CMakeFiles/mix_wrappers.dir/bookstore.cc.o" "gcc" "src/wrappers/CMakeFiles/mix_wrappers.dir/bookstore.cc.o.d"
  "/root/repo/src/wrappers/csv_wrapper.cc" "src/wrappers/CMakeFiles/mix_wrappers.dir/csv_wrapper.cc.o" "gcc" "src/wrappers/CMakeFiles/mix_wrappers.dir/csv_wrapper.cc.o.d"
  "/root/repo/src/wrappers/relational_wrapper.cc" "src/wrappers/CMakeFiles/mix_wrappers.dir/relational_wrapper.cc.o" "gcc" "src/wrappers/CMakeFiles/mix_wrappers.dir/relational_wrapper.cc.o.d"
  "/root/repo/src/wrappers/xml_lxp_wrapper.cc" "src/wrappers/CMakeFiles/mix_wrappers.dir/xml_lxp_wrapper.cc.o" "gcc" "src/wrappers/CMakeFiles/mix_wrappers.dir/xml_lxp_wrapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/mix_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/rdb/CMakeFiles/mix_rdb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mix_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
