file(REMOVE_RECURSE
  "libmix_wrappers.a"
)
