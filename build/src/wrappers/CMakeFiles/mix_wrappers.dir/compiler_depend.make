# Empty compiler generated dependencies file for mix_wrappers.
# This may be replaced when dependencies are built.
