# Empty dependencies file for bench_lazy_vs_eager.
# This may be replaced when dependencies are built.
