# Empty dependencies file for bench_plan_pipeline.
# This may be replaced when dependencies are built.
