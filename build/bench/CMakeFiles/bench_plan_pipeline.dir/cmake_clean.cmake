file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_pipeline.dir/bench_plan_pipeline.cc.o"
  "CMakeFiles/bench_plan_pipeline.dir/bench_plan_pipeline.cc.o.d"
  "bench_plan_pipeline"
  "bench_plan_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
