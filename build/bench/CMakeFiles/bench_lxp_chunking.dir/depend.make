# Empty dependencies file for bench_lxp_chunking.
# This may be replaced when dependencies are built.
