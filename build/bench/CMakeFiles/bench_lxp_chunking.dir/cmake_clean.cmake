file(REMOVE_RECURSE
  "CMakeFiles/bench_lxp_chunking.dir/bench_lxp_chunking.cc.o"
  "CMakeFiles/bench_lxp_chunking.dir/bench_lxp_chunking.cc.o.d"
  "bench_lxp_chunking"
  "bench_lxp_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lxp_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
