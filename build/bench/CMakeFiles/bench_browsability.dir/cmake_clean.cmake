file(REMOVE_RECURSE
  "CMakeFiles/bench_browsability.dir/bench_browsability.cc.o"
  "CMakeFiles/bench_browsability.dir/bench_browsability.cc.o.d"
  "bench_browsability"
  "bench_browsability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_browsability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
