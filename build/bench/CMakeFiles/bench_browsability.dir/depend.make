# Empty dependencies file for bench_browsability.
# This may be replaced when dependencies are built.
