# Empty compiler generated dependencies file for bench_freshness.
# This may be replaced when dependencies are built.
