# Empty dependencies file for createelement_concat_test.
# This may be replaced when dependencies are built.
