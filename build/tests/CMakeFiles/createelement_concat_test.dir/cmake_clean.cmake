file(REMOVE_RECURSE
  "CMakeFiles/createelement_concat_test.dir/createelement_concat_test.cc.o"
  "CMakeFiles/createelement_concat_test.dir/createelement_concat_test.cc.o.d"
  "createelement_concat_test"
  "createelement_concat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/createelement_concat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
