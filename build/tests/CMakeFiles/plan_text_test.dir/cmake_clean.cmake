file(REMOVE_RECURSE
  "CMakeFiles/plan_text_test.dir/plan_text_test.cc.o"
  "CMakeFiles/plan_text_test.dir/plan_text_test.cc.o.d"
  "plan_text_test"
  "plan_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
