# Empty compiler generated dependencies file for orderby_test.
# This may be replaced when dependencies are built.
