file(REMOVE_RECURSE
  "CMakeFiles/random_plan_test.dir/random_plan_test.cc.o"
  "CMakeFiles/random_plan_test.dir/random_plan_test.cc.o.d"
  "random_plan_test"
  "random_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
