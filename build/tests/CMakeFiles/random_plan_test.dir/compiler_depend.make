# Empty compiler generated dependencies file for random_plan_test.
# This may be replaced when dependencies are built.
