# Empty dependencies file for view_schema_test.
# This may be replaced when dependencies are built.
