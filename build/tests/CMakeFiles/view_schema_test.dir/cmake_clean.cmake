file(REMOVE_RECURSE
  "CMakeFiles/view_schema_test.dir/view_schema_test.cc.o"
  "CMakeFiles/view_schema_test.dir/view_schema_test.cc.o.d"
  "view_schema_test"
  "view_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
