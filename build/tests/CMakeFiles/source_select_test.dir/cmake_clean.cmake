file(REMOVE_RECURSE
  "CMakeFiles/source_select_test.dir/source_select_test.cc.o"
  "CMakeFiles/source_select_test.dir/source_select_test.cc.o.d"
  "source_select_test"
  "source_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
