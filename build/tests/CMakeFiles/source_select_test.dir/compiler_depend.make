# Empty compiler generated dependencies file for source_select_test.
# This may be replaced when dependencies are built.
