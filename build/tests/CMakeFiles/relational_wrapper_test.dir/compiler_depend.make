# Empty compiler generated dependencies file for relational_wrapper_test.
# This may be replaced when dependencies are built.
