file(REMOVE_RECURSE
  "CMakeFiles/relational_wrapper_test.dir/relational_wrapper_test.cc.o"
  "CMakeFiles/relational_wrapper_test.dir/relational_wrapper_test.cc.o.d"
  "relational_wrapper_test"
  "relational_wrapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
