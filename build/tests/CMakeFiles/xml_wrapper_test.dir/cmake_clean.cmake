file(REMOVE_RECURSE
  "CMakeFiles/xml_wrapper_test.dir/xml_wrapper_test.cc.o"
  "CMakeFiles/xml_wrapper_test.dir/xml_wrapper_test.cc.o.d"
  "xml_wrapper_test"
  "xml_wrapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
