# Empty dependencies file for xml_wrapper_test.
# This may be replaced when dependencies are built.
