file(REMOVE_RECURSE
  "CMakeFiles/bindings_navigable_test.dir/bindings_navigable_test.cc.o"
  "CMakeFiles/bindings_navigable_test.dir/bindings_navigable_test.cc.o.d"
  "bindings_navigable_test"
  "bindings_navigable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bindings_navigable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
