# Empty dependencies file for push_fill_test.
# This may be replaced when dependencies are built.
