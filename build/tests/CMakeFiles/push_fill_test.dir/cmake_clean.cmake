file(REMOVE_RECURSE
  "CMakeFiles/push_fill_test.dir/push_fill_test.cc.o"
  "CMakeFiles/push_fill_test.dir/push_fill_test.cc.o.d"
  "push_fill_test"
  "push_fill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_fill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
