# Empty dependencies file for getdescendants_test.
# This may be replaced when dependencies are built.
