file(REMOVE_RECURSE
  "CMakeFiles/getdescendants_test.dir/getdescendants_test.cc.o"
  "CMakeFiles/getdescendants_test.dir/getdescendants_test.cc.o.d"
  "getdescendants_test"
  "getdescendants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getdescendants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
