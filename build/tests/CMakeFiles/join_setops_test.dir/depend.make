# Empty dependencies file for join_setops_test.
# This may be replaced when dependencies are built.
