file(REMOVE_RECURSE
  "CMakeFiles/join_setops_test.dir/join_setops_test.cc.o"
  "CMakeFiles/join_setops_test.dir/join_setops_test.cc.o.d"
  "join_setops_test"
  "join_setops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_setops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
