# Empty dependencies file for csv_wrapper_test.
# This may be replaced when dependencies are built.
