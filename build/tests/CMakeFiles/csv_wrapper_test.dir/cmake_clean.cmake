file(REMOVE_RECURSE
  "CMakeFiles/csv_wrapper_test.dir/csv_wrapper_test.cc.o"
  "CMakeFiles/csv_wrapper_test.dir/csv_wrapper_test.cc.o.d"
  "csv_wrapper_test"
  "csv_wrapper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
