# Empty compiler generated dependencies file for freshness_test.
# This may be replaced when dependencies are built.
