file(REMOVE_RECURSE
  "CMakeFiles/xmas_parser_test.dir/xmas_parser_test.cc.o"
  "CMakeFiles/xmas_parser_test.dir/xmas_parser_test.cc.o.d"
  "xmas_parser_test"
  "xmas_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmas_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
