# Empty compiler generated dependencies file for xmas_parser_test.
# This may be replaced when dependencies are built.
