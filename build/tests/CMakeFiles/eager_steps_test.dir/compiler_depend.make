# Empty compiler generated dependencies file for eager_steps_test.
# This may be replaced when dependencies are built.
