file(REMOVE_RECURSE
  "CMakeFiles/eager_steps_test.dir/eager_steps_test.cc.o"
  "CMakeFiles/eager_steps_test.dir/eager_steps_test.cc.o.d"
  "eager_steps_test"
  "eager_steps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
