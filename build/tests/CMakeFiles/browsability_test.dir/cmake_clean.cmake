file(REMOVE_RECURSE
  "CMakeFiles/browsability_test.dir/browsability_test.cc.o"
  "CMakeFiles/browsability_test.dir/browsability_test.cc.o.d"
  "browsability_test"
  "browsability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browsability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
