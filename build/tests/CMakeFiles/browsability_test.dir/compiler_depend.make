# Empty compiler generated dependencies file for browsability_test.
# This may be replaced when dependencies are built.
