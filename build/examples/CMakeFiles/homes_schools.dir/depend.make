# Empty dependencies file for homes_schools.
# This may be replaced when dependencies are built.
