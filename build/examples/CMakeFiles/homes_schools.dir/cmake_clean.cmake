file(REMOVE_RECURSE
  "CMakeFiles/homes_schools.dir/homes_schools.cc.o"
  "CMakeFiles/homes_schools.dir/homes_schools.cc.o.d"
  "homes_schools"
  "homes_schools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homes_schools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
