# Empty dependencies file for mixql.
# This may be replaced when dependencies are built.
