file(REMOVE_RECURSE
  "CMakeFiles/mixql.dir/mixql.cc.o"
  "CMakeFiles/mixql.dir/mixql.cc.o.d"
  "mixql"
  "mixql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
