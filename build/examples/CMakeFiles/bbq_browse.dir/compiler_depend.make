# Empty compiler generated dependencies file for bbq_browse.
# This may be replaced when dependencies are built.
