file(REMOVE_RECURSE
  "CMakeFiles/bbq_browse.dir/bbq_browse.cc.o"
  "CMakeFiles/bbq_browse.dir/bbq_browse.cc.o.d"
  "bbq_browse"
  "bbq_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbq_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
