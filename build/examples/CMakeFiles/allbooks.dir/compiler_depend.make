# Empty compiler generated dependencies file for allbooks.
# This may be replaced when dependencies are built.
