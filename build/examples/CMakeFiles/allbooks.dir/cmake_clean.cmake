file(REMOVE_RECURSE
  "CMakeFiles/allbooks.dir/allbooks.cc.o"
  "CMakeFiles/allbooks.dir/allbooks.cc.o.d"
  "allbooks"
  "allbooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allbooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
