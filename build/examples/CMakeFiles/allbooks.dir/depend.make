# Empty dependencies file for allbooks.
# This may be replaced when dependencies are built.
